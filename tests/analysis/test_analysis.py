"""Experiment harness: sweeps, metric accessors, report rendering."""

import pytest

from repro.analysis import (
    METRICS,
    VerificationError,
    available_metrics,
    format_figure,
    format_panel,
    paper_cluster,
    run_algorithms,
    run_sweep,
    speedup_summary,
    subsample_sweep,
)
from repro.baselines import NaiveCube
from repro.core import SPCube
from repro.cubing import CubeResult
from repro.interface import CubeRun
from repro.mapreduce import ClusterConfig, RunMetrics
from repro.relation import Relation, Schema

from ..conftest import make_random_relation


@pytest.fixture
def cluster():
    return ClusterConfig(num_machines=3)


def tiny_workloads():
    return [
        (100.0, make_random_relation(100, seed=1)),
        (200.0, make_random_relation(200, seed=2)),
    ]


FACTORIES = {
    "SP-Cube": lambda c: SPCube(c),
    "Naive": lambda c: NaiveCube(c),
}


class TestRunAlgorithms:
    def test_returns_run_per_algorithm(self, cluster):
        rel = make_random_relation(80, seed=3)
        runs = run_algorithms(
            rel, {name: f(cluster) for name, f in FACTORIES.items()}
        )
        assert set(runs) == {"SP-Cube", "Naive"}
        assert runs["SP-Cube"].cube == runs["Naive"].cube

    def test_verify_passes_when_equal(self, cluster):
        rel = make_random_relation(80, seed=4)
        run_algorithms(
            rel,
            {name: f(cluster) for name, f in FACTORIES.items()},
            verify=True,
        )

    def test_verify_raises_on_disagreement(self, cluster):
        rel = make_random_relation(50, seed=5)

        class Broken:
            name = "broken"

            def compute(self, relation):
                cube = CubeResult(relation.schema, {(0, ()): -1})
                return CubeRun(cube=cube, metrics=RunMetrics("broken"))

        with pytest.raises(VerificationError, match="disagrees"):
            run_algorithms(
                rel,
                {"good": SPCube(cluster), "bad": Broken()},
                verify=True,
            )


class TestRunSweep:
    def test_sweep_structure(self, cluster):
        sweep = run_sweep(
            "demo", "n", tiny_workloads(), FACTORIES, cluster
        )
        assert sweep.algorithms == ["SP-Cube", "Naive"]
        assert [p.x for p in sweep.points] == [100.0, 200.0]

    def test_series_extraction(self, cluster):
        sweep = run_sweep("demo", "n", tiny_workloads(), FACTORIES, cluster)
        curves = sweep.series("total_seconds")
        assert set(curves) == {"SP-Cube", "Naive"}
        for curve in curves.values():
            assert [x for x, _y in curve] == [100.0, 200.0]
            assert all(y > 0 for _x, y in curve)

    def test_unknown_metric(self, cluster):
        sweep = run_sweep("demo", "n", tiny_workloads(), FACTORIES, cluster)
        with pytest.raises(KeyError):
            sweep.series("bogus_metric")

    def test_fault_seed_injects_faults_at_every_point(self, cluster):
        """The ROADMAP's CLI-parity knobs: a fault_seed makes every run of
        the sweep execute under a seeded FaultPlan, visible through the
        recovery metrics, while cubes still verify."""
        clean = run_sweep(
            "demo", "n", tiny_workloads(), FACTORIES, cluster
        )
        faulted = run_sweep(
            "demo",
            "n",
            tiny_workloads(),
            FACTORIES,
            cluster,
            verify=True,
            fault_seed=12,
            crash_prob=0.15,
            straggle_prob=0.1,
        )
        for metric in ("attempts", "recovered"):
            clean_total = sum(
                y for curve in clean.series(metric).values() for _x, y in curve
            )
            faulted_total = sum(
                y
                for curve in faulted.series(metric).values()
                for _x, y in curve
            )
            assert faulted_total > clean_total, metric

    def test_fault_knobs_do_not_mutate_the_shared_cluster(self, cluster):
        run_sweep(
            "demo", "n", tiny_workloads(), FACTORIES, cluster, fault_seed=5
        )
        assert cluster.fault_plan is None


class TestMetricAccessors:
    def test_all_metrics_evaluate(self, cluster):
        rel = make_random_relation(60, seed=6)
        run = SPCube(cluster).compute(rel)
        for name, accessor in METRICS.items():
            value = accessor(run.metrics)
            assert isinstance(value, (int, float)), name

    def test_available_metrics_sorted(self):
        names = available_metrics()
        assert names == sorted(names)
        assert "total_seconds" in names


class TestReports:
    @pytest.fixture
    def sweep(self, cluster):
        return run_sweep("Figure X", "n", tiny_workloads(), FACTORIES, cluster)

    def test_panel_contains_curves_and_axis(self, sweep):
        text = format_panel(sweep, "total_seconds", "running time", "sec")
        assert "running time" in text
        assert "SP-Cube" in text and "Naive" in text
        assert "100" in text and "200" in text

    def test_figure_stacks_panels(self, sweep):
        text = format_figure(
            sweep,
            [
                ("total_seconds", "time", "sec"),
                ("map_output_mb", "traffic", "MB"),
            ],
        )
        assert "Figure X" in text
        assert "time" in text and "traffic" in text

    def test_failed_runs_render_as_fail(self, sweep):
        # Force a failure flag and check rendering.
        sweep.points[0].runs["Naive"].jobs[0].forced_failure = True
        text = format_panel(sweep, "total_seconds", "t", "s")
        assert "FAIL(OOM)" in text

    def test_speedup_summary(self, sweep):
        summary = speedup_summary(sweep, ["Naive"], "SP-Cube")
        assert set(summary) == {"Naive"}
        assert summary["Naive"] > 0


class TestHelpers:
    def test_paper_cluster_memory_calibration(self):
        cluster = paper_cluster(80_000)
        assert cluster.num_machines == 20
        assert cluster.memory_records == 80_000 // 80

    def test_paper_cluster_floor(self):
        assert paper_cluster(10).memory_records == 16

    def test_subsample_sweep(self):
        rel = make_random_relation(300, seed=7)
        points = subsample_sweep(rel, [50, 100], seed=1)
        assert [x for x, _r in points] == [50.0, 100.0]
        assert [len(r) for _x, r in points] == [50, 100]


class TestPerPointFaultSeeds:
    """Satellite of the observability PR: each (point, algorithm) run of a
    faulted sweep draws its own FaultPlan seed via derive_fault_seed."""

    def test_derivation_is_pure_and_documented(self):
        import zlib

        from repro.analysis import derive_fault_seed

        assert derive_fault_seed(12, "SP-Cube", 100.0) == zlib.crc32(
            repr((12, "SP-Cube", 100.0)).encode("utf-8")
        )
        # Stable across calls and sensitive to every component.
        base = derive_fault_seed(12, "SP-Cube", 100.0)
        assert derive_fault_seed(12, "SP-Cube", 100.0) == base
        assert derive_fault_seed(13, "SP-Cube", 100.0) != base
        assert derive_fault_seed(12, "Naive", 100.0) != base
        assert derive_fault_seed(12, "SP-Cube", 200.0) != base

    def test_sweep_points_face_independent_schedules(self, cluster):
        """With a shared seed the same task identities replay the same coin
        flips at every point; per-point derivation must break that."""
        sweep = run_sweep(
            "demo", "n", tiny_workloads(), FACTORIES, cluster,
            fault_seed=12, crash_prob=0.2, straggle_prob=0.2,
        )
        per_point = [
            tuple(
                (name, run.attempts, run.killed_tasks)
                for name, run in point.runs.items()
            )
            for point in sweep.points
        ]
        # Two points over equally-shaped workloads: identical recovery
        # fingerprints at both would mean the schedules were shared.
        assert per_point[0] != per_point[1]

    def test_tracer_covers_every_sweep_run(self, cluster):
        from repro.observability import MemorySink, TraceAnalysis, Tracer

        sink = MemorySink()
        tracer = Tracer([sink], level="job")
        run_sweep(
            "demo", "n", tiny_workloads(), FACTORIES, cluster,
            tracer=tracer,
        )
        analysis = TraceAnalysis(sink.records)
        # 2 points x 2 algorithms = 4 run spans on one global timeline.
        assert len(analysis.runs) == 4
        starts = [span["t0"] for span in analysis.runs]
        assert starts == sorted(starts)
        assert starts[-1] > 0.0
