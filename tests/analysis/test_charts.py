"""ASCII chart rendering."""

import pytest

from repro.analysis import run_sweep
from repro.analysis.charts import ascii_chart, chart_figure
from repro.baselines import NaiveCube
from repro.core import SPCube
from repro.mapreduce import ClusterConfig

from ..conftest import make_random_relation


@pytest.fixture(scope="module")
def sweep():
    cluster = ClusterConfig(num_machines=3)
    workloads = [
        (100.0, make_random_relation(100, seed=1)),
        (300.0, make_random_relation(300, seed=2)),
        (500.0, make_random_relation(500, seed=3)),
    ]
    return run_sweep(
        "chart demo",
        "n",
        workloads,
        {"SP-Cube": lambda c: SPCube(c), "Naive": lambda c: NaiveCube(c)},
        cluster,
    )


class TestAsciiChart:
    def test_contains_title_and_legend(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "running time")
        assert "running time" in text
        assert "SP-Cube" in text and "Naive" in text

    def test_glyphs_plotted(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t")
        body = "\n".join(line for line in text.splitlines() if "|" in line)
        assert "*" in body and "o" in body

    def test_dimensions_respected(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t", width=30, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(line.count("|") == 2 for line in rows)

    def test_axis_labels_present(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t")
        assert "100" in text and "500" in text  # x range

    def test_failed_points_dropped(self, sweep):
        sweep.points[-1].runs["Naive"].jobs[0].forced_failure = True
        try:
            text = ascii_chart(sweep, "total_seconds", "t", width=40)
            assert "Naive" in text  # curve still present with 2 points
        finally:
            sweep.points[-1].runs["Naive"].jobs[0].forced_failure = False

    def test_chart_figure_stacks(self, sweep):
        text = chart_figure(
            sweep,
            [("total_seconds", "time"), ("map_output_mb", "traffic")],
        )
        assert "time" in text and "traffic" in text


class TestSvgCharts:
    """Inline-SVG chart helpers for the HTML run report."""

    def test_line_chart_renders_series_and_legend(self):
        from repro.analysis import svg_line_chart

        svg = svg_line_chart(
            {"sp-cube": [(0.0, 1.0), (1.0, 4.0)],
             "hive": [(0.0, 2.0), (1.0, 3.0)]},
            "phase seconds",
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "phase seconds" in svg
        assert "sp-cube" in svg and "hive" in svg
        assert svg.count("<polyline") == 2

    def test_line_chart_empty_shows_no_data(self):
        from repro.analysis import svg_line_chart

        assert "(no data)" in svg_line_chart({}, "empty")

    def test_line_chart_escapes_labels(self):
        from repro.analysis import svg_line_chart

        svg = svg_line_chart({"<evil>": [(0, 1)]}, "a & b")
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        assert "a &amp; b" in svg

    def test_bar_chart_draws_one_rect_per_value(self):
        from repro.analysis import svg_bar_chart

        svg = svg_bar_chart(["r0", "r1", "r2"], [5, 9, 2], "loads",
                            highlight=5.33)
        bars = [part for part in svg.split("<rect") if 'fill="#' in part]
        assert len(bars) >= 3
        assert "mean 5.33" in svg

    def test_bar_chart_single_point_does_not_divide_by_zero(self):
        from repro.analysis import svg_bar_chart

        svg = svg_bar_chart(["only"], [7.0], "one bar")
        assert "<svg" in svg

    def test_span_timeline_rows_and_tooltips(self):
        from repro.analysis import svg_span_timeline

        svg = svg_span_timeline(
            [{"label": "sp-sketch", "t0": 0.0, "t1": 4.0},
             {"label": "sp-cube", "t0": 4.0, "t1": 20.0}],
            "jobs",
        )
        assert "sp-sketch" in svg and "sp-cube" in svg
        assert "<title>sp-cube: 4.0s" in svg

    def test_span_timeline_empty(self):
        from repro.analysis import svg_span_timeline

        assert "(no spans)" in svg_span_timeline([], "empty")
