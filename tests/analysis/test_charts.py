"""ASCII chart rendering."""

import pytest

from repro.analysis import run_sweep
from repro.analysis.charts import ascii_chart, chart_figure
from repro.baselines import NaiveCube
from repro.core import SPCube
from repro.mapreduce import ClusterConfig

from ..conftest import make_random_relation


@pytest.fixture(scope="module")
def sweep():
    cluster = ClusterConfig(num_machines=3)
    workloads = [
        (100.0, make_random_relation(100, seed=1)),
        (300.0, make_random_relation(300, seed=2)),
        (500.0, make_random_relation(500, seed=3)),
    ]
    return run_sweep(
        "chart demo",
        "n",
        workloads,
        {"SP-Cube": lambda c: SPCube(c), "Naive": lambda c: NaiveCube(c)},
        cluster,
    )


class TestAsciiChart:
    def test_contains_title_and_legend(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "running time")
        assert "running time" in text
        assert "SP-Cube" in text and "Naive" in text

    def test_glyphs_plotted(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t")
        body = "\n".join(line for line in text.splitlines() if "|" in line)
        assert "*" in body and "o" in body

    def test_dimensions_respected(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t", width=30, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(line.count("|") == 2 for line in rows)

    def test_axis_labels_present(self, sweep):
        text = ascii_chart(sweep, "total_seconds", "t")
        assert "100" in text and "500" in text  # x range

    def test_failed_points_dropped(self, sweep):
        sweep.points[-1].runs["Naive"].jobs[0].forced_failure = True
        try:
            text = ascii_chart(sweep, "total_seconds", "t", width=40)
            assert "Naive" in text  # curve still present with 2 points
        finally:
            sweep.points[-1].runs["Naive"].jobs[0].forced_failure = False

    def test_chart_figure_stacks(self, sweep):
        text = chart_figure(
            sweep,
            [("total_seconds", "time"), ("map_output_mb", "traffic")],
        )
        assert "time" in text and "traffic" in text
