"""The unified HTML run report builder."""

import json

import pytest

from repro.analysis import build_report, write_report


@pytest.fixture
def doctor_json(tmp_path):
    report = {
        "healthy": False,
        "problems": ["binomial(p=0.4): worst imbalance 3.1 over tolerance"],
        "datasets": [
            {
                "name": "binomial(p=0.4)",
                "params": {"generator": "binomial", "skew": 0.4},
                "engines": {
                    "spcube": {
                        "total_seconds": 41.7,
                        "reducer_balance": 1.4,
                        "failed": False,
                    },
                    "hive": {
                        "total_seconds": 90.0,
                        "reducer_balance": 3.2,
                        "failed": True,
                    },
                },
                "audit": {
                    "overall": {"f1": 0.93},
                    "worst_imbalance": 3.1,
                },
            }
        ],
    }
    path = tmp_path / "doctor.json"
    path.write_text(json.dumps(report))
    return str(path)


@pytest.fixture
def perf_json(tmp_path):
    bench = {
        "workload": {"dataset": "gen_binomial", "rows": 200000},
        "serial_wall_seconds": 10.0,
        "parallel_wall_seconds": 4.0,
        "speedup": 2.5,
        "cubes_identical": True,
        "parallelism_sweep": [
            {"workers": 1, "speedup_vs_serial": 1.0},
            {"workers": 4, "speedup_vs_serial": 2.5},
        ],
        "telemetry": {"overhead_ratio": 1.02},
    }
    path = tmp_path / "perf.json"
    path.write_text(json.dumps(bench))
    return str(path)


@pytest.fixture
def recovery_json(tmp_path):
    bench = {
        "rows": 6000,
        "points": [
            {"engine": "SP-Cube", "pressure": 0.0, "slowdown": 1.0,
             "failed": False},
            {"engine": "SP-Cube", "pressure": 0.1, "slowdown": 1.8,
             "failed": False},
            {"engine": "Hive", "pressure": 0.1, "slowdown": 9.9,
             "failed": True},
        ],
    }
    path = tmp_path / "recovery.json"
    path.write_text(json.dumps(bench))
    return str(path)


class TestBuildReport:
    def test_all_sections_marked_missing_by_default(self):
        html = build_report()
        for label in ("Trace", "Telemetry", "Lineage &amp; alerts",
                      "Doctor audit", "Bench: parallel perf",
                      "Bench: recovery cost"):
            assert f"<h2>{label}</h2>" in html
        assert html.count("not provided") == 6

    def test_doctor_section_lists_problems_and_engines(self, doctor_json):
        html = build_report(doctor=doctor_json)
        assert "PROBLEMS" in html
        assert "worst imbalance 3.1" in html
        assert "spcube" in html and "hive" in html

    def test_perf_section_reports_overhead_and_sweep(self, perf_json):
        html = build_report(perf=perf_json)
        assert "speedup 2.50" in html
        assert "telemetry overhead: wall ratio 1.020" in html
        assert "parallelism sweep" in html

    def test_recovery_section_drops_failed_points(self, recovery_json):
        html = build_report(recovery=recovery_json)
        assert "SP-Cube" in html
        # Hive's only point failed, so its curve must not render.
        assert "Hive" not in html

    def test_write_report_creates_file(self, tmp_path, perf_json):
        out = tmp_path / "report.html"
        assert write_report(out, perf=perf_json) == out
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_custom_title_is_escaped(self, perf_json):
        html = build_report(perf=perf_json, title="<run> & report")
        assert "&lt;run&gt; &amp; report" in html
        assert "<title>&lt;run&gt; &amp; report</title>" in html
