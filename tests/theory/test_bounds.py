"""Chernoff sketch-accuracy bounds: monotonicity, ranges, edge cases."""

import pytest

from repro.core import sampling_probability, skew_sample_threshold
from repro.theory import (
    expected_false_negatives,
    expected_false_positives,
    false_negative_probability,
    false_positive_probability,
)

N, K, M = 4000, 8, 125  # the doctor's default paper_cluster shape


class TestFalseNegativeProbability:
    def test_trivial_at_or_below_threshold(self):
        """Groups the sketch is allowed to miss get the trivial bound."""
        assert false_negative_probability(M, N, K, M) == 1.0
        assert false_negative_probability(1, N, K, M) == 1.0
        assert false_negative_probability(0, N, K, M) == 1.0

    def test_decreasing_in_group_size(self):
        """The further above ``m`` a group is, the harder it is to miss."""
        sizes = [2 * M, 4 * M, 8 * M, 16 * M]
        bounds = [false_negative_probability(s, N, K, M) for s in sizes]
        assert all(b1 > b2 for b1, b2 in zip(bounds, bounds[1:]))
        assert all(0.0 < b < 1.0 for b in bounds)

    def test_huge_groups_essentially_never_missed(self):
        assert false_negative_probability(N, N, K, M) < 1e-6

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            false_negative_probability(-1, N, K, M)


class TestFalsePositiveProbability:
    def test_empty_group_never_flagged(self):
        assert false_positive_probability(0, N, K, M) == 0.0

    def test_trivial_at_threshold(self):
        """At ``s = m`` the mean hits ``beta`` — no non-trivial bound."""
        assert false_positive_probability(M, N, K, M) == 1.0

    def test_increasing_in_group_size(self):
        """Bigger (but still non-skewed) groups are easier to over-count."""
        sizes = [M // 16, M // 8, M // 4, M // 2]
        bounds = [false_positive_probability(s, N, K, M) for s in sizes]
        assert all(b1 < b2 for b1, b2 in zip(bounds, bounds[1:]))
        assert all(0.0 < b <= 1.0 for b in bounds)

    def test_tiny_groups_essentially_never_flagged(self):
        assert false_positive_probability(1, N, K, M) < 1e-3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            false_positive_probability(-1, N, K, M)


class TestEdgeCases:
    def test_single_machine_cluster(self):
        """k = 1: alpha/beta still well-defined, bounds stay in [0, 1]."""
        n, m = 1000, 100
        assert 0.0 < sampling_probability(n, 1, m) <= 1.0
        assert skew_sample_threshold(n, 1) > 0.0
        assert 0.0 <= false_negative_probability(n, n, 1, m) <= 1.0
        assert 0.0 <= false_positive_probability(m // 2, n, 1, m) <= 1.0

    def test_memory_exceeds_input(self):
        """n < m: no group can be truly skewed; the FP bound still holds
        for every feasible size and the FN bound is trivially 1."""
        n, k, m = 50, 4, 200
        for size in (1, n // 2, n):
            assert false_negative_probability(size, n, k, m) == 1.0
            assert 0.0 <= false_positive_probability(size, n, k, m) <= 1.0


class TestExpectedCounts:
    def test_empty_inputs(self):
        assert expected_false_negatives([], N, K, M) == 0.0
        assert expected_false_positives([], N, K, M) == 0.0

    def test_terms_capped_at_one(self):
        """Each summand is a probability, so the total is at most the
        group count even when individual bounds are trivial."""
        sizes = [M] * 5  # trivial per-group FN bound of 1.0
        assert expected_false_negatives(sizes, N, K, M) == pytest.approx(5.0)
        assert expected_false_positives([M] * 3, N, K, M) == pytest.approx(3.0)

    def test_matches_sum_of_tails(self):
        sizes = [2 * M, 16 * M]
        expected = sum(
            false_negative_probability(s, N, K, M) for s in sizes
        )
        assert expected_false_negatives(sizes, N, K, M) == pytest.approx(
            expected
        )

    def test_confident_regime_sums_near_zero(self):
        """Groups far from the threshold contribute essentially nothing —
        the regime the doctor's corruption detection relies on."""
        assert expected_false_negatives([N], N, K, M) < 1e-6
        assert expected_false_positives([1, 2, 3], N, K, M) < 1e-2
