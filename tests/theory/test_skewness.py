"""Skewness census edge cases: tiny clusters, oversized memory, exactness."""

from repro.relation import Relation, Schema, all_cuboids
from repro.theory import (
    is_skewness_monotonic,
    monotonicity_violations,
    skewed_groups_by_cuboid,
)

from ..conftest import make_random_relation


def _tiny(rows):
    return Relation(Schema(["a", "b"], "m"), rows, validate=False)


class TestSkewedGroupsCensus:
    def test_census_covers_every_cuboid(self):
        rel = make_random_relation(100, num_dimensions=3, seed=11)
        skewed = skewed_groups_by_cuboid(rel, memory_records=10)
        assert set(skewed) == set(all_cuboids(3))

    def test_memory_exceeds_input_means_no_skew(self):
        """n < m: not even the apex is skewed — the census is empty."""
        rel = make_random_relation(30, seed=12)
        skewed = skewed_groups_by_cuboid(rel, memory_records=30)
        assert all(not groups for groups in skewed.values())

    def test_agrees_with_exact_group_sizes(self):
        rel = make_random_relation(200, seed=13, skew_fraction=0.4)
        m = 25
        skewed = skewed_groups_by_cuboid(rel, m)
        for mask in all_cuboids(rel.schema.num_dimensions):
            truth = {
                values
                for values, count in rel.group_sizes(mask).items()
                if count > m
            }
            assert skewed[mask] == truth


class TestMonotonicityEdgeCases:
    def test_empty_memory_only_apex_exempt(self):
        """m = 0 makes every group skewed — vacuously monotonic."""
        rel = _tiny([(1, 1, 0), (1, 2, 0), (2, 1, 0)])
        assert is_skewness_monotonic(rel, memory_records=0)

    def test_no_skew_at_all_is_monotonic(self):
        rel = _tiny([(1, 1, 0), (1, 2, 0), (2, 1, 0)])
        assert is_skewness_monotonic(rel, memory_records=5)

    def test_single_dimension_always_monotonic(self):
        """d = 1 cuboids have only the exempt apex below them."""
        rows = [(1, 0)] * 20 + [(2, 0)] * 3
        rel = Relation(Schema(["a"], "m"), rows, validate=False)
        assert is_skewness_monotonic(rel, memory_records=10)

    def test_violation_lists_are_exact(self):
        """Only the constructed violator is reported, nothing else."""
        rows = [(1, 1, 0)] * 30 + [(1, 2, 0)] * 30 + [(2, 1, 0)] * 30
        rel = _tiny(rows)
        assert monotonicity_violations(rel, memory_records=35) == [
            (0b11, (1, 1))
        ]
