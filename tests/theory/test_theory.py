"""Theory predicates: skewness monotonicity and traffic bounds."""

import pytest

from repro.core import build_exact_sketch
from repro.datagen import adversarial_relation, gen_binomial
from repro.relation import Relation, Schema
from repro.theory import (
    independent_traffic_bound,
    is_skewness_monotonic,
    monotonic_traffic_bound,
    monotonicity_violations,
    planned_traffic,
    prop56_skew_probability_bound,
    skewed_groups_by_cuboid,
    skewed_traffic_bound,
    worst_case_traffic,
)

from ..conftest import make_random_relation


class TestSkewedGroups:
    def test_groups_found_per_cuboid(self):
        rel = make_random_relation(400, seed=1, skew_fraction=0.5)
        skewed = skewed_groups_by_cuboid(rel, memory_records=50)
        assert (1, 1, 1) in skewed[0b111]
        assert () in skewed[0]  # apex always over 50

    def test_threshold_is_strict(self):
        rows = [(1, 1) for _ in range(10)]
        rel = Relation(Schema(["a"], "m"), rows, validate=False)
        skewed = skewed_groups_by_cuboid(rel, memory_records=10)
        assert skewed[0b1] == set()  # exactly 10 is not > 10


class TestMonotonicity:
    def test_no_skew_data_is_vacuously_monotonic(self):
        rel = make_random_relation(100, cardinality=1000, seed=2)
        assert is_skewness_monotonic(rel, memory_records=50)

    def test_identical_rows_are_monotonic(self):
        rel = make_random_relation(200, seed=3, skew_fraction=1.0)
        assert is_skewness_monotonic(rel, memory_records=50)

    def test_constructed_violation_detected(self):
        """Two patterns agreeing on each single attribute but not jointly:
        both level-1 groups are skewed, the level-2 group is not."""
        rows = [(1, 1, 0)] * 30 + [(1, 2, 0)] * 30 + [(2, 1, 0)] * 30
        rel = Relation(Schema(["a", "b"], "m"), rows, validate=False)
        # m = 35: (1,*) has 60 > 35, (*,1) has 60 > 35, but (1,1) has 30.
        violations = monotonicity_violations(rel, memory_records=35)
        assert (0b11, (1, 1)) in violations
        assert not is_skewness_monotonic(rel, 35)


class TestPlannedTraffic:
    def test_adversarial_relation_hits_exponential_traffic(self):
        """Theorem 5.3: every level-(d/2+1) node is an unmarked non-skewed
        c-group, so emissions per tuple are Theta(2^d / sqrt(d))."""
        from repro.datagen import (
            adversarial_memory,
            expected_emissions_per_tuple,
        )

        d, n = 6, 6000
        rel = adversarial_relation(d, n, seed=1)
        m = adversarial_memory(d, n)
        sketch = build_exact_sketch(rel, num_partitions=4, memory_records=m)
        plan = planned_traffic(rel, sketch)
        predicted = expected_emissions_per_tuple(d)
        assert plan.emissions_per_tuple >= 0.9 * predicted
        assert plan.emitted_tuples <= worst_case_traffic(d, len(rel))

    def test_monotonic_relation_within_linear_bound(self):
        """Prop 5.5: monotonic relations emit O(d) per tuple."""
        rel = make_random_relation(
            600, num_dimensions=4, cardinality=500, seed=4, skew_fraction=0.3
        )
        m = len(rel) // 5
        assert is_skewness_monotonic(rel, m)
        sketch = build_exact_sketch(rel, 5, m)
        plan = planned_traffic(rel, sketch)
        assert plan.emitted_tuples <= monotonic_traffic_bound(4, len(rel))

    def test_skew_absorption_counted(self):
        rel = make_random_relation(300, seed=5, skew_fraction=1.0)
        sketch = build_exact_sketch(rel, 4, 50)
        plan = planned_traffic(rel, sketch)
        # Everything identical: all 2^3 nodes of every tuple are skewed.
        assert plan.skew_absorptions == 300 * 8
        assert plan.emitted_tuples == 0

    def test_gen_binomial_within_independent_bound(self):
        rel = gen_binomial(800, 0.3, seed=6)
        m = len(rel) // 10
        sketch = build_exact_sketch(rel, 10, m)
        plan = planned_traffic(rel, sketch)
        assert plan.emitted_tuples <= independent_traffic_bound(4, len(rel))


class TestBoundFormulas:
    def test_bound_values(self):
        assert skewed_traffic_bound(4, 100) == 400
        assert monotonic_traffic_bound(4, 100) == 400
        assert independent_traffic_bound(4, 100) == 1600
        assert worst_case_traffic(4, 100) == 1600

    def test_prop56_probability_bound(self):
        assert prop56_skew_probability_bound(4, 1) == pytest.approx(
            4 ** 0.5 / 4
        )
        assert prop56_skew_probability_bound(8, 3) == pytest.approx(
            8 ** 0.25 / 8
        )

    def test_prop56_invalid_level(self):
        with pytest.raises(ValueError):
            prop56_skew_probability_bound(4, 0)
