"""The on-disk cube store: format, laziness, corruption detection."""

import zlib

import pytest

from repro import io as repro_io
from repro.cubing import sequential_cube
from repro.relation import all_cuboids
from repro.serving import CubeStore, StoreError, estimate_cube_bytes

from ..conftest import make_random_relation


@pytest.fixture
def cube(retail_relation):
    return sequential_cube(retail_relation)


@pytest.fixture
def store_path(cube, tmp_path):
    path = str(tmp_path / "retail.store")
    CubeStore.write(cube, path, aggregate="count")
    return path


class TestWriteOpen:
    def test_roundtrip_whole_cube(self, cube, store_path):
        with CubeStore.open(store_path) as store:
            assert store.to_cube() == cube

    def test_roundtrip_matches_tsv_oracle(
        self, cube, store_path, retail_relation, tmp_path
    ):
        # io.read_cube round-trips the same cube through the flat TSV
        # export; the store must agree with that independent path.
        tsv = str(tmp_path / "cube.tsv")
        repro_io.write_cube(cube, tsv)
        oracle = repro_io.read_cube(
            tsv, retail_relation.schema, dimension_parsers=[str, str, int]
        )
        with CubeStore.open(store_path) as store:
            assert store.to_cube() == oracle

    def test_write_returns_file_size(self, cube, tmp_path):
        path = tmp_path / "cube.store"
        written = CubeStore.write(cube, str(path), aggregate="count")
        assert written == path.stat().st_size > 0

    def test_metadata_survives(self, store_path, retail_schema):
        with CubeStore.open(store_path) as store:
            assert store.schema == retail_schema
            assert store.aggregate_name == "count"
            assert store.aggregate_kind == "distributive"
            assert store.min_group_size == 1
            assert store.total_groups > 0

    def test_footer_counts_match_cube(self, cube, store_path):
        with CubeStore.open(store_path) as store:
            assert store.groups_per_cuboid() == cube.groups_per_cuboid()
            assert store.total_groups == cube.num_groups

    def test_every_cuboid_materialized_by_default(self, store_path):
        with CubeStore.open(store_path) as store:
            assert store.masks == tuple(
                sorted(all_cuboids(3), key=lambda m: (bin(m).count("1"), m))
            )

    def test_partial_write_keeps_selected_masks(self, cube, tmp_path):
        path = str(tmp_path / "partial.store")
        CubeStore.write(cube, path, aggregate="count", cuboids=[0, 0b111])
        with CubeStore.open(path) as store:
            assert store.masks == (0, 0b111)
            assert store.cuboid(0b111) == cube.cuboid(0b111)
            assert not store.has_cuboid(0b001)

    def test_mask_outside_lattice_rejected(self, cube, tmp_path):
        with pytest.raises(StoreError, match="outside"):
            CubeStore.write(
                cube, str(tmp_path / "x.store"), cuboids=[1 << 7]
            )

    def test_unstorable_value_rejected(self, retail_schema, tmp_path):
        from repro.cubing import CubeResult

        cube = CubeResult(retail_schema, {(0, ()): object()})
        with pytest.raises(StoreError, match="round-trip"):
            CubeStore.write(cube, str(tmp_path / "x.store"))

    def test_empty_cuboid_distinct_from_missing(self, retail_schema, tmp_path):
        from repro.cubing import CubeResult

        empty = CubeResult(retail_schema)
        path = str(tmp_path / "empty.store")
        CubeStore.write(empty, path, aggregate="count")
        with CubeStore.open(path) as store:
            # Materialized but empty: answers {} rather than erroring.
            assert store.cuboid(0) == {}
            assert store.group_count(0) == 0


class TestLaziness:
    def test_open_reads_no_segment(self, store_path):
        with CubeStore.open(store_path) as store:
            assert store.counters.value("serving.segment_load") == 0
            assert store.counters.value("serving.bytes_read") == 0

    def test_cuboid_loads_one_segment(self, cube, store_path):
        with CubeStore.open(store_path) as store:
            assert store.cuboid(0b011) == cube.cuboid(0b011)
            assert store.counters.value("serving.segment_load") == 1
            assert store.counters.value("serving.bytes_read") > 0

    def test_repeat_read_hits_cache(self, store_path):
        with CubeStore.open(store_path) as store:
            store.cuboid(0b011)
            store.cuboid(0b011)
            assert store.counters.value("serving.segment_load") == 1
            assert store.counters.value("serving.segment_hit") == 1

    def test_lru_evicts_cold_segments(self, cube, store_path):
        with CubeStore.open(store_path, segment_cache_size=2) as store:
            store.cuboid(0b001)
            store.cuboid(0b010)
            store.cuboid(0b100)  # evicts 0b001
            store.cuboid(0b001)  # reloaded from disk
            assert store.counters.value("serving.segment_load") == 4

    def test_missing_cuboid_one_line_error(self, cube, tmp_path):
        path = str(tmp_path / "partial.store")
        CubeStore.write(cube, path, aggregate="count", cuboids=[0])
        with CubeStore.open(path) as store:
            with pytest.raises(StoreError, match="0x7 is not materialized"):
                store.cuboid(0b111)


class TestCorruption:
    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.store"
        path.write_text("definitely not a cube store\n")
        with pytest.raises(StoreError, match="bad magic"):
            CubeStore.open(str(path))

    def test_unsupported_version(self, cube, tmp_path):
        path = tmp_path / "future.store"
        CubeStore.write(cube, str(path), aggregate="count")
        content = path.read_bytes().replace(
            b"repro-cube-store 1 ", b"repro-cube-store 99 ", 1
        )
        path.write_bytes(content)
        with pytest.raises(StoreError, match="version '99'"):
            CubeStore.open(str(path))

    def test_truncated_footer(self, cube, tmp_path):
        path = tmp_path / "trunc.store"
        CubeStore.write(cube, str(path), aggregate="count")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])
        with pytest.raises(StoreError, match="footer pointer"):
            CubeStore.open(str(path))

    def test_flipped_segment_byte_offset_numbered(self, cube, tmp_path):
        path = tmp_path / "flip.store"
        CubeStore.write(cube, str(path), aggregate="count")
        with CubeStore.open(str(path)) as probe:
            entry = probe._index[0b111]
        data = bytearray(path.read_bytes())
        data[entry["offset"]] ^= 0xFF
        path.write_bytes(bytes(data))
        with CubeStore.open(str(path)) as store:
            with pytest.raises(
                StoreError,
                match=rf"0x7 at offset {entry['offset']}: crc mismatch",
            ):
                store.cuboid(0b111)

    def test_footer_crc_checked(self, cube, tmp_path):
        path = tmp_path / "badfooter.store"
        CubeStore.write(cube, str(path), aggregate="count")
        data = path.read_bytes()
        # Corrupt one byte inside the footer JSON line (second-to-last
        # line), leaving the pointer line intact.
        lines = data.rsplit(b"\n", 2)
        corrupted = lines[0][:-5] + b"X" + lines[0][-4:]
        path.write_bytes(b"\n".join([corrupted, lines[1], lines[2]]))
        with pytest.raises(StoreError, match="crc mismatch"):
            CubeStore.open(str(path))

    def test_crc_actually_crc32(self, cube, tmp_path):
        # Pin the checksum algorithm: recompute one segment's crc32
        # by hand from the raw bytes and compare with the footer.
        path = tmp_path / "crc.store"
        CubeStore.write(cube, str(path), aggregate="count")
        with CubeStore.open(str(path)) as store:
            entry = store._index[0b111]
        raw = path.read_bytes()[
            entry["offset"] : entry["offset"] + entry["length"]
        ]
        assert zlib.crc32(raw) == entry["crc32"]


class TestEstimate:
    def test_estimate_scales_with_cube(self):
        small = sequential_cube(make_random_relation(20, seed=1))
        large = sequential_cube(make_random_relation(400, seed=1))
        assert estimate_cube_bytes(small) > 0
        assert estimate_cube_bytes(large) > estimate_cube_bytes(small)
