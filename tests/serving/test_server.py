"""The query server: wire protocol, admission control, deadlines."""

import json
import urllib.error
import urllib.request

import pytest

from repro import ClusterConfig, SPCube
from repro.cubing import sequential_cube
from repro.datagen import gen_binomial
from repro.serving import CubeServer, CubeStore, StoredCubeView, execute_query
from repro.serving import server as server_module


def _request(port, path, body=None):
    """One HTTP round-trip; returns (status, decoded JSON body)."""
    url = f"http://127.0.0.1:{port}{path}"
    if body is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(body).encode(), method="POST"
        )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    rel = gen_binomial(300, 0.4, seed=9)
    run = SPCube(ClusterConfig(num_machines=4)).compute(rel)
    path = str(tmp_path_factory.mktemp("serve") / "cube.store")
    CubeStore.write(run.cube, path, aggregate="count")
    return path


@pytest.fixture
def view(store_path):
    with StoredCubeView.open(store_path) as v:
        yield v


@pytest.fixture
def server(view):
    with CubeServer(view, workers=2, queue_depth=4, port=0).start() as srv:
        yield srv


class TestWireProtocol:
    def test_healthz(self, server):
        assert _request(server.port, "/healthz") == (200, {"ok": True})

    def test_answers_match_execute_query(self, server, view):
        for spec in [
            {"op": "total"},
            {"op": "rollup", "dimensions": ["a1", "a3"]},
            {"op": "top", "dimensions": ["a1"], "k": 3},
            {"op": "pivot", "row": "a1", "column": "a2"},
            {"op": "cuboid_sizes"},
        ]:
            status, body = _request(server.port, "/query", spec)
            assert status == 200 and body["ok"]
            # JSON round-trips lists, so compare against the re-decoded
            # oracle rather than raw tuples.
            oracle = json.loads(json.dumps(execute_query(view, spec)))
            assert body["result"] == oracle

    def test_unknown_dimension_is_400_not_retriable(self, server):
        status, body = _request(
            server.port, "/query", {"op": "rollup", "dimensions": ["bogus"]}
        )
        assert status == 400
        assert body["retriable"] is False
        assert "unknown dimension" in body["error"]

    def test_unknown_op_is_400(self, server):
        status, body = _request(server.port, "/query", {"op": "dice"})
        assert status == 400
        assert "unknown op" in body["error"]

    def test_invalid_json_body_is_400(self, server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/query",
            data=b"not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=30)
        assert exc.value.code == 400

    def test_unknown_path_is_404(self, server):
        assert _request(server.port, "/nope")[0] == 404

    def test_stats_exposes_counters_and_config(self, server):
        _request(server.port, "/query", {"op": "total"})
        status, body = _request(server.port, "/stats")
        assert status == 200
        assert body["counters"]["serving.requests"] >= 1
        assert body["workers"] == 2
        assert body["queue_depth"] == 4
        assert body["store"]["groups"] > 0

    def test_dice_is_not_a_wire_op(self):
        assert "dice" not in server_module.WIRE_OPS


class TestAdmissionControl:
    def test_exhausted_slots_shed_with_503(self, server):
        # Drain every admission slot so the next request is refused
        # deterministically — no racing threads required.
        taken = 0
        while server._slots.acquire(blocking=False):
            taken += 1
        assert taken == server.workers + server.queue_depth
        try:
            status, body = _request(server.port, "/query", {"op": "total"})
        finally:
            for _ in range(taken):
                server._slots.release()
        assert status == 503
        assert body == {
            "ok": False,
            "error": "overloaded",
            "retriable": True,
        }
        assert server.counters.value("serving.shed") == 1
        # After slots return, service resumes.
        assert _request(server.port, "/query", {"op": "total"})[0] == 200

    def test_deadline_exceeded_is_504_retriable(
        self, view, monkeypatch
    ):
        import time

        finished = {"done": False}

        def slow_execute(view_, spec):
            time.sleep(0.5)
            finished["done"] = True
            return 0

        monkeypatch.setattr(server_module, "execute_query", slow_execute)
        with CubeServer(view, workers=1, deadline=0.05, port=0).start() as srv:
            status, body = _request(srv.port, "/query", {"op": "total"})
            assert status == 504
            assert body["error"] == "deadline-exceeded"
            assert body["retriable"] is True
            assert srv.counters.value("serving.deadline_exceeded") == 1
            # The slot is reclaimed when the worker finishes, not when
            # the deadline fires: wait out the sleeper, then reuse it.
            deadline = time.time() + 5
            while not finished["done"] and time.time() < deadline:
                time.sleep(0.02)
            assert finished["done"]

    def test_config_validation(self, view):
        with pytest.raises(ValueError, match="workers"):
            CubeServer(view, workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            CubeServer(view, queue_depth=-1)
        with pytest.raises(ValueError, match="deadline"):
            CubeServer(view, deadline=0)

    def test_close_before_serve_does_not_hang(self, view):
        # BaseServer.shutdown() deadlocks if serve_forever never ran;
        # close() must special-case the never-started server.
        server = CubeServer(view, port=0)
        server.close()


class TestServerOverRetailCube:
    def test_string_dimensions_roundtrip(self, retail_relation, tmp_path):
        cube = sequential_cube(retail_relation)
        path = str(tmp_path / "retail.store")
        CubeStore.write(cube, path, aggregate="count")
        with StoredCubeView.open(path) as view:
            with CubeServer(view, port=0).start() as srv:
                status, body = _request(
                    srv.port,
                    "/query",
                    {"op": "slice", "fixed": {"city": "Rome"}},
                )
                assert status == 200
                groups = dict(
                    (tuple(values), value)
                    for values, value in body["result"]
                )
                assert groups[("keyboard", 2009)] == 2
