"""StoredCubeView vs in-memory CubeView: bit-identity by construction.

The acceptance bar for the serving layer: every query type answered
from disk must equal the in-memory answer exactly — across all five
engines, for iceberg-pruned cubes, and through the ancestor
re-aggregation path of deliberately partial stores.
"""

import pytest

from repro import (
    ClusterConfig,
    CubeView,
    HiveCube,
    MRCube,
    NaiveCube,
    PipeSortMR,
    QueryError,
    SPCube,
    StoredCubeView,
)
from repro.aggregates import Average, Sum
from repro.datagen import gen_binomial

ENGINES = [NaiveCube, MRCube, HiveCube, PipeSortMR, SPCube]


@pytest.fixture(scope="module")
def relation():
    return gen_binomial(400, 0.4, seed=7)


def assert_identical(stored, memory, relation):
    """Every query type, disk vs memory, compared with ``==``."""
    dims = relation.schema.dimensions
    assert stored.total() == memory.total()
    assert stored.cuboid_sizes() == memory.cuboid_sizes()
    assert stored.rollup(dims[0]) == memory.rollup(dims[0])
    assert stored.rollup(dims[1], dims[3]) == memory.rollup(
        dims[1], dims[3]
    )
    # Out-of-schema-order rollup exercises the column permutation.
    assert stored.rollup(dims[2], dims[0]) == memory.rollup(
        dims[2], dims[0]
    )
    anchor = max(memory.rollup(dims[0]))[0]  # a real dimension value
    assert stored.slice(**{dims[0]: anchor}) == memory.slice(
        **{dims[0]: anchor}
    )
    assert stored.dice(**{dims[1]: lambda v: v % 2 == 0}) == memory.dice(
        **{dims[1]: lambda v: v % 2 == 0}
    )
    assert stored.drilldown(
        {dims[0]: anchor}, into=dims[2]
    ) == memory.drilldown({dims[0]: anchor}, into=dims[2])
    assert stored.top([dims[0], dims[1]], k=3) == memory.top(
        [dims[0], dims[1]], k=3
    )
    assert stored.pivot(dims[0], dims[3]) == memory.pivot(dims[0], dims[3])


class TestFiveEngineIdentity:
    @pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.__name__)
    def test_count_cube(self, engine, relation, tmp_path):
        run = engine(ClusterConfig(num_machines=4)).compute(relation)
        path = str(tmp_path / "cube.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate="count")
        memory = CubeView(run.cube)
        with StoredCubeView.open(path) as stored:
            assert_identical(stored, memory, relation)

    def test_sum_cube(self, relation, tmp_path):
        run = SPCube(ClusterConfig(num_machines=4), Sum()).compute(relation)
        path = str(tmp_path / "sum.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate=Sum())
        memory = CubeView(run.cube)
        with StoredCubeView.open(path) as stored:
            assert_identical(stored, memory, relation)


class TestIcebergIdentity:
    def test_iceberg_cube_served_exactly(self, relation, tmp_path):
        run = SPCube(
            ClusterConfig(num_machines=4), min_group_size=3
        ).compute(relation)
        path = str(tmp_path / "iceberg.store")
        from repro.serving import CubeStore

        CubeStore.write(
            run.cube, path, aggregate="count", min_group_size=3
        )
        memory = CubeView(run.cube)
        with StoredCubeView.open(path) as stored:
            assert stored.store.min_group_size == 3
            assert_identical(stored, memory, relation)

    def test_iceberg_store_materializes_every_cuboid(
        self, relation, tmp_path
    ):
        # Re-aggregating a pruned ancestor would undercount, so an
        # iceberg store must carry every cuboid (possibly empty) and
        # never take the re-aggregation path.
        run = SPCube(
            ClusterConfig(num_machines=4), min_group_size=5
        ).compute(relation)
        path = str(tmp_path / "iceberg.store")
        from repro.serving import CubeStore

        CubeStore.write(
            run.cube, path, aggregate="count", min_group_size=5
        )
        with StoredCubeView.open(path) as stored:
            assert len(stored.store.masks) == 16  # full 4-dim lattice
            stored.rollup("a1", "a2", "a3")
            assert stored.stats()["serving.reaggregations"] == 0


class TestAncestorReaggregation:
    def test_partial_store_answers_from_full_cuboid(
        self, relation, tmp_path
    ):
        run = SPCube(ClusterConfig(num_machines=4)).compute(relation)
        full = (1 << 4) - 1
        path = str(tmp_path / "partial.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate="count", cuboids=[full])
        memory = CubeView(run.cube)
        with StoredCubeView.open(path) as stored:
            assert_identical(stored, memory, relation)
            assert stored.stats()["serving.reaggregations"] > 0

    def test_smallest_covering_ancestor_chosen(self, relation, tmp_path):
        # With both a1a2a3 and the full cuboid on disk, a rollup on a1
        # must plan from the (smaller) three-dimensional ancestor.
        run = SPCube(ClusterConfig(num_machines=4)).compute(relation)
        path = str(tmp_path / "two.store")
        from repro.serving import CubeStore

        CubeStore.write(
            run.cube, path, aggregate="count", cuboids=[0b0111, 0b1111]
        )
        with StoredCubeView.open(path) as stored:
            adapter = stored.cube
            assert adapter._covering_ancestor(0b0001) == 0b0111
            assert stored.rollup("a1") == CubeView(run.cube).rollup("a1")

    def test_no_covering_ancestor_is_query_error(
        self, relation, tmp_path
    ):
        run = SPCube(ClusterConfig(num_machines=4)).compute(relation)
        path = str(tmp_path / "thin.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate="count", cuboids=[0b0001])
        with StoredCubeView.open(path) as stored:
            with pytest.raises(QueryError, match="covers mask 0x2"):
                stored.rollup("a2")

    def test_algebraic_aggregate_refuses_reaggregation(
        self, relation, tmp_path
    ):
        # avg's finalized values are not mergeable state: a partial
        # store must error rather than serve a wrong mean.
        run = SPCube(
            ClusterConfig(num_machines=4), Average(), allow_holistic=True
        ).compute(relation)
        full = (1 << 4) - 1
        path = str(tmp_path / "avg.store")
        from repro.serving import CubeStore

        CubeStore.write(
            run.cube, path, aggregate=Average(), cuboids=[full]
        )
        with StoredCubeView.open(path) as stored:
            assert stored.rollup("a1", "a2", "a3", "a4") == CubeView(
                run.cube
            ).rollup("a1", "a2", "a3", "a4")
            with pytest.raises(QueryError, match="cannot be re-aggregated"):
                stored.rollup("a1")


class TestResultCache:
    @pytest.fixture
    def stored(self, relation, tmp_path):
        run = SPCube(ClusterConfig(num_machines=4)).compute(relation)
        path = str(tmp_path / "cache.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate="count")
        with StoredCubeView.open(path) as view:
            yield view

    def test_repeat_query_hits(self, stored):
        first = stored.rollup("a1")
        assert stored.stats()["serving.cache_hit"] == 0
        assert stored.rollup("a1") == first
        assert stored.stats()["serving.cache_hit"] == 1

    def test_distinct_keys_do_not_collide(self, stored):
        assert stored.rollup("a1", "a2") != stored.rollup("a2", "a1")
        assert stored.stats()["serving.cache_hit"] == 0

    def test_caller_mutation_cannot_poison(self, stored):
        first = stored.rollup("a1")
        first.clear()
        assert stored.rollup("a1") != {}

    def test_pivot_rows_are_copies(self, stored):
        stored.pivot("a1", "a2")
        poisoned = stored.pivot("a1", "a2")
        for row in poisoned.values():
            row.clear()
        assert any(stored.pivot("a1", "a2").values())

    def test_lru_eviction(self, relation, tmp_path):
        run = SPCube(ClusterConfig(num_machines=4)).compute(relation)
        path = str(tmp_path / "tiny.store")
        from repro.serving import CubeStore

        CubeStore.write(run.cube, path, aggregate="count")
        with StoredCubeView.open(path, result_cache_size=2) as view:
            view.rollup("a1")
            view.rollup("a2")
            view.rollup("a3")  # evicts the a1 entry
            view.rollup("a1")
            assert view.stats()["serving.cache_hit"] == 0
            assert view.stats()["serving.cache_miss"] == 4

    def test_custom_top_key_is_uncached(self, stored):
        # The ranking itself is never cached (the key is a callable),
        # but the rollup underneath still is: one miss, then hits.
        stored.top(["a1"], k=2, key=lambda v: -v)
        stored.top(["a1"], k=2, key=lambda v: -v)
        assert stored.stats()["serving.cache_miss"] == 1
        assert stored.stats()["serving.cache_hit"] == 1

    def test_dice_is_uncached(self, stored):
        stored.dice(a1=lambda v: True)
        stored.dice(a1=lambda v: True)
        assert stored.stats()["serving.cache_miss"] == 0
