"""Baseline algorithms: correctness and algorithm-specific behaviours."""

import pytest

from repro.aggregates import Average, Count, Sum, TopKFrequent
from repro.baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from repro.baselines.hive import DUPLICATE_ROW_DOMINANCE
from repro.cubing import sequential_cube
from repro.mapreduce import ClusterConfig

from ..conftest import make_random_relation


@pytest.fixture
def cluster():
    return ClusterConfig(num_machines=5)


@pytest.fixture
def skewed_relation():
    return make_random_relation(
        1200, num_dimensions=3, cardinality=40, seed=21, skew_fraction=0.3
    )


ALGORITHMS = [NaiveCube, MRCube, HiveCube, PipeSortMR]


class TestCorrectness:
    @pytest.mark.parametrize("algo_cls", ALGORITHMS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize(
        "fn", [Count(), Sum(), Average()], ids=lambda f: f.name
    )
    def test_matches_oracle(self, cluster, skewed_relation, algo_cls, fn):
        run = algo_cls(cluster, fn).compute(skewed_relation)
        assert run.cube == sequential_cube(skewed_relation, fn)

    @pytest.mark.parametrize("algo_cls", ALGORITHMS, ids=lambda c: c.__name__)
    def test_uniform_data(self, cluster, algo_cls):
        rel = make_random_relation(500, cardinality=300, seed=22)
        run = algo_cls(cluster).compute(rel)
        assert run.cube == sequential_cube(rel)

    def test_naive_supports_holistic(self, cluster):
        rel = make_random_relation(300, seed=23)
        fn = TopKFrequent(2)
        run = NaiveCube(cluster, fn).compute(rel)
        assert run.cube == sequential_cube(rel, fn)


class TestNaive:
    def test_emits_2d_pairs_per_row(self, cluster):
        rel = make_random_relation(100, num_dimensions=3, seed=24)
        run = NaiveCube(cluster).compute(rel)
        assert run.metrics.intermediate_records == 100 * 8

    def test_combiner_shrinks_traffic_on_skew(self, cluster):
        rel = make_random_relation(500, seed=25, skew_fraction=0.6)
        plain = NaiveCube(cluster).compute(rel)
        combined = NaiveCube(cluster, use_combiner=True).compute(rel)
        assert (
            combined.metrics.intermediate_records
            < plain.metrics.intermediate_records
        )
        assert combined.cube == plain.cube

    def test_single_round(self, cluster, skewed_relation):
        run = NaiveCube(cluster).compute(skewed_relation)
        assert len(run.metrics.jobs) == 1


class TestMRCube:
    def test_three_rounds_with_skew(self, cluster, skewed_relation):
        run = MRCube(cluster).compute(skewed_relation)
        names = [job.name for job in run.metrics.jobs]
        assert names[0] == "mrcube-sample"
        assert names[1] == "mrcube-materialize"
        # The planted skew makes at least the apex cuboid unfriendly.
        assert run.metrics.extras["unfriendly_cuboids"] >= 1
        assert names[-1] == "mrcube-postagg"

    def test_cuboid_granularity_decision(self, cluster):
        """A single giant group marks its whole cuboid unfriendly —
        exactly the weakness the paper contrasts SP-Cube against."""
        rel = make_random_relation(
            1200, cardinality=40, seed=26, skew_fraction=0.6
        )
        run = MRCube(cluster).compute(rel)
        assert run.metrics.extras["unfriendly_cuboids"] >= 1
        assert run.cube == sequential_cube(rel)

    def test_two_rounds_without_skew(self):
        # Large memory: nothing is unfriendly, round 3 is skipped.
        cluster = ClusterConfig(num_machines=5, memory_records=10_000)
        rel = make_random_relation(400, cardinality=500, seed=27)
        run = MRCube(cluster).compute(rel)
        assert [job.name for job in run.metrics.jobs] == [
            "mrcube-sample",
            "mrcube-materialize",
        ]


class TestHive:
    def test_single_round(self, cluster, skewed_relation):
        run = HiveCube(cluster).compute(skewed_relation)
        assert len(run.metrics.jobs) == 1

    def test_map_aggregation_disabled_on_distinct_data(self, cluster):
        """High-cardinality data defeats the min-reduction probe, so the
        map output approaches raw n * 2^d records."""
        rel = make_random_relation(1000, cardinality=10_000, seed=28)
        run = HiveCube(cluster).compute(rel)
        assert run.metrics.intermediate_records > 0.8 * 1000 * 8

    def test_map_aggregation_compresses_low_cardinality(self, cluster):
        rel = make_random_relation(1000, cardinality=2, seed=29)
        run = HiveCube(cluster).compute(rel)
        assert run.metrics.intermediate_records < 0.5 * 1000 * 8

    def test_map_aggregation_can_be_forced_off(self, cluster):
        rel = make_random_relation(500, cardinality=2, seed=30)
        run = HiveCube(cluster, map_side_aggregation=False).compute(rel)
        assert run.metrics.intermediate_records == 500 * 8

    def test_stuck_on_dominant_duplicate_rows(self):
        """The calibrated failure model: identical full-width rows holding
        more than a third of the input mark the run stuck."""
        cluster = ClusterConfig(num_machines=5, memory_records=30)
        rel = make_random_relation(
            1000, cardinality=10_000, seed=31, skew_fraction=0.6
        )
        run = HiveCube(cluster).compute(rel)
        assert run.metrics.failed
        # The cube itself is still produced (the flag models wall-clock
        # death, not wrong answers).
        assert run.cube == sequential_cube(rel)

    def test_not_stuck_below_dominance(self):
        cluster = ClusterConfig(num_machines=5, memory_records=30)
        rel = make_random_relation(
            1000, cardinality=10_000, seed=32,
            skew_fraction=DUPLICATE_ROW_DOMINANCE - 0.15,
        )
        run = HiveCube(cluster).compute(rel)
        assert not run.metrics.failed


class TestPipeSortMR:
    def test_d_plus_one_rounds(self, cluster, skewed_relation):
        run = PipeSortMR(cluster).compute(skewed_relation)
        assert run.metrics.extras["rounds"] == 3 + 1

    def test_round_names_descend_levels(self, cluster, skewed_relation):
        run = PipeSortMR(cluster).compute(skewed_relation)
        names = [job.name for job in run.metrics.jobs]
        assert names == [f"pipesort-level-{i}" for i in (3, 2, 1, 0)]

    def test_slower_than_single_round_baselines(self, cluster, skewed_relation):
        """Round startup makes the multi-round top-down approach pay a
        fixed penalty — the reason the paper excludes it (Section 7)."""
        pipesort = PipeSortMR(cluster).compute(skewed_relation)
        hive = HiveCube(cluster).compute(skewed_relation)
        startup = cluster.cost_model.round_startup_seconds
        assert pipesort.metrics.total_seconds >= 4 * 2 * startup
        assert (
            len(pipesort.metrics.jobs) > len(hive.metrics.jobs)
        )
