"""Shared fixtures: the paper's running example and small clusters."""

import random

import pytest

from repro.aggregates import Count
from repro.mapreduce import ClusterConfig
from repro.relation import Relation, Schema


@pytest.fixture
def retail_schema():
    """The running example's schema: R(name, city, year, sales)."""
    return Schema(["name", "city", "year"], measure="sales")


@pytest.fixture
def retail_relation(retail_schema):
    """A small instance of the paper's products/cities/years relation."""
    rows = [
        ("laptop", "Rome", 2012, 2000),
        ("laptop", "Rome", 2015, 1500),
        ("laptop", "Paris", 2012, 900),
        ("printer", "Rome", 2012, 40),
        ("printer", "Paris", 2010, 55),
        ("keyboard", "Paris", 2010, 300),
        ("keyboard", "Rome", 2009, 120),
        ("keyboard", "Rome", 2009, 80),
        ("television", "Berlin", 2012, 610),
        ("television", "Rome", 2012, 400),
    ]
    return Relation(retail_schema, rows, name="retail")


@pytest.fixture
def small_cluster():
    """A 4-machine cluster for fast engine tests."""
    return ClusterConfig(num_machines=4)


@pytest.fixture
def count():
    return Count()


def make_random_relation(
    num_rows,
    num_dimensions=3,
    cardinality=5,
    seed=0,
    skew_fraction=0.0,
):
    """Random test relation, optionally with an identical-row skew block."""
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        if rng.random() < skew_fraction:
            dims = (1,) * num_dimensions
        else:
            dims = tuple(
                rng.randint(0, cardinality - 1)
                for _ in range(num_dimensions)
            )
        rows.append(dims + (rng.randint(1, 10),))
    schema = Schema([f"a{i}" for i in range(num_dimensions)], "m")
    return Relation(schema, rows, validate=False, name=f"rand{seed}")
