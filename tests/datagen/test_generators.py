"""Workload generators: published statistics and determinism."""

import pytest

from repro.datagen import (
    NUM_SKEW_VALUES,
    USAGOV_CUBE_DIMENSIONS,
    ZipfSampler,
    adversarial_relation,
    gen_binomial,
    gen_zipf,
    project_to_dimensions,
    usagov_clicks,
    wikipedia_traffic,
)
from repro.relation import full_mask

import random


class TestGenBinomial:
    def test_size_and_schema(self):
        rel = gen_binomial(500, 0.3, num_dimensions=4, seed=1)
        assert len(rel) == 500
        assert rel.schema.num_dimensions == 4

    def test_deterministic_per_seed(self):
        assert gen_binomial(100, 0.5, seed=7).rows == gen_binomial(
            100, 0.5, seed=7
        ).rows

    def test_different_seeds_differ(self):
        assert gen_binomial(100, 0.5, seed=1).rows != gen_binomial(
            100, 0.5, seed=2
        ).rows

    def test_skew_tuples_have_identical_attributes(self):
        rel = gen_binomial(2000, 1.0, seed=3)
        for row in rel:
            dims = row[:-1]
            assert len(set(dims)) == 1
            assert 1 <= dims[0] <= NUM_SKEW_VALUES

    def test_zero_probability_uniform(self):
        rel = gen_binomial(500, 0.0, seed=4)
        # Uniform 32-bit draws essentially never produce identical rows.
        sizes = rel.group_sizes(full_mask(4))
        assert max(sizes.values()) == 1

    def test_skew_fraction_approximately_p(self):
        rel = gen_binomial(5000, 0.4, seed=5)
        skew_rows = sum(1 for row in rel if len(set(row[:-1])) == 1)
        assert 0.35 < skew_rows / 5000 < 0.45

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            gen_binomial(10, 1.5)


class TestGenZipf:
    def test_paper_defaults(self):
        rel = gen_zipf(300, seed=1)
        assert rel.schema.dimensions == ("z1", "z2", "u1", "u2")

    def test_values_in_range(self):
        rel = gen_zipf(500, num_values=100, seed=2)
        for row in rel:
            assert all(1 <= v <= 100 for v in row[:-1])

    def test_zipf_dimension_is_skewed_uniform_is_not(self):
        rel = gen_zipf(5000, seed=3)
        zipf_sizes = rel.group_sizes(0b0001)
        uniform_sizes = rel.group_sizes(0b0100)
        assert max(zipf_sizes.values()) > 3 * max(uniform_sizes.values())

    def test_deterministic(self):
        assert gen_zipf(200, seed=9).rows == gen_zipf(200, seed=9).rows

    def test_dimension_counts_configurable(self):
        rel = gen_zipf(
            50, num_zipf_dimensions=1, num_uniform_dimensions=3, seed=4
        )
        assert rel.schema.dimensions == ("z1", "u1", "u2", "u3")

    def test_no_dimensions_rejected(self):
        with pytest.raises(ValueError):
            gen_zipf(10, num_zipf_dimensions=0, num_uniform_dimensions=0)


class TestZipfSampler:
    def test_rank_one_most_frequent(self):
        rng = random.Random(0)
        sampler = ZipfSampler(100, 1.1, rng)
        counts = {}
        for _ in range(5000):
            r = sampler.sample()
            counts[r] = counts.get(r, 0) + 1
        assert max(counts, key=counts.get) == 1

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 1.1, random.Random(0))
        assert sum(sampler.probabilities()) == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        probs = ZipfSampler(20, 1.5, random.Random(0)).probabilities()
        assert probs == sorted(probs, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.1, random.Random(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, 0.0, random.Random(0))


class TestWeblogs:
    def test_wikipedia_shape(self):
        rel = wikipedia_traffic(400, seed=1)
        assert len(rel) == 400
        assert rel.schema.dimensions == ("project", "page", "hour", "agent")

    def test_wikipedia_skew_profile(self):
        """Heavy c-groups of 5-30%ish frequency exist; pages are sparse."""
        rel = wikipedia_traffic(5000, seed=2)
        project_sizes = rel.group_sizes(0b0001)
        top = max(project_sizes.values()) / len(rel)
        assert 0.2 < top < 0.45  # "en" dominates but is capped
        page_sizes = rel.group_sizes(0b0010)
        assert len(page_sizes) > 500  # heavy-tail page universe

    def test_usagov_fifteen_dimensions(self):
        rel = usagov_clicks(200, seed=1)
        assert rel.schema.num_dimensions == 15

    def test_usagov_cube_projection(self):
        rel = usagov_clicks(300, seed=2)
        projected = project_to_dimensions(rel, USAGOV_CUBE_DIMENSIONS)
        assert projected.schema.dimensions == USAGOV_CUBE_DIMENSIONS
        assert len(projected) == 300
        index = rel.schema.dimension_index("country")
        assert projected[0][0] == rel[0][index]

    def test_project_to_arbitrary_dimensions(self):
        rel = usagov_clicks(100, seed=3)
        projected = project_to_dimensions(rel, ["os", "hour"])
        assert projected.schema.dimensions == ("os", "hour")

    def test_generators_deterministic(self):
        assert wikipedia_traffic(100, seed=5).rows == wikipedia_traffic(
            100, seed=5
        ).rows
        assert usagov_clicks(100, seed=5).rows == usagov_clicks(
            100, seed=5
        ).rows


class TestAdversarial:
    def test_binary_attributes(self):
        rel = adversarial_relation(4, 200, seed=1)
        assert len(rel) == 200
        for row in rel:
            assert set(row[:-1]) <= {0, 1}

    def test_memory_places_boundary_at_half_level(self):
        """Level <= d/2 groups exceed m; level d/2 + 1 groups do not."""
        from repro.datagen import adversarial_memory

        d, n = 4, 4000
        rel = adversarial_relation(d, n, seed=2)
        m = adversarial_memory(d, n)
        # Level d/2 = 2: expected group size n/4 > m.
        assert all(size > m for size in rel.group_sizes(0b0011).values())
        # Level d/2 + 1 = 3: expected n/8 < m.
        assert all(size <= m for size in rel.group_sizes(0b0111).values())

    def test_expected_emissions_formula(self):
        from repro.datagen import expected_emissions_per_tuple

        assert expected_emissions_per_tuple(4) == 4  # C(4, 3)
        assert expected_emissions_per_tuple(6) == 15  # C(6, 4)

    def test_deterministic(self):
        assert adversarial_relation(4, 50, seed=3).rows == adversarial_relation(
            4, 50, seed=3
        ).rows

    def test_odd_d_rejected(self):
        with pytest.raises(ValueError):
            adversarial_relation(3, 5)

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            adversarial_relation(4, 0)
