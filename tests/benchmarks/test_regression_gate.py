"""The bench regression gate: tolerance bands, pass/fail wiring, CLI."""

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

_GATE_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "regression_gate.py"
)
# benchmarks/ is not a package (pytest collects it separately with its own
# deps); load the gate straight from its file so the tier-1 suite covers it.
# The module must be in sys.modules before exec: dataclass field resolution
# looks its defining module up there.
_spec = importlib.util.spec_from_file_location("regression_gate", _GATE_PATH)
gate_mod = importlib.util.module_from_spec(_spec)
sys.modules["regression_gate"] = gate_mod
_spec.loader.exec_module(gate_mod)


def perf_report(**overrides):
    report = {
        "workload": {"dataset": "gen_binomial", "rows": 1000, "skew": 0.4,
                     "seed": 1},
        "parallelism": 4,
        "serial_wall_seconds": 10.0,
        "cubes_identical": True,
        "output_groups": 5000,
        "hot_path": {"stable_hash_speedup": 2.0, "routing_speedup": 1.8},
    }
    report.update(overrides)
    return report


def recovery_report(points=None, rows=1000, base_seed=7):
    if points is None:
        points = [
            {"engine": "SP-Cube", "pressure": 0.0, "slowdown": 1.0,
             "failed": False},
            {"engine": "SP-Cube", "pressure": 0.1, "slowdown": 1.5,
             "failed": False},
        ]
    return {"rows": rows, "base_seed": base_seed, "points": points}


def with_slowdown(report, pressure, slowdown, failed=False):
    fresh = copy.deepcopy(report)
    for point in fresh["points"]:
        if point["pressure"] == pressure:
            point["slowdown"] = slowdown
            point["failed"] = failed
    return fresh


class TestPerfGate:
    def test_identical_artifacts_pass(self):
        assert gate_mod.compare_perf(perf_report(), perf_report()) == []

    def test_cube_divergence_fails(self):
        fresh = perf_report(cubes_identical=False)
        violations = gate_mod.compare_perf(perf_report(), fresh)
        assert any("no longer identical" in v for v in violations)

    def test_hot_path_collapse_fails(self):
        fresh = perf_report(
            hot_path={"stable_hash_speedup": 0.5, "routing_speedup": 1.8}
        )
        violations = gate_mod.compare_perf(perf_report(), fresh)
        assert any("stable_hash_speedup" in v for v in violations)

    def test_hot_path_within_band_passes(self):
        # 2.0 -> 1.2 is a 40% drop, inside the default 50% band.
        fresh = perf_report(
            hot_path={"stable_hash_speedup": 1.2, "routing_speedup": 1.8}
        )
        assert gate_mod.compare_perf(perf_report(), fresh) == []

    def test_wall_clock_checked_only_on_same_workload(self):
        slow = perf_report(serial_wall_seconds=100.0)
        violations = gate_mod.compare_perf(perf_report(), slow)
        assert any("wall clock" in v for v in violations)
        # Different row count: seconds are not comparable, no violation.
        different = perf_report(
            serial_wall_seconds=100.0,
            workload={"dataset": "gen_binomial", "rows": 60_000,
                      "skew": 0.4, "seed": 1},
        )
        assert gate_mod.compare_perf(perf_report(), different) == []

    def test_output_groups_drift_fails(self):
        fresh = perf_report(output_groups=4999)
        violations = gate_mod.compare_perf(perf_report(), fresh)
        assert any("output groups" in v for v in violations)

    def test_speedup_collapse_fails_on_multicore_artifacts(self):
        baseline = perf_report(speedup=3.0, cpu_count=8)
        fresh = perf_report(speedup=0.9, cpu_count=8)
        violations = gate_mod.compare_perf(baseline, fresh)
        assert any("parallel speedup" in v for v in violations)

    def test_speedup_within_band_passes_on_multicore_artifacts(self):
        # 3.0 -> 1.8 is a 40% drop, inside the default 50% band.
        baseline = perf_report(speedup=3.0, cpu_count=8)
        fresh = perf_report(speedup=1.8, cpu_count=8)
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_speedup_informational_on_single_core(self):
        # A one-core container cannot beat the serial executor; the
        # collapse must be reported as a note, never as a violation.
        baseline = perf_report(speedup=3.0, cpu_count=8)
        fresh = perf_report(speedup=0.4, cpu_count=1)
        notes = []
        violations = gate_mod.compare_perf(baseline, fresh, notes=notes)
        assert violations == []
        assert any("informational" in note for note in notes)

    def test_speedup_informational_on_single_core_baseline(self):
        # The committed single-core baseline must not mask (or flag)
        # executor changes measured on multi-core runners.
        baseline = perf_report(speedup=0.75, cpu_count=1)
        fresh = perf_report(speedup=0.5, cpu_count=8)
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert notes

    def test_speedup_skipped_without_cpu_count(self):
        # Artifacts written before cpu_count existed are treated as
        # single-core: informational, never gated.
        baseline = perf_report(speedup=3.0)
        fresh = perf_report(speedup=0.4)
        assert gate_mod.compare_perf(baseline, fresh) == []


class TestTelemetryBand:
    def test_planted_overhead_blowup_fails(self):
        """The acceptance case: a planted overhead blowup trips the band."""
        baseline = perf_report(telemetry={"overhead_ratio": 1.02})
        # Ceiling for 1.02x baseline: 1.02 * 1.15 + 0.05 = 1.223x.
        fresh = perf_report(telemetry={"overhead_ratio": 1.5})
        violations = gate_mod.compare_perf(baseline, fresh)
        assert len(violations) == 1
        assert "telemetry overhead" in violations[0]
        assert "1.500x" in violations[0]

    def test_ratio_within_band_passes(self):
        baseline = perf_report(telemetry={"overhead_ratio": 1.02})
        fresh = perf_report(telemetry={"overhead_ratio": 1.15})
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_old_baseline_without_telemetry_is_informational(self):
        # Baselines written before the telemetry twin lack the key; the
        # fresh ratio must print as a note, never fail the gate.
        baseline = perf_report()
        fresh = perf_report(telemetry={"overhead_ratio": 2.0})
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert any("telemetry" in note and "informational" in note
                   for note in notes)

    def test_fresh_without_telemetry_is_skipped(self):
        baseline = perf_report(telemetry={"overhead_ratio": 1.02})
        fresh = perf_report()
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert notes == []


class TestLineageBand:
    """The flight-recorder twin gets the telemetry band, applied to its
    own (much higher by design) committed ratio."""

    def test_planted_overhead_blowup_fails(self):
        baseline = perf_report(lineage={"overhead_ratio": 1.36})
        # Ceiling for 1.36x baseline: 1.36 * 1.15 + 0.05 = 1.614x.
        fresh = perf_report(lineage={"overhead_ratio": 1.8})
        violations = gate_mod.compare_perf(baseline, fresh)
        assert len(violations) == 1
        assert "lineage overhead" in violations[0]
        assert "1.800x" in violations[0]

    def test_ratio_within_band_passes(self):
        baseline = perf_report(lineage={"overhead_ratio": 1.36})
        fresh = perf_report(lineage={"overhead_ratio": 1.55})
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_old_baseline_without_lineage_is_informational(self):
        baseline = perf_report(telemetry={"overhead_ratio": 1.02})
        fresh = perf_report(
            telemetry={"overhead_ratio": 1.02},
            lineage={"overhead_ratio": 1.4},
        )
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert any("lineage" in note and "informational" in note
                   for note in notes)

    def test_both_twins_can_fail_together(self):
        baseline = perf_report(
            telemetry={"overhead_ratio": 1.02},
            lineage={"overhead_ratio": 1.36},
        )
        fresh = perf_report(
            telemetry={"overhead_ratio": 1.5},
            lineage={"overhead_ratio": 2.0},
        )
        violations = gate_mod.compare_perf(baseline, fresh)
        assert len(violations) == 2
        assert any("telemetry overhead" in v for v in violations)
        assert any("lineage overhead" in v for v in violations)

    def test_custom_tolerances(self):
        baseline = perf_report(telemetry={"overhead_ratio": 1.0})
        fresh = perf_report(telemetry={"overhead_ratio": 1.1})
        tight = gate_mod.Tolerances(telemetry=0.01, telemetry_slack=0.0)
        assert gate_mod.compare_perf(baseline, fresh, tight) != []
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_cli_telemetry_tolerance_flag(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(
            perf_report(telemetry={"overhead_ratio": 1.0})
        ))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(
            perf_report(telemetry={"overhead_ratio": 1.1})
        ))
        relaxed = gate_mod.main(
            ["--perf-baseline", str(base), "--perf-fresh", str(fresh)]
        )
        assert relaxed == 0
        tight = gate_mod.main(
            ["--perf-baseline", str(base), "--perf-fresh", str(fresh),
             "--telemetry-tolerance", "0.01", "--telemetry-slack", "0.0"]
        )
        assert tight == 1
        assert "telemetry overhead" in capsys.readouterr().out


def serving_section(**overrides):
    section = {
        "workload": {"rows": 20_000, "requests": 400, "clients": 4,
                     "seed": 600, "skew": 0.4},
        "server": {"workers": 4, "queue_depth": 16, "deadline": 10.0},
        "throughput_qps": 150.0,
        "p50_latency_ms": 15.0,
        "p99_latency_ms": 250.0,
        "answered": 400,
        "shed": 0,
        "deadline_exceeded": 0,
        "errors": 0,
        "cache_hit_rate": 0.88,
    }
    section.update(overrides)
    return section


class TestServingBand:
    def test_identical_serving_sections_pass(self):
        baseline = perf_report(serving=serving_section())
        fresh = perf_report(serving=serving_section())
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_fresh_errors_fail_unconditionally(self):
        # Even with a mismatched setup (bands skipped), failed requests
        # are a correctness signal and must trip the gate.
        baseline = perf_report(serving=serving_section())
        fresh = perf_report(serving=serving_section(
            errors=3,
            workload={"rows": 99, "requests": 1, "clients": 1,
                      "seed": 1, "skew": 0.0},
        ))
        violations = gate_mod.compare_perf(baseline, fresh)
        assert len(violations) == 1
        assert "3 request(s) failed" in violations[0]

    def test_new_shedding_fails(self):
        baseline = perf_report(serving=serving_section())
        fresh = perf_report(serving=serving_section(shed=7))
        violations = gate_mod.compare_perf(baseline, fresh)
        assert any("7 request(s) shed" in v for v in violations)

    def test_planted_p99_blowup_fails(self):
        """The acceptance case: a planted latency blowup trips the band."""
        baseline = perf_report(serving=serving_section())
        # Ceiling for 250 ms baseline: 250 * 1.15 + 150 = 437.5 ms.
        fresh = perf_report(serving=serving_section(p99_latency_ms=500.0))
        violations = gate_mod.compare_perf(baseline, fresh)
        assert len(violations) == 1
        assert "p99 latency 500.0 ms" in violations[0]

    def test_p99_within_band_passes(self):
        baseline = perf_report(serving=serving_section())
        fresh = perf_report(serving=serving_section(p99_latency_ms=430.0))
        assert gate_mod.compare_perf(baseline, fresh) == []

    def test_throughput_collapse_fails(self):
        baseline = perf_report(serving=serving_section())
        # Floor for 150 qps baseline: 150 * 0.85 = 127.5 qps.
        fresh = perf_report(serving=serving_section(throughput_qps=100.0))
        violations = gate_mod.compare_perf(baseline, fresh)
        assert any("throughput fell" in v for v in violations)

    def test_cache_hit_rate_collapse_fails(self):
        baseline = perf_report(serving=serving_section())
        # Floor for 0.88 baseline: 0.88 - 0.15 = 0.73.
        fresh = perf_report(serving=serving_section(cache_hit_rate=0.5))
        violations = gate_mod.compare_perf(baseline, fresh)
        assert any("cache hit rate fell" in v for v in violations)

    def test_old_baseline_without_serving_is_informational(self):
        baseline = perf_report()
        fresh = perf_report(serving=serving_section())
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert any("serving bench" in note and "informational" in note
                   for note in notes)

    def test_mismatched_setup_skips_load_bands(self):
        # A different offered load makes shed/latency/qps incomparable:
        # note them, gate nothing (errors excepted, tested above).
        baseline = perf_report(serving=serving_section())
        fresh = perf_report(serving=serving_section(
            p99_latency_ms=9000.0,
            throughput_qps=1.0,
            shed=50,
            server={"workers": 1, "queue_depth": 0, "deadline": 1.0},
        ))
        notes = []
        assert gate_mod.compare_perf(baseline, fresh, notes=notes) == []
        assert any("skipped" in note for note in notes)

    def test_cli_serving_tolerance_flags(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(perf_report(serving=serving_section())))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(
            perf_report(serving=serving_section(p99_latency_ms=300.0))
        ))
        relaxed = gate_mod.main(
            ["--perf-baseline", str(base), "--perf-fresh", str(fresh)]
        )
        assert relaxed == 0
        tight = gate_mod.main(
            ["--perf-baseline", str(base), "--perf-fresh", str(fresh),
             "--serving-tolerance", "0.01", "--serving-slack-ms", "0.0"]
        )
        assert tight == 1
        assert "p99 latency" in capsys.readouterr().out


class TestRecoveryGate:
    def test_identical_artifacts_pass(self):
        assert (
            gate_mod.compare_recovery(recovery_report(), recovery_report())
            == []
        )

    def test_synthetic_slowdown_beyond_tolerance_fails(self):
        """The acceptance case: a planted >tolerance slowdown trips it."""
        baseline = recovery_report()
        # Ceiling for 1.5x baseline: 1.5 * 1.5 + 0.5 = 2.75x.
        fresh = with_slowdown(baseline, pressure=0.1, slowdown=3.5)
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert len(violations) == 1
        assert "slowdown" in violations[0]
        assert "3.50x" in violations[0]

    def test_slowdown_within_tolerance_passes(self):
        baseline = recovery_report()
        fresh = with_slowdown(baseline, pressure=0.1, slowdown=2.5)
        assert gate_mod.compare_recovery(baseline, fresh) == []

    def test_new_failure_fails(self):
        baseline = recovery_report()
        fresh = with_slowdown(
            baseline, pressure=0.1, slowdown=1.0, failed=True
        )
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert any("now fails" in v for v in violations)

    def test_missing_point_fails(self):
        baseline = recovery_report()
        fresh = recovery_report(points=baseline["points"][:1])
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert any("disappeared" in v for v in violations)

    def test_different_workload_skips_slowdown_bands(self):
        baseline = recovery_report()
        fresh = with_slowdown(
            recovery_report(rows=4000), pressure=0.1, slowdown=9.0
        )
        assert gate_mod.compare_recovery(baseline, fresh) == []

    def test_custom_tolerances(self):
        baseline = recovery_report()
        fresh = with_slowdown(baseline, pressure=0.1, slowdown=2.5)
        tight = gate_mod.Tolerances(slowdown=0.1, slowdown_slack=0.0)
        assert gate_mod.compare_recovery(baseline, fresh, tight) != []


def node_point(**overrides):
    point = {
        "engine": "SP-Cube", "node_pressure": 0.5, "checkpointed": True,
        "total_seconds": 200.0, "nodes_lost": 2, "resumed_rounds": 2,
        "recovery_overhead_seconds": 150.0, "completed": True,
        "failed": False,
    }
    point.update(overrides)
    return point


class TestNodePointsGate:
    def _report(self, node_points, rows=1000):
        report = recovery_report(rows=rows)
        report["node_points"] = node_points
        return report

    def test_identical_node_points_pass(self):
        report = self._report([node_point()])
        assert gate_mod.compare_recovery(report, report) == []

    def test_old_baseline_without_node_points_is_tolerated(self):
        # Baselines written before the node sweep lack the key entirely;
        # the fresh artifact carrying it must not trip the gate (and the
        # reverse pairing must not either).
        old = recovery_report()
        new = self._report([node_point()])
        assert gate_mod.compare_recovery(old, new) == []
        assert gate_mod.compare_recovery(new, old) == []

    def test_completed_point_now_aborting_fails(self):
        baseline = self._report([node_point()])
        fresh = self._report([node_point(completed=False)])
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert any("now aborts" in v for v in violations)

    def test_loss_counter_drift_fails_on_same_workload(self):
        baseline = self._report([node_point()])
        fresh = self._report([node_point(nodes_lost=3)])
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert any("nodes_lost changed 2 -> 3" in v for v in violations)

    def test_counters_skipped_across_workloads(self):
        baseline = self._report([node_point()])
        fresh = self._report(
            [node_point(nodes_lost=3, resumed_rounds=0)], rows=4000
        )
        assert gate_mod.compare_recovery(baseline, fresh) == []

    def test_missing_node_point_fails(self):
        baseline = self._report(
            [node_point(), node_point(checkpointed=False, completed=False)]
        )
        fresh = self._report([node_point()])
        violations = gate_mod.compare_recovery(baseline, fresh)
        assert any("disappeared" in v and "abort" in v for v in violations)


class TestGateCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", recovery_report())
        fresh = self._write(tmp_path, "fresh.json", recovery_report())
        code = gate_mod.main(
            ["--recovery-baseline", base, "--recovery-fresh", fresh]
        )
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", recovery_report())
        fresh = self._write(
            tmp_path,
            "fresh.json",
            with_slowdown(recovery_report(), pressure=0.1, slowdown=4.0),
        )
        code = gate_mod.main(
            ["--recovery-baseline", base, "--recovery-fresh", fresh]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_unpaired_artifacts_rejected(self, tmp_path):
        base = self._write(tmp_path, "base.json", recovery_report())
        with pytest.raises(SystemExit):
            gate_mod.main(["--recovery-baseline", base])

    def test_nothing_to_compare_rejected(self):
        with pytest.raises(SystemExit):
            gate_mod.main([])

    def test_committed_baselines_self_compare(self, capsys):
        """The repo's own artifacts must pass against themselves."""
        root = _GATE_PATH.parents[1]
        perf = str(root / "BENCH_perf.json")
        recovery = str(root / "BENCH_recovery.json")
        code = gate_mod.main(
            ["--perf-baseline", perf, "--perf-fresh", perf,
             "--recovery-baseline", recovery, "--recovery-fresh", recovery]
        )
        assert code == 0
