"""Executor backends: chain driver, serial/parallel parity, fallbacks.

The contract under test (see ``repro.mapreduce.executor``): a task chain
is a pure function of its inputs that accumulates fault counters into a
:class:`TaskOutcome`; both executors return outcomes in task-index
order; exhausted chains surface as ``task=None``, never as exceptions;
and the parallel backend degrades to threads for non-picklable tasks
while producing byte-identical outcomes.
"""

import pickle

import pytest

from repro.mapreduce import (
    PARALLELISM_ENV,
    ClusterConfig,
    CostModel,
    FaultPlan,
    FaultSpec,
    FunctionMapper,
    NO_FAULTS,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskFactory,
    TaskMetrics,
    TaskOutcome,
    build_executor,
    resolve_parallelism,
    run_task_chain,
)


def _attempt(seconds=1.0, payload="out"):
    """An attempt_fn producing a fresh TaskMetrics every call, as the
    engine's real attempt functions do."""

    def attempt_fn():
        return TaskMetrics(machine=0, seconds=seconds), payload

    return attempt_fn


def _chain(faults, retry=None, cost=None, seconds=1.0):
    return run_task_chain(
        _attempt(seconds=seconds),
        job_name="job",
        phase="map",
        machine=0,
        faults=faults,
        retry=retry or RetryPolicy(),
        cost=cost or CostModel(),
    )


class TestRunTaskChain:
    def test_clean_chain_is_one_attempt(self):
        outcome = _chain(NO_FAULTS)
        assert outcome.attempts == 1
        assert outcome.killed_tasks == 0
        assert outcome.recovered == 0
        assert outcome.killed_attempts == []
        assert not outcome.exhausted
        assert outcome.task.seconds == 1.0
        assert outcome.payload == "out"

    def test_crash_then_retry_accumulates_into_outcome(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])
        outcome = _chain(plan)
        assert outcome.attempts == 2
        assert outcome.killed_tasks == 1
        assert outcome.recovered == 1
        assert len(outcome.killed_attempts) == 1
        assert outcome.killed_attempts[0].killed
        # The winner's seconds cover the dead attempt + backoff + its run.
        assert outcome.task.seconds > 1.0
        assert outcome.task.attempt == 1

    def test_straggler_earns_a_speculative_win(self):
        plan = FaultPlan(
            [FaultSpec("straggle", phase="map", slowdown=100.0, attempt=None)]
        )
        cost = CostModel(speculation_launch_seconds=1e-4)
        outcome = _chain(plan, cost=cost)
        assert outcome.speculative_wins == 1
        assert outcome.task.speculative
        assert outcome.recovered == 1
        # Backup copy beats the 100x straggler: launch delay + nominal.
        assert outcome.task.seconds == pytest.approx(1.0 + 1e-4)

    def test_exhausted_budget_returns_dead_outcome(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", attempt=None)])
        retry = RetryPolicy(max_attempts=3)
        outcome = _chain(plan, retry=retry)
        assert outcome.exhausted
        assert outcome.task is None
        assert outcome.attempts == 3
        assert outcome.killed_tasks == 3
        assert outcome.chain_seconds > 0.0


class _IndexTask:
    """A picklable task callable, as the engine's _MapTask/_ReduceTask are."""

    def __init__(self, index):
        self.index = index

    def __call__(self):
        return TaskOutcome(
            task=TaskMetrics(machine=self.index, seconds=1.0),
            payload=self.index * self.index,
            attempts=1,
        )


def _dead_task():
    return TaskOutcome(task=None, payload=None, attempts=4)


class TestSerialExecutor:
    def test_outcomes_in_task_order(self):
        tasks = [_IndexTask(i) for i in range(5)]
        outcomes = SerialExecutor().run_tasks(tasks)
        assert [o.payload for o in outcomes] == [0, 1, 4, 9, 16]

    def test_stop_early_halts_dispatch(self):
        tasks = [_IndexTask(0), _dead_task, _IndexTask(2)]
        outcomes = SerialExecutor().run_tasks(
            tasks, stop_early=lambda o: o.exhausted
        )
        assert len(outcomes) == 2  # the third task never ran
        assert outcomes[1].exhausted


class TestParallelExecutor:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_process_pool_outcomes_match_serial(self):
        tasks = [_IndexTask(i) for i in range(6)]
        assert ParallelExecutor._picklable(tasks[0])
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(3).run_tasks(tasks)
        assert [o.payload for o in parallel] == [o.payload for o in serial]
        assert [o.task.machine for o in parallel] == list(range(6))

    def test_unpicklable_tasks_fall_back_to_threads(self):
        # Lambdas cannot cross a process boundary; the thread fallback
        # must still return identical outcomes in order.
        hidden = object()  # captured, unpicklable-by-reference state
        tasks = [
            (lambda i=i: TaskOutcome(task=TaskMetrics(machine=i), payload=(i, id(hidden))))
            for i in range(4)
        ]
        assert not ParallelExecutor._picklable(tasks[0])
        outcomes = ParallelExecutor(2).run_tasks(tasks)
        assert [o.task.machine for o in outcomes] == [0, 1, 2, 3]

    def test_single_task_runs_serially(self):
        outcomes = ParallelExecutor(4).run_tasks([_IndexTask(7)])
        assert [o.payload for o in outcomes] == [49]

    def test_dead_chains_are_outcomes_not_exceptions(self):
        tasks = [_IndexTask(0), _dead_task, _IndexTask(2)]
        # Parallel backends run everything; the engine truncates later.
        outcomes = ParallelExecutor(2).run_tasks(tasks)
        assert len(outcomes) == 3
        assert outcomes[1].exhausted


class TestResolveParallelism:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "8")
        assert resolve_parallelism(2) == 2

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "3")
        assert resolve_parallelism() == 3

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        assert resolve_parallelism() == 1

    @pytest.mark.parametrize("bad", ["zero", "0", "-2", "1.5"])
    def test_invalid_env_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(PARALLELISM_ENV, bad)
        with pytest.raises(ValueError):
            resolve_parallelism()

    def test_build_executor_picks_backend(self, monkeypatch):
        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        assert isinstance(build_executor(), SerialExecutor)
        assert isinstance(build_executor(1), SerialExecutor)
        executor = build_executor(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 4


class TestClusterParallelism:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(parallelism=0)

    def test_executor_construction(self, monkeypatch):
        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        assert isinstance(ClusterConfig().task_executor(), SerialExecutor)
        cluster = ClusterConfig(parallelism=3)
        assert cluster.effective_parallelism() == 3
        assert isinstance(cluster.task_executor(), ParallelExecutor)

    def test_with_memory_preserves_parallelism(self):
        cluster = ClusterConfig(parallelism=5)
        assert cluster.with_memory(128).parallelism == 5


class TestTaskFactory:
    def test_builds_fresh_instances(self):
        factory = TaskFactory(FunctionMapper, len)
        first, second = factory(), factory()
        assert isinstance(first, FunctionMapper)
        assert first is not second

    def test_round_trips_through_pickle(self):
        factory = TaskFactory(FunctionMapper, len)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone(), FunctionMapper)
