"""Serialized-size estimation."""

from collections import Counter

from repro.mapreduce import estimate_bytes, pair_bytes, relation_bytes


class TestScalars:
    def test_int(self):
        assert estimate_bytes(42) == 8

    def test_float(self):
        assert estimate_bytes(2.5) == 8

    def test_none(self):
        assert estimate_bytes(None) == 1

    def test_bool(self):
        assert estimate_bytes(True) == 1

    def test_string_length_prefixed(self):
        assert estimate_bytes("abc") == 4 + 3
        assert estimate_bytes("") == 4

    def test_bytes(self):
        assert estimate_bytes(b"xy") == 6


class TestContainers:
    def test_flat_tuple(self):
        assert estimate_bytes(("laptop", 2012)) == 4 + (4 + 6) + 8

    def test_empty_tuple(self):
        assert estimate_bytes(()) == 4

    def test_list_same_as_tuple(self):
        assert estimate_bytes([1, 2]) == estimate_bytes((1, 2))

    def test_nested_tuple(self):
        inner = estimate_bytes((1, 2))
        assert estimate_bytes(((1, 2), 3)) == 4 + inner + 8

    def test_counter(self):
        counter = Counter({"a": 3, "bb": 1})
        assert estimate_bytes(counter) == 4 + (5 + 8) + (6 + 8)

    def test_dict(self):
        assert estimate_bytes({1: 2}) == 4 + 8 + 8

    def test_set(self):
        assert estimate_bytes(frozenset([1, 2])) == 4 + 16

    def test_size_monotone_in_content(self):
        assert estimate_bytes((1, 2, 3)) > estimate_bytes((1, 2))


class TestHelpers:
    def test_pair_bytes(self):
        assert pair_bytes(1, 2) == 16

    def test_relation_bytes(self):
        count, total = relation_bytes([(1, 2), (3, 4)])
        assert count == 2
        assert total == 2 * (4 + 16)

    def test_fallback_uses_repr(self):
        class Odd:
            def __repr__(self):
                return "odd"

        assert estimate_bytes(Odd()) == 4 + 3
