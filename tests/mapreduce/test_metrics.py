"""Metrics containers and derived measures."""

from repro.mapreduce import JobMetrics, RunMetrics, TaskMetrics


def job_with_tasks(name="j", map_secs=(), reduce_specs=()):
    """reduce_specs: list of (seconds, records_in)."""
    job = JobMetrics(name=name)
    for seconds in map_secs:
        job.map_tasks.append(TaskMetrics(seconds=seconds))
    for seconds, records in reduce_specs:
        job.reduce_tasks.append(
            TaskMetrics(seconds=seconds, records_in=records)
        )
    return job


class TestJobMetrics:
    def test_avg_map_seconds(self):
        job = job_with_tasks(map_secs=[1.0, 3.0])
        assert job.avg_map_seconds == 2.0

    def test_avg_seconds_empty(self):
        job = JobMetrics(name="empty")
        assert job.avg_map_seconds == 0.0
        assert job.avg_reduce_seconds == 0.0

    def test_avg_reduce_seconds(self):
        job = job_with_tasks(reduce_specs=[(2.0, 1), (4.0, 1)])
        assert job.avg_reduce_seconds == 3.0

    def test_max_reducer_input(self):
        job = job_with_tasks(reduce_specs=[(0, 5), (0, 9), (0, 2)])
        assert job.max_reducer_input_records == 9

    def test_failed_needs_quorum(self):
        job = JobMetrics(name="j", oom_quorum=2)
        job.oom_reducers.append(3)
        assert not job.failed
        job.oom_reducers.append(7)
        assert job.failed

    def test_forced_failure_overrides_quorum(self):
        job = JobMetrics(name="j", oom_quorum=99, forced_failure=True)
        assert job.failed


class TestRunMetrics:
    def test_total_seconds_sums_jobs(self):
        run = RunMetrics(algorithm="x")
        for total in (10.0, 5.0):
            job = JobMetrics(name="j", total_seconds=total)
            run.jobs.append(job)
        assert run.total_seconds == 15.0

    def test_intermediate_bytes_sums_jobs(self):
        run = RunMetrics(algorithm="x")
        for size in (100, 250):
            run.jobs.append(JobMetrics(name="j", map_output_bytes=size))
        assert run.intermediate_bytes == 350

    def test_avg_times_come_from_dominant_round(self):
        """Per-task averages refer to the round shuffling the most — the
        materialization round — not to cheap sampling/post-agg rounds."""
        run = RunMetrics(algorithm="x")
        sampling = job_with_tasks(map_secs=[100.0])
        sampling.map_output_records = 10
        cube = job_with_tasks(map_secs=[2.0])
        cube.map_output_records = 10_000
        postagg = job_with_tasks(map_secs=[50.0])
        postagg.map_output_records = 100
        run.jobs.extend([sampling, cube, postagg])
        assert run.avg_map_seconds == 2.0

    def test_failed_any_round(self):
        run = RunMetrics(algorithm="x")
        run.jobs.append(JobMetrics(name="ok"))
        run.jobs.append(JobMetrics(name="bad", forced_failure=True))
        assert run.failed

    def test_reducer_balance(self):
        run = RunMetrics(algorithm="x")
        run.jobs.append(
            job_with_tasks(reduce_specs=[(0, 10), (0, 10), (0, 40)])
        )
        assert run.reducer_balance == 40 / 20

    def test_reducer_balance_empty(self):
        run = RunMetrics(algorithm="x")
        assert run.reducer_balance == 0.0

    def test_extras_dict(self):
        run = RunMetrics(algorithm="x")
        run.extras["sketch_bytes"] = 123
        assert run.extras["sketch_bytes"] == 123
