"""Metrics containers and derived measures."""

from repro.mapreduce import JobMetrics, RunMetrics, TaskMetrics


def job_with_tasks(name="j", map_secs=(), reduce_specs=()):
    """reduce_specs: list of (seconds, records_in)."""
    job = JobMetrics(name=name)
    for seconds in map_secs:
        job.map_tasks.append(TaskMetrics(seconds=seconds))
    for seconds, records in reduce_specs:
        job.reduce_tasks.append(
            TaskMetrics(seconds=seconds, records_in=records)
        )
    return job


class TestJobMetrics:
    def test_avg_map_seconds(self):
        job = job_with_tasks(map_secs=[1.0, 3.0])
        assert job.avg_map_seconds == 2.0

    def test_avg_seconds_empty(self):
        job = JobMetrics(name="empty")
        assert job.avg_map_seconds == 0.0
        assert job.avg_reduce_seconds == 0.0

    def test_avg_reduce_seconds(self):
        job = job_with_tasks(reduce_specs=[(2.0, 1), (4.0, 1)])
        assert job.avg_reduce_seconds == 3.0

    def test_max_reducer_input(self):
        job = job_with_tasks(reduce_specs=[(0, 5), (0, 9), (0, 2)])
        assert job.max_reducer_input_records == 9

    def test_failed_needs_quorum(self):
        job = JobMetrics(name="j", oom_quorum=2)
        job.oom_reducers.append(3)
        assert not job.failed
        job.oom_reducers.append(7)
        assert job.failed

    def test_forced_failure_overrides_quorum(self):
        job = JobMetrics(name="j", oom_quorum=99, forced_failure=True)
        assert job.failed


class TestRunMetrics:
    def test_total_seconds_sums_jobs(self):
        run = RunMetrics(algorithm="x")
        for total in (10.0, 5.0):
            job = JobMetrics(name="j", total_seconds=total)
            run.jobs.append(job)
        assert run.total_seconds == 15.0

    def test_intermediate_bytes_sums_jobs(self):
        run = RunMetrics(algorithm="x")
        for size in (100, 250):
            run.jobs.append(JobMetrics(name="j", map_output_bytes=size))
        assert run.intermediate_bytes == 350

    def test_avg_times_come_from_dominant_round(self):
        """Per-task averages refer to the round shuffling the most — the
        materialization round — not to cheap sampling/post-agg rounds."""
        run = RunMetrics(algorithm="x")
        sampling = job_with_tasks(map_secs=[100.0])
        sampling.map_output_records = 10
        cube = job_with_tasks(map_secs=[2.0])
        cube.map_output_records = 10_000
        postagg = job_with_tasks(map_secs=[50.0])
        postagg.map_output_records = 100
        run.jobs.extend([sampling, cube, postagg])
        assert run.avg_map_seconds == 2.0

    def test_failed_any_round(self):
        run = RunMetrics(algorithm="x")
        run.jobs.append(JobMetrics(name="ok"))
        run.jobs.append(JobMetrics(name="bad", forced_failure=True))
        assert run.failed

    def test_reducer_balance(self):
        run = RunMetrics(algorithm="x")
        run.jobs.append(
            job_with_tasks(reduce_specs=[(0, 10), (0, 10), (0, 40)])
        )
        assert run.reducer_balance == 40 / 20

    def test_reducer_balance_empty(self):
        run = RunMetrics(algorithm="x")
        assert run.reducer_balance == 0.0

    def test_extras_dict(self):
        run = RunMetrics(algorithm="x")
        run.extras["sketch_bytes"] = 123
        assert run.extras["sketch_bytes"] == 123


class TestRecoveryAccounting:
    """Satellite of the observability PR: killed attempts are counted in
    the wall-clock/byte totals exactly once, via their chain winner."""

    def faulted_job(self):
        job = JobMetrics(name="j")
        killed = TaskMetrics(
            machine=0, seconds=4.0, bytes_out=100, records_out=10,
            killed=True,
        )
        winner = TaskMetrics(
            machine=0, seconds=20.0, bytes_out=100, records_out=10,
            attempt=1, overhead_seconds=16.0,
        )
        clean = TaskMetrics(
            machine=1, seconds=4.0, bytes_out=50, records_out=5
        )
        job.killed_attempts.append(killed)
        job.map_tasks.extend([winner, clean])
        job.map_output_bytes = 150
        job.map_output_records = 15
        job.attempts = 3
        job.killed_tasks = 1
        job.recovered = 1
        job.map_phase_seconds = 25.0
        job.total_seconds = 25.0
        job.shuffle_seconds = 0.0
        job.reduce_phase_seconds = 0.0
        return job

    def test_clean_job_passes(self):
        job = self.faulted_job()
        job.check_invariants()

    def test_recovery_overhead_sums_winners_only(self):
        job = self.faulted_job()
        assert job.recovery_overhead_seconds == 16.0
        run = RunMetrics(algorithm="x", jobs=[job, self.faulted_job()])
        assert run.recovery_overhead() == 32.0
        run.check_invariants()

    def test_killed_attempt_in_task_list_rejected(self):
        job = self.faulted_job()
        job.map_tasks.append(TaskMetrics(machine=2, killed=True))
        import pytest

        from repro.mapreduce import MetricsInvariantError

        with pytest.raises(MetricsInvariantError, match="leaked"):
            job.check_invariants()

    def test_killed_attempt_with_overhead_rejected(self):
        import pytest

        from repro.mapreduce import MetricsInvariantError

        job = self.faulted_job()
        job.killed_attempts[0].overhead_seconds = 1.0
        with pytest.raises(MetricsInvariantError, match="chain winner"):
            job.check_invariants()

    def test_double_counted_bytes_rejected(self):
        import pytest

        from repro.mapreduce import MetricsInvariantError

        job = self.faulted_job()
        # The classic double-count: adding the killed attempt's bytes to
        # the job total even though its output was discarded.
        job.map_output_bytes += job.killed_attempts[0].bytes_out
        with pytest.raises(MetricsInvariantError, match="killed attempts"):
            job.check_invariants()

    def test_attempt_ledger_mismatch_rejected(self):
        import pytest

        from repro.mapreduce import MetricsInvariantError

        job = self.faulted_job()
        job.attempts += 1
        with pytest.raises(MetricsInvariantError, match="winners"):
            job.check_invariants()

    def test_engine_output_passes_invariants(self):
        from repro.analysis import paper_cluster
        from repro.core import SPCube
        from repro.datagen import gen_zipf
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan(seed=3, crash_prob=0.1, straggle_prob=0.1)
        cluster = paper_cluster(1200, fault_plan=plan)
        run = SPCube(cluster).compute(gen_zipf(1200, seed=1))
        assert run.metrics.killed_tasks > 0  # the plan actually fired
        run.metrics.check_invariants()
        assert run.metrics.recovery_overhead() > 0.0


class TestSerialization:
    """Satellite of the observability PR: to_dict/from_dict round-trips."""

    def test_task_round_trip(self):
        task = TaskMetrics(
            machine=3, records_in=10, records_out=4, bytes_in=100,
            bytes_out=40, cpu_ops=50, spilled_records=2,
            peak_group_records=6, seconds=1.5, attempt=1, killed=False,
            speculative=True, overhead_seconds=0.5, counters={"hits": 2},
        )
        assert TaskMetrics.from_dict(task.to_dict()) == task

    def test_job_round_trip_with_nested_tasks(self):
        job = JobMetrics(name="round")
        job.map_tasks.append(TaskMetrics(machine=0, seconds=2.0))
        job.reduce_tasks.append(TaskMetrics(machine=1, records_in=7))
        job.killed_attempts.append(TaskMetrics(machine=0, killed=True))
        job.map_output_bytes = 123
        job.attempts = 3
        job.oom_reducers.append(1)
        restored = JobMetrics.from_dict(job.to_dict())
        assert restored == job
        assert isinstance(restored.map_tasks[0], TaskMetrics)

    def test_job_ignores_unknown_fields_with_warning(self):
        # Forward compatibility: an artifact written by a newer version
        # (extra fields) must keep loading — dropped with a warning, not
        # a crash that bricks every archived BENCH/trace file.
        import pytest

        from repro.mapreduce.metrics import UnknownMetricsFieldWarning

        data = JobMetrics(name="j", attempts=2).to_dict()
        data["bogus_field"] = 1
        with pytest.warns(UnknownMetricsFieldWarning, match="bogus_field"):
            restored = JobMetrics.from_dict(data)
        assert restored == JobMetrics(name="j", attempts=2)

    def test_task_ignores_unknown_fields_with_warning(self):
        import pytest

        from repro.mapreduce.metrics import UnknownMetricsFieldWarning

        data = TaskMetrics(machine=4, seconds=2.0).to_dict()
        data["future_counter"] = 9
        with pytest.warns(UnknownMetricsFieldWarning, match="future_counter"):
            restored = TaskMetrics.from_dict(data)
        assert restored == TaskMetrics(machine=4, seconds=2.0)

    def test_run_ignores_unknown_fields_with_warning(self):
        import pytest

        from repro.mapreduce.metrics import UnknownMetricsFieldWarning

        run = RunMetrics(algorithm="SP-Cube", output_groups=3)
        data = run.to_dict()
        data["telemetry_overhead"] = {"ratio": 1.01}
        with pytest.warns(
            UnknownMetricsFieldWarning, match="telemetry_overhead"
        ):
            restored = RunMetrics.from_dict(data)
        assert restored == run

    def test_known_fields_round_trip_without_warning(self):
        import warnings

        data = JobMetrics(name="clean").to_dict()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            JobMetrics.from_dict(data)

    def test_run_round_trip(self):
        run = RunMetrics(algorithm="SP-Cube")
        job = JobMetrics(name="j", total_seconds=5.0)
        job.map_tasks.append(TaskMetrics(seconds=1.0))
        run.jobs.append(job)
        run.extras["sketch_bytes"] = 99
        run.output_groups = 7
        restored = RunMetrics.from_dict(run.to_dict())
        assert restored == run
        assert restored.total_seconds == 5.0

    def test_run_round_trip_is_json_safe(self):
        import json

        run = RunMetrics(algorithm="x", fatal_error="boom")
        run.jobs.append(JobMetrics(name="j"))
        payload = json.dumps(run.to_dict())
        assert RunMetrics.from_dict(json.loads(payload)) == run
