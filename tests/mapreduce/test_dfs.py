"""Simulated distributed file system."""

import pytest

from repro.mapreduce import (
    DEFAULT_REPLICATION,
    DistributedFileSystem,
    FaultPlan,
    FaultSpec,
    FileNotFound,
    ReplicaExhausted,
)


@pytest.fixture
def dfs():
    return DistributedFileSystem()


class TestReadWrite:
    def test_roundtrip(self, dfs):
        dfs.write("a/b", [1, 2, 3])
        assert dfs.read("a/b") == [1, 2, 3]

    def test_write_returns_count(self, dfs):
        assert dfs.write("x", iter(range(5))) == 5

    def test_overwrite(self, dfs):
        dfs.write("x", [1])
        dfs.write("x", [2])
        assert dfs.read("x") == [2]

    def test_append(self, dfs):
        dfs.append("log", [1])
        dfs.append("log", [2, 3])
        assert dfs.read("log") == [1, 2, 3]

    def test_missing_file(self, dfs):
        with pytest.raises(FileNotFound):
            dfs.read("nope")


class TestNamespace:
    def test_exists_and_contains(self, dfs):
        dfs.write("p", [])
        assert dfs.exists("p")
        assert "p" in dfs
        assert not dfs.exists("q")

    def test_delete_idempotent(self, dfs):
        dfs.write("p", [1])
        dfs.delete("p")
        dfs.delete("p")
        assert not dfs.exists("p")

    def test_list_files_sorted(self, dfs):
        dfs.write("b", [])
        dfs.write("a", [])
        assert dfs.list_files() == ["a", "b"]

    def test_len(self, dfs):
        dfs.write("a", [])
        dfs.write("b", [])
        assert len(dfs) == 2


class TestAliasing:
    def test_read_returns_a_copy(self, dfs):
        """Mutating a read's return value must not corrupt the stored file."""
        dfs.write("cube/out", [1, 2, 3])
        leaked = dfs.read("cube/out")
        leaked.append(99)
        leaked[0] = -1
        assert dfs.read("cube/out") == [1, 2, 3]

    def test_reads_are_independent(self, dfs):
        dfs.write("p", [{"a": 1}])
        assert dfs.read("p") is not dfs.read("p")


class TestReplication:
    def test_default_replication_matches_hdfs(self, dfs):
        assert dfs.replication == DEFAULT_REPLICATION == 3

    def test_replication_validated(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(replication=0)

    def test_failover_to_surviving_replica(self):
        plan = FaultPlan([FaultSpec("read-drop", path="data", replica=0)])
        dfs = DistributedFileSystem(fault_plan=plan)
        dfs.write("data", [1, 2])
        assert dfs.read("data") == [1, 2]  # replica 1 serves the read
        assert dfs.read_retries == 1
        assert dfs.failed_reads == 0

    def test_all_replicas_dead_raises(self):
        plan = FaultPlan([FaultSpec("read-drop", path="data")])
        dfs = DistributedFileSystem(fault_plan=plan)
        dfs.write("data", [1])
        with pytest.raises(ReplicaExhausted):
            dfs.read("data")
        assert dfs.failed_reads == 1
        assert dfs.read_retries == 0  # nothing was recovered

    def test_unfaulted_paths_unaffected(self):
        plan = FaultPlan([FaultSpec("read-drop", path="data")])
        dfs = DistributedFileSystem(fault_plan=plan)
        dfs.write("other", [7])
        assert dfs.read("other") == [7]
        assert dfs.read_retries == 0

    def test_missing_path_beats_replica_faults(self):
        plan = FaultPlan([FaultSpec("read-drop", path="nope")])
        dfs = DistributedFileSystem(fault_plan=plan)
        with pytest.raises(FileNotFound):
            dfs.read("nope")


class TestSizing:
    def test_size_bytes(self, dfs):
        dfs.write("data", [(1, 2)])
        assert dfs.size_bytes("data") == 4 + 16

    def test_size_of_missing_raises(self, dfs):
        with pytest.raises(FileNotFound):
            dfs.size_bytes("nope")
