"""Simulated distributed file system."""

import pytest

from repro.mapreduce import DistributedFileSystem, FileNotFound


@pytest.fixture
def dfs():
    return DistributedFileSystem()


class TestReadWrite:
    def test_roundtrip(self, dfs):
        dfs.write("a/b", [1, 2, 3])
        assert dfs.read("a/b") == [1, 2, 3]

    def test_write_returns_count(self, dfs):
        assert dfs.write("x", iter(range(5))) == 5

    def test_overwrite(self, dfs):
        dfs.write("x", [1])
        dfs.write("x", [2])
        assert dfs.read("x") == [2]

    def test_append(self, dfs):
        dfs.append("log", [1])
        dfs.append("log", [2, 3])
        assert dfs.read("log") == [1, 2, 3]

    def test_missing_file(self, dfs):
        with pytest.raises(FileNotFound):
            dfs.read("nope")


class TestNamespace:
    def test_exists_and_contains(self, dfs):
        dfs.write("p", [])
        assert dfs.exists("p")
        assert "p" in dfs
        assert not dfs.exists("q")

    def test_delete_idempotent(self, dfs):
        dfs.write("p", [1])
        dfs.delete("p")
        dfs.delete("p")
        assert not dfs.exists("p")

    def test_list_files_sorted(self, dfs):
        dfs.write("b", [])
        dfs.write("a", [])
        assert dfs.list_files() == ["a", "b"]

    def test_len(self, dfs):
        dfs.write("a", [])
        dfs.write("b", [])
        assert len(dfs) == 2


class TestSizing:
    def test_size_bytes(self, dfs):
        dfs.write("data", [(1, 2)])
        assert dfs.size_bytes("data") == 4 + 16

    def test_size_of_missing_raises(self, dfs):
        with pytest.raises(FileNotFound):
            dfs.size_bytes("nope")
