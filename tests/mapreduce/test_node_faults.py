"""Node-level failure domains: topology, kill schedules, chain behaviour."""

import pytest

from repro.mapreduce.cluster import ClusterConfig, NodeTopology
from repro.mapreduce.costmodel import CostModel
from repro.mapreduce.faults import FaultPlan, NodeFaultSpec, RetryPolicy
from repro.mapreduce.executor import run_task_chain
from repro.mapreduce.metrics import TaskMetrics


class TestNodeFaultSpec:
    def test_valid(self):
        spec = NodeFaultSpec(node=2, at_seconds=10.0, job="round-2")
        assert spec.node == 2 and spec.job == "round-2"

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node"):
            NodeFaultSpec(node=-1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_seconds"):
            NodeFaultSpec(node=0, at_seconds=-0.5)


class TestFaultPlanNodeFields:
    def test_node_crash_prob_validated(self):
        with pytest.raises(ValueError, match="node_crash_prob"):
            FaultPlan(node_crash_prob=1.5)

    def test_is_empty_sees_node_faults(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(node_specs=[NodeFaultSpec(node=0)]).is_empty
        assert not FaultPlan(node_crash_prob=0.1).is_empty

    def test_has_node_faults(self):
        assert not FaultPlan(crash_prob=0.5).has_node_faults
        assert FaultPlan(node_specs=[NodeFaultSpec(node=0)]).has_node_faults
        assert FaultPlan(node_crash_prob=0.01).has_node_faults


class TestNodeKillsForJob:
    def test_job_pinned_fires_only_for_that_job(self):
        plan = FaultPlan(
            node_specs=[NodeFaultSpec(node=1, at_seconds=7.0, job="r2")]
        )
        assert plan.node_kills_for_job("r1", 0.0, 4) == {}
        assert plan.node_kills_for_job("r2", 0.0, 4) == {1: 7.0}
        # Job-pinned times are round-relative: the run clock is irrelevant.
        assert plan.node_kills_for_job("r2", 500.0, 4) == {1: 7.0}

    def test_run_relative_fires_in_containing_window(self):
        plan = FaultPlan(node_specs=[NodeFaultSpec(node=0, at_seconds=30.0)])
        # Job starting at t=0 sees the kill 30s in.
        assert plan.node_kills_for_job("a", 0.0, 2) == {0: 30.0}
        # Job starting at t=25 sees it 5s in.
        assert plan.node_kills_for_job("b", 25.0, 2) == {0: 5.0}
        # Once the run clock passes the kill instant it is spent.
        assert plan.node_kills_for_job("c", 31.0, 2) == {}

    def test_replaced_nodes_are_skipped(self):
        plan = FaultPlan(
            node_specs=[NodeFaultSpec(node=1, job="r")],
            node_crash_prob=1.0,
        )
        kills = plan.node_kills_for_job("r", 0.0, 3, replaced=frozenset({1}))
        assert 1 not in kills
        assert plan.node_kills_for_job(
            "r", 0.0, 3, replaced=frozenset({0, 1, 2})
        ) == {}

    def test_out_of_range_node_ignored(self):
        plan = FaultPlan(node_specs=[NodeFaultSpec(node=9)])
        assert plan.node_kills_for_job("r", 0.0, 3) == {}

    def test_earliest_spec_wins_per_node(self):
        plan = FaultPlan(node_specs=[
            NodeFaultSpec(node=0, at_seconds=20.0, job="r"),
            NodeFaultSpec(node=0, at_seconds=5.0, job="r"),
        ])
        assert plan.node_kills_for_job("r", 0.0, 2) == {0: 5.0}

    def test_probabilistic_kills_are_deterministic(self):
        plan = FaultPlan(seed=3, node_crash_prob=0.4)
        first = plan.node_kills_for_job("round", 0.0, 16)
        assert first == plan.node_kills_for_job("round", 0.0, 16)
        assert all(t == 0.0 for t in first.values())
        # Certain death kills every node at the round start.
        sure = FaultPlan(node_crash_prob=1.0)
        assert sure.node_kills_for_job("round", 0.0, 4) == {
            0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0,
        }


class TestNodeTopology:
    def test_round_robin_placement(self):
        topo = NodeTopology(num_nodes=3, num_machines=8)
        assert [topo.node_of(m) for m in range(8)] == [
            0, 1, 2, 0, 1, 2, 0, 1,
        ]
        assert topo.machines_on(2) == (2, 5)

    def test_block_placement(self):
        topo = NodeTopology(num_nodes=3, num_machines=8, placement="block")
        assert [topo.node_of(m) for m in range(8)] == [
            0, 0, 0, 1, 1, 1, 2, 2,
        ]
        assert topo.machines_on(2) == (6, 7)

    def test_machine_out_of_range(self):
        topo = NodeTopology(num_nodes=2, num_machines=4)
        with pytest.raises(ValueError, match="out of range"):
            topo.node_of(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            NodeTopology(num_nodes=0, num_machines=4)
        with pytest.raises(ValueError, match="num_nodes"):
            NodeTopology(num_nodes=5, num_machines=4)
        with pytest.raises(ValueError, match="placement"):
            NodeTopology(num_nodes=2, num_machines=4, placement="random")

    def test_replica_nodes_stable_and_spread(self):
        topo = NodeTopology(num_nodes=5, num_machines=10)
        nodes = [topo.replica_node("dfs/some/path", r) for r in range(3)]
        assert nodes == [topo.replica_node("dfs/some/path", r)
                         for r in range(3)]
        # Consecutive replicas walk the ring: all distinct while
        # replication <= num_nodes.
        assert len(set(nodes)) == 3


class TestClusterTopology:
    def test_default_is_one_node_per_machine(self):
        topo = ClusterConfig(num_machines=6).topology()
        assert topo.num_nodes == 6
        assert topo.node_of(4) == 4

    def test_num_nodes_validated_eagerly(self):
        with pytest.raises(ValueError, match="num_nodes"):
            ClusterConfig(num_machines=4, num_nodes=9)

    def test_checkpoint_enabled_by_default(self):
        assert ClusterConfig().checkpoint_enabled


def run_chain(node_kill_at, max_attempts=3, seconds=10.0, trace=False):
    def attempt():
        return TaskMetrics(machine=0, seconds=seconds), "payload"

    return run_task_chain(
        attempt,
        job_name="j",
        phase="map",
        machine=0,
        faults=FaultPlan(),
        retry=RetryPolicy(max_attempts=max_attempts),
        cost=CostModel(),
        trace=trace,
        node_kill_at=node_kill_at,
    )


class TestRunTaskChainNodeKill:
    def test_no_kill_means_healthy_chain(self):
        outcome = run_chain(node_kill_at=None)
        assert not outcome.exhausted
        assert outcome.attempts == 1

    def test_kill_mid_attempt_exhausts_the_chain(self):
        # The node dies 4s into a 10s attempt; every retry lands on the
        # dead slot and dies instantly, so the chain must exhaust.
        outcome = run_chain(node_kill_at=4.0)
        assert outcome.exhausted
        assert outcome.attempts == 3
        assert outcome.killed_tasks == 3
        assert outcome.killed_attempts[0].seconds == pytest.approx(4.0)
        # Retries placed after the death lose no work of their own.
        assert outcome.killed_attempts[1].seconds == 0.0

    def test_kill_after_completion_does_not_fire(self):
        outcome = run_chain(node_kill_at=10.0)
        assert not outcome.exhausted
        assert outcome.killed_tasks == 0

    def test_trace_records_node_kill_cause(self):
        outcome = run_chain(node_kill_at=4.0, trace=True)
        crashes = [r for r in outcome.trace if r.get("kind") == "crash"]
        assert crashes
        assert all(
            r["fields"]["cause"] == "node-kill" for r in crashes
        )

    def test_ordinary_crash_has_no_cause_field(self):
        def attempt():
            return TaskMetrics(machine=0, seconds=5.0), None

        outcome = run_task_chain(
            attempt,
            job_name="j",
            phase="map",
            machine=0,
            faults=FaultPlan(crash_prob=1.0),
            retry=RetryPolicy(max_attempts=2),
            cost=CostModel(),
            trace=True,
        )
        crashes = [r for r in outcome.trace if r.get("kind") == "crash"]
        assert crashes
        assert all("cause" not in r["fields"] for r in crashes)
