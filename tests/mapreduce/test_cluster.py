"""Cluster configuration and memory derivation."""

import pytest

from repro.mapreduce import ClusterConfig, FaultPlan, RetryPolicy


class TestValidation:
    def test_defaults(self):
        cluster = ClusterConfig()
        assert cluster.num_machines == 20
        assert cluster.memory_records is None

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            ClusterConfig(memory_records=0)

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            ClusterConfig(memory_slack=0.5)


class TestMemoryDerivation:
    def test_derives_n_over_k(self):
        cluster = ClusterConfig(num_machines=4)
        assert cluster.derive_memory(100) == 25

    def test_rounds_up(self):
        cluster = ClusterConfig(num_machines=4)
        assert cluster.derive_memory(101) == 26

    def test_explicit_memory_wins(self):
        cluster = ClusterConfig(num_machines=4, memory_records=7)
        assert cluster.derive_memory(1000) == 7

    def test_minimum_one(self):
        assert ClusterConfig(num_machines=8).derive_memory(0) == 1

    def test_physical_memory_applies_slack(self):
        cluster = ClusterConfig(memory_slack=2.0)
        assert cluster.physical_memory(100) == 200

    def test_with_memory_copies(self):
        base = ClusterConfig(num_machines=6, seed=99)
        pinned = base.with_memory(50)
        assert pinned.memory_records == 50
        assert pinned.num_machines == 6
        assert pinned.seed == 99
        assert base.memory_records is None

    def test_with_memory_carries_fault_configuration(self):
        plan = FaultPlan(seed=5, crash_prob=0.2)
        policy = RetryPolicy(max_attempts=2)
        base = ClusterConfig(fault_plan=plan, retry_policy=policy)
        pinned = base.with_memory(50)
        assert pinned.fault_plan is plan
        assert pinned.retry_policy is policy


class TestFaultDefaults:
    def test_no_faults_by_default(self):
        cluster = ClusterConfig()
        assert cluster.fault_plan is None
        assert cluster.retry_policy.max_attempts == 4
