"""The MapReduce engine: data flow, combiners, partitioners, metrics."""

import pytest

from repro.mapreduce import (
    ClusterConfig,
    Mapper,
    MapReduceJob,
    Reducer,
    hash_partitioner,
    run_job,
    stable_hash,
)


def word_count_job(**kwargs):
    def map_fn(record):
        for word in record.split():
            yield word, 1

    def reduce_fn(key, values):
        yield key, sum(values)

    return MapReduceJob.from_functions("wordcount", map_fn, reduce_fn, **kwargs)


@pytest.fixture
def cluster():
    return ClusterConfig(num_machines=3)


class TestBasicExecution:
    def test_word_count(self, cluster):
        chunks = [["a b a"], ["b c"], ["a"]]
        result = run_job(word_count_job(), chunks, cluster, memory_records=10)
        assert dict(result.output) == {"a": 3, "b": 2, "c": 1}

    def test_empty_input(self, cluster):
        result = run_job(word_count_job(), [[], [], []], cluster, 10)
        assert result.output == []
        assert result.metrics.map_output_records == 0

    def test_reducer_outputs_collected_per_task(self, cluster):
        chunks = [["a b c d e f"]]
        result = run_job(word_count_job(), chunks, cluster, 10)
        assert len(result.reducer_outputs) == cluster.num_machines
        flattened = [p for out in result.reducer_outputs for p in out]
        assert sorted(flattened) == sorted(result.output)

    def test_num_reducers_override(self, cluster):
        job = word_count_job(num_reducers=1)
        result = run_job(job, [["a b"], ["c"]], cluster, 10)
        assert len(result.metrics.reduce_tasks) == 1

    def test_keys_processed_in_sorted_order(self, cluster):
        job = word_count_job(num_reducers=1)
        result = run_job(job, [["c a b"]], cluster, 10)
        assert [key for key, _count in result.output] == ["a", "b", "c"]


class TestStatefulMapper:
    def test_close_emits_final_pairs(self, cluster):
        class SummingMapper(Mapper):
            def setup(self, context):
                super().setup(context)
                self.total = 0

            def map(self, record):
                self.total += record
                return ()

            def close(self):
                yield "total", self.total

        class PassReducer(Reducer):
            def reduce(self, key, values):
                yield key, sum(values)

        job = MapReduceJob(
            "sums", SummingMapper, PassReducer, num_reducers=1
        )
        result = run_job(job, [[1, 2], [3]], cluster, 10)
        # One partial total per mapper, merged by the single reducer.
        assert result.output == [("total", 6)]

    def test_mapper_state_isolated_per_task(self, cluster):
        instances = []

        class Recording(Mapper):
            def __init__(self):
                instances.append(self)

            def map(self, record):
                return ()

        class Null(Reducer):
            def reduce(self, key, values):
                return ()

        job = MapReduceJob("iso", Recording, Null)
        run_job(job, [[1], [2], [3]], cluster, 10)
        assert len(instances) == 3
        assert len(set(map(id, instances))) == 3


class TestCombiner:
    def test_combiner_reduces_map_output(self, cluster):
        def combiner(key, values):
            yield key, sum(values)

        with_combiner = run_job(
            word_count_job(combiner=combiner), [["a a a a"]], cluster, 10
        )
        without = run_job(word_count_job(), [["a a a a"]], cluster, 10)
        assert with_combiner.metrics.map_output_records == 1
        assert without.metrics.map_output_records == 4
        assert dict(with_combiner.output) == dict(without.output)

    def test_combiner_applies_per_map_task(self, cluster):
        def combiner(key, values):
            yield key, sum(values)

        result = run_job(
            word_count_job(combiner=combiner), [["a a"], ["a"]], cluster, 10
        )
        # One combined record per mapper that saw "a".
        assert result.metrics.map_output_records == 2
        assert dict(result.output) == {"a": 3}


class TestPartitioner:
    def test_custom_partitioner_routes_keys(self, cluster):
        def to_zero(key, num_reducers):
            return 0

        result = run_job(
            word_count_job(partitioner=to_zero), [["a b c"]], cluster, 10
        )
        loads = result.metrics.reducer_input_records
        assert loads[0] == 3
        assert sum(loads[1:]) == 0

    def test_out_of_range_partitioner_rejected(self, cluster):
        def bad(key, num_reducers):
            return num_reducers

        with pytest.raises(ValueError, match="routed key"):
            run_job(word_count_job(partitioner=bad), [["a"]], cluster, 10)

    def test_hash_partitioner_in_range(self):
        for key in ["a", ("b", 1), 42]:
            assert 0 <= hash_partitioner(key, 7) < 7

    def test_stable_hash_deterministic(self):
        assert stable_hash(("x", 1)) == stable_hash(("x", 1))
        assert stable_hash("a") != stable_hash("b")


class TestMetricsAccounting:
    def test_bytes_conservation(self, cluster):
        """Map output bytes equal the sum of reducer input bytes."""
        chunks = [["a b c d"], ["a a"], []]
        result = run_job(word_count_job(), chunks, cluster, 10)
        assert result.metrics.map_output_bytes == sum(
            t.bytes_in for t in result.metrics.reduce_tasks
        )

    def test_record_conservation(self, cluster):
        chunks = [["a b"], ["c d e"]]
        result = run_job(word_count_job(), chunks, cluster, 10)
        assert result.metrics.map_output_records == sum(
            result.metrics.reducer_input_records
        )

    def test_map_records_in(self, cluster):
        result = run_job(word_count_job(), [["x", "y"], ["z"]], cluster, 10)
        assert sum(t.records_in for t in result.metrics.map_tasks) == 3

    def test_phase_times_positive(self, cluster):
        result = run_job(word_count_job(), [["a"]], cluster, 10)
        metrics = result.metrics
        assert metrics.map_phase_seconds > 0
        assert metrics.reduce_phase_seconds > 0
        assert metrics.total_seconds == pytest.approx(
            metrics.map_phase_seconds
            + metrics.shuffle_seconds
            + metrics.reduce_phase_seconds
        )

    def test_spill_accounting(self, cluster):
        chunks = [["a " * 50], [], []]
        result = run_job(word_count_job(num_reducers=1), chunks, cluster, 5)
        task = result.metrics.reduce_tasks[0]
        physical = cluster.physical_memory(5)
        assert task.spilled_records == 50 - physical

    def test_peak_group_records(self, cluster):
        chunks = [["a a a b"]]
        result = run_job(word_count_job(num_reducers=1), chunks, cluster, 10)
        assert result.metrics.reduce_tasks[0].peak_group_records == 3


class TestFailureFlagging:
    def _job(self, **kwargs):
        return word_count_job(num_reducers=2, **kwargs)

    def test_no_flag_by_default(self, cluster):
        chunks = [["a " * 100]]
        result = run_job(self._job(), chunks, cluster, 4)
        assert result.metrics.oom_reducers == []
        assert not result.metrics.failed

    def test_oversized_dominant_group_flagged_when_opted_in(self, cluster):
        chunks = [["a " * 100]]
        job = self._job(value_buffer_fraction=0.5)
        result = run_job(job, chunks, cluster, 4)
        assert len(result.metrics.oom_reducers) == 1

    def test_oversized_minority_not_flagged(self, cluster):
        # Route everything to reducer 0: the big group is < 1/3 of input.
        def to_zero(key, num_reducers):
            return 0

        chunks = [["a a a a a a " + " ".join(f"w{i}" for i in range(100))]]
        job = word_count_job(
            num_reducers=1,
            partitioner=to_zero,
            value_buffer_fraction=0.5,
        )
        result = run_job(job, chunks, cluster, 8)
        assert result.metrics.oom_reducers == []

    def test_quorum_gates_job_failure(self, cluster):
        chunks = [["a " * 50 + "b " * 50]]
        job = self._job(value_buffer_fraction=0.1)
        result = run_job(job, chunks, cluster, 4)
        # Both reducers flagged -> meets the floor quorum of 2.
        assert len(result.metrics.oom_reducers) == 2
        assert result.metrics.failed

    def test_forced_failure_flag(self, cluster):
        result = run_job(self._job(), [["a"]], cluster, 10)
        assert not result.metrics.failed
        result.metrics.forced_failure = True
        assert result.metrics.failed


class TestContext:
    def test_extra_cpu_charged(self, cluster):
        class Busy(Mapper):
            def map(self, record):
                self.context.add_cpu(100)
                return ()

        class Null(Reducer):
            def reduce(self, key, values):
                return ()

        job = MapReduceJob("busy", Busy, Null)
        result = run_job(job, [[1]], cluster, 10)
        assert result.metrics.map_tasks[0].cpu_ops == 1 + 100

    def test_context_exposes_cluster_facts(self, cluster):
        seen = {}

        class Probe(Mapper):
            def setup(self, context):
                super().setup(context)
                seen[context.machine] = (
                    context.num_machines,
                    context.memory_records,
                )

            def map(self, record):
                return ()

        class Null(Reducer):
            def reduce(self, key, values):
                return ()

        run_job(MapReduceJob("probe", Probe, Null), [[1], [2]], cluster, 99)
        assert seen == {0: (3, 99), 1: (3, 99)}

    def test_user_counters(self, cluster):
        class Counting(Mapper):
            def map(self, record):
                self.context.incr("seen")
                return ()

        class Null(Reducer):
            def reduce(self, key, values):
                return ()

        # Counters are per-task; just verify the API works.
        run_job(MapReduceJob("cnt", Counting, Null), [[1, 2]], cluster, 10)


class TestCloseThroughCombiner:
    def test_close_emitted_pairs_are_combined(self, cluster):
        """Pairs flushed from close() must pass through the combiner with
        the map()-emitted ones — the SP-Cube partial-aggregate path."""

        class PartialMapper(Mapper):
            def setup(self, context):
                super().setup(context)
                self.pending = 0

            def map(self, record):
                self.pending += record
                yield "k", record  # one live pair per record...

            def close(self):
                yield "k", self.pending  # ...plus one flushed partial

        class SumReducer(Reducer):
            def reduce(self, key, values):
                yield key, sum(values)

        def combiner(key, values):
            yield key, sum(values)

        job = MapReduceJob(
            "flush",
            PartialMapper,
            SumReducer,
            combiner=combiner,
            num_reducers=1,
        )
        result = run_job(job, [[1, 2], [4]], cluster, 10)
        # Each mapper's map() pairs AND its close() partial collapse into
        # a single combined record per map task.
        assert result.metrics.map_output_records == 2
        assert result.output == [("k", 14)]


class TestOOMQuorumFloor:
    def test_quorum_has_absolute_floor_of_two(self, cluster):
        # With 2 reducers and the default 25% fraction the proportional
        # quorum would be zero; the floor keeps it at 2.
        job = word_count_job(num_reducers=2)
        result = run_job(job, [["a"]], cluster, 10)
        assert result.metrics.oom_quorum == 2

    def test_fraction_takes_over_on_wide_jobs(self, cluster):
        job = word_count_job(num_reducers=12)
        result = run_job(job, [["a"]], cluster, 10)
        assert result.metrics.oom_quorum == 3

    def test_single_flagged_reducer_below_floor_survives(self, cluster):
        chunks = [["a " * 100]]
        job = word_count_job(num_reducers=2, value_buffer_fraction=0.5)
        result = run_job(job, chunks, cluster, 4)
        assert len(result.metrics.oom_reducers) == 1
        assert not result.metrics.failed


class TestStableHash:
    KEYS = [
        "word",
        "",
        0,
        -17,
        12345678901234567890,
        (3, ("a", "b")),
        (0b101, ("x", None)),
        None,
        True,
        ("nested", (1, (2, (3,)))),
    ]

    def test_deterministic_across_calls(self):
        for key in self.KEYS:
            assert stable_hash(key) == stable_hash(key)

    def test_equal_values_hash_equal(self):
        # Separately constructed but equal objects must agree — reducer
        # routing depends on it across map tasks and attempts.
        assert stable_hash((3, ("a", "b"))) == stable_hash(
            (1 + 2, tuple("ab"))
        )
        assert stable_hash("ab" + "c") == stable_hash("abc")

    def test_known_values_pinned(self):
        # CRC32-of-repr is process- and run-independent; pin a couple of
        # values so an accidental change to the scheme is caught.
        import zlib

        for key in self.KEYS:
            assert stable_hash(key) == zlib.crc32(repr(key).encode())

    def test_partitioner_in_range_for_all_key_types(self):
        for key in self.KEYS:
            for num_reducers in (1, 3, 7):
                assert 0 <= hash_partitioner(key, num_reducers) < num_reducers

    #: Hard-coded CRC32-of-repr values.  These pin the *scheme itself*:
    #: if a fast path ever diverges from crc32(repr(key)), partition
    #: assignments — and therefore every metric in EXPERIMENTS.md —
    #: silently shift.  Do not regenerate these from the implementation.
    PINNED = {
        "word": 1882384465,
        0: 4108050209,
        -17: 2973019676,
        (3, ("a", "b")): 2300705876,
        ("k", 42): 2536021665,
        None: 3751981041,
        True: 1573839795,
    }

    def test_literal_pins(self):
        for key, expected in self.PINNED.items():
            assert stable_hash(key) == expected, key

    def test_memo_distinguishes_equal_keys_of_different_type(self):
        # 1 == 1.0 == True, but their reprs (and hashes) differ; a memo
        # keyed on equality alone would conflate them.  Floats skip the
        # fast paths entirely (-0.0 == 0.0 with different reprs).
        import zlib

        for key in [(1,), (1.0,), (True,), (-0.0,), (0.0,), (0,)]:
            expected = zlib.crc32(repr(key).encode())
            assert stable_hash(key) == expected, key
            assert stable_hash(key) == expected, key  # memoized call too

    def test_fast_path_strings_match_repr_scheme(self):
        import zlib

        for key in ["", "plain", "with space", "quote's", "back\\slash",
                    "tab\there", "unicode-é"]:
            assert stable_hash(key) == zlib.crc32(repr(key).encode()), key


class TestOrderedKeys:
    """The typed fallback sort for mixed-type key spaces.

    Reducers iterate keys in sorted order; when keys are not mutually
    comparable the engine falls back to a typed sort token that must be
    consistent across processes (a repr of a float or a dict is, an
    ``object`` default repr with its memory address is not).
    """

    def test_numbers_sort_numerically_not_lexically(self):
        from repro.mapreduce.engine import _ordered_keys

        assert _ordered_keys({10: 0, 2: 0, -3: 0}) == [-3, 2, 10]

    def test_mixed_types_sort_deterministically(self):
        from repro.mapreduce.engine import _ordered_keys

        keys = ["b", 2, None, (1, "x"), "a", 1.5, (1, "w"), b"raw"]
        once = _ordered_keys(dict.fromkeys(keys, 0))
        again = _ordered_keys(dict.fromkeys(reversed(keys), 0))
        assert once == again
        # Bands: None < numbers < str < bytes < tuple.
        assert once[0] is None
        assert once[1:3] == [1.5, 2]
        assert once[3:5] == ["a", "b"]
        assert once[5] == b"raw"
        assert once[6:] == [(1, "w"), (1, "x")]

    def test_tuples_compare_recursively(self):
        from repro.mapreduce.engine import _ordered_keys

        keys = [(1, None), (1, 0), (1, "a"), (0, "z")]
        assert _ordered_keys(dict.fromkeys(keys, 0)) == [
            (0, "z"), (1, None), (1, 0), (1, "a"),
        ]

    def test_comparable_keys_keep_native_order(self):
        from repro.mapreduce.engine import _ordered_keys

        assert _ordered_keys({"c": 0, "a": 0, "b": 0}) == ["a", "b", "c"]


class TestMixedKeyOrdering:
    def test_uncomparable_keys_fall_back_to_repr(self, cluster):
        def map_fn(record):
            yield record, 1

        def reduce_fn(key, values):
            yield key, len(values)

        job = MapReduceJob.from_functions(
            "mixed", map_fn, reduce_fn, num_reducers=1
        )
        result = run_job(job, [[1, "a", (2,)]], cluster, 10)
        assert len(result.output) == 3
