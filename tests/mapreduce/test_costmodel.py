"""Cost model arithmetic."""

import pytest

from repro.mapreduce import CostModel


class TestCostModel:
    def test_map_task_scales_with_ops_and_bytes(self):
        model = CostModel(record_scale=1.0)
        base = model.map_task_seconds(0, 0)
        assert base == 0.0
        assert model.map_task_seconds(1000, 0) > 0
        assert model.map_task_seconds(1000, 1000) > model.map_task_seconds(
            1000, 0
        )

    def test_record_scale_multiplies(self):
        small = CostModel(record_scale=1.0)
        big = CostModel(record_scale=100.0)
        assert big.map_task_seconds(10, 10) == pytest.approx(
            100 * small.map_task_seconds(10, 10)
        )

    def test_shuffle_gated_by_max_reducer(self):
        model = CostModel(record_scale=1.0)
        assert model.shuffle_seconds(2_000_000) == pytest.approx(
            2_000_000 * model.shuffle_byte_seconds
        )

    def test_spill_penalty_additive(self):
        model = CostModel(record_scale=1.0)
        without = model.reduce_task_seconds(100, 0, 0)
        with_spill = model.reduce_task_seconds(100, 50, 0)
        assert with_spill - without == pytest.approx(
            50 * model.spill_record_seconds
        )

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.record_scale = 5

    def test_startup_constant_exists(self):
        assert CostModel().round_startup_seconds > 0
