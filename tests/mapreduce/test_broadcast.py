"""The broadcast handle and the executor's task batching.

Together these are the IPC half of the round-2 performance layer: a
:class:`~repro.mapreduce.Broadcast` pickles a large read-only value once
per worker process instead of once per task reference, and
:func:`~repro.mapreduce.executor.batch_slices` groups contiguous tasks
into one pool submission each.  Both are pure plumbing — the tests pin
the sharing/caching behaviour *and* that nothing observable changes.
"""

import os
import pickle

import pytest

from repro.mapreduce import Broadcast, unwrap
from repro.mapreduce.broadcast import _CACHE
from repro.mapreduce.executor import _TaskBatch, batch_slices


class TestBroadcast:
    def test_driver_side_value_is_the_original_object(self):
        payload = {"sketch": list(range(100))}
        handle = Broadcast(payload)
        assert handle.value is payload
        assert unwrap(handle) is payload

    def test_unwrap_passes_plain_values_through(self):
        payload = object()
        assert unwrap(payload) is payload

    def test_handle_pickles_small_regardless_of_value_size(self):
        big = Broadcast(["x" * 64] * 10_000)
        blob = pickle.dumps(big)
        assert len(blob) < 256
        assert len(blob) < len(pickle.dumps(big.value)) // 100

    def test_publish_is_idempotent(self):
        handle = Broadcast([1, 2, 3])
        pickle.dumps(handle)
        path = handle._path
        assert os.path.exists(path)
        pickle.dumps(handle)
        assert handle._path == path

    def test_roundtrip_resolves_to_equal_value(self):
        payload = {"rows": [(1, "a"), (2, "b")]}
        restored = pickle.loads(pickle.dumps(Broadcast(payload)))
        assert restored.value == payload

    def test_resolution_is_lazy_and_cached_per_process(self):
        handle = Broadcast({"big": "state"})
        restored = pickle.loads(pickle.dumps(handle))
        # In the driver process the cache is pre-seeded at construction:
        # the restored handle resolves to the original object without
        # touching the spill file.
        assert restored._value is Broadcast._UNRESOLVED  # not yet resolved
        assert restored.value is handle.value

    def test_worker_side_resolution_reads_spill_once(self):
        handle = Broadcast([1, 2, 3])
        state = pickle.loads(pickle.dumps(handle)).__getstate__()
        # Simulate a fresh worker: drop the pre-seeded cache entry so the
        # next access must come from the spill file.
        _CACHE.pop(handle._token, None)
        first = pickle.loads(pickle.dumps(handle))
        second = pickle.loads(pickle.dumps(handle))
        assert first.value == [1, 2, 3]
        # The second handle must share the first resolution, not re-read.
        assert second.value is first.value
        assert state[1] == handle._path

    def test_two_broadcasts_do_not_collide(self):
        a, b = Broadcast("alpha"), Broadcast("beta")
        ra = pickle.loads(pickle.dumps(a))
        rb = pickle.loads(pickle.dumps(b))
        assert (ra.value, rb.value) == ("alpha", "beta")


class TestBroadcastStats:
    """IPC counters feeding the telemetry layer."""

    def setup_method(self):
        from repro.mapreduce.broadcast import reset_broadcast_stats

        reset_broadcast_stats()

    def test_publish_and_cache_hit_counted(self):
        from repro.mapreduce.broadcast import broadcast_stats

        handle = Broadcast({"k": "v"})
        pickle.dumps(handle)  # publish
        restored = pickle.loads(pickle.dumps(handle))
        _ = restored.value  # resolves via the pre-seeded driver cache
        stats = broadcast_stats()
        assert stats["publishes"] == 1
        assert stats["cache_hits"] >= 1

    def test_spill_load_counted_when_cache_is_cold(self):
        from repro.mapreduce.broadcast import broadcast_stats

        handle = Broadcast([1, 2, 3])
        pickle.dumps(handle)
        _CACHE.pop(handle._token, None)  # simulate a fresh worker
        restored = pickle.loads(pickle.dumps(handle))
        _ = restored.value
        assert broadcast_stats()["spill_loads"] == 1

    def test_stats_snapshot_is_a_copy(self):
        from repro.mapreduce.broadcast import broadcast_stats

        stats = broadcast_stats()
        stats["publishes"] = 999
        assert broadcast_stats()["publishes"] != 999


class TestBatchSlices:
    def test_even_split(self):
        assert batch_slices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_earlier_batches(self):
        assert batch_slices(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_batches_than_tasks_collapses(self):
        assert batch_slices(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_single_batch(self):
        assert batch_slices(5, 1) == [(0, 5)]

    @pytest.mark.parametrize("num_tasks", [1, 2, 7, 16, 100])
    @pytest.mark.parametrize("num_batches", [1, 2, 3, 8])
    def test_slices_cover_every_task_exactly_once(
        self, num_tasks, num_batches
    ):
        slices = batch_slices(num_tasks, num_batches)
        covered = [
            index for start, stop in slices for index in range(start, stop)
        ]
        assert covered == list(range(num_tasks))


class TestTaskBatch:
    def test_runs_tasks_in_order(self):
        order = []

        def make(i):
            def task():
                order.append(i)
                return i * i

            return task

        batch = _TaskBatch([make(i) for i in range(5)])
        assert batch() == [0, 1, 4, 9, 16]
        assert order == [0, 1, 2, 3, 4]

    def test_empty_batch(self):
        assert _TaskBatch([])() == []

    def test_shared_state_pickles_once_per_batch(self):
        """The batch's one pickle.dumps memoizes shared objects: N tasks
        referencing the same big state serialize barely larger than one."""
        big = ["y" * 64] * 5_000

        single = len(pickle.dumps(_TaskBatch([_Closing(big)])))
        batched = len(pickle.dumps(_TaskBatch([_Closing(big)] * 8)))
        assert batched < single * 2


class _Closing:
    """Picklable task closing over (potentially shared) state."""

    def __init__(self, state):
        self.state = state

    def __call__(self):
        return len(self.state)
