"""Fault injection and fault tolerance: plans, retries, speculation."""

import pytest

from repro.mapreduce import (
    ClusterConfig,
    CostModel,
    FaultPlan,
    FaultSpec,
    Mapper,
    MapReduceJob,
    PairFormatError,
    Reducer,
    RetryPolicy,
    run_job,
)


def word_count_job(**kwargs):
    def map_fn(record):
        for word in record.split():
            yield word, 1

    def reduce_fn(key, values):
        yield key, sum(values)

    return MapReduceJob.from_functions("wordcount", map_fn, reduce_fn, **kwargs)


def cluster_with(fault_plan=None, retry_policy=None, cost_model=None, k=3):
    return ClusterConfig(
        num_machines=k,
        cost_model=cost_model or CostModel(),
        fault_plan=fault_plan,
        retry_policy=retry_policy or RetryPolicy(),
    )


CHUNKS = [["a b a c"], ["b c d"], ["a d"]]


def baseline_run(**job_kwargs):
    return run_job(word_count_job(**job_kwargs), CHUNKS, cluster_with(), 10)


class TestFaultPlan:
    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.crashes("j", "map", 0, 0)
        assert plan.slowdown_factor("j", "map", 0, 0) == 1.0
        assert not plan.drops_read("p", 0)

    def test_explicit_crash_spec_targets_one_attempt(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", task=1, attempt=0)])
        assert plan.crashes("any-job", "map", 1, 0)
        assert not plan.crashes("any-job", "map", 1, 1)  # retry succeeds
        assert not plan.crashes("any-job", "map", 0, 0)
        assert not plan.crashes("any-job", "reduce", 1, 0)

    def test_wildcard_attempt_faults_every_attempt(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=None)])
        for attempt in range(10):
            assert plan.crashes("j", "map", 0, attempt)

    def test_job_scoped_spec(self):
        plan = FaultPlan([FaultSpec("crash", job="sp-cube", phase="reduce")])
        assert plan.crashes("sp-cube", "reduce", 0, 0)
        assert not plan.crashes("sp-sketch", "reduce", 0, 0)

    def test_straggle_spec_reports_slowdown(self):
        plan = FaultPlan(
            [FaultSpec("straggle", phase="map", task=2, slowdown=6.0)]
        )
        assert plan.slowdown_factor("j", "map", 2, 0) == 6.0
        assert plan.slowdown_factor("j", "map", 1, 0) == 1.0

    def test_seeded_decisions_are_deterministic(self):
        a = FaultPlan(seed=7, crash_prob=0.3, straggle_prob=0.3)
        b = FaultPlan(seed=7, crash_prob=0.3, straggle_prob=0.3)
        grid = [
            ("job-%d" % j, phase, task, attempt)
            for j in range(3)
            for phase in ("map", "reduce")
            for task in range(5)
            for attempt in range(3)
        ]
        assert [a.crashes(*point) for point in grid] == [
            b.crashes(*point) for point in grid
        ]
        assert [a.slowdown_factor(*point) for point in grid] == [
            b.slowdown_factor(*point) for point in grid
        ]

    def test_different_seeds_differ(self):
        grid = [("j", "map", task, attempt)
                for task in range(50) for attempt in range(4)]
        a = FaultPlan(seed=1, crash_prob=0.5)
        b = FaultPlan(seed=2, crash_prob=0.5)
        assert [a.crashes(*p) for p in grid] != [b.crashes(*p) for p in grid]

    def test_probability_roughly_honoured(self):
        plan = FaultPlan(seed=3, crash_prob=0.25)
        hits = sum(
            plan.crashes("j", "map", task, 0) for task in range(2000)
        )
        assert 0.15 < hits / 2000 < 0.35

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_prob"):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(ValueError, match="straggle_slowdown"):
            FaultPlan(straggle_slowdown=0.5)
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode")
        with pytest.raises(ValueError, match="slowdown"):
            FaultSpec("straggle", slowdown=0.9)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(backoff_base_seconds=2.0, backoff_factor=3.0)
        assert policy.backoff_seconds(1) == 2.0
        assert policy.backoff_seconds(2) == 6.0
        assert policy.backoff_seconds(3) == 18.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="speculation_threshold"):
            RetryPolicy(speculation_threshold=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestCrashRetry:
    def test_map_crash_output_identical(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])
        faulted = run_job(
            word_count_job(), CHUNKS, cluster_with(plan), 10
        )
        assert sorted(faulted.output) == sorted(baseline_run().output)

    def test_map_crash_counters_and_chain_time(self):
        clean = baseline_run()
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])
        cluster = cluster_with(plan)
        faulted = run_job(word_count_job(), CHUNKS, cluster, 10)

        metrics = faulted.metrics
        assert metrics.attempts == clean.metrics.attempts + 1
        assert metrics.killed_tasks == 1
        assert metrics.recovered == 1
        assert len(metrics.killed_attempts) == 1
        assert metrics.killed_attempts[0].killed
        assert metrics.killed_attempts[0].attempt == 0

        nominal = clean.metrics.map_tasks[0].seconds
        winner = metrics.map_tasks[0]
        assert winner.attempt == 1
        assert winner.seconds == pytest.approx(
            2 * nominal
            + cluster.cost_model.crash_detection_seconds
            + cluster.retry_policy.backoff_seconds(1)
        )
        assert metrics.total_seconds > clean.metrics.total_seconds

    def test_two_consecutive_crashes_accumulate_backoff(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", phase="map", task=0, attempt=0),
                FaultSpec("crash", phase="map", task=0, attempt=1),
            ]
        )
        cluster = cluster_with(plan)
        clean = baseline_run()
        faulted = run_job(word_count_job(), CHUNKS, cluster, 10)
        nominal = clean.metrics.map_tasks[0].seconds
        cost = cluster.cost_model
        policy = cluster.retry_policy
        assert faulted.metrics.map_tasks[0].seconds == pytest.approx(
            3 * nominal
            + 2 * cost.crash_detection_seconds
            + policy.backoff_seconds(1)
            + policy.backoff_seconds(2)
        )
        assert sorted(faulted.output) == sorted(clean.output)

    def test_reduce_crash_output_identical(self):
        plan = FaultPlan(
            [FaultSpec("crash", phase="reduce", task=0, attempt=0)]
        )
        faulted = run_job(word_count_job(), CHUNKS, cluster_with(plan), 10)
        clean = baseline_run()
        assert sorted(faulted.output) == sorted(clean.output)
        assert faulted.metrics.recovered == 1
        assert faulted.metrics.reduce_tasks[0].attempt == 1
        assert faulted.metrics.total_seconds > clean.metrics.total_seconds

    def test_crash_with_combiner_output_identical(self):
        def combiner(key, values):
            yield key, sum(values)

        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])
        faulted = run_job(
            word_count_job(combiner=combiner), CHUNKS, cluster_with(plan), 10
        )
        assert sorted(faulted.output) == sorted(baseline_run().output)

    def test_mapper_close_state_rebuilt_per_attempt(self):
        """A crashed attempt's close() flush must not leak into the next
        attempt — the SP-Cube map-side partial-aggregate pattern."""

        class PartialAggMapper(Mapper):
            def setup(self, context):
                super().setup(context)
                self.partials = {}

            def map(self, record):
                self.partials["g"] = self.partials.get("g", 0) + record
                return ()

            def close(self):
                yield from sorted(self.partials.items())

        class MergeReducer(Reducer):
            def reduce(self, key, values):
                yield key, sum(values)

        job = MapReduceJob(
            "partials", PartialAggMapper, MergeReducer, num_reducers=1
        )
        chunks = [[1, 2, 3], [10]]
        clean = run_job(job, chunks, cluster_with(), 10)
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])
        faulted = run_job(job, chunks, cluster_with(plan), 10)
        # Double-flushing the first attempt's partials would give 22.
        assert clean.output == [("g", 16)]
        assert faulted.output == [("g", 16)]

    def test_seeded_faulted_runs_are_reproducible(self):
        plan = FaultPlan(seed=11, crash_prob=0.4, straggle_prob=0.2)
        first = run_job(word_count_job(), CHUNKS, cluster_with(plan), 10)
        second = run_job(word_count_job(), CHUNKS, cluster_with(plan), 10)
        assert first.output == second.output
        assert first.metrics.attempts == second.metrics.attempts
        assert first.metrics.total_seconds == second.metrics.total_seconds


class TestSpeculation:
    #: Launch delay small enough that the backup beats a slowed original
    #: even on tiny simulated tasks.
    COST = CostModel(speculation_launch_seconds=1e-4)

    def test_backup_wins_against_heavy_straggler(self):
        # Straggle task 0 — it holds the biggest chunk, so it determines
        # the map-phase time and the backup's launch delay must show up
        # in the total.
        plan = FaultPlan(
            [FaultSpec("straggle", phase="map", task=0, slowdown=50.0)]
        )
        cluster = cluster_with(plan, cost_model=self.COST)
        clean = run_job(
            word_count_job(), CHUNKS, cluster_with(cost_model=self.COST), 10
        )
        faulted = run_job(word_count_job(), CHUNKS, cluster, 10)

        metrics = faulted.metrics
        nominal = clean.metrics.map_tasks[0].seconds
        assert metrics.speculative_wins == 1
        assert metrics.killed_tasks == 1  # the slowed original is killed
        assert metrics.attempts == clean.metrics.attempts + 1
        assert metrics.recovered == 1
        assert metrics.map_tasks[0].speculative
        assert metrics.map_tasks[0].seconds == pytest.approx(
            self.COST.speculation_launch_seconds + nominal
        )
        assert sorted(faulted.output) == sorted(clean.output)
        assert metrics.total_seconds > clean.metrics.total_seconds

    def test_mild_straggler_runs_without_backup(self):
        plan = FaultPlan(
            [FaultSpec("straggle", phase="map", task=1, slowdown=1.2)]
        )
        cluster = cluster_with(
            plan, retry_policy=RetryPolicy(speculation_threshold=1.5)
        )
        clean = baseline_run()
        faulted = run_job(word_count_job(), CHUNKS, cluster, 10)
        assert faulted.metrics.speculative_wins == 0
        assert faulted.metrics.attempts == clean.metrics.attempts
        assert faulted.metrics.map_tasks[1].seconds == pytest.approx(
            1.2 * clean.metrics.map_tasks[1].seconds
        )

    def test_speculation_can_be_disabled(self):
        plan = FaultPlan(
            [FaultSpec("straggle", phase="map", task=1, slowdown=50.0)]
        )
        cluster = cluster_with(
            plan,
            cost_model=self.COST,
            retry_policy=RetryPolicy(speculation_enabled=False),
        )
        clean = run_job(
            word_count_job(), CHUNKS, cluster_with(cost_model=self.COST), 10
        )
        faulted = run_job(word_count_job(), CHUNKS, cluster, 10)
        assert faulted.metrics.speculative_wins == 0
        assert faulted.metrics.map_tasks[1].seconds == pytest.approx(
            50.0 * clean.metrics.map_tasks[1].seconds
        )


class TestRetryExhaustion:
    def test_map_exhaustion_aborts_job(self):
        plan = FaultPlan(
            [FaultSpec("crash", phase="map", task=0, attempt=None)]
        )
        policy = RetryPolicy(max_attempts=3)
        result = run_job(
            word_count_job(), CHUNKS, cluster_with(plan, policy), 10
        )
        metrics = result.metrics
        assert metrics.aborted
        assert metrics.failed
        assert "map task 0" in metrics.abort_reason
        assert result.output == []
        assert result.reducer_outputs == []
        assert metrics.attempts == 3
        assert metrics.killed_tasks == 3
        # The dead chain still consumed simulated time.
        assert metrics.total_seconds > 0
        assert metrics.map_phase_seconds > (
            3 * cluster_with().cost_model.crash_detection_seconds
        )

    def test_reduce_exhaustion_aborts_after_map(self):
        plan = FaultPlan(
            [FaultSpec("crash", phase="reduce", task=1, attempt=None)]
        )
        result = run_job(
            word_count_job(), CHUNKS, cluster_with(plan), 10
        )
        metrics = result.metrics
        assert metrics.aborted
        assert "reduce task 1" in metrics.abort_reason
        assert result.output == []
        assert len(metrics.map_tasks) == len(CHUNKS)  # map completed
        assert metrics.map_output_records > 0

    def test_single_attempt_policy(self):
        plan = FaultPlan([FaultSpec("crash", phase="map", task=0)])
        policy = RetryPolicy(max_attempts=1)
        result = run_job(
            word_count_job(), CHUNKS, cluster_with(plan, policy), 10
        )
        assert result.metrics.aborted


class TestPairValidation:
    def _null_reduce(self, key, values):
        return ()

    def test_mapper_emitting_non_pair_is_named(self):
        job = MapReduceJob.from_functions(
            "badmap", lambda record: [42], self._null_reduce
        )
        with pytest.raises(PairFormatError, match=r"'badmap'.*map task 0.*42"):
            run_job(job, [[1]], cluster_with(), 10)

    def test_reducer_emitting_triple_is_named(self):
        job = MapReduceJob.from_functions(
            "badreduce",
            lambda record: [(record, 1)],
            lambda key, values: [(key, 1, 2)],
        )
        with pytest.raises(PairFormatError, match="reduce task"):
            run_job(job, [["x"]], cluster_with(), 10)

    def test_combiner_emitting_non_pair_is_named(self):
        def combiner(key, values):
            yield key  # not a pair

        job = word_count_job(combiner=combiner)
        with pytest.raises(PairFormatError, match="combiner"):
            run_job(job, [["a"]], cluster_with(), 10)

    def test_error_is_a_type_error_for_backward_compat(self):
        assert issubclass(PairFormatError, TypeError)
