"""Checkpoint persistence, manifest atomicity, and DFS failure domains."""

import pytest

from repro.mapreduce.checkpoint import CheckpointManager
from repro.mapreduce.cluster import NodeTopology
from repro.mapreduce.dfs import DistributedFileSystem, ReplicaExhausted
from repro.mapreduce.faults import FaultPlan, FaultSpec


def make_manager(**kwargs):
    dfs = DistributedFileSystem()
    return CheckpointManager(dfs, run_id="t", **kwargs), dfs


OUTPUTS = [[("a", 1), ("b", 2)], [("c", 3)]]


class TestCheckpointManager:
    def test_save_and_load_round_trip(self):
        manager, _dfs = make_manager()
        manager.save_round(0, "job-a", OUTPUTS, clock=12.5, trace_watermark=7)
        loaded = manager.load_round(0)
        assert loaded is not None
        assert loaded["manifest"]["job"] == "job-a"
        assert loaded["manifest"]["num_parts"] == 2
        assert loaded["manifest"]["clock"] == 12.5
        assert loaded["manifest"]["trace_watermark"] == 7
        assert loaded["outputs"] == {0: [("a", 1), ("b", 2)], 1: [("c", 3)]}

    def test_missing_round_loads_as_none(self):
        manager, _dfs = make_manager()
        assert manager.load_round(0) is None

    def test_partial_checkpoint_without_manifest_is_ignored(self):
        # A crash between the part writes and the manifest commit leaves
        # parts on the DFS but no manifest: the resume must see nothing.
        manager, dfs = make_manager()
        manager.save_part(0, 0, OUTPUTS[0])
        manager.save_part(0, 1, OUTPUTS[1])
        assert dfs.exists(manager.part_path(0, 0))
        assert manager.load_round(0) is None

    def test_manifest_naming_a_missing_part_is_ignored(self):
        manager, dfs = make_manager()
        manager.save_round(0, "job-a", OUTPUTS)
        dfs.delete(manager.part_path(0, 1))
        assert manager.load_round(0) is None

    def test_malformed_manifest_is_ignored(self):
        manager, dfs = make_manager()
        manager.save_round(0, "job-a", OUTPUTS)
        dfs.write(manager.manifest_path(0), [{"round": 0}])
        assert manager.load_round(0) is None
        dfs.write(manager.manifest_path(0), [])
        assert manager.load_round(0) is None

    def test_unreadable_part_is_ignored(self):
        # Node losses exhausted a part's replicas: the checkpoint is void.
        dfs = DistributedFileSystem(
            fault_plan=FaultPlan(
                specs=[FaultSpec("read-drop", path="ckpt/t/round-0/part-0")]
            )
        )
        manager = CheckpointManager(dfs, run_id="t")
        manager.save_round(0, "job-a", OUTPUTS)
        assert manager.load_round(0) is None

    def test_discard_round_removes_manifest_first(self):
        manager, dfs = make_manager()
        manager.save_round(0, "job-a", OUTPUTS)
        manager.discard_round(0)
        assert manager.load_round(0) is None
        assert dfs.list_files("ckpt/t/round-0/") == []

    def test_completed_rounds(self):
        manager, _dfs = make_manager()
        manager.save_round(0, "a", OUTPUTS)
        manager.save_round(2, "c", OUTPUTS)
        manager.save_part(1, 0, OUTPUTS[0])  # uncommitted: no manifest
        assert manager.completed_rounds() == [0, 2]

    def test_disabled_manager_writes_nothing(self):
        manager, dfs = make_manager(enabled=False)
        manager.save_round(0, "a", OUTPUTS)
        manager.save_part(0, 0, OUTPUTS[0])
        assert len(dfs) == 0


class TestDfsFailureDomains:
    def topo(self, nodes=4):
        return NodeTopology(num_nodes=nodes, num_machines=nodes)

    def test_placement_pins_replicas_to_nodes(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.write("x", [1, 2])
        placement = dfs._placement["x"]
        assert len(placement) == dfs.replication
        assert all(0 <= n < 4 for n in placement)

    def test_node_death_re_replicates_surviving_paths(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.write("x", [1, 2])
        victim = dfs._placement["x"][0]
        dfs.mark_nodes_dead([victim])
        assert victim not in dfs._placement["x"]
        assert dfs.re_replications >= 1
        assert dfs.read("x") == [1, 2]

    def test_losing_every_replica_node_exhausts_the_path(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.write("x", [1, 2])
        dfs.mark_nodes_dead(set(dfs._placement["x"]))
        with pytest.raises(ReplicaExhausted, match="node failures"):
            dfs.read("x")
        assert dfs.failed_reads == 1

    def test_rewrite_after_loss_restores_the_path(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.write("x", [1])
        dfs.mark_nodes_dead(set(dfs._placement["x"]))
        dfs.write("x", [2])
        assert dfs.read("x") == [2]
        # The new placement avoids dead nodes entirely.
        assert not set(dfs._placement["x"]) & dfs.dead_nodes

    def test_writes_after_death_avoid_dead_nodes(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.mark_nodes_dead([0, 1])
        dfs.write("y", [1])
        assert not set(dfs._placement["y"]) & {0, 1}

    def test_without_topology_node_death_is_a_noop(self):
        dfs = DistributedFileSystem()
        dfs.write("x", [1])
        dfs.mark_nodes_dead([0, 1, 2])
        assert dfs.read("x") == [1]

    def test_delete_clears_placement_and_lost_state(self):
        dfs = DistributedFileSystem(topology=self.topo())
        dfs.write("x", [1])
        dfs.mark_nodes_dead(set(dfs._placement["x"]))
        dfs.delete("x")
        assert "x" not in dfs
        assert "x" not in dfs._placement
        dfs.write("x", [5])
        assert dfs.read("x") == [5]

    def test_delete_prefix_counts(self):
        dfs = DistributedFileSystem()
        dfs.write("ckpt/r/round-0/part-0", [1])
        dfs.write("ckpt/r/round-0/MANIFEST", [1])
        dfs.write("ckpt/r/round-1/part-0", [1])
        assert dfs.delete_prefix("ckpt/r/round-0/") == 2
        assert dfs.list_files() == ["ckpt/r/round-1/part-0"]

    def test_preferred_node_read_is_content_identical(self):
        plan = FaultPlan(seed=1, read_drop_prob=0.3)
        dfs = DistributedFileSystem(topology=self.topo(), fault_plan=plan)
        dfs.write("x", [1, 2, 3])
        node = dfs._placement["x"][1]
        assert dfs.read("x", preferred_node=node) == dfs.read("x")
