"""Aggregate functions: semantics of each implementation."""

import math

import pytest

from repro.aggregates import (
    AggregateKind,
    Average,
    Count,
    CountDistinct,
    Max,
    Median,
    Min,
    Sum,
    TopKFrequent,
    Variance,
    get_aggregate,
    registered_aggregates,
)


def fold(fn, values):
    state = fn.create()
    for value in values:
        state = fn.add(state, value)
    return fn.finalize(state)


class TestCount:
    def test_empty(self):
        assert fold(Count(), []) == 0

    def test_counts_values_not_sums(self):
        assert fold(Count(), [5, 5, 5]) == 3

    def test_kind(self):
        assert Count().kind is AggregateKind.DISTRIBUTIVE


class TestSum:
    def test_empty_is_zero(self):
        assert fold(Sum(), []) == 0

    def test_sum(self):
        assert fold(Sum(), [1, 2, 3.5]) == 6.5


class TestMinMax:
    def test_min(self):
        assert fold(Min(), [3, 1, 2]) == 1

    def test_max(self):
        assert fold(Max(), [3, 1, 2]) == 3

    def test_empty_min_is_none(self):
        assert fold(Min(), []) is None

    def test_empty_max_is_none(self):
        assert fold(Max(), []) is None

    def test_min_merge_identity(self):
        fn = Min()
        assert fn.merge(fn.create(), 5) == 5


class TestAverage:
    def test_average(self):
        assert fold(Average(), [1, 2, 3]) == 2.0

    def test_empty_is_none(self):
        assert fold(Average(), []) is None

    def test_merge_combines_sums_and_counts(self):
        fn = Average()
        left = fn.add(fn.create(), 10)
        right = fn.add(fn.add(fn.create(), 2), 3)
        assert fn.finalize(fn.merge(left, right)) == 5.0

    def test_state_size(self):
        fn = Average()
        assert fn.state_size(fn.create()) == 2

    def test_kind(self):
        assert Average().kind is AggregateKind.ALGEBRAIC


class TestVariance:
    def test_constant_values_zero_variance(self):
        assert fold(Variance(), [4, 4, 4]) == 0.0

    def test_known_variance(self):
        assert fold(Variance(), [1, 3]) == pytest.approx(1.0)

    def test_empty_is_none(self):
        assert fold(Variance(), []) is None

    def test_never_negative(self):
        # Floating cancellation could go slightly negative; clamped.
        values = [1e9 + i * 1e-3 for i in range(10)]
        assert fold(Variance(), values) >= 0.0


class TestTopK:
    def test_most_frequent(self):
        result = fold(TopKFrequent(2), [1, 1, 1, 2, 2, 3])
        assert result == (1, 2)

    def test_tie_broken_by_value(self):
        result = fold(TopKFrequent(1), [2, 2, 1, 1])
        assert result == (1,)

    def test_k_larger_than_distinct(self):
        assert fold(TopKFrequent(5), [1, 2]) == (1, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKFrequent(0)

    def test_holistic_and_not_compact(self):
        fn = TopKFrequent()
        assert fn.kind is AggregateKind.HOLISTIC
        assert not fn.compact_state

    def test_state_size_grows(self):
        fn = TopKFrequent()
        state = fn.add(fn.add(fn.create(), 1), 2)
        assert fn.state_size(state) == 2

    def test_add_does_not_mutate_input_state(self):
        fn = TopKFrequent()
        state = fn.add(fn.create(), 1)
        fn.add(state, 2)
        assert dict(state) == {1: 1}


class TestMedian:
    def test_odd(self):
        assert fold(Median(), [3, 1, 2]) == 2

    def test_even_averages(self):
        assert fold(Median(), [1, 2, 3, 4]) == 2.5

    def test_empty_is_none(self):
        assert fold(Median(), []) is None


class TestCountDistinct:
    def test_distinct(self):
        assert fold(CountDistinct(), [1, 1, 2, 3, 3]) == 3

    def test_empty(self):
        assert fold(CountDistinct(), []) == 0

    def test_merge_unions(self):
        fn = CountDistinct()
        left = fn.add(fn.create(), 1)
        right = fn.add(fn.create(), 2)
        assert fn.finalize(fn.merge(left, right)) == 2


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_aggregate("count").name == "count"
        assert get_aggregate("avg").name == "avg"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown aggregate"):
            get_aggregate("nope")

    def test_registry_copy_is_isolated(self):
        snapshot = registered_aggregates()
        snapshot["bogus"] = None
        assert "bogus" not in registered_aggregates()

    def test_all_expected_names_registered(self):
        names = set(registered_aggregates())
        assert {"count", "sum", "min", "max", "avg", "variance",
                "top_k", "median", "count_distinct"} <= names

    def test_min_identity_is_infinite(self):
        assert Min().create() == math.inf
