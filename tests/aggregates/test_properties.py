"""Property-based tests of the merge protocol.

The correctness of every distributed algorithm in this repository rests on
``merge`` being associative and commutative with ``create()`` as identity,
and on "fold then merge" equaling "fold everything" — exactly what these
hypothesis properties pin down, for every registered aggregate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import registered_aggregates

AGGREGATES = sorted(registered_aggregates().values(), key=lambda f: f.name)
measures = st.lists(st.integers(min_value=-100, max_value=100), max_size=30)


def fold_state(fn, values):
    state = fn.create()
    for value in values:
        state = fn.add(state, value)
    return state


@pytest.mark.parametrize("fn", AGGREGATES, ids=lambda f: f.name)
class TestMergeProtocol:
    @given(values=measures)
    @settings(max_examples=40)
    def test_identity(self, fn, values):
        state = fold_state(fn, values)
        assert fn.finalize(fn.merge(state, fn.create())) == fn.finalize(state)
        assert fn.finalize(fn.merge(fn.create(), state)) == fn.finalize(state)

    @given(left=measures, right=measures)
    @settings(max_examples=40)
    def test_commutative(self, fn, left, right):
        a = fold_state(fn, left)
        b = fold_state(fn, right)
        assert fn.finalize(fn.merge(a, b)) == fn.finalize(fn.merge(b, a))

    @given(a=measures, b=measures, c=measures)
    @settings(max_examples=40)
    def test_associative(self, fn, a, b, c):
        sa, sb, sc = (fold_state(fn, v) for v in (a, b, c))
        lhs = fn.merge(fn.merge(sa, sb), sc)
        rhs = fn.merge(sa, fn.merge(sb, sc))
        assert fn.finalize(lhs) == fn.finalize(rhs)

    @given(values=measures, split=st.integers(min_value=0, max_value=30))
    @settings(max_examples=40)
    def test_partition_invariance(self, fn, values, split):
        """Splitting the fold anywhere and merging matches a single fold —
        the exact property map-side partial aggregation relies on."""
        split = min(split, len(values))
        merged = fn.merge(
            fold_state(fn, values[:split]), fold_state(fn, values[split:])
        )
        expected = fn.finalize(fold_state(fn, values))
        got = fn.finalize(merged)
        if isinstance(expected, float) and isinstance(got, float):
            assert got == pytest.approx(expected)
        else:
            assert got == expected

    @given(values=measures)
    @settings(max_examples=40)
    def test_add_equals_merge_of_singleton(self, fn, values):
        """fn.add(s, v) == fn.merge(s, singleton(v)) for all states."""
        state = fold_state(fn, values)
        singleton = fn.add(fn.create(), 7)
        via_add = fn.finalize(fn.add(state, 7))
        via_merge = fn.finalize(fn.merge(state, singleton))
        if isinstance(via_add, float) and isinstance(via_merge, float):
            assert via_merge == pytest.approx(via_add)
        else:
            assert via_merge == via_add
