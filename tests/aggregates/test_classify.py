"""Aggregate support policy (Section 7)."""

import pytest

from repro.aggregates import (
    Average,
    Count,
    Median,
    Sum,
    TopKFrequent,
    UnsupportedAggregateError,
    check_spcube_support,
    supports_partial_aggregation,
)


class TestSupportsPartialAggregation:
    def test_distributive_supported(self):
        assert supports_partial_aggregation(Count())
        assert supports_partial_aggregation(Sum())

    def test_algebraic_supported(self):
        assert supports_partial_aggregation(Average())

    def test_holistic_not_supported(self):
        assert not supports_partial_aggregation(TopKFrequent())
        assert not supports_partial_aggregation(Median())


class TestCheckSPCubeSupport:
    def test_passes_for_count(self):
        check_spcube_support(Count())

    def test_raises_for_holistic(self):
        with pytest.raises(UnsupportedAggregateError, match="holistic"):
            check_spcube_support(TopKFrequent())

    def test_allow_holistic_opt_in(self):
        check_spcube_support(TopKFrequent(), allow_holistic=True)

    def test_error_names_the_aggregate(self):
        with pytest.raises(UnsupportedAggregateError, match="median"):
            check_spcube_support(Median())
