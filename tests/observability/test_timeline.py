"""TimelineAnalysis over telemetry timeline artifacts."""

import pytest

from repro.observability import Telemetry, TimelineAnalysis, TimelineError


def sample_telemetry():
    telemetry = Telemetry(run_id="run-1")
    telemetry.counter("repro_jobs_total", "jobs").inc(2)
    telemetry.sample("shuffle_bytes", 100, labels={"job": "a"})
    telemetry.advance(10.0)
    telemetry.sample("shuffle_bytes", 300, labels={"job": "b"})
    telemetry.sample("driver_rss_bytes", 4096, source="host")
    return telemetry


class TestLoading:
    def test_from_file_round_trips(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        sample_telemetry().write_timeline(path)
        analysis = TimelineAnalysis.from_file(path)
        assert analysis.meta["run_id"] == "run-1"
        assert len(analysis.samples) == 3
        assert analysis.has_registry()

    def test_unknown_record_type_rejected(self):
        with pytest.raises(TimelineError, match="unknown record type"):
            TimelineAnalysis([{"type": "mystery"}])

    def test_sample_missing_fields_rejected(self):
        with pytest.raises(TimelineError, match="series"):
            TimelineAnalysis([{"type": "sample", "value": 1}])

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(TimelineError, match="not JSON"):
            TimelineAnalysis.from_file(path)


class TestSeriesAccess:
    def test_series_names_sorted(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        assert analysis.series_names() == [
            "driver_rss_bytes", "shuffle_bytes",
        ]

    def test_label_filter_is_exact(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        only_a = analysis.series("shuffle_bytes", labels={"job": "a"})
        assert [s["value"] for s in only_a] == [100]
        assert analysis.series("shuffle_bytes", labels={"job": "z"}) == []

    def test_points_are_time_value_pairs(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        assert analysis.points("shuffle_bytes") == [(0.0, 100), (10.0, 300)]

    def test_sim_samples_exclude_host_source(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        names = {s["series"] for s in analysis.sim_samples()}
        assert "driver_rss_bytes" not in names
        assert "shuffle_bytes" in names


class TestRegistryRebuild:
    def test_exposition_matches_live_registry(self):
        telemetry = sample_telemetry()
        analysis = TimelineAnalysis(telemetry.timeline_records())
        assert (
            analysis.registry().prometheus_text()
            == telemetry.prometheus_text()
        )

    def test_missing_registry_dump_raises(self):
        analysis = TimelineAnalysis(
            [{"type": "sample", "series": "s", "t": 0.0, "value": 1}]
        )
        assert not analysis.has_registry()
        with pytest.raises(TimelineError, match="registry"):
            analysis.registry()


class TestSummaries:
    def test_series_summary_extrema(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        summary = analysis.series_summary("shuffle_bytes")
        assert summary["samples"] == 2
        assert summary["label_sets"] == 2
        assert summary["min"] == 100
        assert summary["max"] == 300
        assert summary["last"] == 300
        assert summary["sources"] == ["sim"]

    def test_summary_dict_and_text_agree_on_counts(self):
        analysis = TimelineAnalysis(sample_telemetry().timeline_records())
        digest = analysis.summary_dict()
        assert digest["num_samples"] == 3
        assert len(digest["series"]) == 2
        text = analysis.format_summary()
        assert "3 samples across 2 series" in text
        assert "shuffle_bytes" in text
