"""Trace analyzer: chains, counters, histograms, timelines."""

import pytest

from repro.observability import TraceAnalysis, TraceSchemaError, load_trace


def attempt(job, phase, task, att, t0, t1, status="ok", records_in=0):
    return {
        "type": "span", "kind": "attempt", "name": phase, "job": job,
        "phase": phase, "task": task, "attempt": att, "t0": t0, "t1": t1,
        "status": status, "counters": {"records_in": records_in}, "seq": 0,
    }


def spec_event(job, phase, task, att, at, won):
    return {
        "type": "event", "kind": "speculation", "job": job, "phase": phase,
        "task": task, "attempt": att, "at": at, "fields": {"won": won},
        "seq": 0,
    }


def with_seq(records):
    for index, record in enumerate(records):
        record["seq"] = index
    return records


@pytest.fixture
def faulted_records():
    """Two reduce chains of job 'j': task 0 crashes once then wins on
    attempt 1; task 1 wins first try via a speculative backup."""
    return with_seq([
        attempt("j", "reduce", 0, 0, 0.0, 4.0, status="killed"),
        {
            "type": "event", "kind": "crash", "job": "j", "phase": "reduce",
            "task": 0, "attempt": 0, "at": 4.0, "fields": {}, "seq": 0,
        },
        attempt("j", "reduce", 0, 1, 16.0, 20.0, records_in=8),
        spec_event("j", "reduce", 1, 0, 0.0, won=True),
        attempt("j", "reduce", 1, 0, 0.0, 6.0, status="speculative",
                records_in=5),
        {
            "type": "span", "kind": "phase", "name": "reduce", "job": "j",
            "phase": "reduce", "t0": 0.0, "t1": 25.0, "status": "ok",
            "counters": {"tasks": 2}, "seq": 0,
        },
        {
            "type": "span", "kind": "job", "name": "j", "job": "j",
            "t0": 0.0, "t1": 25.0, "status": "ok",
            "counters": {"map_output_records": 13}, "seq": 0,
        },
    ])


class TestCounters:
    def test_attempts_count_backups(self, faulted_records):
        analysis = TraceAnalysis(faulted_records)
        # 3 attempt spans + 1 speculative backup (event only).
        assert analysis.total_attempts() == 4

    def test_killed_counts_losing_copies(self, faulted_records):
        analysis = TraceAnalysis(faulted_records)
        # 1 crashed span + 1 losing speculative copy.
        assert analysis.killed_attempts() == 2

    def test_speculative_wins(self, faulted_records):
        assert TraceAnalysis(faulted_records).speculative_wins() == 1

    def test_recovered(self, faulted_records):
        # Task 0 won on attempt 1; task 1 won via backup: both recovered.
        assert TraceAnalysis(faulted_records).recovered() == 2

    def test_job_filter(self, faulted_records):
        analysis = TraceAnalysis(faulted_records)
        assert analysis.total_attempts("other-job") == 0


class TestChainsAndLoads:
    def test_attempt_chains_ordered(self, faulted_records):
        chains = TraceAnalysis(faulted_records).attempt_chains("j")
        spans = chains[("j", "reduce", 0)]
        assert [s["attempt"] for s in spans] == [0, 1]
        assert spans[0]["status"] == "killed"

    def test_reducer_records_use_winning_attempt(self, faulted_records):
        loads = TraceAnalysis(faulted_records).reducer_records("j")
        assert loads == {0: 8, 1: 5}

    def test_dominant_job(self, faulted_records):
        assert TraceAnalysis(faulted_records).dominant_job() == "j"

    def test_histogram_renders_all_reducers(self, faulted_records):
        text = TraceAnalysis(faulted_records).reducer_histogram("j")
        assert "r0" in text and "r1" in text and "max/mean" in text


class TestTimelines:
    def test_straggler_timeline_marks(self, faulted_records):
        text = TraceAnalysis(faulted_records).straggler_timeline("j")
        assert "x" in text  # killed portion of task 0's chain
        assert "s" in text  # task 1's speculative winner
        assert "spec win" in text

    def test_critical_path_finds_latest_chain(self, faulted_records):
        (summary,) = TraceAnalysis(faulted_records).critical_path("j")
        assert summary["task"] == 0
        assert summary["attempts"] == 2

    def test_empty_phase_message(self, faulted_records):
        text = TraceAnalysis(faulted_records).straggler_timeline("j", "map")
        assert "no map attempts" in text


class TestValidationAndIO:
    def test_validate_passes_on_good_trace(self, faulted_records):
        assert TraceAnalysis(faulted_records).validate() == 7

    def test_validate_raises_with_seq(self, faulted_records):
        faulted_records[2]["status"] = "broken"
        with pytest.raises(TraceSchemaError, match="seq=2"):
            TraceAnalysis(faulted_records).validate()

    def test_load_trace_round_trip(self, tmp_path, faulted_records):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in faulted_records) + "\n"
        )
        analysis = TraceAnalysis.from_file(path)
        assert analysis.total_attempts() == 4

    def test_load_trace_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            load_trace(path)

    def test_format_summary_mentions_recovery(self, faulted_records):
        text = TraceAnalysis(faulted_records).format_summary()
        assert "4 attempts" in text
        assert "2 killed" in text


class TestSummaryDict:
    """The stable machine-readable summary (satellite of the telemetry
    PR): append-only keys, self-validated before leaving the process."""

    def test_has_every_schema_key(self, faulted_records):
        from repro.observability import SUMMARY_SCHEMA

        summary = TraceAnalysis(faulted_records).summary_dict()
        assert set(SUMMARY_SCHEMA) <= set(summary)
        assert summary["schema_version"] == 1

    def test_numbers_match_the_accessors(self, faulted_records):
        analysis = TraceAnalysis(faulted_records)
        summary = analysis.summary_dict()
        assert summary["recovery"] == analysis.recovery_summary()
        assert summary["dominant_job"] == "j"
        assert summary["reducer_loads"] == {"0": 8, "1": 5}
        assert summary["jobs"][0]["attempts"] == 4

    def test_is_json_serializable(self, faulted_records):
        import json

        payload = json.dumps(TraceAnalysis(faulted_records).summary_dict())
        assert json.loads(payload)["schema_version"] == 1

    def test_validator_accepts_extra_keys(self, faulted_records):
        from repro.observability import summary_problems

        summary = TraceAnalysis(faulted_records).summary_dict()
        summary["future_field"] = {"anything": True}
        assert summary_problems(summary) == []

    def test_validator_flags_missing_and_mistyped_keys(self):
        from repro.observability import summary_problems

        assert summary_problems({"runs": "not-a-list"})
        problems = summary_problems(
            {
                "schema_version": 1, "records": 0, "runs": [],
                "recovery": {}, "failure_domains": {}, "jobs": [],
                "dominant_job": None, "reducer_loads": {},
                "critical_path": [], "alerts": {},
            }
        )
        assert any("recovery." in p for p in problems)
        assert any("failure_domains" in p for p in problems)

    def test_validator_flags_negative_counters(self, faulted_records):
        from repro.observability import summary_problems

        summary = TraceAnalysis(faulted_records).summary_dict()
        summary["recovery"]["killed"] = -1
        assert any("non-negative" in p for p in summary_problems(summary))

    def test_empty_trace_summarizes(self):
        summary = TraceAnalysis([]).summary_dict()
        assert summary["runs"] == []
        assert summary["dominant_job"] is None
        assert summary["reducer_loads"] == {}
