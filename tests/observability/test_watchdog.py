"""The online watchdog: typed alerts from synthetic flow jobs."""

from types import SimpleNamespace

import pytest

from repro.observability import (
    ALERT_KINDS,
    NULL_WATCHDOG,
    Watchdog,
    watchdog_of,
)


def metrics(seconds=4.0, aborted=False):
    return SimpleNamespace(total_seconds=seconds, aborted=aborted)


def flow_job(reduces, flows=None, maps=None, name="job", memory=10):
    """A synthetic merge-point flow record.

    ``reduces`` is ``{reducer: records_in}``; ``flows`` a list of
    ``(map_task, reducer, records, cuboids)``.
    """
    return {
        "job": name,
        "num_reducers": len(reduces),
        "map_tasks": len(maps or []),
        "memory_records": memory,
        "completed_reducers": [],
        "maps": maps or [],
        "flows": [
            {"map_task": m, "reducer": r, "records": n, "bytes": 10 * n,
             "cuboids": dict(cuboids)}
            for m, r, n, cuboids in (flows or [])
        ],
        "reduces": [
            {"task": task, "records_in": records, "records_out": records,
             "seconds": 1.0}
            for task, records in sorted(reduces.items())
        ],
    }


class TestSkew:
    def test_balanced_job_stays_quiet(self):
        watchdog = Watchdog()
        job = flow_job({0: 10, 1: 11, 2: 9})
        assert watchdog.inspect_job(job, metrics()) == []

    def test_hot_reducer_fires_with_band_fields(self):
        watchdog = Watchdog()
        # n=120 over k=3 → band 40+10=50, ceiling 100; reducer 2 is 110.
        job = flow_job({0: 5, 1: 5, 2: 110})
        alerts = watchdog.inspect_job(job, metrics())
        assert [a["kind"] for a in alerts] == ["skew_alert"]
        alert = alerts[0]
        assert alert["reducer"] == 2
        assert alert["observed"] == 110
        assert alert["bound"] == 50.0
        assert alert["ratio"] == 2.2
        assert alert["at"] == 4.0
        assert alert["type"] == "alert"

    def test_expectation_exempts_skew_reducer_zero(self):
        watchdog = Watchdog()
        watchdog.expect("job", n=30, k=2, m=10, predicted={})
        # Reducer 0 is huge but is the designated skew reducer; the
        # ranged reducers 1..2 are balanced (band 15+10).
        job = flow_job({0: 500, 1: 15, 2: 15})
        assert watchdog.inspect_job(job, metrics()) == []

    def test_tolerance_knob_scales_the_ceiling(self):
        strict = Watchdog(skew_tolerance=1.0)
        job = flow_job({0: 10, 1: 10, 2: 45})  # band ~31.7, ceiling 1×
        alerts = strict.inspect_job(job, metrics())
        assert [a["kind"] for a in alerts] == ["skew_alert"]

    def test_tolerances_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(skew_tolerance=0)
        with pytest.raises(ValueError):
            Watchdog(straggler_factor=-1)


class TestMisannotation:
    def test_requires_an_expectation(self):
        watchdog = Watchdog()
        job = flow_job(
            {0: 5, 1: 200},
            flows=[(0, 1, 200, {7: 200})],
        )
        kinds = [a["kind"] for a in watchdog.inspect_job(job, metrics())]
        assert "misannotation_alert" not in kinds

    def test_ranged_cuboid_over_band_is_named(self):
        watchdog = Watchdog()
        watchdog.expect("job", n=40, k=2, m=10, predicted={})
        # Band 40/2+10=30, ceiling 60; cuboid 7 drops 100 on reducer 1.
        job = flow_job(
            {0: 5, 1: 105, 2: 5},
            flows=[(0, 1, 100, {7: 100}), (0, 1, 5, {3: 5}),
                   (0, 0, 5, {7: 5})],
        )
        alerts = [
            a for a in watchdog.inspect_job(job, metrics())
            if a["kind"] == "misannotation_alert"
        ]
        assert len(alerts) == 1
        assert alerts[0]["cuboid"] == 7
        assert alerts[0]["reducer"] == 1
        assert alerts[0]["observed"] == 100
        # Flows into the skew reducer 0 never count against the band.


class TestStragglers:
    def make_job(self, seconds):
        job = flow_job({i: 10 for i in range(len(seconds))})
        for task, duration in zip(job["reduces"], seconds):
            task["seconds"] = duration
        return job

    def test_needs_minimum_task_count(self):
        watchdog = Watchdog()
        job = self.make_job([1.0, 1.0, 30.0])  # 3 < MIN_STRAGGLER_TASKS
        assert watchdog.inspect_job(job, metrics()) == []

    def test_slow_task_over_three_times_median_fires(self):
        watchdog = Watchdog()
        job = self.make_job([1.0, 1.0, 1.0, 3.5])
        alerts = watchdog.inspect_job(job, metrics())
        assert [a["kind"] for a in alerts] == ["straggler_alert"]
        assert alerts[0]["phase"] == "reduce"
        assert alerts[0]["task"] == 3
        assert alerts[0]["ratio"] == 3.5

    def test_map_phase_checked_too(self):
        watchdog = Watchdog()
        job = flow_job(
            {0: 10},
            maps=[{"task": i, "records_in": 1, "records_out": 1,
                   "seconds": 1.0} for i in range(4)],
        )
        job["maps"][2]["seconds"] = 10.0
        alerts = watchdog.inspect_job(job, metrics())
        assert [(a["kind"], a["phase"], a["task"]) for a in alerts] == [
            ("straggler_alert", "map", 2)
        ]


class TestLifecycle:
    def test_aborted_executions_counted_but_not_inspected(self):
        watchdog = Watchdog()
        hot = flow_job({0: 5, 1: 5, 2: 110})
        assert watchdog.inspect_job(hot, metrics(aborted=True)) == []
        alerts = watchdog.inspect_job(flow_job({0: 5, 1: 5, 2: 110}),
                                      metrics())
        # The aborted run consumed execution 0; the retry is execution 1.
        assert alerts[0]["execution"] == 1

    def test_clock_advances_alert_timestamps(self):
        watchdog = Watchdog()
        watchdog.advance(10.0)
        alerts = watchdog.inspect_job(flow_job({0: 5, 1: 5, 2: 110}),
                                      metrics(seconds=2.0))
        assert alerts[0]["at"] == 12.0

    def test_alert_kinds_are_the_public_taxonomy(self):
        watchdog = Watchdog()
        watchdog.expect("job", n=40, k=2, m=10, predicted={})
        job = flow_job(
            {0: 5, 1: 205, 2: 5, 3: 5},
            flows=[(0, 1, 200, {7: 200})],
        )
        job["reduces"][1]["seconds"] = 50.0
        kinds = [a["kind"] for a in watchdog.inspect_job(job, metrics())]
        assert kinds == list(ALERT_KINDS)
        assert watchdog.alerts[-len(kinds):] == watchdog.alerts

    def test_comparison_spans_the_reducer_union(self):
        watchdog = Watchdog()
        watchdog.expect("job", n=30, k=2, m=10,
                        predicted={0: 4, 1: 16, 2: 10})
        watchdog.inspect_job(flow_job({0: 4, 1: 18, 2: 8}), metrics())
        comparison = watchdog.comparisons["job"]
        assert comparison["observed"] == {0: 4, 1: 18, 2: 8}
        assert comparison["deltas"] == {0: 0, 1: 2, 2: -2}
        assert comparison["execution"] == 0

    def test_null_watchdog_is_inert(self):
        assert NULL_WATCHDOG.enabled is False
        assert NULL_WATCHDOG.inspect_job({}, metrics()) == []
        NULL_WATCHDOG.advance(5.0)
        assert NULL_WATCHDOG.clock == 0.0

    def test_watchdog_of_checks_enabled(self):
        watchdog = Watchdog()
        assert watchdog_of(SimpleNamespace(watchdog=watchdog)) is watchdog
        assert watchdog_of(SimpleNamespace(watchdog=NULL_WATCHDOG)) is None
        assert watchdog_of(SimpleNamespace()) is None
