"""Trace record schema validation."""

import pytest

from repro.observability import (
    TraceSchemaError,
    record_problems,
    validate_record,
    validate_records,
)


def span(**overrides):
    record = {
        "type": "span", "kind": "attempt", "name": "map", "job": "j",
        "phase": "map", "task": 0, "attempt": 0, "t0": 0.0, "t1": 1.0,
        "status": "ok", "counters": {"records_in": 3}, "seq": 0,
    }
    record.update(overrides)
    return record


def event(**overrides):
    record = {
        "type": "event", "kind": "crash", "job": "j", "phase": "map",
        "task": 0, "attempt": 0, "at": 1.0, "fields": {"lost_seconds": 1.0},
        "seq": 1,
    }
    record.update(overrides)
    return record


class TestSpanSchema:
    def test_valid_span(self):
        assert record_problems(span()) == []

    def test_run_span_needs_only_name(self):
        record = span(kind="run", name="SP-Cube")
        for field in ("job", "phase", "task", "attempt"):
            record.pop(field)
        assert record_problems(record) == []

    def test_bad_kind(self):
        assert record_problems(span(kind="nope"))

    def test_bad_status(self):
        assert record_problems(span(status="done"))

    def test_missing_counters(self):
        record = span()
        del record["counters"]
        assert record_problems(record)

    def test_non_numeric_counter_value(self):
        assert record_problems(span(counters={"records_in": "three"}))

    def test_reversed_interval(self):
        problems = record_problems(span(t0=5.0, t1=1.0))
        assert any("ends before" in p for p in problems)

    def test_bool_task_rejected(self):
        # bool is an int subclass; the schema must not accept it.
        assert record_problems(span(task=True))

    def test_attempt_span_needs_job_string(self):
        assert record_problems(span(job=7))


class TestEventSchema:
    def test_valid_event(self):
        assert record_problems(event()) == []

    def test_every_documented_kind_validates(self):
        from repro.observability import EVENT_KINDS

        for kind in EVENT_KINDS:
            assert record_problems(event(kind=kind)) == []

    def test_bad_kind(self):
        assert record_problems(event(kind="explosion"))

    def test_missing_at(self):
        record = event()
        del record["at"]
        assert record_problems(record)

    def test_fields_must_be_dict(self):
        assert record_problems(event(fields=[1, 2]))


class TestRecoveryEventRoundTrip:
    """The failure-domain event kinds survive a JSONL write/read/validate."""

    def test_new_kinds_round_trip_through_a_tracer(self, tmp_path):
        from repro.observability import JsonlSink, Tracer
        from repro.observability.analyze import load_trace

        path = tmp_path / "recovery.jsonl"
        tracer = Tracer([JsonlSink(path)], level="task")
        tracer.event("node_lost", at=1.0, job="r2",
                     fields={"node": 1, "machines": [1, 4]})
        tracer.event("round_resume", at=2.0, job="r2",
                     fields={"round": 1, "salvaged_partitions": [0],
                             "replaced_nodes": [1]})
        tracer.event("checkpoint_write", at=3.0, job="r2",
                     fields={"round": 1, "num_parts": 6, "run_clock": 3.0})
        tracer.close()
        records = load_trace(path)
        assert validate_records(records) == 3
        assert [r["kind"] for r in records] == [
            "node_lost", "round_resume", "checkpoint_write",
        ]
        assert records[0]["fields"] == {"node": 1, "machines": [1, 4]}
        assert records[1]["fields"]["salvaged_partitions"] == [0]
        assert records[2]["fields"]["num_parts"] == 6


class TestValidators:
    def test_validate_record_raises(self):
        with pytest.raises(TraceSchemaError, match="status"):
            validate_record(span(status="nope"))

    def test_validate_records_counts(self):
        assert validate_records([span(), event()]) == 2

    def test_validate_records_reports_index(self):
        with pytest.raises(TraceSchemaError, match="record 1"):
            validate_records([span(), {"type": "mystery"}])

    def test_non_dict_record(self):
        assert record_problems("not a record")

    def test_missing_seq(self):
        record = span()
        del record["seq"]
        assert record_problems(record)

    def test_negative_seq(self):
        assert record_problems(span(seq=-1))
