"""The shuffle flight recorder: stamping, serialization, artifact I/O."""

from types import SimpleNamespace

import pytest

from repro.observability import (
    LINEAGE_RECORD_TYPES,
    LINEAGE_VERSION,
    NULL_LINEAGE,
    LineageRecorder,
    cuboid_of_mask_key,
    lineage_of,
    load_lineage,
)


def metrics(seconds=2.5, aborted=False):
    return SimpleNamespace(total_seconds=seconds, aborted=aborted)


def flow_job(name="job", num_reducers=2):
    return {
        "job": name,
        "num_reducers": num_reducers,
        "map_tasks": 2,
        "memory_records": 16,
        "completed_reducers": [],
        "maps": [
            {"task": 0, "records_in": 5, "records_out": 10, "seconds": 1.0},
            {"task": 1, "records_in": 5, "records_out": 8, "seconds": 1.1},
        ],
        "flows": [
            {"map_task": 0, "reducer": 0, "records": 6, "bytes": 60,
             "cuboids": {3: 4, 1: 2}},
            {"map_task": 1, "reducer": 1, "records": 12, "bytes": 120,
             "cuboids": {3: 12}},
        ],
        "reduces": [
            {"task": 0, "records_in": 6, "records_out": 3, "seconds": 0.5},
            {"task": 1, "records_in": 12, "records_out": 6, "seconds": 0.9},
        ],
    }


class TestRecorder:
    def test_begin_stamps_execution_and_clock(self):
        recorder = LineageRecorder(run_id="r")
        first, second = flow_job(), flow_job()
        recorder.begin_job(first)
        recorder.finish_job(first, metrics())
        recorder.advance(2.5)
        recorder.begin_job(second)
        assert first["execution"] == 0
        assert first["t0"] == 0.0
        assert second["execution"] == 1
        assert second["t0"] == 2.5

    def test_finish_records_duration_and_abort(self):
        recorder = LineageRecorder()
        job = flow_job()
        recorder.begin_job(job)
        recorder.finish_job(job, metrics(seconds=1.25, aborted=True))
        assert job["seconds"] == 1.25
        assert job["aborted"] is True
        assert recorder.jobs == [job]

    def test_records_follow_document_order(self):
        recorder = LineageRecorder(run_id="r")
        job = flow_job()
        recorder.begin_job(job)
        recorder.finish_job(job, metrics())
        recorder.alerts.append(
            {"type": "alert", "kind": "skew_alert", "job": "job",
             "execution": 0, "at": 2.5, "reducer": 1}
        )
        records = recorder.to_records()
        types = [record["type"] for record in records]
        assert types == [
            "lineage_meta", "job", "map_task", "map_task",
            "flow", "flow", "reduce_task", "reduce_task", "alert",
        ]
        assert set(types) <= set(LINEAGE_RECORD_TYPES)
        assert records[0]["version"] == LINEAGE_VERSION
        assert records[0]["run_id"] == "r"
        # Cuboid masks serialize as string keys (JSON object keys).
        flow = next(r for r in records if r["type"] == "flow")
        assert flow["cuboids"] == {"3": 4, "1": 2}

    def test_write_then_load_round_trips(self, tmp_path):
        recorder = LineageRecorder(run_id="round-trip")
        job = flow_job()
        recorder.begin_job(job)
        recorder.finish_job(job, metrics())
        path = str(tmp_path / "run.lineage.jsonl")
        recorder.write(path)
        assert load_lineage(path) == recorder.to_records()

    def test_null_lineage_is_inert(self):
        assert NULL_LINEAGE.enabled is False
        NULL_LINEAGE.begin_job({})
        NULL_LINEAGE.finish_job({}, metrics())
        NULL_LINEAGE.advance(1.0)
        assert NULL_LINEAGE.clock == 0.0

    def test_lineage_of_checks_enabled(self):
        recorder = LineageRecorder()
        assert lineage_of(SimpleNamespace(lineage=recorder)) is recorder
        assert lineage_of(SimpleNamespace(lineage=None)) is None
        assert lineage_of(SimpleNamespace(lineage=NULL_LINEAGE)) is None
        assert lineage_of(SimpleNamespace()) is None


class TestCuboidClassifier:
    def test_mask_key_classifier(self):
        assert cuboid_of_mask_key((5, (1, 2))) == 5
        assert cuboid_of_mask_key((0b11, (7,), 2)) == 3


class TestLoadLineage:
    def write(self, tmp_path, text):
        path = tmp_path / "artifact.jsonl"
        path.write_text(text)
        return str(path)

    def test_truncated_line_names_the_line(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"type": "lineage_meta", "version": 1, "run_id": "r"}\n'
            '{"type": "job", "job": "sp-cu',
        )
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            load_lineage(path)

    def test_scalar_line_names_the_line(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"type": "lineage_meta", "version": 1, "run_id": "r"}\n42\n',
        )
        with pytest.raises(ValueError, match=r":2: .*got int"):
            load_lineage(path)

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(ValueError, match="empty lineage artifact"):
            load_lineage(path)

    def test_wrong_head_rejected(self, tmp_path):
        path = self.write(tmp_path, '{"type": "job", "job": "x"}\n')
        with pytest.raises(ValueError, match="first record must be"):
            load_lineage(path)
