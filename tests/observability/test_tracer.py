"""Tracer, sinks, and levels."""

import io
import json

import pytest

from repro.observability import (
    LEVEL_DEBUG,
    LEVEL_JOB,
    LEVEL_OFF,
    LEVEL_TASK,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    ProgressSink,
    Tracer,
    attempt_counters,
    level_from_name,
    validate_records,
)


class TestLevels:
    def test_names_map_to_levels(self):
        assert level_from_name("off") == LEVEL_OFF
        assert level_from_name("job") == LEVEL_JOB
        assert level_from_name("task") == LEVEL_TASK
        assert level_from_name("debug") == LEVEL_DEBUG

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown trace level"):
            level_from_name("verbose")

    def test_tracer_accepts_level_names(self):
        tracer = Tracer([], level="debug")
        assert tracer.level == LEVEL_DEBUG

    def test_tracer_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Tracer([], level=7)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.level == LEVEL_OFF
        NULL_TRACER.emit({"anything": 1})
        NULL_TRACER.span("job", name="x")
        NULL_TRACER.event("crash", at=0.0)
        NULL_TRACER.advance(10.0)
        NULL_TRACER.close()
        assert NULL_TRACER.clock == 0.0


class TestTracer:
    def test_seq_is_monotonic_emission_order(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        tracer.event("crash", at=5.0)
        tracer.event("crash", at=1.0)
        tracer.span("job", name="j", job="j", t0=0.0, t1=2.0)
        assert [r["seq"] for r in sink.records] == [0, 1, 2]

    def test_span_defaults_and_overrides(self):
        sink = MemorySink()
        Tracer([sink]).span(
            "run", name="x", t0=0.0, t1=1.0, status="failed",
            counters={"attempts": 3},
        )
        (record,) = sink.records
        assert record["status"] == "failed"
        assert record["counters"] == {"attempts": 3}

    def test_event_payload_goes_under_fields(self):
        sink = MemorySink()
        Tracer([sink]).event(
            "straggle", at=2.0, job="j", fields={"factor": 4.0}
        )
        (record,) = sink.records
        assert record["fields"] == {"factor": 4.0}
        assert record["job"] == "j"

    def test_clock_accumulates(self):
        tracer = Tracer([])
        tracer.advance(10.0)
        tracer.advance(5.5)
        assert tracer.clock == 15.5

    def test_fan_out_to_all_sinks(self):
        sinks = [MemorySink(), MemorySink()]
        Tracer(sinks).event("shuffle", at=0.0)
        assert len(sinks[0]) == len(sinks[1]) == 1


class TestMemorySink:
    def test_ring_buffer_evicts_oldest(self):
        sink = MemorySink(capacity=2)
        tracer = Tracer([sink])
        for _ in range(3):
            tracer.event("spill", at=0.0)
        assert [r["seq"] for r in sink.records] == [1, 2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


class TestJsonlSink(object):
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer([JsonlSink(path)])
        tracer.event("crash", at=1.0, job="j")
        tracer.span("job", name="j", job="j", t0=0.0, t1=2.0)
        tracer.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert validate_records(records) == 2
        assert records[0]["kind"] == "crash"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


class TestProgressSink:
    def test_prints_job_and_fault_lines_only(self):
        stream = io.StringIO()
        tracer = Tracer([ProgressSink(stream)], level=LEVEL_DEBUG)
        tracer.span("job", name="j", job="j", t0=0.0, t1=2.0,
                    counters={"map_output_records": 5})
        tracer.event("crash", at=1.0, job="j", phase="map", task=3)
        # Attempt spans and debug events must stay silent.
        tracer.span("attempt", name="map", job="j", phase="map", task=0,
                    attempt=0, t0=0.0, t1=1.0)
        tracer.event("route", at=1.0, job="j", phase="map", task=0)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[job ]")
        assert "crash at j/map/3" in lines[1]


class TestProgressSinkFaultDomainLines:
    """Rendering of the failure-domain events (satellite of the
    telemetry PR): node losses, checkpoint commits, round resumes."""

    def render(self, kind, at, job, **payload):
        stream = io.StringIO()
        tracer = Tracer([ProgressSink(stream)], level=LEVEL_DEBUG)
        tracer.event(kind, at=at, job=job, fields=payload)
        return stream.getvalue().strip().splitlines()

    def test_node_lost_line(self):
        lines = self.render("node_lost", at=12.5, job="sp-cube", node=3)
        assert lines == ["[fault] node 3 lost during sp-cube (t=12.5s)"]

    def test_checkpoint_write_line(self):
        lines = self.render(
            "checkpoint_write", at=30.0, job="sp-cube",
            round=1, num_parts=8, path="ckpt/round-1",
        )
        assert lines == [
            "[ckpt ] round 1 checkpointed (8 parts, t=30.0s)"
        ]

    def test_round_resume_line(self):
        lines = self.render(
            "round_resume", at=44.25, job="sp-cube", round=2,
            salvaged_partitions=[0, 1, 5], replaced_nodes=[3, 4],
        )
        assert lines == [
            "[ckpt ] resuming round 2 (sp-cube): 3 partitions "
            "salvaged, nodes [3, 4] replaced"
        ]

    def test_round_resume_without_salvage(self):
        lines = self.render(
            "round_resume", at=1.0, job="sp-cube", round=0,
            salvaged_partitions=[], replaced_nodes=[],
        )
        assert lines == [
            "[ckpt ] resuming round 0 (sp-cube): 0 partitions "
            "salvaged, nodes [] replaced"
        ]


class TestAttemptCounters:
    def test_merges_user_counters(self):
        from repro.mapreduce import TaskMetrics

        task = TaskMetrics(records_in=4, records_out=2, bytes_out=20,
                           counters={"skew_hits": 7})
        counters = attempt_counters(task)
        assert counters["records_in"] == 4
        assert counters["skew_hits"] == 7
