"""The cube doctor: sketch audits, corruption detection, load attribution."""

import json

import pytest

from repro.analysis import paper_cluster
from repro.core import SPCube, build_exact_sketch
from repro.observability import (
    BalanceStats,
    MemorySink,
    SkewConfusion,
    TraceAnalysis,
    Tracer,
    attribute_load,
    audit_sketch,
    format_doctor_markdown,
    predicted_reducer_loads,
    run_doctor,
)

from ..conftest import make_random_relation

K = 4  # partitions/machines used throughout
M = 40  # skew threshold


def plain_relation(n=400, seed=5):
    """No planted skew: only wide groups (apex, level 1) cross ``m``."""
    return make_random_relation(n, cardinality=5, seed=seed)


def skewed_relation(n=400, seed=7):
    """Half the rows collapse onto the (1,1,1) pattern — heavy skew."""
    return make_random_relation(n, cardinality=5, seed=seed,
                                skew_fraction=0.5)


class TestConfusionAndBalance:
    def test_confusion_rates(self):
        confusion = SkewConfusion(
            true_positives=6, false_positives=2, false_negatives=2
        )
        assert confusion.precision == pytest.approx(0.75)
        assert confusion.recall == pytest.approx(0.75)
        assert confusion.f1 == pytest.approx(0.75)

    def test_empty_confusion_is_perfect(self):
        confusion = SkewConfusion()
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_balance_stats(self):
        balance = BalanceStats(loads=[100, 100, 100, 100], ideal=100.0)
        assert balance.imbalance == pytest.approx(1.0)
        assert balance.gini == pytest.approx(0.0)
        lopsided = BalanceStats(loads=[400, 0, 0, 0], ideal=100.0)
        assert lopsided.imbalance == pytest.approx(4.0)
        assert lopsided.gini > 0.5


class TestAuditOnExactSketch:
    def test_exact_sketch_is_healthy(self):
        rel = plain_relation()
        sketch = build_exact_sketch(rel, K, M)
        audit = audit_sketch(rel, sketch, M)
        assert audit.overall.precision == 1.0
        assert audit.overall.recall == 1.0
        assert audit.theory.traffic_within_worst_case
        assert audit.theory.false_negatives_within_bound
        assert audit.theory.false_positives_within_bound
        assert audit.problems() == []
        assert audit.healthy

    def test_audit_serializes_to_json(self):
        rel = plain_relation()
        audit = audit_sketch(rel, build_exact_sketch(rel, K, M), M)
        payload = json.loads(json.dumps(audit.to_dict()))
        assert payload["healthy"] is True
        assert payload["overall"]["f1"] == 1.0
        assert payload["sketch"]["num_partitions"] == K
        assert len(payload["cuboids"]) == 8  # 2^3 lattice nodes

    def test_sampled_sketch_bounds_hold(self):
        """The real Algorithm 2 sketch stays within the Chernoff bands."""
        rel = skewed_relation()
        cluster = paper_cluster(len(rel), num_machines=K)
        run = SPCube(cluster).compute(rel)
        audit = audit_sketch(rel, run.sketch, cluster.derive_memory(len(rel)))
        assert audit.theory.false_negatives_within_bound
        assert audit.theory.traffic_within_worst_case


class TestCorruptionDetection:
    """The acceptance test: a deliberately corrupted sketch is caught."""

    def _corrupted(self):
        # A mostly-uniform relation: every 1-dim group holds ~160 tuples
        # (far above m = 40), and the full cuboid's 800 tuples are all
        # non-skewed — lots of rangeable mass for the balance check.
        rel = plain_relation(n=800)
        sketch = build_exact_sketch(rel, K, M)
        d = rel.schema.num_dimensions
        full = (1 << d) - 1
        # Plant a false negative: erase the ~160-tuple group (1,) from
        # cuboid 0b001 — essentially impossible to miss by sampling luck.
        # No surviving skewed group projects onto it, so this corrupts
        # the classification alone (no monotonicity/planner side effects).
        assert (1,) in sketch.cuboids[0b001].skewed
        del sketch.cuboids[0b001].skewed[(1,)]
        # Unbalance the full cuboid: collapse its partition elements onto
        # a sentinel below every real group, funnelling all 800 tuples
        # into the last partition — far past the 2x (n/k + m) ceiling.
        sketch.cuboids[full].partition_elements = [(-1,) * d] * (K - 1)
        return rel, sketch, full

    def test_planted_false_negative_is_flagged(self):
        rel, sketch, _full = self._corrupted()
        audit = audit_sketch(rel, sketch, M)
        assert not audit.healthy
        assert audit.cuboids[0b001].confusion.false_negatives == 1
        assert audit.cuboids[0b001].confident_false_negatives == [(1,)]
        assert any("missing from the sketch" in p for p in audit.problems())

    def test_unbalanced_partitions_are_flagged(self):
        rel, sketch, full = self._corrupted()
        audit = audit_sketch(rel, sketch, M)
        balance = audit.cuboids[full].balance
        assert balance.max_load > audit.balance_tolerance * balance.promised
        assert any("unbalanced partitions" in p for p in audit.problems())

    def test_monotonicity_corruption_is_flagged(self):
        rel = skewed_relation()
        sketch = build_exact_sketch(rel, K, M)
        # Erase a *child* of surviving skewed groups: monotonicity breaks.
        del sketch.cuboids[0b001].skewed[(1,)]
        audit = audit_sketch(rel, sketch, M)
        assert audit.monotonicity_error is not None
        assert any("monotonicity" in p for p in audit.problems())


class TestLoadAttribution:
    def test_prediction_matches_trace_exactly(self):
        """Fault-free run: the sketch's routing IS the trace's delivery."""
        rel = skewed_relation()
        sink = MemorySink()
        cluster = paper_cluster(len(rel), num_machines=K)
        cluster.tracer = Tracer([sink], level="task")
        run = SPCube(cluster).compute(rel)
        cluster.tracer.close()
        attribution = attribute_load(
            rel, run.sketch, TraceAnalysis(sink.records)
        )
        assert attribution.matches is True
        assert attribution.mismatches() == []
        assert attribution.num_reducers == K + 1

    def test_predicted_totals_are_consistent(self):
        rel = skewed_relation()
        sketch = build_exact_sketch(rel, K, M)
        attribution = predicted_reducer_loads(rel, sketch)
        assert attribution.actual is None
        assert attribution.matches is None
        # Per-cuboid breakdown re-sums to the per-reducer totals.
        for reducer, masks in attribution.by_cuboid.items():
            assert sum(masks.values()) == attribution.predicted[reducer]
        # Reducer 0 carries only skew flushes.
        assert attribution.predicted[0] == sum(
            attribution.skew_by_cuboid.values()
        )


class TestDoctorDriver:
    def test_doctor_report_and_markdown(self):
        report = run_doctor(
            rows=600,
            machines=4,
            engines=["spcube"],
            binomial_skews=[0.4],
            zipf_exponents=[1.3],
            seed=3,
        )
        assert report["healthy"] is True
        assert len(report["datasets"]) == 2
        for entry in report["datasets"]:
            assert entry["audit"]["overall"]["recall"] == 1.0
            assert entry["attribution"]["matches"] is True
        json.dumps(report)  # JSON-able end to end
        markdown = format_doctor_markdown(report)
        assert "## Sketch accuracy" in markdown
        assert "## Reducer load attribution" in markdown
        assert "binomial(p=0.4)" in markdown
        assert "zipf(s=1.3)" in markdown

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            run_doctor(rows=100, engines=["spark"])
