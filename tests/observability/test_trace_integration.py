"""End-to-end tracing: the acceptance criteria of the observability PR.

A fault-injected gen-zipf run traced to a JSONL file must yield an
analyzer whose attempt counts, speculative wins and per-reducer pair
counts exactly match ``RunMetrics``; a traced run's metrics must be
identical to an untraced run's; and trace files must be byte-identical
between serial and parallel execution backends.
"""

import pytest

from repro.analysis import paper_cluster
from repro.core import SPCube
from repro.datagen import gen_zipf
from repro.mapreduce.faults import FaultPlan
from repro.observability import (
    JsonlSink,
    MemorySink,
    TraceAnalysis,
    Tracer,
    validate_records,
)

ROWS = 2000
WALL_FIELDS = ("map_phase_wall_seconds", "reduce_phase_wall_seconds")


def fault_plan():
    return FaultPlan(seed=7, crash_prob=0.08, straggle_prob=0.1)


def run_spcube(tracer=None, parallelism=None):
    relation = gen_zipf(ROWS, seed=3)
    cluster = paper_cluster(
        ROWS, fault_plan=fault_plan(), parallelism=parallelism
    )
    cluster.tracer = tracer
    return SPCube(cluster).compute(relation)


def comparable(metrics):
    """to_dict with the measured host-time diagnostics removed."""
    data = metrics.to_dict()
    for job in data["jobs"]:
        for field in WALL_FIELDS:
            job.pop(field)
    return data


@pytest.fixture(scope="module")
def traced_run():
    sink = MemorySink()
    tracer = Tracer([sink], level="debug")
    run = run_spcube(tracer)
    return run, sink.records


class TestTracedRunIsIdentical:
    def test_metrics_bit_identical_to_untraced(self, traced_run):
        run, _records = traced_run
        untraced = run_spcube()
        assert comparable(untraced.metrics) == comparable(run.metrics)

    def test_cube_identical_to_untraced(self, traced_run):
        run, _records = traced_run
        assert run_spcube().cube == run.cube


class TestAnalyzerMatchesMetrics:
    def test_schema_valid(self, traced_run):
        _run, records = traced_run
        assert validate_records(records) == len(records)

    def test_fault_plan_fired(self, traced_run):
        run, _records = traced_run
        assert run.metrics.killed_tasks > 0
        assert run.metrics.speculative_wins > 0

    def test_recovery_counters_match_exactly(self, traced_run):
        run, records = traced_run
        analysis = TraceAnalysis(records)
        assert analysis.total_attempts() == run.metrics.attempts
        assert analysis.killed_attempts() == run.metrics.killed_tasks
        assert analysis.speculative_wins() == run.metrics.speculative_wins
        assert analysis.recovered() == run.metrics.recovered

    def test_per_job_counters_match(self, traced_run):
        run, records = traced_run
        analysis = TraceAnalysis(records)
        for job in run.metrics.jobs:
            assert analysis.total_attempts(job.name) == job.attempts
            assert analysis.killed_attempts(job.name) == job.killed_tasks

    def test_per_reducer_pair_counts_match(self, traced_run):
        run, records = traced_run
        analysis = TraceAnalysis(records)
        for job in run.metrics.jobs:
            expected = {t.machine: t.records_in for t in job.reduce_tasks}
            assert analysis.reducer_records(job.name) == expected

    def test_dominant_job_is_the_cube_round(self, traced_run):
        run, records = traced_run
        cube_round = max(
            run.metrics.jobs, key=lambda job: job.map_output_records
        )
        assert TraceAnalysis(records).dominant_job() == cube_round.name

    def test_run_span_carries_recovery_overhead(self, traced_run):
        run, records = traced_run
        (run_span,) = TraceAnalysis(records).runs
        counters = run_span["counters"]
        assert counters["attempts"] == run.metrics.attempts
        assert counters["recovery_overhead_seconds"] == pytest.approx(
            run.metrics.recovery_overhead()
        )

    def test_summary_formats(self, traced_run):
        _run, records = traced_run
        text = TraceAnalysis(records).format_summary()
        assert "run SP-Cube" in text
        assert "per-reducer records" in text


class TestBackendIdentity:
    def test_trace_files_byte_identical_serial_vs_parallel(self, tmp_path):
        contents = []
        for parallelism in (1, 3):
            path = tmp_path / f"p{parallelism}.jsonl"
            tracer = Tracer([JsonlSink(path)], level="debug")
            run_spcube(tracer, parallelism=parallelism)
            tracer.close()
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]
        assert len(contents[0]) > 0


class TestLevelGating:
    def test_job_level_omits_attempt_spans(self):
        sink = MemorySink()
        run_spcube(Tracer([sink], level="job"))
        kinds = {r["kind"] for r in sink.records}
        assert "attempt" not in kinds
        assert {"job", "phase", "run"} <= kinds

    def test_task_level_omits_debug_events(self):
        sink = MemorySink()
        run_spcube(Tracer([sink], level="task"))
        kinds = {r["kind"] for r in sink.records}
        assert "attempt" in kinds
        assert "route" not in kinds and "spill" not in kinds

    def test_debug_level_adds_route_events(self):
        sink = MemorySink()
        run_spcube(Tracer([sink], level="debug"))
        kinds = {r["kind"] for r in sink.records}
        assert "route" in kinds
