"""Telemetry: registry, instruments, sampling collector, exposition."""

import json

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    check_prometheus_text,
    driver_rss_bytes,
    emit_run_telemetry,
    telemetry_of,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("repro_things_total", "things")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_series_are_independent(self):
        counter = Counter("repro_things_total", "things")
        counter.inc(2, labels={"job": "a"})
        counter.inc(3, labels={"job": "b"})
        assert counter.value(labels={"job": "a"}) == 2
        assert counter.value(labels={"job": "b"}) == 3
        assert counter.value() == 0  # the unlabelled series is its own

    def test_negative_increment_rejected(self):
        counter = Counter("repro_things_total", "things")
        with pytest.raises(ValueError, match="decrease"):
            counter.inc(-1)

    def test_exposition_lines(self):
        counter = Counter("repro_things_total", "counted things")
        counter.inc(2, labels={"job": "a"})
        assert counter.exposition_lines() == [
            'repro_things_total{job="a"} 2'
        ]

    def test_registry_adds_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", "counted things").inc(2)
        text = registry.prometheus_text()
        assert "# HELP repro_things_total counted things" in text
        assert "# TYPE repro_things_total counter" in text


class TestGauge:
    def test_set_then_inc(self):
        gauge = Gauge("repro_depth", "depth")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == 7

    def test_type_line_comes_from_registry(self):
        registry = MetricsRegistry()
        registry.gauge("repro_depth", "depth").set(1)
        assert "# TYPE repro_depth gauge" in registry.prometheus_text()


class TestHistogram:
    def test_observe_fills_buckets(self):
        hist = Histogram("repro_h", "h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == 55.5
        # Cumulative: le=1 -> 1, le=10 -> 2, +Inf -> 3.
        assert hist.cumulative_counts() == [1, 2, 3]

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("repro_h", "h", buckets=(10.0, 1.0))

    def test_exposition_has_cumulative_buckets_and_count(self):
        hist = Histogram("repro_h", "h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(3.0)
        lines = hist.exposition_lines()
        assert 'repro_h_bucket{le="1"} 1' in lines
        assert 'repro_h_bucket{le="10"} 2' in lines
        assert 'repro_h_bucket{le="+Inf"} 2' in lines
        assert "repro_h_sum 3.5" in lines
        assert "repro_h_count 2" in lines

    def test_default_buckets_are_fixed_and_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_register_once_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x")
        again = registry.counter("repro_x_total")
        assert first is again

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError, match="registered"):
            registry.gauge("repro_x_total", "x")

    def test_prometheus_text_passes_own_checker(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "jobs").inc(3)
        registry.gauge("repro_depth", "queue depth").set(2, {"backend": "s"})
        registry.histogram("repro_secs", "s", buckets=(1.0, 5.0)).observe(2)
        assert check_prometheus_text(registry.prometheus_text()) == []

    def test_round_trips_through_dict(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "jobs").inc(3, {"job": "a"})
        registry.histogram("repro_secs", "s", buckets=(1.0,)).observe(0.5)
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.prometheus_text() == registry.prometheus_text()


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.sample("s", 1.0)
        NULL_TELEMETRY.counter("repro_x_total").inc()
        NULL_TELEMETRY.gauge("repro_x").set(1)
        NULL_TELEMETRY.histogram("repro_h").observe(1)
        NULL_TELEMETRY.advance(5.0)
        assert NULL_TELEMETRY.prometheus_text() == ""

    def test_write_timeline_is_a_no_op(self, tmp_path):
        path = tmp_path / "t.jsonl"
        NullTelemetry().write_timeline(path)
        assert not path.exists()

    def test_cluster_without_telemetry_gets_the_null(self):
        class Bare:
            pass

        assert telemetry_of(Bare()) is NULL_TELEMETRY


class TestTelemetrySampling:
    def test_samples_record_series_value_time_source(self):
        telemetry = Telemetry(run_id="r")
        telemetry.sample("shuffle_bytes", 100, labels={"job": "j"})
        telemetry.advance(5.0)
        telemetry.sample("shuffle_bytes", 200, labels={"job": "j"})
        records = telemetry.samples
        assert [r["value"] for r in records] == [100, 200]
        assert [r["t"] for r in records] == [0.0, 5.0]
        assert all(r["source"] == "sim" for r in records)
        assert records[0]["labels"] == {"job": "j"}

    def test_explicit_timestamp_overrides_clock(self):
        telemetry = Telemetry()
        telemetry.sample("s", 1, at=42.5)
        assert telemetry.samples[0]["t"] == 42.5

    def test_host_source_tagged(self):
        telemetry = Telemetry()
        telemetry.sample("driver_rss_bytes", 1, source="host")
        assert telemetry.samples[0]["source"] == "host"

    def test_unknown_source_rejected(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError, match="source"):
            telemetry.sample("s", 1, source="wall")

    def test_cadence_drops_dense_samples_deterministically(self):
        telemetry = Telemetry(cadence=1.0)
        for tick in range(10):
            telemetry.sample("s", tick, at=tick * 0.25)
        kept = [r["t"] for r in telemetry.samples]
        # Only samples >= 1.0 logical second apart survive.
        assert kept == [0.0, 1.0, 2.0]
        assert telemetry.dropped_samples == 7

    def test_cadence_is_per_series_and_label_set(self):
        telemetry = Telemetry(cadence=10.0)
        telemetry.sample("s", 1, labels={"job": "a"}, at=0.0)
        telemetry.sample("s", 2, labels={"job": "b"}, at=0.5)
        assert len(telemetry.samples) == 2  # different keys: both kept

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError, match="cadence"):
            Telemetry(cadence=-1.0)


class TestTimelineArtifact:
    def test_records_have_meta_then_samples_then_registry(self):
        telemetry = Telemetry(run_id="run-1")
        telemetry.counter("repro_jobs_total", "jobs").inc()
        telemetry.sample("s", 1)
        records = telemetry.timeline_records()
        assert records[0]["type"] == "meta"
        assert records[0]["run_id"] == "run-1"
        assert records[1]["type"] == "sample"
        assert records[-1]["type"] == "registry"

    def test_write_timeline_is_valid_jsonl(self, tmp_path):
        telemetry = Telemetry(run_id="run-1")
        telemetry.sample("s", 1)
        path = tmp_path / "timeline.jsonl"
        telemetry.write_timeline(path)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "meta", "sample", "registry",
        ]


class TestDriverRss:
    def test_reports_positive_bytes_or_none(self):
        rss = driver_rss_bytes()
        assert rss is None or rss > 1024 * 1024  # > 1 MiB if measurable


class TestEmitRunTelemetry:
    def run_metrics(self):
        from repro.mapreduce import JobMetrics, RunMetrics

        run = RunMetrics(algorithm="X", output_groups=42)
        run.jobs.append(JobMetrics(name="j", total_seconds=3.0))
        run.extras["sketch_bytes"] = 512
        return run

    def test_null_cluster_is_a_no_op(self):
        class Bare:
            telemetry = None

        emit_run_telemetry(Bare(), self.run_metrics())  # must not raise

    def test_records_run_level_series(self):
        class Cluster:
            pass

        cluster = Cluster()
        cluster.telemetry = Telemetry(run_id="t")
        emit_run_telemetry(cluster, self.run_metrics())
        names = {r["series"] for r in cluster.telemetry.samples}
        assert "cube_groups" in names
        assert "sketch_bytes" in names
        registry = cluster.telemetry.registry
        assert registry.get("repro_runs_total").value({"run": "X"}) == 1
        assert (
            registry.get("repro_cube_groups").value({"run": "X"}) == 42
        )


class TestPrometheusChecker:
    def test_flags_malformed_lines(self):
        bad = "\n".join([
            "# TYPE repro_x counter",
            "repro_x notanumber",
            "9bad_name 1",
            'repro_y{le=} 3',
        ])
        problems = check_prometheus_text(bad)
        assert len(problems) >= 3

    def test_flags_noncumulative_histogram(self):
        bad = "\n".join([
            "# TYPE repro_h histogram",
            'repro_h_bucket{le="1"} 5',
            'repro_h_bucket{le="10"} 3',
            'repro_h_bucket{le="+Inf"} 5',
            "repro_h_sum 1",
            "repro_h_count 5",
        ])
        problems = check_prometheus_text(bad)
        assert any("cumulative" in p or "monoton" in p for p in problems)

    def test_flags_duplicate_series(self):
        bad = "repro_x 1\nrepro_x 2"
        assert any("duplicate" in p for p in check_prometheus_text(bad))

    def test_accepts_empty_text(self):
        assert check_prometheus_text("") == []
