"""Explain queries: walking a lineage artifact from symptom to cause."""

import pytest

from repro.observability import (
    ExplainError,
    LineageIndex,
    explain_group,
    explain_reducer,
    format_explain_markdown,
    parse_cuboid,
)


def artifact():
    """Two executions of 'cube' (a resume) plus a small side job."""
    meta = {"type": "lineage_meta", "version": 1, "run_id": "r"}

    def job(name, execution, reducers, completed=()):
        return {
            "type": "job", "job": name, "execution": execution,
            "t0": 0.0, "seconds": 4.0, "aborted": False,
            "num_reducers": reducers, "map_tasks": 2,
            "completed_reducers": list(completed),
        }

    def flow(name, execution, map_task, reducer, records, cuboids):
        return {
            "type": "flow", "job": name, "execution": execution,
            "map_task": map_task, "reducer": reducer, "records": records,
            "bytes": 10 * records,
            "cuboids": {str(k): v for k, v in cuboids.items()},
        }

    return [
        meta,
        job("side", 0, 1),
        flow("side", 0, 0, 0, 5, {0: 5}),
        # Execution 0 of the cube round was aborted mid-way; the resume
        # (execution 1) salvaged reducer 2 from a checkpoint.
        job("cube", 0, 3),
        flow("cube", 0, 0, 1, 8, {3: 8}),
        job("cube", 1, 3, completed=[2]),
        flow("cube", 1, 0, 1, 30, {3: 20, 1: 10}),
        flow("cube", 1, 1, 1, 10, {3: 10}),
        flow("cube", 1, 1, 0, 5, {1: 5}),
        # Reducer 2 was salvaged from a checkpoint: the re-run maps still
        # shuffled to it, but its reduce task ran in execution 0.
        flow("cube", 1, 0, 2, 4, {3: 4}),
        {"type": "alert", "kind": "skew_alert", "job": "cube",
         "execution": 1, "at": 8.0, "reducer": 1, "observed": 40,
         "bound": 15.0, "ratio": 2.67, "tolerance": 2.0},
        {"type": "alert", "kind": "misannotation_alert", "job": "cube",
         "execution": 1, "at": 8.0, "cuboid": 3, "reducer": 1,
         "observed": 30, "bound": 15.0, "ratio": 2.0, "tolerance": 2.0},
    ]


class TestIndex:
    def test_requires_meta_head(self):
        with pytest.raises(ExplainError, match="lineage_meta"):
            LineageIndex([{"type": "job", "job": "x"}])
        with pytest.raises(ExplainError):
            LineageIndex([])

    def test_dominant_job_by_flow_records(self):
        index = LineageIndex(artifact())
        assert index.dominant_job() == "cube"
        assert index.job_names() == ["side", "cube"]

    def test_latest_execution(self):
        index = LineageIndex(artifact())
        assert index.latest_execution("cube") == ("cube", 1)
        with pytest.raises(ExplainError, match="recorded jobs"):
            index.latest_execution("nope")

    def test_alerts_filter_by_reducer_and_cuboid(self):
        index = LineageIndex(artifact())
        assert len(index.alerts_for("cube")) == 2
        assert len(index.alerts_for("cube", reducer=1)) == 2
        assert index.alerts_for("cube", cuboid=7) == [
            index.alerts[0]  # skew alert carries no cuboid field
        ]
        assert index.alerts_for("side") == []


class TestExplainReducer:
    def test_defaults_to_dominant_job_hottest_reducer(self):
        result = explain_reducer(artifact())
        assert result["job"] == "cube"
        assert result["execution"] == 1  # latest, not the aborted round
        assert result["reducer"] == 1
        assert result["records"] == 40
        assert result["job_records"] == 49
        assert result["share"] == pytest.approx(40 / 49)
        # Descending by records: cuboid 3 (30) before cuboid 1 (10).
        assert list(result["by_cuboid"].items()) == [("3", 30), ("1", 10)]
        # Map task i reads input split i.
        assert [
            (t["map_task"], t["input_split"]) for t in result["map_tasks"]
        ] == [(0, 0), (1, 1)]
        assert len(result["alerts"]) == 2
        assert result["salvaged"] is False

    def test_salvaged_partition_is_flagged(self):
        result = explain_reducer(artifact(), job="cube", reducer=2)
        assert result["salvaged"] is True
        assert result["records"] == 4

    def test_unknown_reducer_lists_seen(self):
        with pytest.raises(ExplainError,
                           match=r"reducers seen: \[0, 1, 2\]"):
            explain_reducer(artifact(), job="cube", reducer=9)

    def test_accepts_a_prebuilt_index(self):
        index = LineageIndex(artifact())
        assert explain_reducer(index)["reducer"] == 1


class TestExplainGroup:
    def test_walks_cuboid_across_reducers(self):
        result = explain_group(artifact(), 1)
        assert result["job"] == "cube"
        assert result["records"] == 15
        assert result["by_reducer"] == {"0": 5, "1": 10}
        assert result["hottest_reducer"] == 1
        assert result["concentration"] == pytest.approx(10 / 15)
        assert [t["map_task"] for t in result["map_tasks"]] == [0, 1]
        # The cuboid-3 misannotation is excluded; the skew alert names
        # no cuboid, so it joins every group query on its job.
        assert [a["kind"] for a in result["alerts"]] == ["skew_alert"]

    def test_alerts_join_on_cuboid(self):
        result = explain_group(artifact(), 3)
        kinds = {a["kind"] for a in result["alerts"]}
        assert kinds == {"skew_alert", "misannotation_alert"}

    def test_missing_cuboid_lists_seen(self):
        with pytest.raises(ExplainError, match="cuboids seen"):
            explain_group(artifact(), 0x7F)


class TestParseCuboid:
    def test_accepts_all_bases(self):
        assert parse_cuboid("5") == 5
        assert parse_cuboid("0x1b") == 27
        assert parse_cuboid("0b101") == 5

    def test_rejects_garbage(self):
        with pytest.raises(ExplainError, match="lattice mask"):
            parse_cuboid("ABC")


class TestMarkdown:
    def test_reducer_report_renders_tables_and_alerts(self):
        text = format_explain_markdown(explain_reducer(artifact()))
        assert "## Reducer 1 of `cube`" in text
        assert "| cuboid | records |" in text
        assert "| 0x3 | 30 |" in text
        assert "| map task | input split | records | bytes |" in text
        assert "### Watchdog alerts" in text
        assert "`skew_alert` at t=8.0" in text

    def test_salvaged_note_renders(self):
        text = format_explain_markdown(
            explain_reducer(artifact(), job="cube", reducer=2)
        )
        assert "salvaged from a checkpoint" in text

    def test_group_report_renders(self):
        text = format_explain_markdown(explain_group(artifact(), 3))
        assert "## Cuboid 0x3 in `cube`" in text
        assert "| reducer | records |" in text
        assert "hottest reducer 1" in text
