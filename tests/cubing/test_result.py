"""CubeResult container."""

import pytest

from repro.cubing import CubeResult
from repro.relation import Schema


@pytest.fixture
def schema():
    return Schema(["a", "b"], "m")


class TestAddAndAccess:
    def test_add_and_value(self, schema):
        cube = CubeResult(schema)
        cube.add(0b01, ("x",), 5)
        assert cube.value(0b01, ("x",)) == 5

    def test_duplicate_same_value_ok(self, schema):
        cube = CubeResult(schema)
        cube.add(0, (), 1)
        cube.add(0, (), 1)
        assert len(cube) == 1

    def test_conflicting_value_raises(self, schema):
        cube = CubeResult(schema)
        cube.add(0, (), 1)
        with pytest.raises(ValueError, match="conflicting"):
            cube.add(0, (), 2)

    def test_get_with_default(self, schema):
        cube = CubeResult(schema)
        assert cube.get(0, (), "missing") == "missing"

    def test_contains(self, schema):
        cube = CubeResult(schema)
        cube.add(0b10, ("y",), 3)
        assert (0b10, ("y",)) in cube
        assert (0b01, ("y",)) not in cube


class TestViews:
    def test_cuboid_extraction(self, schema):
        cube = CubeResult(schema)
        cube.add(0b01, ("x",), 1)
        cube.add(0b01, ("y",), 2)
        cube.add(0b10, ("z",), 3)
        assert cube.cuboid(0b01) == {("x",): 1, ("y",): 2}

    def test_groups_per_cuboid_counts_all_masks(self, schema):
        cube = CubeResult(schema)
        cube.add(0, (), 9)
        counts = cube.groups_per_cuboid()
        assert counts[0] == 1
        assert counts[0b11] == 0
        assert len(counts) == 4

    def test_to_rows_deterministic_order(self, schema):
        cube = CubeResult(schema)
        cube.add(0b11, ("x", "y"), 1)
        cube.add(0, (), 2)
        cube.add(0b01, ("a",), 3)
        rows = cube.to_rows()
        assert [row[0] for row in rows] == [0, 0b01, 0b11]


class TestComparison:
    def test_equality(self, schema):
        a = CubeResult(schema, {(0, ()): 5})
        b = CubeResult(schema, {(0, ()): 5})
        assert a == b

    def test_inequality(self, schema):
        a = CubeResult(schema, {(0, ()): 5})
        b = CubeResult(schema, {(0, ()): 6})
        assert a != b

    def test_not_comparable_to_dict(self, schema):
        assert CubeResult(schema) != {}

    def test_unhashable(self, schema):
        with pytest.raises(TypeError, match="unhashable type"):
            hash(CubeResult(schema))

    def test_unhashable_the_canonical_way(self, schema):
        # __hash__ = None (not a raising method): dict/set membership
        # fails up front and collections.abc.Hashable agrees.
        from collections.abc import Hashable

        assert CubeResult.__hash__ is None
        assert not isinstance(CubeResult(schema), Hashable)
        with pytest.raises(TypeError, match="unhashable type"):
            {CubeResult(schema): 1}

    def test_diff_reports_all_kinds(self, schema):
        a = CubeResult(schema, {(0, ()): 1, (0b01, ("x",)): 2})
        b = CubeResult(schema, {(0, ()): 9, (0b10, ("y",)): 3})
        problems = "\n".join(a.diff(b))
        assert "mismatch" in problems
        assert "missing in other" in problems
        assert "extra in other" in problems

    def test_diff_respects_limit(self, schema):
        a = CubeResult(schema, {(0b01, (i,)): i for i in range(50)})
        b = CubeResult(schema)
        assert len(a.diff(b, limit=5)) == 5

    def test_repr(self, schema):
        cube = CubeResult(schema, {(0, ()): 1})
        assert "1 groups" in repr(cube)
