"""Sequential algorithms: oracle semantics, BUC, top-down, cross-checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Average, Count, Max, Min, Sum, TopKFrequent
from repro.cubing import (
    buc_cube,
    iceberg_groups,
    sequential_cube,
    topdown_cube,
)
from repro.cubing.pipesort import aggregation_tree
from repro.relation import Relation, Schema, full_mask, mask_size

from ..conftest import make_random_relation


class TestOracleSemantics:
    def test_running_example_counts(self, retail_relation):
        cube = sequential_cube(retail_relation)
        # (laptop, *, *): three laptop rows.
        assert cube.value(0b001, ("laptop",)) == 3
        # (*, *, *): all rows.
        assert cube.value(0, ()) == 10
        # (keyboard, Rome, 2009): two rows.
        assert cube.value(0b111, ("keyboard", "Rome", 2009)) == 2

    def test_sum_aggregate(self, retail_relation):
        cube = sequential_cube(retail_relation, Sum())
        assert cube.value(0b001, ("laptop",)) == 2000 + 1500 + 900

    def test_number_of_cuboids(self, retail_relation):
        cube = sequential_cube(retail_relation)
        masks = {mask for mask, _ in cube.groups_per_cuboid().items()}
        assert len(masks) == 8

    def test_mask_restriction(self, retail_relation):
        cube = sequential_cube(retail_relation, masks=[0, 0b111])
        counts = cube.groups_per_cuboid()
        assert counts[0] == 1
        assert counts[0b001] == 0

    def test_cuboid_group_count_matches_distinct_projections(
        self, retail_relation
    ):
        cube = sequential_cube(retail_relation)
        for mask in (0b001, 0b010, 0b111):
            distinct = set(
                retail_relation.project_group(row, mask)
                for row in retail_relation
            )
            assert len(cube.cuboid(mask)) == len(distinct)

    def test_empty_relation(self):
        rel = Relation(Schema(["a"], "m"), [])
        cube = sequential_cube(rel)
        assert cube.num_groups == 0


class TestBUC:
    def test_matches_oracle(self, retail_relation):
        assert buc_cube(retail_relation) == sequential_cube(retail_relation)

    def test_matches_oracle_with_sum(self, retail_relation):
        assert buc_cube(retail_relation, Sum()) == sequential_cube(
            retail_relation, Sum()
        )

    def test_iceberg_prunes_small_groups(self, retail_relation):
        iceberg = buc_cube(retail_relation, min_support=2)
        full = sequential_cube(retail_relation)
        for (mask, values), _count in iceberg.items():
            assert full.value(mask, values) >= 0
        # Every kept group has at least 2 contributing rows.
        counts = sequential_cube(retail_relation)
        for (mask, values), _agg in iceberg.items():
            assert counts.value(mask, values) >= 2

    def test_iceberg_keeps_all_qualifying(self, retail_relation):
        iceberg = buc_cube(retail_relation, min_support=3)
        oracle = sequential_cube(retail_relation)
        expected = {
            key for key, count in oracle.items() if count >= 3
        }
        assert set(key for key, _ in iceberg.items()) == expected

    def test_invalid_min_support(self, retail_relation):
        with pytest.raises(ValueError):
            buc_cube(retail_relation, min_support=0)

    def test_mask_restriction(self, retail_relation):
        cube = buc_cube(retail_relation, masks=[0b011])
        assert set(mask for (mask, _v), _ in cube.items()) == {0b011}

    def test_iceberg_groups_helper(self, retail_relation):
        heavy = iceberg_groups(retail_relation.rows, 3, min_support=3)
        assert heavy[(0, ())] == 10
        assert (0b001, ("laptop",)) in heavy
        assert all(count >= 3 for count in heavy.values())

    def test_unorderable_dimension_values(self):
        # Mixed-type dimension values must not break partitioning.
        rel = Relation(
            Schema(["a"], "m"), [(1, 1), ("x", 1), (2, 1)], validate=False
        )
        assert buc_cube(rel) == sequential_cube(rel)


class TestTopDown:
    def test_matches_oracle(self, retail_relation):
        assert topdown_cube(retail_relation) == sequential_cube(
            retail_relation
        )

    def test_matches_oracle_holistic(self, retail_relation):
        fn = TopKFrequent(2)
        assert topdown_cube(retail_relation, fn) == sequential_cube(
            retail_relation, fn
        )

    def test_aggregation_tree_is_valid(self):
        d = 4
        plan = aggregation_tree(d)
        top = full_mask(d)
        assert top not in plan
        for child, parent in plan.items():
            assert mask_size(parent) == mask_size(child) + 1
            assert parent & child == child

    def test_aggregation_tree_uses_cost_estimates(self):
        counts = {0b011: 5, 0b101: 500, 0b110: 50}
        plan = aggregation_tree(2 + 1, counts)
        assert plan[0b001] == 0b011  # cheapest parent of {0}


ALL_AGGREGATES = [Count(), Sum(), Min(), Max(), Average()]


class TestCrossCheck:
    @pytest.mark.parametrize("fn", ALL_AGGREGATES, ids=lambda f: f.name)
    def test_three_implementations_agree(self, fn):
        rel = make_random_relation(300, num_dimensions=3, seed=5)
        oracle = sequential_cube(rel, fn)
        assert buc_cube(rel, fn) == oracle
        assert topdown_cube(rel, fn) == oracle

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 2),
                st.sampled_from("xy"),
                st.integers(1, 9),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_relations(self, rows):
        rel = Relation(Schema(["a", "b", "c"], "m"), rows, validate=False)
        oracle = sequential_cube(rel)
        assert buc_cube(rel) == oracle
        assert topdown_cube(rel) == oracle
