"""SP-Cube end-to-end: correctness, knobs, metrics."""

import pytest

from repro.aggregates import (
    Average,
    Count,
    Max,
    Min,
    Sum,
    TopKFrequent,
    UnsupportedAggregateError,
    Variance,
)
from repro.core import SKETCH_PATH, SPCube
from repro.cubing import sequential_cube
from repro.mapreduce import ClusterConfig, DistributedFileSystem

from ..conftest import make_random_relation


@pytest.fixture
def cluster():
    return ClusterConfig(num_machines=5)


@pytest.fixture
def skewed_relation():
    return make_random_relation(
        1500, num_dimensions=3, cardinality=40, seed=13, skew_fraction=0.3
    )


AGGREGATES = [Count(), Sum(), Min(), Max(), Average(), Variance()]


class TestCorrectness:
    @pytest.mark.parametrize("fn", AGGREGATES, ids=lambda f: f.name)
    def test_matches_oracle_sampled_sketch(self, cluster, skewed_relation, fn):
        run = SPCube(cluster, fn).compute(skewed_relation)
        assert run.cube == sequential_cube(skewed_relation, fn)

    @pytest.mark.parametrize("fn", [Count(), Average()], ids=lambda f: f.name)
    def test_matches_oracle_exact_sketch(self, cluster, skewed_relation, fn):
        run = SPCube(cluster, fn, use_exact_sketch=True).compute(
            skewed_relation
        )
        assert run.cube == sequential_cube(skewed_relation, fn)

    def test_no_skew_data(self, cluster):
        rel = make_random_relation(800, cardinality=500, seed=3)
        run = SPCube(cluster).compute(rel)
        assert run.cube == sequential_cube(rel)

    def test_all_rows_identical(self, cluster):
        rel = make_random_relation(400, seed=5, skew_fraction=1.0)
        run = SPCube(cluster).compute(rel)
        assert run.cube == sequential_cube(rel)
        # The whole lattice of the single pattern is skew-absorbed.
        assert run.cube.num_groups == 8

    def test_tiny_relation(self, cluster):
        rel = make_random_relation(5, seed=6)
        run = SPCube(cluster).compute(rel)
        assert run.cube == sequential_cube(rel)

    def test_single_machine(self):
        rel = make_random_relation(200, seed=7, skew_fraction=0.2)
        run = SPCube(ClusterConfig(num_machines=1)).compute(rel)
        assert run.cube == sequential_cube(rel)


class TestAblations:
    def test_no_map_partial_aggregation_still_correct(
        self, cluster, skewed_relation
    ):
        run = SPCube(
            cluster, map_partial_aggregation=False
        ).compute(skewed_relation)
        assert run.cube == sequential_cube(skewed_relation)

    def test_no_ancestor_covering_still_correct(
        self, cluster, skewed_relation
    ):
        run = SPCube(cluster, ancestor_covering=False).compute(
            skewed_relation
        )
        assert run.cube == sequential_cube(skewed_relation)

    def test_hash_partitioning_still_correct(self, cluster, skewed_relation):
        run = SPCube(cluster, range_partitioning=False).compute(
            skewed_relation
        )
        assert run.cube == sequential_cube(skewed_relation)

    def test_covering_reduces_traffic(self, cluster, skewed_relation):
        covered = SPCube(cluster).compute(skewed_relation)
        uncovered = SPCube(cluster, ancestor_covering=False).compute(
            skewed_relation
        )
        assert (
            covered.metrics.intermediate_records
            < uncovered.metrics.intermediate_records
        )


class TestAggregatePolicy:
    def test_holistic_rejected_by_default(self, cluster):
        with pytest.raises(UnsupportedAggregateError):
            SPCube(cluster, TopKFrequent())

    def test_holistic_allowed_explicitly(self, cluster):
        rel = make_random_relation(300, seed=8, skew_fraction=0.3)
        fn = TopKFrequent(2)
        run = SPCube(cluster, fn, allow_holistic=True).compute(rel)
        assert run.cube == sequential_cube(rel, fn)


class TestRoundsAndMetrics:
    def test_two_rounds(self, cluster, skewed_relation):
        run = SPCube(cluster).compute(skewed_relation)
        assert [job.name for job in run.metrics.jobs] == [
            "sp-sketch",
            "sp-cube",
        ]

    def test_exact_sketch_skips_round_one(self, cluster, skewed_relation):
        run = SPCube(cluster, use_exact_sketch=True).compute(skewed_relation)
        assert [job.name for job in run.metrics.jobs] == ["sp-cube"]
        assert run.metrics.extras["sketch_mode"] == "exact"

    def test_extras_recorded(self, cluster, skewed_relation):
        run = SPCube(cluster).compute(skewed_relation)
        extras = run.metrics.extras
        assert extras["sketch_bytes"] > 0
        assert extras["sample_size"] >= 0
        assert 0 < extras["alpha"] <= 1
        assert extras["beta"] > 0
        assert "num_skewed_groups" in extras

    def test_sketch_returned(self, cluster, skewed_relation):
        run = SPCube(cluster).compute(skewed_relation)
        assert run.sketch is not None
        assert run.sketch.num_dimensions == 3

    def test_output_groups_counted(self, cluster, skewed_relation):
        run = SPCube(cluster).compute(skewed_relation)
        assert run.metrics.output_groups == run.cube.num_groups

    def test_sketch_size_much_smaller_than_input(self, cluster):
        rel = make_random_relation(2000, seed=9, skew_fraction=0.2)
        run = SPCube(cluster).compute(rel)
        from repro.mapreduce import relation_bytes

        _count, input_bytes = relation_bytes(rel.rows)
        assert run.metrics.extras["sketch_bytes"] < input_bytes / 20

    def test_skew_reducer_never_overloaded(self, cluster, skewed_relation):
        """Reducer 0 receives only partial states: at most k per group."""
        run = SPCube(cluster).compute(skewed_relation)
        cube_round = run.metrics.jobs[-1]
        skew_task = cube_round.reduce_tasks[0]
        assert skew_task.peak_group_records <= cluster.num_machines


class TestDFSIntegration:
    def test_sketch_published(self, cluster, skewed_relation):
        dfs = DistributedFileSystem()
        SPCube(cluster, dfs=dfs).compute(skewed_relation)
        assert dfs.exists(SKETCH_PATH)

    def test_cube_written_per_cuboid(self, cluster, skewed_relation):
        dfs = DistributedFileSystem()
        run = SPCube(cluster, dfs=dfs).compute(skewed_relation)
        cuboid_files = [
            path for path in dfs.list_files() if path.startswith("spcube/cube/")
        ]
        assert len(cuboid_files) == 8
        total = sum(len(dfs.read(path)) for path in cuboid_files)
        assert total == run.cube.num_groups


class TestDeterminism:
    def test_same_seed_same_metrics(self, skewed_relation):
        cluster = ClusterConfig(num_machines=5, seed=42)
        run1 = SPCube(cluster).compute(skewed_relation)
        run2 = SPCube(cluster).compute(skewed_relation)
        assert run1.cube == run2.cube
        assert (
            run1.metrics.intermediate_bytes
            == run2.metrics.intermediate_bytes
        )

    def test_different_seed_same_cube(self, skewed_relation):
        run1 = SPCube(ClusterConfig(num_machines=5, seed=1)).compute(
            skewed_relation
        )
        run2 = SPCube(ClusterConfig(num_machines=5, seed=2)).compute(
            skewed_relation
        )
        assert run1.cube == run2.cube
