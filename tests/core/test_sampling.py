"""Sampling parameters of Algorithm 2."""

import math

import pytest

from repro.core import (
    expected_sample_size,
    sampling_probability,
    skew_sample_threshold,
)


class TestAlpha:
    def test_formula(self):
        n, k, m = 100_000, 20, 5_000
        assert sampling_probability(n, k, m) == pytest.approx(
            math.log(n * k) / m
        )

    def test_clamped_to_one_for_tiny_inputs(self):
        assert sampling_probability(10, 2, 1) == 1.0

    def test_zero_rows(self):
        assert sampling_probability(0, 20, 100) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sampling_probability(10, 0, 5)
        with pytest.raises(ValueError):
            sampling_probability(10, 2, 0)


class TestBeta:
    def test_formula(self):
        assert skew_sample_threshold(1000, 10) == pytest.approx(
            math.log(10_000)
        )

    def test_zero_rows(self):
        assert skew_sample_threshold(0, 20) == 0.0

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            skew_sample_threshold(10, 0)

    def test_alpha_times_m_equals_beta(self):
        """A group at the skew threshold has expected sample count beta."""
        n, k = 200_000, 20
        m = n // k
        alpha = sampling_probability(n, k, m)
        beta = skew_sample_threshold(n, k)
        assert alpha * m == pytest.approx(beta)


class TestExpectedSampleSize:
    def test_order_of_m(self):
        """Prop 4.4: expected sample size is O(m) — concretely k*ln(nk)."""
        n, k = 1_000_000, 20
        m = n // k
        expected = expected_sample_size(n, k, m)
        assert expected == pytest.approx(k * math.log(n * k))
        assert expected < m
