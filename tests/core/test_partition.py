"""Range partitioning (Definition 4.1 / Proposition 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    find_partition,
    partition_elements_for_cuboid,
    partition_elements_from_sorted,
    partition_sizes,
)

from ..conftest import make_random_relation


class TestPartitionElements:
    def test_definition_positions(self):
        groups = [(i,) for i in range(12)]
        elements = partition_elements_from_sorted(groups, 4)
        # positions i*n/k for i = 1..k-1: 3, 6, 9
        assert elements == [(3,), (6,), (9,)]

    def test_single_partition_no_elements(self):
        assert partition_elements_from_sorted([(1,)], 1) == []

    def test_empty_input(self):
        assert partition_elements_from_sorted([], 5) == []

    def test_count_is_k_minus_one(self):
        groups = [(i,) for i in range(100)]
        assert len(partition_elements_from_sorted(groups, 7)) == 6

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            partition_elements_from_sorted([], 0)

    def test_elements_are_sorted(self):
        groups = sorted((i % 10,) for i in range(50))
        elements = partition_elements_from_sorted(groups, 5)
        assert elements == sorted(elements)

    def test_for_cuboid_sorts_projections(self):
        rel = make_random_relation(60, num_dimensions=2, seed=1)
        elements = partition_elements_for_cuboid(rel.rows, 0b01, 2, 4)
        assert elements == sorted(elements)
        assert all(len(e) == 1 for e in elements)


class TestFindPartition:
    def test_boundaries_inclusive_left(self):
        elements = [("b",), ("d",)]
        assert find_partition(elements, ("a",)) == 0
        assert find_partition(elements, ("b",)) == 0  # equal -> lower
        assert find_partition(elements, ("c",)) == 1
        assert find_partition(elements, ("d",)) == 1
        assert find_partition(elements, ("e",)) == 2

    def test_no_elements_single_partition(self):
        assert find_partition([], ("anything",)) == 0

    @given(
        values=st.lists(st.integers(0, 100), min_size=1, max_size=200),
        k=st.integers(2, 10),
    )
    @settings(max_examples=50)
    def test_partition_index_in_range(self, values, k):
        groups = sorted((v,) for v in values)
        elements = partition_elements_from_sorted(groups, k)
        for group in groups:
            assert 0 <= find_partition(elements, group) < k


class TestProposition42:
    def test_group_never_split(self):
        """Prop 4.2(1): equal groups land in the same partition (trivially,
        since routing is a pure function of the group value)."""
        rel = make_random_relation(200, num_dimensions=2, cardinality=4, seed=2)
        mask = 0b01
        elements = partition_elements_for_cuboid(rel.rows, mask, 2, 5)
        routes = {}
        for row in rel:
            group = rel.project_group(row, mask)
            route = find_partition(elements, group)
            assert routes.setdefault(group, route) == route

    def test_partitions_balanced_without_skew(self):
        """Prop 4.2(2): with no skewed groups, partitions are O(m)."""
        rel = make_random_relation(
            1000, num_dimensions=2, cardinality=1000, seed=3
        )
        k = 5
        m = len(rel) // k
        mask = 0b11
        elements = partition_elements_for_cuboid(rel.rows, mask, 2, k)
        sizes = partition_sizes(rel.rows, mask, 2, elements, k)
        assert sum(sizes) == len(rel)
        # Exact elements from the full sort: each partition within ~2m.
        assert max(sizes) <= 2 * m

    def test_partition_sizes_accounts_every_row(self):
        rel = make_random_relation(137, num_dimensions=3, seed=4)
        k = 4
        elements = partition_elements_for_cuboid(rel.rows, 0b101, 3, k)
        sizes = partition_sizes(rel.rows, 0b101, 3, elements, k)
        assert sum(sizes) == 137
        assert len(sizes) == k
