"""The OLAP query layer over materialized cubes."""

import pytest

from repro.aggregates import Sum
from repro.cubing import sequential_cube
from repro.query import CubeView, QueryError


@pytest.fixture
def view(retail_relation):
    return CubeView(sequential_cube(retail_relation))


@pytest.fixture
def sum_view(retail_relation):
    return CubeView(sequential_cube(retail_relation, Sum()))


class TestRollup:
    def test_single_dimension(self, view):
        groups = view.rollup("name")
        assert groups[("laptop",)] == 3
        assert groups[("keyboard",)] == 3

    def test_two_dimensions(self, view):
        groups = view.rollup("name", "year")
        assert groups[("laptop", 2012)] == 2
        assert groups[("keyboard", 2009)] == 2

    def test_out_of_schema_order(self, view):
        """Caller order is honoured: (year, name) vs (name, year)."""
        reordered = view.rollup("year", "name")
        assert reordered[(2012, "laptop")] == 2

    def test_empty_rollup_is_total(self, view):
        assert view.rollup() == {(): 10}

    def test_total(self, view):
        assert view.total() == 10

    def test_unknown_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.rollup("bogus")

    def test_duplicate_dimension(self, view):
        with pytest.raises(QueryError, match="twice"):
            view.rollup("name", "name")


class TestSlice:
    def test_fix_one_dimension(self, view):
        rome = view.slice(city="Rome")
        assert rome[("laptop", 2012)] == 1
        assert rome[("keyboard", 2009)] == 2
        assert ("keyboard", 2010) not in rome

    def test_fix_two_dimensions(self, view):
        groups = view.slice(name="laptop", city="Rome")
        assert groups == {(2012,): 1, (2015,): 1}

    def test_fix_everything(self, view):
        assert view.slice(name="laptop", city="Rome", year=2012) == {(): 1}

    def test_no_match(self, view):
        assert view.slice(city="Tokyo") == {}


class TestDice:
    def test_predicate_filter(self, view):
        recent = view.dice(year=lambda y: y >= 2012)
        assert all(values[2] >= 2012 for values in recent)
        assert ("keyboard", "Rome", 2009) not in recent

    def test_multiple_predicates(self, view):
        groups = view.dice(
            year=lambda y: y == 2012, city=lambda c: c == "Rome"
        )
        assert set(groups) == {
            ("laptop", "Rome", 2012),
            ("printer", "Rome", 2012),
            ("television", "Rome", 2012),
        }


class TestDrilldown:
    def test_refine_by_one_dimension(self, view):
        cities = view.drilldown({"name": "laptop"}, into="city")
        assert cities == {"Rome": 2, "Paris": 1}

    def test_drill_from_two_fixed(self, view):
        years = view.drilldown(
            {"name": "keyboard", "city": "Rome"}, into="year"
        )
        assert years == {2009: 2}

    def test_cannot_drill_into_fixed(self, view):
        with pytest.raises(QueryError, match="fixed dimension"):
            view.drilldown({"name": "laptop"}, into="name")


class TestTopAndPivot:
    def test_top_by_count(self, view):
        top = view.top(["name"], k=2)
        names = {values[0] for values, _count in top}
        assert names <= {"laptop", "keyboard"}
        assert len(top) == 2

    def test_top_with_sum(self, sum_view):
        top = sum_view.top(["name"], k=1)
        assert top[0][0] == ("laptop",)  # 4400 total sales

    def test_top_invalid_k(self, view):
        with pytest.raises(QueryError):
            view.top(["name"], k=0)

    def test_pivot(self, view):
        table = view.pivot("name", "year")
        assert table["laptop"] == {2012: 2, 2015: 1}
        assert table["keyboard"][2009] == 2

    def test_cuboid_sizes_named(self, view):
        sizes = view.cuboid_sizes()
        assert sizes[()] == 1
        assert sizes[("name",)] == 4
        assert len(sizes) == 8


class TestErrorPaths:
    """Every malformed query surfaces as a QueryError — never a raw
    SchemaError or KeyError leaking implementation detail."""

    def test_rollup_unknown_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.rollup("name", "bogus")

    def test_slice_unknown_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.slice(bogus="Rome")

    def test_dice_unknown_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.dice(bogus=lambda v: True)

    def test_drilldown_unknown_group_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.drilldown({"bogus": "laptop"}, into="city")

    def test_drilldown_unknown_into_dimension(self, view):
        with pytest.raises(QueryError, match="unknown dimension"):
            view.drilldown({"name": "laptop"}, into="bogus")

    def test_empty_cube_total(self, retail_schema):
        from repro.cubing import CubeResult

        empty = CubeView(CubeResult(retail_schema))
        with pytest.raises(QueryError, match="no apex"):
            empty.total()

    def test_top_k_larger_than_cuboid(self, view):
        # 4 product names; asking for 5 is a caller bug, not a short list.
        with pytest.raises(QueryError, match="only 4 group"):
            view.top(["name"], k=5)

    def test_top_k_equal_to_cuboid_is_fine(self, view):
        assert len(view.top(["name"], k=4)) == 4


class TestDistributedCubeQueries:
    def test_view_over_spcube_output(self, retail_relation):
        """Queries work identically over a distributed engine's cube."""
        from repro.core import SPCube
        from repro.mapreduce import ClusterConfig

        run = SPCube(ClusterConfig(num_machines=3)).compute(retail_relation)
        view = CubeView(run.cube)
        assert view.total() == 10
        assert view.drilldown({"name": "laptop"}, into="city") == {
            "Rome": 2,
            "Paris": 1,
        }
