"""The tuple-lattice marking planner (Algorithm 3's shared core)."""

import pytest

from repro.core import (
    PlannerError,
    build_exact_sketch,
    plan_for_skew_bits,
    plan_tuple,
    plan_without_covering,
)
from repro.relation import all_cuboids, bfs_order, mask_size

from ..conftest import make_random_relation


class TestNoSkewPlan:
    def test_single_emission_covers_everything(self):
        plan = plan_for_skew_bits(0, 3)
        assert plan.skewed_masks == ()
        assert len(plan.emissions) == 1
        base, covered = plan.emissions[0]
        assert base == 0
        assert sorted(covered) == list(all_cuboids(3))


class TestApexSkewedPlan:
    def test_level_one_bases_cover_lattice(self):
        # Only the apex (mask 0) skewed: the d level-1 nodes become bases.
        plan = plan_for_skew_bits(1 << 0, 3)
        assert plan.skewed_masks == (0,)
        bases = [base for base, _covered in plan.emissions]
        assert bases == [0b001, 0b010, 0b100]

    def test_prop55_intuition_each_tuple_sent_at_most_d_times(self):
        d = 4
        plan = plan_for_skew_bits(1, d)
        assert plan.num_emitted <= d


class TestCoverageInvariants:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_every_mask_handled_exactly_once(self, d):
        """Each lattice node is either skew-absorbed or covered by exactly
        one emission — the invariant that makes the cube complete and
        duplicate-free."""
        import itertools
        import random

        rng = random.Random(d)
        for _ in range(50):
            bits = _random_monotone_skew_bits(rng, d)
            plan = plan_for_skew_bits(bits, d)
            covered = list(plan.skewed_masks) + list(
                plan.all_covered_masks()
            )
            assert sorted(covered) == list(all_cuboids(d))

    def test_bases_precede_covered_in_bfs(self):
        plan = plan_for_skew_bits(0b1, 3)
        order = {mask: i for i, mask in enumerate(bfs_order(3))}
        for base, covered in plan.emissions:
            for mask in covered:
                assert order[mask] >= order[base]

    def test_covered_masks_are_supersets_of_base(self):
        plan = plan_for_skew_bits(0b1, 4)
        for base, covered in plan.emissions:
            for mask in covered:
                assert mask & base == base


class TestMonotonicityGuard:
    def test_inverted_skew_bits_raise(self):
        # Mark mask 0b11 skewed but its subset 0b01 not: impossible for any
        # sample, must be rejected rather than double-computed.
        bits = 1 << 0b11
        with pytest.raises(PlannerError, match="skew bitmap"):
            plan_for_skew_bits(bits, 2)


class TestPlanWithoutCovering:
    def test_each_nonskewed_mask_emitted_alone(self):
        plan = plan_without_covering(1 << 0, 3)
        assert plan.skewed_masks == (0,)
        assert len(plan.emissions) == 7
        for base, covered in plan.emissions:
            assert covered == (base,)


class TestPlanTuple:
    def test_uses_sketch_skew_bits(self):
        rel = make_random_relation(
            300, num_dimensions=3, cardinality=30, seed=1, skew_fraction=0.5
        )
        sketch = build_exact_sketch(rel, 4, 40)
        skew_row = (1, 1, 1, 5)
        plan = plan_tuple(skew_row, sketch)
        # The planted identical rows are skewed in every cuboid.
        assert sorted(plan.skewed_masks) == list(all_cuboids(3))
        assert plan.emissions == ()

    def test_mapper_reducer_consistency(self):
        """The reducer must reconstruct exactly the mapper's covered sets."""
        rel = make_random_relation(
            300, num_dimensions=3, cardinality=30, seed=2, skew_fraction=0.3
        )
        sketch = build_exact_sketch(rel, 4, 40)
        for row in rel.rows[:100]:
            plan_a = plan_tuple(row, sketch)
            plan_b = plan_tuple(row, sketch)
            assert plan_a.emissions == plan_b.emissions
            assert plan_a.covered_by == dict(plan_a.emissions)

    def test_plans_cached_by_skew_bits(self):
        assert plan_for_skew_bits(0, 4) is plan_for_skew_bits(0, 4)


def _random_monotone_skew_bits(rng, d):
    """Random downward-monotone skew bitmap (what real data can produce)."""
    # Pick random "skew sources" at the finest level and close downward.
    bits = 1  # apex always skewed in interesting cases
    for mask in all_cuboids(d):
        if mask and rng.random() < 0.2:
            # mark all subsets of this mask as skewed
            sub = mask
            while True:
                bits |= 1 << sub
                if sub == 0:
                    break
                sub = (sub - 1) & mask
    return bits
