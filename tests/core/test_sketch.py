"""The SP-Sketch: exact and sampled builders, invariants, size."""

import random

import pytest

from repro.core import (
    SketchError,
    build_exact_sketch,
    build_sketch_from_sample,
    sampling_probability,
    skew_sample_threshold,
)
from repro.core.sketch import CuboidSketch, SPSketch
from repro.relation import all_cuboids

from ..conftest import make_random_relation


def skewed_relation(n=400, skew_fraction=0.5, seed=0):
    return make_random_relation(
        n,
        num_dimensions=3,
        cardinality=50,
        seed=seed,
        skew_fraction=skew_fraction,
    )


class TestExactSketch:
    def test_detects_exactly_the_true_skews(self):
        rel = skewed_relation()
        m = 40
        sketch = build_exact_sketch(rel, num_partitions=4, memory_records=m)
        for mask in all_cuboids(3):
            truth = {
                values
                for values, count in rel.group_sizes(mask).items()
                if count > m
            }
            assert set(sketch.cuboids[mask].skewed) == truth

    def test_apex_always_skewed_when_n_exceeds_m(self):
        rel = skewed_relation(n=100, skew_fraction=0.0)
        sketch = build_exact_sketch(rel, 4, 25)
        assert sketch.is_skewed(0, ())

    def test_partition_elements_per_cuboid(self):
        rel = skewed_relation()
        k = 5
        sketch = build_exact_sketch(rel, k, 40)
        for mask in all_cuboids(3):
            assert len(sketch.cuboids[mask].partition_elements) == k - 1

    def test_monotonicity_holds(self):
        sketch = build_exact_sketch(skewed_relation(), 4, 30)
        sketch.validate_monotonic()  # must not raise


class TestSampledSketch:
    def test_detects_heavy_skews(self):
        """A group holding half the rows must be caught (Prop 4.5)."""
        n, k = 2000, 5
        m = n // k
        rel = skewed_relation(n=n, skew_fraction=0.5, seed=7)
        alpha = sampling_probability(n, k, m)
        beta = skew_sample_threshold(n, k)
        sample = rel.sample(alpha, random.Random(3))
        sketch = build_sketch_from_sample(sample, 3, k, beta)
        # The planted identical rows make (1,1,1) and all its projections
        # giant (50% of n >> m); every one must be flagged.
        assert sketch.is_skewed(0b111, (1, 1, 1))
        assert sketch.is_skewed(0b001, (1,))
        assert sketch.is_skewed(0, ())

    def test_sample_size_order_m(self):
        """Prop 4.4: the sample is O(m) w.h.p."""
        n, k = 5000, 10
        m = n // k
        rel = skewed_relation(n=n, seed=9)
        alpha = sampling_probability(n, k, m)
        sample = rel.sample(alpha, random.Random(4))
        assert len(sample) < 2 * m

    def test_empty_sample_gives_blank_sketch(self):
        sketch = build_sketch_from_sample([], 3, 4, beta=5.0)
        assert sketch.num_skewed == 0
        assert sketch.partition_of(0b111, (1, 2, 3)) == 0

    def test_monotonicity_holds_for_any_sample(self):
        rel = skewed_relation(seed=11)
        sample = rel.sample(0.5, random.Random(5))
        sketch = build_sketch_from_sample(sample, 3, 4, beta=3.0)
        sketch.validate_monotonic()


class TestSketchQueries:
    @pytest.fixture
    def sketch(self):
        rel = skewed_relation()
        return build_exact_sketch(rel, 4, 40)

    def test_partition_of_uses_elements(self, sketch):
        mask = 0b001
        elements = sketch.cuboids[mask].partition_elements
        if elements:
            below = (min(elements)[0] - 1,)
            assert sketch.partition_of(mask, below) == 0

    def test_skew_bits_consistency(self, sketch):
        rel = skewed_relation()
        for row in rel.rows[:50]:
            bits = sketch.skew_bits(row)
            for mask in all_cuboids(3):
                projected = rel.project_group(row, mask)
                assert bool(bits >> mask & 1) == sketch.is_skewed(
                    mask, projected
                )

    def test_skewed_groups_iteration_sorted(self, sketch):
        listed = list(sketch.skewed_groups())
        assert listed == sorted(listed, key=lambda item: (item[0], item[1]))
        assert len(listed) == sketch.num_skewed

    def test_payload_roundtrip_shape(self, sketch):
        payload = sketch.to_payload()
        assert len(payload) == 8  # one entry per cuboid
        for mask, skews, elements in payload:
            assert isinstance(mask, int)
            assert isinstance(skews, tuple)
            assert isinstance(elements, tuple)

    def test_serialized_bytes_positive_and_small(self, sketch):
        size = sketch.serialized_bytes()
        assert 0 < size < 100_000

    def test_repr(self, sketch):
        assert "SPSketch" in repr(sketch)


class TestMonotonicityValidation:
    def test_violation_detected(self):
        cuboids = {
            0b11: CuboidSketch(skewed={(1, 2): 100}),
            # (1,) deliberately missing from 0b01's skews.
        }
        sketch = SPSketch(2, 2, cuboids)
        with pytest.raises(SketchError, match="monotonicity"):
            sketch.validate_monotonic()

    def test_missing_cuboids_filled_with_blanks(self):
        sketch = SPSketch(2, 2, {})
        assert len(sketch.cuboids) == 4
        assert sketch.num_skewed == 0


class TestToDict:
    def test_summary_fields(self):
        rel = skewed_relation()
        sketch = build_exact_sketch(rel, num_partitions=4, memory_records=40)
        summary = sketch.to_dict()
        assert summary["num_dimensions"] == 3
        assert summary["num_partitions"] == 4
        assert summary["num_cuboids"] == 8
        assert summary["num_skewed"] == sketch.num_skewed
        assert summary["serialized_bytes"] == sketch.serialized_bytes()
        # Per-cuboid skew counts cover exactly the non-empty cuboids.
        for mask, count in summary["skewed_per_cuboid"].items():
            assert count == len(sketch.cuboids[mask].skewed) > 0
        assert summary["num_partition_elements"] == sum(
            summary["partition_elements_per_cuboid"].values()
        )

    def test_json_serializable(self):
        import json

        rel = skewed_relation(n=100)
        sketch = build_exact_sketch(rel, 3, 30)
        json.dumps(sketch.to_dict())

    def test_serialized_bytes_cached(self):
        rel = skewed_relation(n=100)
        sketch = build_exact_sketch(rel, 3, 30)
        assert sketch._size_bytes is None
        first = sketch.serialized_bytes()
        assert sketch._size_bytes == first
        assert sketch.serialized_bytes() == first

    def test_cache_survives_pickling(self):
        import pickle

        rel = skewed_relation(n=100)
        sketch = build_exact_sketch(rel, 3, 30)
        size = sketch.serialized_bytes()
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.serialized_bytes() == size
