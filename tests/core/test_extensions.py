"""Extensions beyond the paper: iceberg cubes and multi-aggregate passes."""

import pytest

from repro.aggregates import (
    AggregateKind,
    Average,
    Count,
    Median,
    Multi,
    Sum,
)
from repro.core import SPCube
from repro.cubing import buc_cube, sequential_cube
from repro.mapreduce import ClusterConfig

from ..conftest import make_random_relation


@pytest.fixture
def cluster():
    return ClusterConfig(num_machines=5)


@pytest.fixture
def relation():
    return make_random_relation(
        1000, num_dimensions=3, cardinality=12, seed=55, skew_fraction=0.25
    )


class TestIcebergSPCube:
    @pytest.mark.parametrize("support", [2, 5, 25, 200])
    def test_matches_iceberg_buc(self, cluster, relation, support):
        run = SPCube(cluster, min_group_size=support).compute(relation)
        assert run.cube == buc_cube(relation, min_support=support)

    def test_support_one_is_full_cube(self, cluster, relation):
        run = SPCube(cluster, min_group_size=1).compute(relation)
        assert run.cube == sequential_cube(relation)

    def test_iceberg_with_sum(self, cluster, relation):
        run = SPCube(cluster, Sum(), min_group_size=4).compute(relation)
        assert run.cube == buc_cube(relation, Sum(), min_support=4)

    def test_iceberg_with_exact_sketch(self, cluster, relation):
        run = SPCube(
            cluster, min_group_size=10, use_exact_sketch=True
        ).compute(relation)
        assert run.cube == buc_cube(relation, min_support=10)

    def test_huge_support_keeps_only_apex(self, cluster, relation):
        run = SPCube(cluster, min_group_size=len(relation)).compute(relation)
        assert run.cube.num_groups == 1
        assert (0, ()) in run.cube

    def test_iceberg_shrinks_output(self, cluster, relation):
        full = SPCube(cluster).compute(relation)
        iceberg = SPCube(cluster, min_group_size=5).compute(relation)
        assert 0 < iceberg.cube.num_groups < full.cube.num_groups

    def test_invalid_support(self, cluster):
        with pytest.raises(ValueError):
            SPCube(cluster, min_group_size=0)


class TestMultiAggregate:
    def test_three_aggregates_one_pass(self, cluster, relation):
        fn = Multi((Count(), Sum(), Average()))
        run = SPCube(cluster, fn).compute(relation)
        counts = sequential_cube(relation, Count())
        sums = sequential_cube(relation, Sum())
        avgs = sequential_cube(relation, Average())
        for (mask, values), (count, total, avg) in run.cube.items():
            assert count == counts.value(mask, values)
            assert total == sums.value(mask, values)
            assert avg == pytest.approx(avgs.value(mask, values))

    def test_kind_is_weakest_member(self):
        assert Multi((Count(), Sum())).kind is AggregateKind.DISTRIBUTIVE
        assert Multi((Count(), Average())).kind is AggregateKind.ALGEBRAIC
        assert Multi((Count(), Median())).kind is AggregateKind.HOLISTIC

    def test_compact_state_follows_members(self):
        assert Multi((Count(), Average())).compact_state
        assert not Multi((Count(), Median())).compact_state

    def test_holistic_member_rejected_by_spcube(self, cluster):
        from repro.aggregates import UnsupportedAggregateError

        with pytest.raises(UnsupportedAggregateError):
            SPCube(cluster, Multi((Count(), Median())))

    def test_name_lists_members(self):
        assert Multi((Count(), Sum())).name == "multi(count,sum)"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Multi(())

    def test_state_size_sums_members(self):
        fn = Multi((Count(), Average()))
        state = fn.add(fn.create(), 5)
        assert fn.state_size(state) == 1 + 2

    def test_works_with_iceberg(self, cluster, relation):
        fn = Multi((Count(), Sum()))
        run = SPCube(cluster, fn, min_group_size=5).compute(relation)
        oracle = buc_cube(relation, fn, min_support=5)
        assert run.cube == oracle
