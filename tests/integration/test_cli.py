"""The command-line interface, exercised in-process."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_generate_binomial(self, tmp_path, capsys):
        out = str(tmp_path / "data.tsv")
        code = main(
            ["generate", "binomial", "--rows", "300", "--skew", "0.5",
             "-o", out]
        )
        assert code == 0
        assert "wrote 300 rows" in capsys.readouterr().out
        assert len(open(out).readlines()) == 301  # header + rows

    @pytest.mark.parametrize("dataset", ["zipf", "wikipedia", "usagov"])
    def test_generate_other_datasets(self, tmp_path, dataset):
        out = str(tmp_path / "data.tsv")
        assert main(
            ["generate", dataset, "--rows", "100", "-o", out]
        ) == 0


class TestCube:
    def test_cube_with_output(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        cube = str(tmp_path / "cube.tsv")
        main(["generate", "binomial", "--rows", "400", "-o", data])
        code = main(
            ["cube", data, "--engine", "spcube", "--machines", "4",
             "-o", cube]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SP-Cube" in out
        assert "c-groups" in out
        assert open(cube).read().count("\n") > 100

    def test_cube_each_engine(self, tmp_path):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "200", "-o", data])
        for engine in ("naive", "mrcube", "hive", "pipesort"):
            assert main(
                ["cube", data, "--engine", engine, "--machines", "3"]
            ) == 0

    def test_cube_with_sum_aggregate(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "zipf", "--rows", "200", "-o", data])
        assert main(["cube", data, "--aggregate", "sum"]) == 0


class TestCompare:
    def test_compare_verified(self, capsys):
        code = main(
            ["compare", "binomial", "--rows", "400", "--skew", "0.4",
             "--machines", "4", "--engines", "spcube", "naive",
             "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spcube" in out and "naive" in out
        assert "identical cubes" in out


class TestFaultKnobs:
    def test_cube_with_fault_seed_reports_recovery(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        code = main(
            ["cube", data, "--machines", "4", "--fault-seed", "3",
             "--max-task-attempts", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault recovery" in out
        assert "attempts" in out

    def test_cube_fault_free_by_default(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "200", "-o", data])
        assert main(["cube", data, "--machines", "3"]) == 0
        assert "fault recovery" not in capsys.readouterr().out

    def test_compare_with_faults_keeps_cubes_identical(self, capsys):
        code = main(
            ["compare", "binomial", "--rows", "400", "--machines", "4",
             "--engines", "spcube", "naive", "--fault-seed", "3",
             "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attempts" in out and "recovered" in out
        assert "identical cubes" in out

    def test_crashy_cluster_reports_stuck_not_traceback(self, capsys):
        # crash probability 1.0: every attempt of every task dies, every
        # engine aborts — the CLI must report it, not blow up.
        code = main(
            ["compare", "binomial", "--rows", "200", "--machines", "3",
             "--engines", "spcube", "naive", "--fault-seed", "1",
             "--crash-prob", "1.0", "--straggle-prob", "0.0"]
        )
        assert code == 0
        assert "stuck" in capsys.readouterr().out


class TestParallelism:
    def test_cube_parallel_matches_serial_output(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        serial_cube = str(tmp_path / "serial.tsv")
        parallel_cube = str(tmp_path / "parallel.tsv")
        assert main(
            ["cube", data, "--machines", "4", "-o", serial_cube]
        ) == 0
        assert main(
            ["cube", data, "--machines", "4", "--parallelism", "2",
             "-o", parallel_cube]
        ) == 0
        assert open(parallel_cube).read() == open(serial_cube).read()

    def test_invalid_parallelism_exits_cleanly(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "100", "-o", data])
        with pytest.raises(SystemExit, match="parallelism"):
            main(["cube", data, "--parallelism", "0"])

    def test_compare_accepts_parallelism(self, capsys):
        code = main(
            ["compare", "binomial", "--rows", "300", "--machines", "4",
             "--engines", "spcube", "naive", "--parallelism", "2",
             "--verify"]
        )
        assert code == 0
        assert "identical cubes" in capsys.readouterr().out


class TestSketch:
    def test_sketch_describes_and_writes(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        sketch_path = str(tmp_path / "sketch.json")
        main(
            ["generate", "binomial", "--rows", "500", "--skew", "0.6",
             "-o", data]
        )
        code = main(
            ["sketch", data, "--machines", "4", "--limit", "2",
             "-o", sketch_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skewed c-groups" in out
        assert "written to" in out

        from repro.io import read_sketch

        assert read_sketch(sketch_path).num_skewed > 0

    def test_sketch_exact_mode(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        assert main(["sketch", data, "--exact", "--machines", "3"]) == 0
        assert "exact" in capsys.readouterr().out


class TestTraceCommands:
    def test_cube_trace_then_analyze(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        trace = str(tmp_path / "run.trace.jsonl")
        main(["generate", "zipf", "--rows", "600", "-o", data])
        code = main(
            ["cube", data, "--machines", "6", "--fault-seed", "7",
             "--trace", trace, "--trace-level", "debug"]
        )
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        code = main(["analyze-trace", trace, "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "schema ok" in out
        assert "run SP-Cube" in out
        assert "per-reducer records" in out

    def test_compare_trace_covers_all_engines(self, tmp_path, capsys):
        trace = str(tmp_path / "cmp.trace.jsonl")
        code = main(
            ["compare", "zipf", "--rows", "400", "--machines", "4",
             "--engines", "spcube", "naive", "--trace", trace]
        )
        assert code == 0
        code = main(["analyze-trace", trace])
        assert code == 0
        out = capsys.readouterr().out
        assert "run SP-Cube" in out
        assert "run Naive-MR" in out

    def test_progress_prints_to_stderr(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        main(["generate", "zipf", "--rows", "300", "-o", data])
        assert main(
            ["cube", data, "--machines", "4", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "[job ]" in err
        assert "[run ]" in err

    def test_analyze_trace_missing_file(self):
        with pytest.raises(SystemExit, match="error"):
            main(["analyze-trace", "/nonexistent/trace.jsonl"])

    def test_analyze_trace_validate_fails_on_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "kind": "mystery"}\n')
        code = main(["analyze-trace", str(bad), "--validate"])
        assert code == 1
        assert "schema violation" in capsys.readouterr().err


class TestAnalyzeTraceExitCodes:
    """The schema check always runs: clean traces pass, broken ones don't."""

    def test_valid_trace_without_flag_exits_zero(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        trace = str(tmp_path / "ok.trace.jsonl")
        main(["generate", "zipf", "--rows", "300", "-o", data])
        main(["cube", data, "--machines", "4", "--trace", trace])
        capsys.readouterr()
        assert main(["analyze-trace", trace]) == 0
        out = capsys.readouterr().out
        assert "run SP-Cube" in out
        assert "schema ok" not in out  # the count line needs --validate

    def test_invalid_trace_without_flag_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "kind": "mystery"}\n')
        code = main(["analyze-trace", str(bad)])
        assert code == 1
        captured = capsys.readouterr()
        assert "trace schema violation" in captured.err
        assert captured.err.count("\n") == 1  # one-line reason
        assert "run " not in captured.out  # no summary from a broken trace


class TestDoctor:
    def test_doctor_writes_reports_and_passes_strict(self, tmp_path, capsys):
        import json

        json_out = str(tmp_path / "doctor.json")
        md_out = str(tmp_path / "doctor.md")
        code = main(
            ["doctor", "--rows", "600", "--machines", "4",
             "--engines", "spcube",
             "--binomial-skews", "0.4", "--zipf-exponents", "1.3",
             "--json", json_out, "--markdown", md_out, "--strict"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cube doctor report" in out
        assert "Sketch accuracy" in out
        assert "Reducer load attribution" in out
        with open(json_out) as handle:
            report = json.load(handle)
        assert report["healthy"] is True
        assert report["problems"] == []
        assert [d["name"] for d in report["datasets"]] == [
            "binomial(p=0.4)", "zipf(s=1.3)"
        ]
        with open(md_out) as handle:
            assert "Cube doctor report" in handle.read()

    def test_doctor_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["doctor", "--rows", "100", "--engines", "spark"])


class TestTelemetryCommands:
    """--telemetry, metrics-export, analyze-trace --format json, report."""

    def make_artifacts(self, tmp_path):
        data = str(tmp_path / "data.tsv")
        trace = str(tmp_path / "run.trace.jsonl")
        timeline = str(tmp_path / "run.timeline.jsonl")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        assert main(
            ["cube", data, "--machines", "4", "--trace", trace,
             "--telemetry", timeline]
        ) == 0
        return data, trace, timeline

    def test_cube_writes_timeline(self, tmp_path, capsys):
        import json

        _data, _trace, timeline = self.make_artifacts(tmp_path)
        assert "telemetry timeline written" in capsys.readouterr().out
        lines = open(timeline).read().strip().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert types[0] == "meta"
        assert types[-1] == "registry"
        assert "sample" in types

    def test_metrics_export_prints_valid_exposition(self, tmp_path, capsys):
        _data, _trace, timeline = self.make_artifacts(tmp_path)
        capsys.readouterr()
        assert main(["metrics-export", timeline, "--check"]) == 0
        captured = capsys.readouterr()
        assert "format ok" in captured.err
        assert "# TYPE repro_jobs_total counter" in captured.out
        assert "repro_phase_seconds_bucket" in captured.out

    def test_metrics_export_to_file(self, tmp_path, capsys):
        _data, _trace, timeline = self.make_artifacts(tmp_path)
        out = str(tmp_path / "metrics.prom")
        assert main(["metrics-export", timeline, "-o", out]) == 0
        assert "# HELP" in open(out).read()

    def test_metrics_export_missing_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="error"):
            main(["metrics-export", "/nonexistent/timeline.jsonl"])

    def test_analyze_trace_json_format(self, tmp_path, capsys):
        import json

        _data, trace, _timeline = self.make_artifacts(tmp_path)
        capsys.readouterr()
        assert main(["analyze-trace", trace, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema_version"] == 1
        assert summary["dominant_job"] == "sp-cube"
        assert summary["recovery"]["attempts"] > 0

    def test_report_stitches_everything(self, tmp_path, capsys):
        _data, trace, timeline = self.make_artifacts(tmp_path)
        out = str(tmp_path / "report.html")
        assert main(
            ["report", "--trace", trace, "--telemetry", timeline,
             "-o", out]
        ) == 0
        html = open(out).read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "per-reducer delivered records" in html
        assert "<script" not in html  # self-contained, no JS
        # Sections without inputs say so instead of vanishing.
        assert "not provided" in html

    def test_report_without_inputs_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="at least one input"):
            main(["report", "-o", str(tmp_path / "r.html")])


class TestLineageCommands:
    """--lineage/--watchdog on cube, and the explain query commands."""

    def adversarial_artifact(self, tmp_path):
        """The CI smoke pair's skewed half: a run that must alert."""
        data = str(tmp_path / "adv.tsv")
        lineage = str(tmp_path / "adv.lineage.jsonl")
        main(["generate", "binomial", "--rows", "1500", "--skew", "0.9",
              "--seed", "11", "-o", data])
        assert main(
            ["cube", data, "--machines", "4", "--memory-records", "32",
             "--lineage", lineage, "--watchdog"]
        ) == 0
        return data, lineage

    def test_cube_writes_lineage_and_alerts_on_skew(self, tmp_path, capsys):
        import json

        _data, lineage = self.adversarial_artifact(tmp_path)
        out = capsys.readouterr().out
        assert "lineage written" in out
        assert "skew_alert" in out
        records = [
            json.loads(line) for line in open(lineage).read().splitlines()
        ]
        assert records[0]["type"] == "lineage_meta"
        kinds = {r["kind"] for r in records if r["type"] == "alert"}
        assert "skew_alert" in kinds

    def test_uniform_run_stays_quiet(self, tmp_path, capsys):
        data = str(tmp_path / "uni.tsv")
        lineage = str(tmp_path / "uni.lineage.jsonl")
        main(["generate", "binomial", "--rows", "1500", "--skew", "0.0",
              "--seed", "11", "-o", data])
        assert main(
            ["cube", data, "--machines", "4", "--memory-records", "32",
             "--lineage", lineage, "--watchdog"]
        ) == 0
        assert "watchdog:        no alerts" in capsys.readouterr().out

    def test_explain_reducer_markdown_and_json(self, tmp_path, capsys):
        import json

        _data, lineage = self.adversarial_artifact(tmp_path)
        capsys.readouterr()
        assert main(["explain-reducer", lineage]) == 0
        markdown = capsys.readouterr().out
        assert "## Reducer" in markdown
        assert "`sp-cube`" in markdown
        assert "| cuboid | records |" in markdown
        assert main(
            ["explain-reducer", lineage, "--format", "json"]
        ) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["query"] == "explain-reducer"
        assert result["job"] == "sp-cube"
        assert result["by_cuboid"]

    def test_explain_group_follows_a_hot_cuboid(self, tmp_path, capsys):
        import json

        _data, lineage = self.adversarial_artifact(tmp_path)
        capsys.readouterr()
        assert main(
            ["explain-reducer", lineage, "--format", "json"]
        ) == 0
        hottest = json.loads(capsys.readouterr().out)
        cuboid = next(iter(hottest["by_cuboid"]))
        assert main(
            ["explain-group", lineage, "--cuboid", cuboid,
             "--format", "json"]
        ) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["cuboid"] == int(cuboid)
        assert result["by_reducer"]

    def test_explain_missing_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="error"):
            main(["explain-reducer", "/nonexistent/run.lineage.jsonl"])
        with pytest.raises(SystemExit, match="error"):
            main(["explain-group", "/nonexistent/run.lineage.jsonl",
                  "--cuboid", "3"])

    def test_explain_bad_cuboid_exits_cleanly(self, tmp_path):
        _data, lineage = self.adversarial_artifact(tmp_path)
        with pytest.raises(SystemExit, match="lattice mask"):
            main(["explain-group", lineage, "--cuboid", "xyz"])

    def test_explain_truncated_artifact_names_line(self, tmp_path):
        _data, lineage = self.adversarial_artifact(tmp_path)
        text = open(lineage).read()
        truncated = str(tmp_path / "truncated.lineage.jsonl")
        open(truncated, "w").write(text[: len(text) // 2])
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["explain-reducer", truncated])

    def test_report_with_only_lineage(self, tmp_path, capsys):
        _data, lineage = self.adversarial_artifact(tmp_path)
        out = str(tmp_path / "report.html")
        assert main(["report", "--lineage", lineage, "-o", out]) == 0
        html = open(out).read()
        assert "Lineage &amp; alerts" in html
        assert "skew_alert" in html
        # Every other section degrades to its placeholder.
        assert "not provided" in html


class TestTruncatedTrace:
    """A partially-written trace must die with a line number, not a
    traceback (the crashed-run postmortem scenario)."""

    def write_trace(self, tmp_path):
        data = str(tmp_path / "data.tsv")
        trace = str(tmp_path / "run.trace.jsonl")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        assert main(["cube", data, "--machines", "4", "--trace", trace]) == 0
        return trace

    def test_truncated_final_line_exits_one_with_line_number(
        self, tmp_path, capsys
    ):
        trace = self.write_trace(tmp_path)
        lines = open(trace).read().splitlines()
        broken = str(tmp_path / "broken.trace.jsonl")
        open(broken, "w").write(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze-trace", broken])
        message = str(excinfo.value)
        assert f"{broken}:{len(lines)}:" in message
        assert "not valid JSON" in message
        assert "\n" not in message  # one-line reason

    def test_scalar_record_exits_one_with_line_number(self, tmp_path):
        trace = self.write_trace(tmp_path)
        broken = str(tmp_path / "scalar.trace.jsonl")
        open(broken, "w").write(open(trace).read() + "42\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze-trace", broken])
        message = str(excinfo.value)
        assert "must be a JSON object, got int" in message
        assert f":{len(open(trace).readlines()) + 1}:" in message


class TestMetricsServe:
    """The --serve HTTP endpoint, exercised against an ephemeral port."""

    def test_bind_serve_one_get_and_shutdown(self, tmp_path):
        import threading
        import urllib.request

        from repro.cli import build_metrics_server
        from repro.observability import check_prometheus_text

        text = (
            "# HELP repro_jobs_total MapReduce jobs run\n"
            "# TYPE repro_jobs_total counter\n"
            "repro_jobs_total 2\n"
        )
        server = build_metrics_server(text, port=0)
        try:
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            url = f"http://127.0.0.1:{server.server_port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
                body = response.read().decode("utf-8")
            assert body == text
            assert check_prometheus_text(body) == []
            with pytest.raises(Exception):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.server_port}/other",
                    timeout=5,
                )
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()
        assert not thread.is_alive()

    def test_serves_real_timeline_exposition(self, tmp_path):
        import threading
        import urllib.request

        from repro.cli import build_metrics_server
        from repro.observability import TimelineAnalysis

        data = str(tmp_path / "data.tsv")
        timeline = str(tmp_path / "run.timeline.jsonl")
        main(["generate", "binomial", "--rows", "300", "-o", data])
        assert main(
            ["cube", data, "--machines", "4", "--telemetry", timeline]
        ) == 0
        text = TimelineAnalysis.from_file(timeline).registry()
        text = text.prometheus_text()
        server = build_metrics_server(text, port=0)
        try:
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            url = f"http://127.0.0.1:{server.server_port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode("utf-8")
            assert "# TYPE repro_jobs_total counter" in body
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()
