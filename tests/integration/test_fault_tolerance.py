"""End-to-end fault tolerance: injected faults never change the cube.

The headline invariant of the fault layer: a run under any fault plan
that stays within the retry budget produces a cube *identical* to the
fault-free run — retries, speculation and replica failover change only
the simulated clock, never the data.  A plan that exhausts the budget
must surface as a failed run (``RunMetrics.failed``), not an exception,
mirroring how Figure 6a reports engines that get stuck.
"""

import pytest

from repro.analysis import paper_cluster, run_algorithms
from repro.baselines import HiveCube, MRCube, NaiveCube
from repro.core import SPCube
from repro.core.spcube import SKETCH_PATH
from repro.datagen import gen_binomial
from repro.mapreduce import ClusterConfig, CostModel, FaultPlan, FaultSpec, RetryPolicy

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "hive": HiveCube,
    "mrcube": MRCube,
}

#: Three qualitatively different fault plans, per the acceptance criteria:
#: a map-side crash, a reduce-side crash, and a heavy straggler that
#: triggers speculative execution on every attempt of every job.
PLANS = {
    "map-crash": FaultPlan(
        [FaultSpec("crash", phase="map", task=0, attempt=0)]
    ),
    "reduce-crash": FaultPlan(
        [FaultSpec("crash", phase="reduce", task=0, attempt=0)]
    ),
    # Every map task straggles, so the phase-critical task is slowed too
    # and the speculation launch delay must show up in the total time.
    "straggler": FaultPlan(
        [FaultSpec("straggle", phase="map", slowdown=100.0, attempt=None)]
    ),
}


@pytest.fixture(scope="module")
def relation():
    return gen_binomial(500, 0.3, seed=4)


def make_cluster(fault_plan=None):
    # A tiny speculation launch delay guarantees the backup copy beats a
    # 100x straggler even on these tiny simulated tasks, so the straggler
    # plan deterministically exercises first-finisher-wins.
    return ClusterConfig(
        num_machines=4,
        memory_records=64,
        cost_model=CostModel(speculation_launch_seconds=1e-4),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(),
    )


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_faults_change_time_but_not_the_cube(
    relation, engine_name, plan_name
):
    engine_cls = ENGINES[engine_name]
    clean = engine_cls(make_cluster()).compute(relation)
    faulted = engine_cls(make_cluster(PLANS[plan_name])).compute(relation)

    assert faulted.cube == clean.cube  # bit-identical output
    assert not faulted.metrics.failed
    assert faulted.metrics.attempts > clean.metrics.attempts
    assert faulted.metrics.recovered > 0
    assert faulted.metrics.total_seconds > clean.metrics.total_seconds


class TestRetryExhaustion:
    EXHAUSTING = FaultPlan(
        [FaultSpec("crash", phase="map", task=0, attempt=None)]
    )

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_exhausted_budget_fails_without_raising(
        self, relation, engine_name
    ):
        engine = ENGINES[engine_name](make_cluster(self.EXHAUSTING))
        run = engine.compute(relation)  # must not raise
        assert run.metrics.failed
        assert run.metrics.aborted
        assert run.cube.num_groups == 0

    def test_runner_reports_stuck_like_figure_6a(self, relation):
        """run_algorithms with verify must tolerate an aborted engine:
        it is excluded from the cross-check, like Figure 6a's missing
        Hive points, while the surviving engines still verify."""
        algorithms = {
            "spcube": SPCube(make_cluster(self.EXHAUSTING)),
            "naive": NaiveCube(make_cluster()),
            "hive": HiveCube(make_cluster()),
        }
        runs = run_algorithms(relation, algorithms, verify=True)
        assert runs["spcube"].metrics.failed
        assert not runs["naive"].metrics.failed
        assert runs["naive"].cube == runs["hive"].cube


class TestSketchBroadcastFailure:
    def test_dead_sketch_replicas_fail_the_run_cleanly(self, relation):
        plan = FaultPlan([FaultSpec("read-drop", path=SKETCH_PATH)])
        run = SPCube(make_cluster(plan)).compute(relation)  # must not raise
        assert run.metrics.failed
        assert "sketch broadcast failed" in run.metrics.fatal_error
        assert run.cube.num_groups == 0

    def test_single_dead_replica_recovers(self, relation):
        plan = FaultPlan(
            [FaultSpec("read-drop", path=SKETCH_PATH, replica=0)]
        )
        clean = SPCube(make_cluster()).compute(relation)
        faulted = SPCube(make_cluster(plan)).compute(relation)
        assert faulted.cube == clean.cube
        assert faulted.metrics.extras["dfs_read_retries"] >= 1


class TestPaperCluster:
    def test_paper_cluster_threads_fault_configuration(self):
        plan = FaultPlan(seed=3, crash_prob=0.1)
        policy = RetryPolicy(max_attempts=2)
        cluster = paper_cluster(
            1000, num_machines=4, fault_plan=plan, retry_policy=policy
        )
        assert cluster.fault_plan is plan
        assert cluster.retry_policy is policy

    def test_seeded_plan_keeps_engines_identical(self):
        """A probabilistic seeded plan across all engines: everything that
        completes must still agree — the determinism invariant under the
        kind of plan the CLI's --fault-seed builds."""
        relation = gen_binomial(400, 0.3, seed=9)
        plan = FaultPlan(seed=12, crash_prob=0.15, straggle_prob=0.1)
        algorithms = {
            name: cls(make_cluster(plan)) for name, cls in ENGINES.items()
        }
        runs = run_algorithms(relation, algorithms, verify=True)
        completed = [r for r in runs.values() if not r.metrics.aborted]
        assert len(completed) >= 2
        assert sum(r.metrics.attempts for r in completed) > sum(
            len(j.map_tasks) + len(j.reduce_tasks)
            for r in completed
            for j in r.metrics.jobs
        )
