"""File interchange: relations, cubes, sketches."""

import pytest

from repro import io as repro_io
from repro.core import SPCube, build_exact_sketch
from repro.cubing import sequential_cube
from repro.datagen import gen_binomial
from repro.mapreduce import ClusterConfig
from repro.relation import all_cuboids

from ..conftest import make_random_relation


class TestRelationRoundtrip:
    def test_roundtrip_string_dimensions(self, retail_relation, tmp_path):
        path = str(tmp_path / "retail.tsv")
        written = repro_io.write_relation(retail_relation, path)
        assert written == 10
        loaded = repro_io.read_relation(
            path, dimension_parsers=[str, str, int]
        )
        assert loaded.rows == retail_relation.rows
        assert loaded.schema == retail_relation.schema

    def test_roundtrip_integer_dimensions(self, tmp_path):
        rel = make_random_relation(50, seed=1)
        path = str(tmp_path / "ints.tsv")
        repro_io.write_relation(rel, path)
        loaded = repro_io.read_relation(
            path, dimension_parsers=[int, int, int]
        )
        assert loaded.rows == rel.rows

    def test_custom_delimiter(self, retail_relation, tmp_path):
        path = str(tmp_path / "retail.csv")
        repro_io.write_relation(retail_relation, path, delimiter=",")
        loaded = repro_io.read_relation(
            path, delimiter=",", dimension_parsers=[str, str, int]
        )
        assert len(loaded) == 10

    def test_bad_field_count_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\tm\n1\t2\n")
        with pytest.raises(ValueError, match="fields"):
            repro_io.read_relation(str(path))

    def test_wrong_parser_count(self, retail_relation, tmp_path):
        path = str(tmp_path / "retail.tsv")
        repro_io.write_relation(retail_relation, path)
        with pytest.raises(ValueError, match="parsers"):
            repro_io.read_relation(path, dimension_parsers=[str])

    def test_cube_of_loaded_equals_cube_of_original(
        self, retail_relation, tmp_path
    ):
        path = str(tmp_path / "retail.tsv")
        repro_io.write_relation(retail_relation, path)
        loaded = repro_io.read_relation(
            path, dimension_parsers=[str, str, int]
        )
        assert sequential_cube(loaded) == sequential_cube(retail_relation)


class TestCubeExport:
    def test_star_notation_lines(self, retail_relation, tmp_path):
        cube = sequential_cube(retail_relation)
        path = tmp_path / "cube.tsv"
        lines = repro_io.write_cube(cube, str(path))
        assert lines == cube.num_groups
        content = path.read_text()
        assert "(laptop, *, *)\t3" in content
        assert "(*, *, *)\t10" in content


class TestCubeRoundtrip:
    def test_roundtrip_retail(self, retail_relation, tmp_path):
        cube = sequential_cube(retail_relation)
        path = str(tmp_path / "cube.tsv")
        repro_io.write_cube(cube, path)
        loaded = repro_io.read_cube(
            path,
            retail_relation.schema,
            dimension_parsers=[str, str, int],
        )
        assert loaded == cube

    def test_roundtrip_engine_cube(self, tmp_path):
        rel = gen_binomial(500, 0.4, seed=3)
        run = SPCube(ClusterConfig(num_machines=4)).compute(rel)
        path = str(tmp_path / "cube.tsv")
        repro_io.write_cube(run.cube, path)
        loaded = repro_io.read_cube(
            path, rel.schema, dimension_parsers=[int] * 4
        )
        assert loaded == run.cube

    def test_missing_delimiter_line_numbered(self, retail_schema, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("(*, *, *)\t10\n(laptop, *, *) 3\n")
        with pytest.raises(ValueError, match=r"bad\.tsv:2: no delimiter"):
            repro_io.read_cube(str(path), retail_schema)

    def test_wrong_arity_group_rejected(self, retail_schema, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("(laptop, *)\t3\n")
        with pytest.raises(ValueError, match="2 positions"):
            repro_io.read_cube(str(path), retail_schema)

    def test_unparsable_value_line_numbered(self, retail_schema, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("(*, *, *)\tnot-a-number\n")
        with pytest.raises(ValueError, match=r"bad\.tsv:1: unparsable"):
            repro_io.read_cube(str(path), retail_schema)

    def test_not_star_notation_rejected(self, retail_schema, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("laptop,*,*\t3\n")
        with pytest.raises(ValueError, match="star notation"):
            repro_io.read_cube(str(path), retail_schema)

    def test_wrong_parser_count(self, retail_schema, tmp_path):
        path = tmp_path / "cube.tsv"
        path.write_text("(*, *, *)\t10\n")
        with pytest.raises(ValueError, match="parsers"):
            repro_io.read_cube(
                str(path), retail_schema, dimension_parsers=[str]
            )


class TestSketchRoundtrip:
    def test_json_roundtrip_exact(self):
        rel = make_random_relation(400, seed=5, skew_fraction=0.4)
        sketch = build_exact_sketch(rel, 4, 40)
        restored = repro_io.sketch_from_json(repro_io.sketch_to_json(sketch))
        assert restored.num_dimensions == sketch.num_dimensions
        assert restored.num_partitions == sketch.num_partitions
        for mask in all_cuboids(3):
            assert (
                restored.cuboids[mask].skewed == sketch.cuboids[mask].skewed
            )
            assert (
                restored.cuboids[mask].partition_elements
                == sketch.cuboids[mask].partition_elements
            )

    def test_restored_sketch_answers_queries(self):
        rel = make_random_relation(400, seed=6, skew_fraction=0.5)
        sketch = build_exact_sketch(rel, 4, 40)
        restored = repro_io.sketch_from_json(repro_io.sketch_to_json(sketch))
        for row in rel.rows[:30]:
            assert restored.skew_bits(row) == sketch.skew_bits(row)
            for mask in all_cuboids(3):
                group = rel.project_group(row, mask)
                assert restored.partition_of(
                    mask, group
                ) == sketch.partition_of(mask, group)

    def test_file_roundtrip(self, tmp_path):
        rel = gen_binomial(500, 0.4, seed=2)
        run = SPCube(ClusterConfig(num_machines=4)).compute(rel)
        path = str(tmp_path / "sketch.json")
        size = repro_io.write_sketch(run.sketch, path)
        assert size > 0
        restored = repro_io.read_sketch(path)
        assert restored.num_skewed == run.sketch.num_skewed
