"""The public API surface: exports, protocol conformance, docstrings."""

import inspect

import pytest

import repro
from repro.interface import CubeAlgorithm, CubeRun


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        import repro.aggregates
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.cubing
        import repro.datagen
        import repro.mapreduce
        import repro.relation
        import repro.theory


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: repro.SPCube(),
            lambda: repro.NaiveCube(),
            lambda: repro.MRCube(),
            lambda: repro.HiveCube(),
            lambda: repro.PipeSortMR(),
        ],
        ids=["spcube", "naive", "mrcube", "hive", "pipesort"],
    )
    def test_engines_satisfy_cube_algorithm(self, factory):
        engine = factory()
        assert isinstance(engine, CubeAlgorithm)
        assert isinstance(engine.name, str) and engine.name

    def test_compute_returns_cube_run(self):
        rel = repro.gen_binomial(50, 0.2, seed=1)
        run = repro.SPCube(repro.ClusterConfig(num_machines=2)).compute(rel)
        assert isinstance(run, CubeRun)


class TestDocumentation:
    def test_public_modules_have_docstrings(self):
        import repro.core.sketch
        import repro.core.spcube
        import repro.core.planner
        import repro.mapreduce.engine
        import repro.baselines.mrcube

        for module in (
            repro,
            repro.core.sketch,
            repro.core.spcube,
            repro.core.planner,
            repro.mapreduce.engine,
            repro.baselines.mrcube,
        ):
            assert module.__doc__ and len(module.__doc__) > 40

    def test_public_classes_have_docstrings(self):
        for cls in (
            repro.SPCube,
            repro.SPSketch,
            repro.ClusterConfig,
            repro.CubeResult,
            repro.Relation,
            repro.Schema,
        ):
            assert cls.__doc__, cls

    def test_public_methods_documented(self):
        for _name, method in inspect.getmembers(
            repro.SPCube, predicate=inspect.isfunction
        ):
            if not _name.startswith("_"):
                assert method.__doc__, _name
