"""Smoke tests: every example script runs clean and prints what it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "42 c-groups" in out
        assert "(laptop, *, *) -> 3" in out
        assert "SP-Sketch size" in out

    def test_retail_sales(self):
        out = run_example("retail_sales.py")
        assert "Figure 1" in out
        assert "Figure 2" in out
        assert "Figure 3" in out
        assert "aggregate comparison" in out

    def test_weblog_skew_analysis(self):
        out = run_example("weblog_skew_analysis.py", "3000")
        assert "true skewed c-groups" in out
        assert "SP-Sketch detection" in out
        assert "naive algorithm would ship" in out

    @pytest.mark.slow
    def test_distribution_comparison(self):
        out = run_example("distribution_comparison.py", "3000")
        assert "SP-Cube" in out and "Hive" in out
        assert "identical cubes" in out
