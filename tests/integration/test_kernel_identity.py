"""Bit-identity of the round-2 hot-path kernels against their legacy oracles.

The performance layer rewrote three hot paths — the BUC reduce kernel
(sort + run-length instead of recursive dict-of-lists), the memoized
map-side lattice walk, and the broadcast/batched parallel executor — under
one invariant: **nothing observable may change**.  Cubes, counters, pair
streams, metrics and traces must be byte-identical to what the legacy
implementations produced, serial and parallel alike.

This suite pins that invariant property-style:

* ``buc_cube(kernel="array")`` versus ``kernel="legacy"`` across binomial,
  zipf, adversarial and hand-built pathological datasets (mixed orderable
  types, ``1`` vs ``True`` key conflation, duplicate-heavy rows), across
  aggregates and iceberg thresholds;
* the memoized ``_CubeMapper`` walk versus a cache-disabled replay of the
  same records — identical emission stream, identical flush, counters that
  add up;
* every engine, serial versus parallel, on the adversarial dataset and
  under injected faults (the binomial/zipf sweeps live in
  ``test_executors.py``).
"""

import pytest

from repro.aggregates.functions import get_aggregate
from repro.core import SPCube
from repro.core.sketch import build_exact_sketch
from repro.core.spcube import _CubeMapper, _PlanFunction
from repro.cubing.buc import buc_cube, iceberg_groups
from repro.cubing.naive import sequential_cube
from repro.datagen import adversarial_relation, gen_binomial, gen_zipf
from repro.mapreduce import TaskContext
from repro.relation.relation import Relation
from repro.relation.schema import Schema

from .test_executors import (
    ENGINES,
    PLANS,
    assert_runs_identical,
    make_cluster,
)


def _mixed_type_relation():
    """Rows whose dimension values defeat a plain ``sorted``: ints mixed
    with strings (TypeError -> legacy partitioner fallback) and ``1``
    alongside ``True`` (equal, distinct keys the dict build conflated)."""
    schema = Schema(["a", "b"], measure="m")
    rows = [
        (1, "x", 2),
        (True, "x", 3),
        ("one", "y", 5),
        (1, "y", 7),
        ("one", "x", 11),
        (0, "y", 13),
        (False, "x", 17),
    ]
    return Relation(schema, rows, validate=False, name="mixed-types")


def _duplicate_heavy_relation():
    """Few distinct tuples, many rows — maximal memo hit rates."""
    schema = Schema(["a", "b", "c"], measure="m")
    rows = [
        ("u", "v", "w", i % 3 + 1)
        for i in range(120)
    ] + [
        ("u", "z", "w", i % 5) for i in range(60)
    ] + [
        ("q", "v", "r", 1) for _ in range(30)
    ]
    return Relation(schema, rows, validate=False, name="duplicate-heavy")


DATASETS = {
    "binomial": lambda: gen_binomial(400, 0.3, seed=9),
    "zipf": lambda: gen_zipf(300, seed=5),
    "adversarial": lambda: adversarial_relation(4, 200, seed=3),
    "mixed-types": _mixed_type_relation,
    "duplicate-heavy": _duplicate_heavy_relation,
}


class TestBUCKernelIdentity:
    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    @pytest.mark.parametrize("agg_name", ["count", "sum", "avg"])
    def test_full_cube_matches_legacy(self, dataset, agg_name):
        relation = DATASETS[dataset]()
        array = buc_cube(relation, get_aggregate(agg_name), kernel="array")
        legacy = buc_cube(relation, get_aggregate(agg_name), kernel="legacy")
        assert array == legacy, array.diff(legacy)
        # Bit-identity includes emission order: CubeResult insertion order
        # is the DFS preorder, which to_rows() normalizes away — compare
        # the raw iteration order too.
        assert list(array.items()) == list(legacy.items())

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    @pytest.mark.parametrize("min_support", [1, 2, 5])
    def test_iceberg_matches_legacy(self, dataset, min_support):
        relation = DATASETS[dataset]()
        array = buc_cube(relation, min_support=min_support, kernel="array")
        legacy = buc_cube(relation, min_support=min_support, kernel="legacy")
        assert array == legacy, array.diff(legacy)
        assert list(array.items()) == list(legacy.items())

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_iceberg_groups_matches_legacy(self, dataset):
        relation = DATASETS[dataset]()
        d = relation.schema.num_dimensions
        array = iceberg_groups(relation.rows, d, 2, kernel="array")
        legacy = iceberg_groups(relation.rows, d, 2, kernel="legacy")
        assert array == legacy
        assert list(array.items()) == list(legacy.items())

    def test_mask_restriction_matches_legacy(self):
        relation = gen_binomial(300, 0.4, seed=21)
        masks = [0b000, 0b011, 0b101]
        array = buc_cube(relation, masks=masks, kernel="array")
        legacy = buc_cube(relation, masks=masks, kernel="legacy")
        assert array == legacy, array.diff(legacy)

    def test_unknown_kernel_rejected(self):
        relation = gen_binomial(50, 0.4, seed=1)
        with pytest.raises(ValueError, match="unknown BUC kernel"):
            buc_cube(relation, kernel="vectorized")
        with pytest.raises(ValueError, match="unknown BUC kernel"):
            iceberg_groups(relation.rows, 3, 1, kernel="")

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_array_kernel_matches_naive_oracle(self, dataset):
        relation = DATASETS[dataset]()
        assert buc_cube(relation) == sequential_cube(relation)


def _run_mapper(relation, sketch, chunks, *, defeat_memo=False):
    """Drive a fresh ``_CubeMapper`` over ``chunks`` and capture the full
    observable surface: emitted pairs (in order), close() flush, counters
    and charged CPU.  With ``defeat_memo`` every record is mapped through
    a cleared cache — the pure miss path the memo claims to replay."""
    d = relation.schema.num_dimensions
    plan = _PlanFunction(sketch, True, True)
    mapper = _CubeMapper(d, get_aggregate("count"), sketch, plan)
    context = TaskContext(0, 4, 32)
    mapper.setup(context)
    emitted = []
    records = 0
    for chunk in chunks:
        if defeat_memo:
            for record in chunk:
                mapper._row_plans.clear()
                plan._memo.clear()
                count, pairs = mapper.map_chunk([record])
                records += count
                emitted.extend(pairs)
        else:
            count, pairs = mapper.map_chunk(chunk)
            records += count
            emitted.extend(pairs)
    flushed = list(mapper.close())
    return {
        "records": records,
        "emitted": emitted,
        "flushed": flushed,
        "counters": context.counters,
        "cpu": context.extra_cpu,
    }


class TestLatticeWalkMemoIdentity:
    @pytest.mark.parametrize(
        "dataset", ["binomial", "zipf", "duplicate-heavy"]
    )
    def test_memoized_stream_matches_miss_path(self, dataset):
        relation = DATASETS[dataset]()
        sketch = build_exact_sketch(relation, 4, 16)
        chunks = [
            relation.rows[start : start + 64]
            for start in range(0, len(relation.rows), 64)
        ]
        memoized = _run_mapper(relation, sketch, chunks)
        replayed = _run_mapper(relation, sketch, chunks, defeat_memo=True)
        assert memoized["records"] == replayed["records"]
        assert memoized["emitted"] == replayed["emitted"]
        assert memoized["flushed"] == replayed["flushed"]
        assert memoized["cpu"] == replayed["cpu"]

    def test_counters_account_for_every_record(self):
        relation = _duplicate_heavy_relation()
        sketch = build_exact_sketch(relation, 4, 16)
        result = _run_mapper(relation, sketch, [relation.rows])
        counters = result["counters"]
        hits = counters.get("lattice_plan_hits", 0)
        misses = counters.get("lattice_plan_misses", 0)
        assert hits + misses == len(relation.rows)
        # Three distinct dimension tuples: everything else must hit.
        assert misses == 3
        assert hits == len(relation.rows) - 3

    def test_high_cardinality_is_all_misses(self):
        relation = gen_binomial(200, 0.0, seed=2)
        sketch = build_exact_sketch(relation, 4, 16)
        result = _run_mapper(relation, sketch, [relation.rows])
        counters = result["counters"]
        distinct = len({row[:-1] for row in relation.rows})
        assert counters.get("lattice_plan_misses", 0) == distinct


class TestEngineBackendIdentity:
    """Serial vs parallel on the adversarial dataset, incl. faults —
    completing test_executors.py's binomial/zipf sweeps."""

    @pytest.fixture(scope="class")
    def adversarial(self):
        return adversarial_relation(4, 300, seed=17)

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_parallel_matches_serial(
        self, adversarial, engine_name, plan_name
    ):
        engine_cls = ENGINES[engine_name]
        serial = engine_cls(make_cluster(PLANS[plan_name])).compute(
            adversarial
        )
        parallel = engine_cls(
            make_cluster(PLANS[plan_name], parallelism=3)
        ).compute(adversarial)
        assert_runs_identical(serial, parallel)

    def test_spcube_counters_identical_across_backends(self, adversarial):
        """The kernel counters (lattice plan, covered walk) are part of
        the observable surface: same totals serial and parallel."""

        def totals(run):
            merged = {}
            for job in run.metrics.jobs:
                for task in job.map_tasks + job.reduce_tasks:
                    for name, value in task.counters.items():
                        merged[name] = merged.get(name, 0) + value
            return merged

        serial = SPCube(make_cluster()).compute(adversarial)
        parallel = SPCube(make_cluster(parallelism=3)).compute(adversarial)
        serial_totals = totals(serial)
        assert totals(parallel) == serial_totals
        assert serial_totals.get("lattice_plan_hits", 0) >= 0
        assert (
            serial_totals["lattice_plan_hits"]
            + serial_totals["lattice_plan_misses"]
            == 300
        )
