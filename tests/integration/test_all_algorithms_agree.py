"""Integration: every engine produces the identical cube on every input.

This is the repository's master correctness property: the sequential
oracle, BUC, top-down, SP-Cube (both sketch modes and all ablations), and
all four distributed baselines must agree bit-for-bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Average, Count, Sum
from repro.baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from repro.core import SPCube
from repro.cubing import buc_cube, sequential_cube, topdown_cube
from repro.datagen import gen_binomial, gen_zipf, wikipedia_traffic
from repro.mapreduce import ClusterConfig
from repro.relation import Relation, Schema

from ..conftest import make_random_relation


def all_engines(cluster, fn):
    return {
        "spcube": SPCube(cluster, fn),
        "spcube-exact": SPCube(cluster, fn, use_exact_sketch=True),
        "naive": NaiveCube(cluster, fn),
        "naive-combiner": NaiveCube(cluster, fn, use_combiner=True),
        "mrcube": MRCube(cluster, fn),
        "hive": HiveCube(cluster, fn),
        "pipesort": PipeSortMR(cluster, fn),
    }


@pytest.mark.parametrize(
    "fn", [Count(), Sum(), Average()], ids=lambda f: f.name
)
@pytest.mark.parametrize("skew", [0.0, 0.5, 1.0])
def test_engines_agree_on_random_data(fn, skew):
    cluster = ClusterConfig(num_machines=4)
    rel = make_random_relation(
        600, num_dimensions=3, cardinality=25, seed=99, skew_fraction=skew
    )
    oracle = sequential_cube(rel, fn)
    assert buc_cube(rel, fn) == oracle
    assert topdown_cube(rel, fn) == oracle
    for name, engine in all_engines(cluster, fn).items():
        run = engine.compute(rel)
        assert run.cube == oracle, (name, run.cube.diff(oracle, 3))


@pytest.mark.parametrize(
    "dataset",
    [
        gen_binomial(700, 0.4, seed=1),
        gen_zipf(700, seed=1),
        wikipedia_traffic(700, seed=1),
    ],
    ids=["binomial", "zipf", "wikipedia"],
)
def test_engines_agree_on_paper_workloads(dataset):
    cluster = ClusterConfig(num_machines=5)
    oracle = sequential_cube(dataset)
    for name, engine in all_engines(cluster, Count()).items():
        run = engine.compute(dataset)
        assert run.cube == oracle, name


@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 2),
            st.integers(0, 2),
            st.integers(0, 2),
            st.integers(1, 5),
        ),
        min_size=1,
        max_size=60,
    ),
    machines=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_property_spcube_equals_oracle(rows, machines):
    """SP-Cube == oracle for arbitrary small relations and cluster sizes.

    Tiny cardinalities maximize group collisions and skew-threshold edge
    cases; small machine counts exercise degenerate partitionings.
    """
    rel = Relation(Schema(["a", "b", "c"], "m"), rows, validate=False)
    cluster = ClusterConfig(num_machines=machines)
    run = SPCube(cluster).compute(rel)
    assert run.cube == sequential_cube(rel)


@given(
    rows=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(1, 3)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=20, deadline=None)
def test_property_baselines_equal_oracle(rows):
    rel = Relation(Schema(["a", "b"], "m"), rows, validate=False)
    cluster = ClusterConfig(num_machines=3)
    oracle = sequential_cube(rel)
    for engine in (
        NaiveCube(cluster),
        MRCube(cluster),
        HiveCube(cluster),
        PipeSortMR(cluster),
    ):
        assert engine.compute(rel).cube == oracle
