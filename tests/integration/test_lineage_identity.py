"""The flight recorder and watchdog are deterministic observers.

The lineage artifact is recorded at the engine's driver-side merge
point, so its byte sequence — and the watchdog alerts derived from it —
must be **bit-identical** between the serial and parallel backends for
every engine, clean and under injected task and node faults.  And like
telemetry, attaching either may never change the simulation itself.
"""

from dataclasses import replace

import pytest

from repro.analysis import paper_cluster
from repro.baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from repro.core import SPCube
from repro.datagen import gen_binomial
from repro.mapreduce import (
    ClusterConfig,
    CostModel,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.mapreduce.faults import NodeFaultSpec
from repro.observability import (
    LineageRecorder,
    MemorySink,
    TraceAnalysis,
    Tracer,
    Watchdog,
    attribute_load,
)

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "hive": HiveCube,
    "mrcube": MRCube,
    "pipesort": PipeSortMR,
}

CRASH_PLAN = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])


@pytest.fixture(scope="module")
def binomial():
    return gen_binomial(400, 0.3, seed=9)


def make_cluster(lineage=None, watchdog=None, parallelism=None,
                 fault_plan=None):
    return ClusterConfig(
        num_machines=4,
        memory_records=64,
        cost_model=CostModel(speculation_launch_seconds=1e-4),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(),
        parallelism=parallelism,
        lineage=lineage,
        watchdog=watchdog,
    )


def recorded_run(engine_cls, relation, parallelism=None, fault_plan=None):
    lineage = LineageRecorder(run_id="identity")
    watchdog = Watchdog()
    engine_cls(
        make_cluster(lineage, watchdog, parallelism=parallelism,
                     fault_plan=fault_plan)
    ).compute(relation)
    return lineage, watchdog


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_serial_parallel_identity_clean(binomial, engine_name):
    serial_lin, serial_dog = recorded_run(ENGINES[engine_name], binomial)
    par_lin, par_dog = recorded_run(
        ENGINES[engine_name], binomial, parallelism=3
    )
    assert par_lin.to_records() == serial_lin.to_records()
    assert par_dog.alerts == serial_dog.alerts
    assert par_dog.comparisons == serial_dog.comparisons


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_serial_parallel_identity_under_task_faults(binomial, engine_name):
    serial_lin, serial_dog = recorded_run(
        ENGINES[engine_name], binomial, fault_plan=CRASH_PLAN
    )
    par_lin, par_dog = recorded_run(
        ENGINES[engine_name], binomial, parallelism=3,
        fault_plan=CRASH_PLAN,
    )
    assert par_lin.to_records() == serial_lin.to_records()
    assert par_dog.alerts == serial_dog.alerts


def node_cluster(parallelism=None):
    """A checkpointing multi-node cluster that loses node 1 mid-round."""
    base = paper_cluster(2000, num_machines=6, num_nodes=3)
    plan = FaultPlan(seed=11, node_specs=[
        NodeFaultSpec(node=1, at_seconds=0.5, job="mrcube-materialize"),
    ])
    return replace(
        base,
        fault_plan=plan,
        parallelism=parallelism,
        lineage=LineageRecorder(run_id="identity"),
        watchdog=Watchdog(),
    )


def test_serial_parallel_identity_under_node_faults():
    """A node loss re-executes the round; the aborted execution and the
    resume both appear in the artifact identically for both backends."""
    relation = gen_binomial(2000, 0.5, seed=3)
    serial = node_cluster()
    parallel = node_cluster(parallelism=3)
    serial_run = MRCube(serial).compute(relation)
    parallel_run = MRCube(parallel).compute(relation)
    assert serial_run.metrics.nodes_lost == 1
    assert parallel_run.cube == serial_run.cube
    assert parallel.lineage.to_records() == serial.lineage.to_records()
    assert parallel.watchdog.alerts == serial.watchdog.alerts
    # The killed round is present as an aborted execution 0 followed by
    # a clean execution 1 of the same job name.
    executions = [
        (r["job"], r["execution"], r["aborted"])
        for r in serial.lineage.to_records() if r["type"] == "job"
        and r["job"] == "mrcube-materialize"
    ]
    assert ("mrcube-materialize", 0, True) in executions
    assert ("mrcube-materialize", 1, False) in executions


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_recording_does_not_change_runs(binomial, engine_name):
    engine_cls = ENGINES[engine_name]
    plain = engine_cls(make_cluster()).compute(binomial)
    recorded = engine_cls(
        make_cluster(LineageRecorder(), Watchdog())
    ).compute(binomial)
    assert recorded.cube == plain.cube
    assert len(recorded.metrics.jobs) == len(plain.metrics.jobs)
    for plain_job, rec_job in zip(
        plain.metrics.jobs, recorded.metrics.jobs
    ):
        assert rec_job.total_seconds == plain_job.total_seconds
        assert rec_job.map_output_records == plain_job.map_output_records


def test_lineage_off_by_default(binomial):
    cluster = make_cluster()
    assert cluster.lineage is None
    assert cluster.watchdog is None
    run = SPCube(cluster).compute(binomial)
    assert run.metrics.output_groups > 0


def test_every_engine_classifies_cuboids(binomial):
    """Every cube round's flows carry a per-cuboid breakdown; only the
    classifier-less sample round (key ``0``) may record empty ones."""
    for engine_name, engine_cls in sorted(ENGINES.items()):
        lineage, _ = recorded_run(engine_cls, binomial)
        for job in lineage.jobs:
            if job["job"] in ("sp-sketch", "mrcube-sample"):
                continue
            assert any(flow["cuboids"] for flow in job["flows"]), (
                engine_name, job["job"],
            )


class TestWatchdogMatchesDoctor:
    """Acceptance: on a fault-free run the watchdog's predicted-vs-
    observed comparison must match ``attribute_load`` exactly."""

    @pytest.fixture(scope="class")
    def run(self):
        relation = gen_binomial(1500, 0.9, seed=11)
        sink = MemorySink()
        cluster = paper_cluster(len(relation), num_machines=4)
        cluster = replace(
            cluster,
            tracer=Tracer([sink], level="task"),
            lineage=LineageRecorder(run_id="doctor"),
            watchdog=Watchdog(),
        )
        cube_run = SPCube(cluster).compute(relation)
        cluster.tracer.close()
        return relation, cluster, cube_run, sink.records

    def test_deltas_are_zero_and_sides_match_attribution(self, run):
        relation, cluster, cube_run, records = run
        comparison = cluster.watchdog.comparisons["sp-cube"]
        attribution = attribute_load(
            relation, cube_run.sketch, TraceAnalysis(records)
        )
        assert attribution.matches is True
        assert comparison["predicted"] == attribution.predicted
        assert comparison["observed"] == attribution.actual
        assert all(d == 0 for d in comparison["deltas"].values())

    def test_explain_reducer_names_doctor_flagged_cuboids(self, run):
        """The hottest ranged reducer's explain walk must surface the
        cuboids the doctor's attribution says routed its load."""
        from repro.observability import explain_reducer

        relation, cluster, cube_run, _records = run
        attribution = attribute_load(relation, cube_run.sketch)
        result = explain_reducer(
            cluster.lineage.to_records(), job="sp-cube"
        )
        flagged = attribution.by_cuboid.get(result["reducer"], {})
        explained = {int(mask) for mask in result["by_cuboid"]}
        assert explained  # the walk names cuboids at all
        assert {m for m in flagged if flagged[m] > 0} <= explained
