"""Serial vs parallel execution: bit-identical cubes and metrics.

The tentpole invariant of the executor layer: for every engine, on every
workload, with or without injected faults, a run under the
:class:`~repro.mapreduce.ParallelExecutor` produces the *same
``CubeResult``* and the *same ``JobMetrics``* as the
:class:`~repro.mapreduce.SerialExecutor` — parallelism may only change
real wall-clock time, never the simulation.  The only fields allowed to
differ are the executor name and the two wall-clock diagnostics, which
exist precisely to measure the backend.
"""

from dataclasses import asdict

import pytest

from repro.baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from repro.core import SPCube
from repro.datagen import gen_binomial, gen_zipf
from repro.mapreduce import ClusterConfig, CostModel, FaultPlan, FaultSpec, RetryPolicy

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "hive": HiveCube,
    "mrcube": MRCube,
    "pipesort": PipeSortMR,
}

#: The fault plans of tests/integration/test_fault_tolerance.py plus the
#: fault-free baseline: parity must hold through crash-retry chains and
#: speculative execution, not just on the happy path.
PLANS = {
    "none": None,
    "map-crash": FaultPlan(
        [FaultSpec("crash", phase="map", task=0, attempt=0)]
    ),
    "reduce-crash": FaultPlan(
        [FaultSpec("crash", phase="reduce", task=0, attempt=0)]
    ),
    "straggler": FaultPlan(
        [FaultSpec("straggle", phase="map", slowdown=100.0, attempt=None)]
    ),
}

#: JobMetrics fields that describe the backend rather than the
#: simulation; everything else must match exactly.
BACKEND_FIELDS = ("executor", "map_phase_wall_seconds", "reduce_phase_wall_seconds")


def make_cluster(fault_plan=None, parallelism=None):
    return ClusterConfig(
        num_machines=4,
        memory_records=64,
        cost_model=CostModel(speculation_launch_seconds=1e-4),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(),
        parallelism=parallelism,
    )


@pytest.fixture(scope="module")
def binomial():
    return gen_binomial(500, 0.3, seed=4)


@pytest.fixture(scope="module")
def zipf():
    return gen_zipf(400, seed=11)


def assert_runs_identical(serial_run, parallel_run):
    assert parallel_run.cube == serial_run.cube
    assert len(parallel_run.metrics.jobs) == len(serial_run.metrics.jobs)
    for serial_job, parallel_job in zip(
        serial_run.metrics.jobs, parallel_run.metrics.jobs
    ):
        serial_dict, parallel_dict = asdict(serial_job), asdict(parallel_job)
        for backend_field in BACKEND_FIELDS:
            serial_dict.pop(backend_field)
            parallel_dict.pop(backend_field)
        assert parallel_dict == serial_dict, serial_job.name
    assert parallel_run.metrics.extras == serial_run.metrics.extras
    assert parallel_run.metrics.output_groups == serial_run.metrics.output_groups


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_parallel_matches_serial_on_binomial(binomial, engine_name, plan_name):
    engine_cls = ENGINES[engine_name]
    serial = engine_cls(make_cluster(PLANS[plan_name])).compute(binomial)
    parallel = engine_cls(
        make_cluster(PLANS[plan_name], parallelism=3)
    ).compute(binomial)
    assert_runs_identical(serial, parallel)
    # The parallel run must actually have used the parallel backend for
    # at least one round (driver-state rounds legitimately stay serial).
    assert any(
        job.executor == "parallel" for job in parallel.metrics.jobs
    )
    assert all(job.executor == "serial" for job in serial.metrics.jobs)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_parallel_matches_serial_on_zipf(zipf, engine_name):
    engine_cls = ENGINES[engine_name]
    serial = engine_cls(make_cluster()).compute(zipf)
    parallel = engine_cls(make_cluster(parallelism=3)).compute(zipf)
    assert_runs_identical(serial, parallel)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_parallel_abort_matches_serial(binomial, engine_name):
    """A chain that exhausts its budget aborts identically: the merge is
    truncated at the first dead task even though a parallel backend has
    already run the later ones."""
    exhausting = FaultPlan(
        [FaultSpec("crash", phase="map", task=0, attempt=None)]
    )
    engine_cls = ENGINES[engine_name]
    serial = engine_cls(make_cluster(exhausting)).compute(binomial)
    parallel = engine_cls(
        make_cluster(exhausting, parallelism=3)
    ).compute(binomial)
    assert serial.metrics.aborted
    assert_runs_identical(serial, parallel)


def test_all_rounds_use_configured_executor(binomial):
    """Both SP-Cube rounds run on the configured backend.  The sketch
    round historically smuggled the sketch out through a driver-side
    holder object, which forced it onto the serial executor; it now
    returns the sketch through the job's output pairs and parallelizes
    like any other round."""
    run = SPCube(make_cluster(parallelism=3)).compute(binomial)
    executors = [job.executor for job in run.metrics.jobs]
    assert executors == ["parallel"] * len(executors)
