"""End-to-end runs on the paper's workloads: metrics-level expectations.

These assert the *shape* claims of Section 6 at miniature scale: SP-Cube
wins on time and traffic, balances reducers, keeps its sketch tiny, and
Hive fails exactly in the high-skew regime.
"""

import pytest

from repro.baselines import HiveCube, MRCube
from repro.core import SPCube
from repro.analysis import paper_cluster, run_algorithms
from repro.datagen import gen_binomial, gen_zipf, wikipedia_traffic


@pytest.fixture(scope="module")
def binomial_runs():
    n = 12_000
    cluster = paper_cluster(n)
    rel = gen_binomial(n, 0.25, seed=17)
    return run_algorithms(
        rel,
        {
            "pig": MRCube(cluster),
            "hive": HiveCube(cluster),
            "spcube": SPCube(cluster),
        },
    )


class TestComparativeShapes:
    def test_spcube_fastest(self, binomial_runs):
        spcube = binomial_runs["spcube"].metrics.total_seconds
        assert spcube < binomial_runs["pig"].metrics.total_seconds
        assert spcube < binomial_runs["hive"].metrics.total_seconds

    def test_spcube_least_traffic(self, binomial_runs):
        spcube = binomial_runs["spcube"].metrics.intermediate_bytes
        assert spcube < binomial_runs["pig"].metrics.intermediate_bytes
        assert spcube < binomial_runs["hive"].metrics.intermediate_bytes

    def test_all_agree(self, binomial_runs):
        cubes = [run.cube for run in binomial_runs.values()]
        assert cubes[0] == cubes[1] == cubes[2]

    def test_sketch_orders_of_magnitude_below_input(self, binomial_runs):
        from repro.mapreduce import relation_bytes

        sketch_bytes = binomial_runs["spcube"].metrics.extras["sketch_bytes"]
        # Input is ~12k rows * ~40B; sketch must be a tiny fraction.
        assert sketch_bytes < 50_000


class TestHiveFailureBoundary:
    @pytest.mark.parametrize(
        "p,expect_failed",
        # The analytic boundary is p > 0.375; at this miniature n the
        # planted group sizes (Poisson around p*n/20) blur the crossing,
        # so the test probes clearly on each side.  The Figure 6 bench
        # demonstrates the exact p >= 0.4 boundary at full bench scale.
        [(0.0, False), (0.25, False), (0.5, True), (0.75, True)],
    )
    def test_figure6_boundary(self, p, expect_failed):
        n = 8_000
        cluster = paper_cluster(n)
        run = HiveCube(cluster).compute(gen_binomial(n, p, seed=23))
        assert run.metrics.failed == expect_failed

    def test_spcube_never_fails(self):
        n = 8_000
        cluster = paper_cluster(n)
        for p in (0.0, 0.4, 0.75):
            run = SPCube(cluster).compute(gen_binomial(n, p, seed=23))
            assert not run.metrics.failed


class TestSPCubeResilience:
    def test_flat_across_distributions(self):
        """Section 6.1's closing observation: SP-Cube performs similarly
        on very different distributions at equal size."""
        n = 10_000
        cluster = paper_cluster(n)
        times = []
        for rel in (
            wikipedia_traffic(n, seed=4),
            gen_zipf(n, seed=4),
            gen_binomial(n, 0.3, seed=4),
        ):
            run = SPCube(cluster).compute(rel)
            times.append(run.metrics.total_seconds)
        assert max(times) < 2.5 * min(times)

    def test_reducer_balance(self):
        n = 10_000
        cluster = paper_cluster(n)
        run = SPCube(cluster).compute(gen_zipf(n, seed=6))
        # max/mean load of the cube round's active reducers stays moderate.
        assert run.metrics.reducer_balance < 4.0
