"""Telemetry is observation-only: it may never change a run.

Two invariants of the telemetry layer, enforced for every engine:

* **on/off identity** — a run with a :class:`Telemetry` collector
  attached produces the same cube and the same simulated metrics as a
  run without one, serial and parallel alike.  Instrumentation reads the
  simulation; it never feeds back into it.
* **serial/parallel sample identity** — every sample on the logical-time
  axis (``source == "sim"``) is bit-identical between a serial and a
  parallel run of the same workload.  Host-source samples (RSS, wall
  clock, executor depth) are explicitly excluded: they measure the real
  machine.
"""

from dataclasses import asdict

import pytest

from repro.baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from repro.core import SPCube
from repro.datagen import gen_binomial
from repro.mapreduce import (
    ClusterConfig,
    CostModel,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.observability import MemorySink, Telemetry, Tracer

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "hive": HiveCube,
    "mrcube": MRCube,
    "pipesort": PipeSortMR,
}

#: JobMetrics fields describing the backend, not the simulation.
BACKEND_FIELDS = (
    "executor", "map_phase_wall_seconds", "reduce_phase_wall_seconds",
)

CRASH_PLAN = FaultPlan([FaultSpec("crash", phase="map", task=0, attempt=0)])


@pytest.fixture(scope="module")
def binomial():
    return gen_binomial(400, 0.3, seed=9)


def make_cluster(telemetry=None, parallelism=None, fault_plan=None,
                 tracer=None):
    return ClusterConfig(
        num_machines=4,
        memory_records=64,
        cost_model=CostModel(speculation_launch_seconds=1e-4),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(),
        parallelism=parallelism,
        telemetry=telemetry,
        tracer=tracer,
    )


def assert_same_simulation(plain_run, telemetered_run):
    assert telemetered_run.cube == plain_run.cube
    assert len(telemetered_run.metrics.jobs) == len(plain_run.metrics.jobs)
    for plain_job, telem_job in zip(
        plain_run.metrics.jobs, telemetered_run.metrics.jobs
    ):
        plain_dict, telem_dict = asdict(plain_job), asdict(telem_job)
        for backend_field in BACKEND_FIELDS:
            plain_dict.pop(backend_field)
            telem_dict.pop(backend_field)
        assert telem_dict == plain_dict, plain_job.name
    assert telemetered_run.metrics.extras == plain_run.metrics.extras
    assert (
        telemetered_run.metrics.output_groups
        == plain_run.metrics.output_groups
    )


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_telemetry_does_not_change_serial_runs(binomial, engine_name):
    engine_cls = ENGINES[engine_name]
    plain = engine_cls(make_cluster()).compute(binomial)
    telemetry = Telemetry(run_id=engine_name)
    telemetered = engine_cls(make_cluster(telemetry)).compute(binomial)
    assert_same_simulation(plain, telemetered)
    assert telemetry.samples  # the collector actually collected


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_telemetry_does_not_change_parallel_runs(binomial, engine_name):
    engine_cls = ENGINES[engine_name]
    plain = engine_cls(make_cluster(parallelism=3)).compute(binomial)
    telemetered = engine_cls(
        make_cluster(Telemetry(run_id=engine_name), parallelism=3)
    ).compute(binomial)
    assert_same_simulation(plain, telemetered)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_sim_samples_identical_serial_vs_parallel(binomial, engine_name):
    """The logical-time axis is deterministic: a parallel run must emit
    exactly the serial run's sim samples (host samples may differ)."""
    engine_cls = ENGINES[engine_name]
    serial_telemetry = Telemetry(run_id=engine_name)
    parallel_telemetry = Telemetry(run_id=engine_name)
    engine_cls(make_cluster(serial_telemetry)).compute(binomial)
    engine_cls(
        make_cluster(parallel_telemetry, parallelism=3)
    ).compute(binomial)

    def sim_only(telemetry):
        return [
            {k: v for k, v in record.items() if k != "source"}
            for record in telemetry.samples
            if record["source"] == "sim"
        ]

    assert sim_only(parallel_telemetry) == sim_only(serial_telemetry)
    assert parallel_telemetry.clock == serial_telemetry.clock


def test_sim_samples_identical_under_faults(binomial):
    """Crash-retry chains land on the logical clock too, so the sample
    identity must survive fault injection."""
    serial_telemetry = Telemetry(run_id="faulted")
    parallel_telemetry = Telemetry(run_id="faulted")
    SPCube(
        make_cluster(serial_telemetry, fault_plan=CRASH_PLAN)
    ).compute(binomial)
    SPCube(
        make_cluster(parallel_telemetry, parallelism=3,
                     fault_plan=CRASH_PLAN)
    ).compute(binomial)
    serial_sim = [
        r for r in serial_telemetry.samples if r["source"] == "sim"
    ]
    parallel_sim = [
        r for r in parallel_telemetry.samples if r["source"] == "sim"
    ]
    assert parallel_sim == serial_sim


def test_samples_independent_of_tracer(binomial):
    """Sample times ride the telemetry clock, not the tracer's: a run
    with a trace sink attached must emit exactly the samples of an
    untraced run (the tracer's clock only advances when tracing is on,
    so borrowing it would shift every multi-round timestamp)."""
    untraced_telemetry = Telemetry(run_id="multi-round")
    traced_telemetry = Telemetry(run_id="multi-round")
    SPCube(make_cluster(untraced_telemetry)).compute(binomial)
    SPCube(
        make_cluster(traced_telemetry, tracer=Tracer(sinks=[MemorySink()]))
    ).compute(binomial)
    sim = lambda t: [r for r in t.samples if r["source"] == "sim"]
    assert sim(traced_telemetry) == sim(untraced_telemetry)
    assert traced_telemetry.clock == untraced_telemetry.clock


def test_telemetry_off_by_default(binomial):
    """A bare cluster carries no collector: nothing to pay, nothing
    recorded."""
    cluster = make_cluster()
    assert cluster.telemetry is None
    run = SPCube(cluster).compute(binomial)
    assert run.metrics.output_groups > 0
