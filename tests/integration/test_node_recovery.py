"""Node loss + checkpoint resume, end to end — the acceptance scenario.

A seeded node kill during round 2 of a three-round MR-Cube run must:
complete via checkpoint resume with the bit-identical cube of the
fault-free run, re-execute only round-2 work (rounds 1 and 3 run once),
skip the salvaged reduce partitions on the rerun, and leave merged
metrics that satisfy every invariant.  Serial and parallel backends must
agree byte-for-byte on cubes and traces under node faults.
"""

from dataclasses import replace

import json

import pytest

from repro.analysis import paper_cluster
from repro.baselines import MRCube
from repro.core import SPCube
from repro.datagen import gen_binomial, gen_zipf
from repro.mapreduce.faults import FaultPlan, NodeFaultSpec
from repro.observability import MemorySink, Tracer, validate_records

ROWS = 3000
#: Job-relative instant inside the materialize round's reduce phase (the
#: round spans ~67s; map+shuffle+startup end around t=35).
KILL_AT = 45.0
WALL_FIELDS = ("map_phase_wall_seconds", "reduce_phase_wall_seconds",
               "executor")


def relation():
    return gen_binomial(ROWS, 0.5, seed=3)


def cluster(**overrides):
    base = paper_cluster(ROWS, num_machines=6, num_nodes=3)
    return replace(base, **overrides) if overrides else base


def kill_plan():
    return FaultPlan(seed=11, node_specs=[
        NodeFaultSpec(node=1, at_seconds=KILL_AT, job="mrcube-materialize"),
    ])


@pytest.fixture(scope="module")
def clean_run():
    return MRCube(cluster()).compute(relation())


@pytest.fixture(scope="module")
def resumed_run():
    sink = MemorySink()
    tracer = Tracer([sink], level="task")
    run = MRCube(
        cluster(fault_plan=kill_plan(), tracer=tracer)
    ).compute(relation())
    tracer.close()
    return run, sink.records


class TestAcceptance:
    def test_three_rounds_fault_free(self, clean_run):
        assert [j.name for j in clean_run.metrics.jobs] == [
            "mrcube-sample", "mrcube-materialize", "mrcube-postagg",
        ]

    def test_run_completes_via_resume(self, resumed_run):
        run, _records = resumed_run
        metrics = run.metrics
        assert not metrics.aborted
        assert metrics.nodes_lost == 1
        assert metrics.resumed_rounds == 1

    def test_cube_identical_to_fault_free(self, resumed_run, clean_run):
        run, _records = resumed_run
        assert run.cube == clean_run.cube

    def test_only_round_two_reruns(self, resumed_run):
        run, records = resumed_run
        names = [j.name for j in run.metrics.jobs]
        assert names == [
            "mrcube-sample",
            "mrcube-materialize",  # killed execution, superseded
            "mrcube-materialize",  # resumed rerun
            "mrcube-postagg",
        ]
        job_spans = [r for r in records
                     if r.get("type") == "span" and r.get("kind") == "job"]
        counts = {}
        for span in job_spans:
            counts[span["name"]] = counts.get(span["name"], 0) + 1
        assert counts == {
            "mrcube-sample": 1, "mrcube-materialize": 2, "mrcube-postagg": 1,
        }

    def test_superseded_execution_is_flagged(self, resumed_run):
        run, _records = resumed_run
        killed = run.metrics.jobs[1]
        assert killed.superseded and killed.aborted
        assert killed.dead_nodes == [1]
        # Its whole duration is recovery cost.
        assert killed.recovery_overhead_seconds == pytest.approx(
            killed.total_seconds
        )

    def test_trace_has_the_recovery_events(self, resumed_run):
        _run, records = resumed_run
        assert validate_records(records) == len(records)
        events = {r["kind"]: r for r in records if r.get("type") == "event"}
        assert "node_lost" in events
        assert events["node_lost"]["fields"]["node"] == 1
        assert "round_resume" in events
        assert "checkpoint_write" in events

    def test_rerun_skips_salvaged_partitions(self, resumed_run):
        _run, records = resumed_run
        (resume,) = [r for r in records if r.get("kind") == "round_resume"]
        salvaged = set(resume["fields"]["salvaged_partitions"])
        assert salvaged  # at least one partition completed pre-kill
        rerun_reducers = {
            r["task"]
            for r in records
            if r.get("kind") == "attempt"
            and r.get("job") == "mrcube-materialize"
            and r.get("phase") == "reduce"
            and r["seq"] > resume["seq"]
        }
        assert rerun_reducers
        assert not rerun_reducers & salvaged

    def test_merged_metrics_hold_invariants(self, resumed_run):
        run, _records = resumed_run
        run.metrics.check_invariants()

    def test_recovery_overhead_includes_the_lost_round(self, resumed_run):
        run, _records = resumed_run
        killed = run.metrics.jobs[1]
        assert run.metrics.recovery_overhead() >= killed.total_seconds


class TestCheckpointDisabled:
    def test_node_kill_aborts_without_checkpointing(self):
        run = MRCube(
            cluster(fault_plan=kill_plan(), checkpoint_enabled=False)
        ).compute(relation())
        assert run.metrics.aborted
        assert run.metrics.resumed_rounds == 0
        assert run.metrics.nodes_lost == 1


class TestRepeatedKills:
    def test_two_rounds_each_lose_a_node_and_both_resume(self, clean_run):
        plan = FaultPlan(node_specs=[
            NodeFaultSpec(node=1, at_seconds=KILL_AT,
                          job="mrcube-materialize"),
            NodeFaultSpec(node=2, at_seconds=1.0, job="mrcube-postagg"),
        ])
        run = MRCube(cluster(fault_plan=plan)).compute(relation())
        assert not run.metrics.aborted
        assert run.metrics.resumed_rounds == 2
        assert run.metrics.nodes_lost == 2
        assert run.cube == clean_run.cube

    def test_every_node_dying_at_once_resumes_on_fresh_nodes(
        self, clean_run
    ):
        # Certain node death kills all three nodes at the first round's
        # start; the resume replaces the whole cluster and the rest of
        # the run (no eligible nodes left) completes untouched.
        plan = FaultPlan(node_crash_prob=1.0)
        run = MRCube(cluster(fault_plan=plan)).compute(relation())
        assert not run.metrics.aborted
        assert run.metrics.resumed_rounds == 1
        assert run.metrics.nodes_lost == 3
        assert run.cube == clean_run.cube


class TestRoundAttemptBackstop:
    def toy_job(self):
        from repro.mapreduce.engine import MapReduceJob, Mapper, Reducer

        class Spread(Mapper):
            def map(self, record):
                yield record % 4, record

        class Add(Reducer):
            def reduce(self, key, values):
                yield key, sum(values)

        return MapReduceJob("toy", Spread, Add)

    def test_single_attempt_runner_lets_the_abort_stand(self):
        from repro.mapreduce.checkpoint import RoundRunner
        from repro.mapreduce.metrics import RunMetrics

        plan = FaultPlan(node_specs=[NodeFaultSpec(node=0, job="toy")])
        metrics = RunMetrics(algorithm="toy")
        runner = RoundRunner(
            cluster(fault_plan=plan), metrics, run_id="toy",
            max_round_attempts=1,
        )
        result = runner.run(self.toy_job(), [[1, 2], [3, 4]], 16)
        assert result.metrics.aborted
        assert result.metrics.dead_nodes == [0]
        assert not result.metrics.superseded
        assert metrics.resumed_rounds == 0

    def test_two_attempt_runner_resumes_the_same_round(self):
        from repro.mapreduce.checkpoint import RoundRunner
        from repro.mapreduce.metrics import RunMetrics

        plan = FaultPlan(node_specs=[NodeFaultSpec(node=0, job="toy")])
        metrics = RunMetrics(algorithm="toy")
        runner = RoundRunner(
            cluster(fault_plan=plan), metrics, run_id="toy",
            max_round_attempts=2,
        )
        result = runner.run(self.toy_job(), [[1, 2], [3, 4]], 16)
        assert not result.metrics.aborted
        assert metrics.resumed_rounds == 1
        assert sorted(result.output) == [(0, 4), (1, 1), (2, 2), (3, 3)]
        # The committed checkpoint for the round exists.
        assert runner.checkpoint.completed_rounds() == [0]


class TestRunRelativeKills:
    def test_time_based_kill_lands_in_the_containing_round(self, clean_run):
        # ~20s into the run falls inside the materialize round (the
        # sample round takes ~15s); the kill is spent by the rerun.
        plan = FaultPlan(node_specs=[NodeFaultSpec(node=0, at_seconds=20.0)])
        run = MRCube(cluster(fault_plan=plan)).compute(relation())
        assert not run.metrics.aborted
        assert run.metrics.nodes_lost == 1
        assert run.cube == clean_run.cube


class TestSPCubeResume:
    def test_sketch_survives_node_loss_and_the_run_resumes(self):
        rel = gen_zipf(2000, seed=3)
        base = paper_cluster(2000, num_machines=6, num_nodes=3)
        clean = SPCube(base).compute(rel)
        plan = FaultPlan(seed=5, node_specs=[
            NodeFaultSpec(node=2, at_seconds=30.0, job="sp-cube"),
        ])
        faulted = SPCube(replace(base, fault_plan=plan)).compute(rel)
        assert not faulted.metrics.aborted
        assert faulted.metrics.resumed_rounds == 1
        # Round 2's rerun re-reads the sketch off the DFS: node death must
        # have cost time, not data (re-replication kept it readable).
        assert faulted.cube == clean.cube
        faulted.metrics.check_invariants()


class TestBackendIdentity:
    def run_once(self, parallelism):
        sink = MemorySink()
        tracer = Tracer([sink], level="debug")
        plan = FaultPlan(
            seed=11, crash_prob=0.05, straggle_prob=0.05,
            node_crash_prob=0.02,
            node_specs=[NodeFaultSpec(node=1, at_seconds=KILL_AT,
                                      job="mrcube-materialize")],
        )
        run = MRCube(
            cluster(fault_plan=plan, tracer=tracer, parallelism=parallelism)
        ).compute(relation())
        tracer.close()
        jobs = []
        for job in run.metrics.jobs:
            data = job.to_dict()
            for field in WALL_FIELDS:
                data.pop(field, None)
            jobs.append(data)
        return run.cube, jobs, json.dumps(sink.records, sort_keys=True)

    def test_serial_and_parallel_agree_under_node_faults(self):
        serial = self.run_once(None)
        parallel = self.run_once(3)
        assert serial[0] == parallel[0]  # cubes
        assert serial[1] == parallel[1]  # job metrics incl. dead_nodes
        assert serial[2] == parallel[2]  # traces, byte-identical
