"""Schema construction and validation."""

import pytest

from repro.relation import Schema, SchemaError


class TestSchemaConstruction:
    def test_basic_properties(self):
        schema = Schema(["a", "b", "c"], "m")
        assert schema.num_dimensions == 3
        assert schema.arity == 4
        assert schema.dimensions == ("a", "b", "c")
        assert schema.measure == "m"

    def test_default_measure_name(self):
        assert Schema(["x"]).measure == "measure"

    def test_dimensions_are_immutable_tuple(self):
        schema = Schema(["a", "b"], "m")
        assert isinstance(schema.dimensions, tuple)

    def test_empty_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            Schema([], "m")

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"], "m")

    def test_measure_colliding_with_dimension_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"], "a")

    def test_accepts_any_sequence(self):
        schema = Schema(("x", "y"), "m")
        assert schema.num_dimensions == 2


class TestDimensionIndex:
    def test_index_lookup(self):
        schema = Schema(["name", "city", "year"], "sales")
        assert schema.dimension_index("name") == 0
        assert schema.dimension_index("year") == 2

    def test_unknown_dimension_raises(self):
        schema = Schema(["a"], "m")
        with pytest.raises(SchemaError, match="unknown dimension"):
            schema.dimension_index("nope")

    def test_measure_is_not_a_dimension(self):
        schema = Schema(["a"], "m")
        with pytest.raises(SchemaError):
            schema.dimension_index("m")


class TestRowValidation:
    def test_valid_row_passes(self):
        Schema(["a", "b"], "m").validate_row(("x", "y", 3))

    def test_float_measure_passes(self):
        Schema(["a"], "m").validate_row(("x", 2.5))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError, match="fields"):
            Schema(["a", "b"], "m").validate_row(("x", 1))

    def test_non_numeric_measure_rejected(self):
        with pytest.raises(SchemaError, match="not numeric"):
            Schema(["a"], "m").validate_row(("x", "oops"))

    def test_boolean_measure_rejected(self):
        with pytest.raises(SchemaError, match="not numeric"):
            Schema(["a"], "m").validate_row(("x", True))


class TestEqualityAndRepr:
    def test_equal_schemas(self):
        assert Schema(["a", "b"], "m") == Schema(["a", "b"], "m")

    def test_different_measure_not_equal(self):
        assert Schema(["a"], "m1") != Schema(["a"], "m2")

    def test_different_order_not_equal(self):
        assert Schema(["a", "b"], "m") != Schema(["b", "a"], "m")

    def test_hashable(self):
        assert len({Schema(["a"], "m"), Schema(["a"], "m")}) == 1

    def test_not_equal_to_other_types(self):
        assert Schema(["a"], "m") != "schema"

    def test_repr_mentions_dimensions(self):
        assert "name" in repr(Schema(["name"], "m"))
