"""Cube/tuple lattice algebra (paper Section 2.2)."""

import pytest

from repro.relation import Schema, lattice
from repro.relation.lattice import (
    all_cuboids,
    ancestors,
    bfs_order,
    cube_lattice_edges,
    descendants,
    format_cuboid,
    format_group,
    full_mask,
    group_sort_key,
    mask_dimensions,
    mask_size,
    project,
    projector,
    strict_subsets,
    strict_supersets,
    tuple_lattice,
)


class TestMaskBasics:
    def test_full_mask(self):
        assert full_mask(3) == 0b111
        assert full_mask(1) == 0b1

    def test_mask_size(self):
        assert mask_size(0) == 0
        assert mask_size(0b101) == 2
        assert mask_size(0b1111) == 4

    def test_mask_dimensions(self):
        assert mask_dimensions(0b101, 3) == (0, 2)
        assert mask_dimensions(0, 3) == ()

    def test_all_cuboids_count(self):
        assert len(all_cuboids(4)) == 16
        assert len(all_cuboids(1)) == 2


class TestBFSOrder:
    def test_starts_at_apex_ends_at_full(self):
        order = bfs_order(3)
        assert order[0] == 0
        assert order[-1] == 0b111

    def test_level_by_level(self):
        order = bfs_order(4)
        levels = [mask_size(m) for m in order]
        assert levels == sorted(levels)

    def test_is_a_permutation_of_all_cuboids(self):
        assert sorted(bfs_order(3)) == list(all_cuboids(3))

    def test_deterministic_tie_break(self):
        # Within a level, masks ascend: level 1 of d=3 is 0b001,0b010,0b100.
        assert bfs_order(3)[1:4] == (0b001, 0b010, 0b100)


class TestAncestorsDescendants:
    def test_descendants_drop_one_attribute(self):
        assert sorted(descendants(0b101, 3)) == [0b001, 0b100]

    def test_apex_has_no_descendants(self):
        assert list(descendants(0, 3)) == []

    def test_ancestors_add_one_attribute(self):
        assert sorted(ancestors(0b001, 3)) == [0b011, 0b101]

    def test_full_mask_has_no_ancestors(self):
        assert list(ancestors(0b111, 3)) == []

    def test_ancestor_descendant_are_inverse(self):
        d = 4
        for mask in all_cuboids(d):
            for child in descendants(mask, d):
                assert mask in set(ancestors(child, d))

    def test_strict_supersets(self):
        supersets = strict_supersets(0b001, 3)
        assert set(supersets) == {0b011, 0b101, 0b111}

    def test_strict_supersets_of_full_mask_empty(self):
        assert strict_supersets(0b111, 3) == ()

    def test_strict_subsets(self):
        assert set(strict_subsets(0b011)) == {0b000, 0b001, 0b010}

    def test_strict_subsets_of_apex_is_empty(self):
        assert strict_subsets(0) == ()

    def test_subsets_and_supersets_partition_comparables(self):
        d = 3
        mask = 0b010
        subs = set(strict_subsets(mask))
        sups = set(strict_supersets(mask, d))
        assert subs.isdisjoint(sups)
        assert mask not in subs and mask not in sups


class TestProjection:
    def test_project_full(self):
        row = ("laptop", "Rome", 2012, 2000)
        assert project(row, 0b111, 3) == ("laptop", "Rome", 2012)

    def test_project_partial(self):
        row = ("laptop", "Rome", 2012, 2000)
        assert project(row, 0b101, 3) == ("laptop", 2012)

    def test_project_apex(self):
        assert project(("a", "b", 1), 0, 2) == ()

    def test_projector_matches_project(self):
        row = (1, 2, 3, 4, 99)
        for mask in all_cuboids(4):
            assert projector(mask, 4)(row) == project(row, mask, 4)

    def test_projector_single_dim_returns_tuple(self):
        assert projector(0b010, 3)((7, 8, 9, 0)) == (8,)

    def test_measure_never_projected(self):
        row = ("x", "y", 123)
        assert 123 not in project(row, 0b11, 2)


class TestTupleLattice:
    def test_node_count(self):
        nodes = tuple_lattice(("laptop", "Rome", 2012, 2000), 3)
        assert len(nodes) == 8

    def test_nodes_in_bfs_order(self):
        nodes = tuple_lattice((1, 2, 3, 0), 3)
        masks = [mask for mask, _values in nodes]
        assert masks == list(bfs_order(3))

    def test_node_values_are_projections(self):
        row = ("laptop", "Rome", 2012, 2000)
        for mask, values in tuple_lattice(row, 3):
            assert values == project(row, mask, 3)


class TestFormatting:
    def test_format_group_paper_example(self):
        schema = Schema(["name", "city", "year"], "sales")
        assert (
            format_group(0b101, ("laptop", 2012), schema)
            == "(laptop, *, 2012)"
        )

    def test_format_group_apex(self):
        schema = Schema(["a", "b"], "m")
        assert format_group(0, (), schema) == "(*, *)"

    def test_format_cuboid(self):
        schema = Schema(["name", "city", "year"], "sales")
        assert format_cuboid(0b101, schema) == "(name, *, year)"
        assert format_cuboid(0, schema) == "(*, *, *)"


class TestCubeLatticeEdges:
    def test_edge_count(self):
        # Each mask of size s has s descendants: sum(s * C(d, s)) = d * 2^(d-1).
        d = 4
        assert len(cube_lattice_edges(d)) == d * 2 ** (d - 1)

    def test_edges_drop_exactly_one_bit(self):
        for parent, child in cube_lattice_edges(3):
            assert mask_size(parent) == mask_size(child) + 1
            assert parent & child == child


class TestGroupSortKey:
    def test_orders_by_level_first(self):
        assert group_sort_key(0, ()) < group_sort_key(0b1, (5,))

    def test_orders_within_cuboid_by_values(self):
        assert group_sort_key(0b1, (1,)) < group_sort_key(0b1, (2,))
