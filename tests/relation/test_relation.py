"""The Relation container."""

import random

import pytest

from repro.relation import Relation, Schema, SchemaError


@pytest.fixture
def schema():
    return Schema(["a", "b"], "m")


class TestConstruction:
    def test_rows_materialized_as_tuples(self, schema):
        rel = Relation(schema, [["x", "y", 1]])
        assert rel.rows == [("x", "y", 1)]

    def test_validation_on_by_default(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema, [("x", 1)])

    def test_validation_can_be_skipped(self, schema):
        rel = Relation(schema, [("x", 1)], validate=False)
        assert len(rel) == 1

    def test_from_columns(self, schema):
        rel = Relation.from_columns(schema, [["x", "y"], ["u", "v"], [1, 2]])
        assert rel.rows == [("x", "u", 1), ("y", "v", 2)]

    def test_from_columns_wrong_count(self, schema):
        with pytest.raises(SchemaError):
            Relation.from_columns(schema, [["x"], [1]])


class TestContainerProtocol:
    def test_len_iter_getitem(self, schema):
        rel = Relation(schema, [("x", "y", 1), ("u", "v", 2)])
        assert len(rel) == 2
        assert list(rel) == rel.rows
        assert rel[1] == ("u", "v", 2)

    def test_repr(self, schema):
        rel = Relation(schema, [("x", "y", 1)], name="demo")
        assert "demo" in repr(rel)
        assert "1 rows" in repr(rel)

    def test_measures(self, schema):
        rel = Relation(schema, [("x", "y", 1), ("u", "v", 2)])
        assert list(rel.measures()) == [1, 2]


class TestCubeHelpers:
    def test_project_group(self, schema):
        rel = Relation(schema, [("x", "y", 1)])
        assert rel.project_group(("x", "y", 1), 0b01) == ("x",)

    def test_sorted_by_cuboid(self, schema):
        rel = Relation(schema, [("b", "z", 1), ("a", "q", 2), ("a", "a", 3)])
        ordered = rel.sorted_by_cuboid(0b01)
        assert [row[0] for row in ordered] == ["a", "a", "b"]

    def test_group_sizes(self, schema):
        rel = Relation(schema, [("x", "y", 1), ("x", "z", 2), ("u", "y", 3)])
        assert rel.group_sizes(0b01) == {("x",): 2, ("u",): 1}
        assert rel.group_sizes(0) == {(): 3}


class TestSplit:
    def test_split_covers_all_rows(self, schema):
        rel = Relation(schema, [("x", "y", i) for i in range(10)])
        chunks = rel.split(3)
        assert sum(len(c) for c in chunks) == 10
        assert len(chunks) == 3

    def test_split_nearly_equal(self, schema):
        rel = Relation(schema, [("x", "y", i) for i in range(10)])
        sizes = [len(c) for c in rel.split(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_split_more_parts_than_rows(self, schema):
        rel = Relation(schema, [("x", "y", 1)])
        chunks = rel.split(4)
        assert sum(len(c) for c in chunks) == 1

    def test_split_invalid(self, schema):
        with pytest.raises(ValueError):
            Relation(schema, []).split(0)


class TestSampling:
    def test_sample_probability_bounds(self, schema):
        rel = Relation(schema, [("x", "y", 1)] * 100, validate=False)
        assert rel.sample(0.0) == []
        assert len(rel.sample(1.0)) == 100

    def test_sample_invalid_probability(self, schema):
        with pytest.raises(ValueError):
            Relation(schema, []).sample(1.5)

    def test_sample_deterministic_with_rng(self, schema):
        rel = Relation(schema, [("x", "y", i) for i in range(200)])
        s1 = rel.sample(0.3, random.Random(7))
        s2 = rel.sample(0.3, random.Random(7))
        assert s1 == s2

    def test_random_subset_size_and_membership(self, schema):
        rel = Relation(schema, [("x", "y", i) for i in range(50)])
        sub = rel.random_subset(10, random.Random(1))
        assert len(sub) == 10
        assert all(row in rel.rows for row in sub)

    def test_random_subset_too_large(self, schema):
        rel = Relation(schema, [("x", "y", 1)])
        with pytest.raises(ValueError):
            rel.random_subset(5)


class TestMapRows:
    def test_map_rows_applies_function(self, schema):
        rel = Relation(schema, [("x", "y", 1)])
        doubled = rel.map_rows(lambda row: row[:-1] + (row[-1] * 2,))
        assert doubled.rows == [("x", "y", 2)]
        assert rel.rows == [("x", "y", 1)]  # original untouched
