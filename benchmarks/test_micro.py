"""Micro-benchmarks of the library's hot components.

These time individual building blocks (sketch construction, BUC, planning,
projection, an engine round) so performance regressions are visible in
isolation from the figure-level sweeps.
"""

import random

import pytest

from repro.core import (
    build_exact_sketch,
    build_sketch_from_sample,
    plan_for_skew_bits,
    plan_tuple,
)
from repro.core.planner import plan_for_skew_bits as _cached_plan
from repro.cubing import buc_cube, sequential_cube
from repro.datagen import gen_binomial, gen_zipf
from repro.mapreduce import ClusterConfig, MapReduceJob, run_job
from repro.relation import all_cuboids, project


@pytest.fixture(scope="module")
def relation():
    return gen_binomial(10_000, 0.3, seed=1000)


def test_micro_sampled_sketch_build(benchmark, relation):
    sample = relation.sample(0.05, random.Random(1))
    benchmark(
        build_sketch_from_sample, sample, 4, 20, 12.0
    )


def test_micro_exact_sketch_build(benchmark, relation):
    benchmark.pedantic(
        lambda: build_exact_sketch(relation, 20, 500),
        rounds=3,
        iterations=1,
    )


def test_micro_buc_full_cube(benchmark):
    relation = gen_zipf(3_000, seed=1001)
    result = benchmark.pedantic(
        lambda: buc_cube(relation), rounds=3, iterations=1
    )
    assert result == sequential_cube(relation)


def test_micro_planner(benchmark, relation):
    sketch = build_exact_sketch(relation, 20, 500)
    rows = relation.rows[:2000]

    def plan_all():
        for row in rows:
            plan_tuple(row, sketch)

    benchmark(plan_all)


def test_micro_plan_cache_hit(benchmark):
    plan_for_skew_bits(1, 4)  # warm

    def hit():
        for _ in range(1000):
            _cached_plan(1, 4)

    benchmark(hit)


def test_micro_projection(benchmark, relation):
    rows = relation.rows[:2000]
    masks = all_cuboids(4)

    def project_all():
        for row in rows:
            for mask in masks:
                project(row, mask, 4)

    benchmark(project_all)


def test_micro_engine_round(benchmark):
    cluster = ClusterConfig(num_machines=8)
    records = [f"w{i % 500}" for i in range(20_000)]
    chunks = [records[i::8] for i in range(8)]

    job = MapReduceJob.from_functions(
        "wc",
        lambda record: [(record, 1)],
        lambda key, values: [(key, sum(values))],
    )

    def run():
        return run_job(job, chunks, cluster, 2500)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.output) == 500
