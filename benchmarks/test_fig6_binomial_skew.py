"""Figure 6 — gen-binomial, fixed size, varying skewness p.

Paper panels (x = p in [0, 0.75], n fixed at 300M):
  6a  running time   — SP-Cube stable; Pig skew-sensitive; Hive stuck
                       (reducer OOM) for p >= 0.4
  6b  map output     — decreases with p for Pig and SP-Cube (fewer
                       c-groups); Hive's stays the largest
  6c  SP-Sketch size — always tiny (<~200KB in the paper)

Bench scale: n = 30k; the Hive failure boundary (p >= 0.4) comes from the
calibrated stuck model (see repro.baselines.hive and EXPERIMENTS.md).
"""

from repro.analysis import chart_figure, format_figure, run_sweep
from repro.core import SPCube
from repro.datagen import gen_binomial

from conftest import PAPER_ALGORITHMS, paper_cluster, write_result

N = 30_000
SKEW_PERCENTS = [0, 10, 25, 40, 60, 75]


def run_figure6():
    workloads = [
        (float(p), gen_binomial(N, p / 100, seed=600))
        for p in SKEW_PERCENTS
    ]
    cluster = paper_cluster(N)
    return run_sweep(
        "Figure 6 — gen-binomial, varying skewness",
        "p%",
        workloads,
        PAPER_ALGORITHMS,
        cluster,
    )


def test_figure6(benchmark):
    sweep = run_figure6()

    relation = gen_binomial(N, 0.6, seed=600)
    cluster = paper_cluster(N)
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(relation), rounds=1, iterations=1
    )

    text = format_figure(
        sweep,
        [
            ("total_seconds", "6a  running time", "simulated sec"),
            ("map_output_mb", "6b  map output size", "MB"),
            ("sketch_kb", "6c  SP-Sketch size", "KB"),
        ],
    )
    text += "\n\n" + chart_figure(
        sweep, [("total_seconds", "6a  running time (shape; Hive absent where stuck)")]
    )
    write_result("figure6_binomial_skew", text)

    # --- shape assertions ---------------------------------------------------
    failed = dict(
        (x, y) for x, y in sweep.series("failed")["Hive"]
    )
    # Hive runs for p <= 0.25 and is stuck for p >= 0.4 — the paper's
    # exact boundary.
    assert failed[0.0] == 0 and failed[10.0] == 0 and failed[25.0] == 0
    assert failed[40.0] == 1 and failed[60.0] == 1 and failed[75.0] == 1

    # SP-Cube never fails and its time is stable across the sweep.
    spcube_failed = [y for _x, y in sweep.series("failed")["SP-Cube"]]
    assert all(flag == 0 for flag in spcube_failed)
    spcube_times = [y for _x, y in sweep.series("total_seconds")["SP-Cube"]]
    assert max(spcube_times) < 1.5 * min(spcube_times)

    # SP-Cube beats Pig at every point.
    pig = sweep.series("total_seconds")["Pig"]
    spc = sweep.series("total_seconds")["SP-Cube"]
    for (_x1, pig_t), (_x2, spc_t) in zip(pig, spc):
        assert spc_t < pig_t

    # 6b: Pig's and SP-Cube's traffic shrinks as p grows.
    for algo in ("Pig", "SP-Cube"):
        traffic = sweep.series("map_output_mb")[algo]
        assert traffic[-1][1] < traffic[0][1]

    # 6c: sketch stays small throughout (tens of KB at this scale).
    sketch = [y for _x, y in sweep.series("sketch_kb")["SP-Cube"]]
    assert max(sketch) < 100.0
