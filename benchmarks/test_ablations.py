"""Ablations of SP-Cube's design choices (DESIGN.md section 5).

Each ablation disables one mechanism and measures what it was buying, on a
moderately skewed gen-binomial workload:

1. map-side partial aggregation of skewed groups (Section 3.2);
2. ancestor covering via Observation 2.6 (Section 3.4);
3. lexicographic range partitioning (Section 3.3);
4. the sampled sketch vs the exact (utopian) sketch (Section 4);
5. the beta skew threshold (sketch recall/size tradeoff);
6. combiners alone on the naive algorithm (the "Pig adds combiners"
   remark of Section 7).
"""

import pytest

from repro.baselines import NaiveCube
from repro.core import SPCube, build_exact_sketch
from repro.datagen import gen_binomial

from conftest import paper_cluster, write_result

N = 20_000
P = 0.4


@pytest.fixture(scope="module")
def workload():
    return gen_binomial(N, P, seed=900)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(N)


def test_ablation_grid(benchmark, workload, cluster):
    """Run the full variant grid and report each mechanism's contribution."""
    variants = {
        "full SP-Cube": {},
        "no map partial agg": {"map_partial_aggregation": False},
        "no ancestor covering": {"ancestor_covering": False},
        "hash partitioning": {"range_partitioning": False},
        "exact sketch": {"use_exact_sketch": True},
    }

    runs = {}
    for name, kwargs in variants.items():
        runs[name] = SPCube(cluster, **kwargs).compute(workload)
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(workload), rounds=1, iterations=1
    )

    lines = ["SP-Cube ablations (gen-binomial, n=%d, p=%.2f)" % (N, P), ""]
    header = f"{'variant':24s}{'time(s)':>10s}{'traffic(MB)':>13s}{'balance':>9s}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, run in runs.items():
        metrics = run.metrics
        lines.append(
            f"{name:24s}{metrics.total_seconds:10.1f}"
            f"{metrics.intermediate_bytes / 1e6:13.2f}"
            f"{metrics.reducer_balance:9.2f}"
        )
    write_result("ablations_grid", "\n".join(lines))

    full = runs["full SP-Cube"].metrics

    # All variants still compute the same cube.
    reference = runs["full SP-Cube"].cube
    for name, run in runs.items():
        assert run.cube == reference, name

    # Covering is the traffic saver (Observation 2.6).
    assert (
        runs["no ancestor covering"].metrics.intermediate_records
        > full.intermediate_records
    )

    # Disabling map partial aggregation funnels the skewed mass through
    # ordinary emissions: with no skew marks, every tuple's base group is
    # the apex, one reducer absorbs the whole relation, and the straggler
    # dominates the round (the balance *ratio* degenerates to 1.0 because
    # only one reducer is active — the absolute straggler tells the story).
    no_agg = runs["no map partial agg"].metrics
    assert (
        no_agg.jobs[-1].max_reducer_input_records
        > 3 * full.jobs[-1].max_reducer_input_records
    )
    assert no_agg.total_seconds > 2 * full.total_seconds


def test_ablation_beta_threshold(benchmark, workload, cluster):
    """Sweep the skew threshold beta: small beta bloats the sketch, large
    beta misses true skews — the tradeoff Section 4.2 argues about."""
    m = cluster.derive_memory(N)
    truth = build_exact_sketch(workload, cluster.num_machines, m)
    true_skews = {
        (mask, values) for mask, values, _count in truth.skewed_groups()
    }

    results = []
    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        import math

        beta = scale * math.log(N * cluster.num_machines)
        run = SPCube(cluster, beta=beta).compute(workload)
        detected = {
            (mask, values)
            for mask, values, _count in run.sketch.skewed_groups()
        }
        recall = (
            len(detected & true_skews) / len(true_skews)
            if true_skews
            else 1.0
        )
        summary = run.sketch.to_dict()
        results.append(
            (scale, beta, recall, summary["serialized_bytes"])
        )
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(workload), rounds=1, iterations=1
    )

    lines = ["beta threshold sweep (beta = scale * ln(nk))", ""]
    lines.append(f"{'scale':>6s}{'beta':>8s}{'skew recall':>13s}{'sketch(B)':>11s}")
    for scale, beta, recall, size in results:
        lines.append(f"{scale:6.2f}{beta:8.2f}{recall:13.2f}{size:11d}")
    write_result("ablations_beta", "\n".join(lines))

    # Recall is monotone non-increasing in beta; sketch size likewise.
    recalls = [recall for _s, _b, recall, _z in results]
    sizes = [size for _s, _b, _r, size in results]
    assert recalls[0] >= recalls[-1]
    assert sizes[0] >= sizes[-1]
    # The paper's beta (scale 1.0) achieves full recall here.
    assert results[2][2] == 1.0


def test_ablation_naive_combiner(benchmark, workload, cluster):
    """Combiners alone (what Pig adds to [26]) vs SP-Cube's full approach."""
    naive = NaiveCube(cluster).compute(workload)
    combined = NaiveCube(cluster, use_combiner=True).compute(workload)
    spcube_run = benchmark.pedantic(
        lambda: SPCube(cluster).compute(workload), rounds=1, iterations=1
    )

    lines = [
        "combiners alone vs SP-Cube (records shipped)",
        f"  naive:            {naive.metrics.intermediate_records}",
        f"  naive + combiner: {combined.metrics.intermediate_records}",
        f"  SP-Cube:          {spcube_run.metrics.intermediate_records}",
    ]
    write_result("ablations_combiner", "\n".join(lines))

    assert (
        combined.metrics.intermediate_records
        < naive.metrics.intermediate_records
    )
    # Combiners help, but SP-Cube still ships less: the uniform tail is
    # combiner-resistant while covering collapses it.
    assert (
        spcube_run.metrics.intermediate_records
        < combined.metrics.intermediate_records
    )
