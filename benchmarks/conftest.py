"""Shared benchmark infrastructure.

Every figure of the paper's evaluation has one module here.  Each bench

1. runs the figure's sweep (all algorithms over the x-axis),
2. times SP-Cube's run at the largest point through pytest-benchmark,
3. renders the figure's panels as text tables into
   ``benchmarks/results/<figure>.txt`` (and stdout), and
4. asserts the figure's qualitative claims (who wins, where Hive fails,
   how traffic compares).

Scale note: the paper's x-axes are 10^7-10^8 tuples on a physical
20-machine cluster; the benches run the same workloads at 10^4 scale on
the simulated cluster with JVM-calibrated memory (``paper_cluster``), so
each simulated row stands for ~10^3 real ones.  Shapes, not absolute
numbers, are the reproduction target (see EXPERIMENTS.md).
"""

import pathlib

import pytest

from repro.analysis import paper_cluster  # noqa: F401  (re-exported)
from repro.baselines import HiveCube, MRCube
from repro.core import SPCube

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's three contenders, as factories over a cluster config.
PAPER_ALGORITHMS = {
    "Pig": lambda cluster: MRCube(cluster),
    "Hive": lambda cluster: HiveCube(cluster),
    "SP-Cube": lambda cluster: SPCube(cluster),
}


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a rendered figure; also echo it for -s runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def final_times(sweep):
    """{algorithm: total_seconds at the largest x}, skipping failed runs."""
    curves = sweep.series("total_seconds")
    failed = sweep.series("failed")
    times = {}
    for name, curve in curves.items():
        if failed[name][-1][1] == 0:
            times[name] = curve[-1][1]
    return times


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
