"""Figure-6a-style recovery-cost sweep: fault pressure vs running time.

The paper's Figure 6a charts running time against the skewness knob; this
bench charts it against *fault pressure* instead — the per-attempt
crash/straggle probability — holding the workload fixed.  For each engine
and each pressure point it runs the gen-zipf workload under a seeded
:class:`~repro.mapreduce.faults.FaultPlan` (per-run seeds derived via
:func:`repro.analysis.runner.derive_fault_seed`, so points are
statistically independent) and records the fault-tolerance counters plus
the exact recovery overhead ``RunMetrics.recovery_overhead()`` — time
lost to killed attempts, crash detection, backoffs and residual
straggle, counted once per chain on its winning attempt.

Results land in ``BENCH_recovery.json`` at the repo root (the CI
perf-smoke job uploads it as an artifact) and in
``benchmarks/results/recovery_cost.txt`` as a table.

Knobs (environment):

``REPRO_BENCH_RECOVERY_ROWS``   workload size (default 6000)
``REPRO_BENCH_RECOVERY_SEED``   base fault seed (default 1337)
"""

import json
import os
import pathlib

from repro.analysis.runner import derive_fault_seed
from repro.analysis import paper_cluster
from repro.datagen import gen_zipf
from repro.mapreduce.faults import FaultPlan

from conftest import PAPER_ALGORITHMS, write_result

ROWS = int(os.environ.get("REPRO_BENCH_RECOVERY_ROWS", "6000"))
BASE_SEED = int(os.environ.get("REPRO_BENCH_RECOVERY_SEED", "1337"))
#: Fault pressure axis: per-attempt crash AND straggle probability.
PRESSURES = [0.0, 0.05, 0.1, 0.2]
RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
)


def _run_point(name, factory, relation, pressure):
    fault_plan = None
    if pressure > 0.0:
        fault_plan = FaultPlan(
            seed=derive_fault_seed(BASE_SEED, name, pressure),
            crash_prob=pressure,
            straggle_prob=pressure,
        )
    cluster = paper_cluster(len(relation), fault_plan=fault_plan)
    metrics = factory(cluster).compute(relation).metrics
    return {
        "engine": name,
        "pressure": pressure,
        "total_seconds": round(metrics.total_seconds, 3),
        "attempts": metrics.attempts,
        "killed_tasks": metrics.killed_tasks,
        "speculative_wins": metrics.speculative_wins,
        "recovered": metrics.recovered,
        "recovery_overhead_seconds": round(metrics.recovery_overhead(), 3),
        "failed": metrics.failed,
    }


def test_recovery_cost_sweep():
    relation = gen_zipf(ROWS, seed=9)
    rows = []
    for name, factory in PAPER_ALGORITHMS.items():
        for pressure in PRESSURES:
            rows.append(_run_point(name, factory, relation, pressure))

    by_engine = {}
    for row in rows:
        by_engine.setdefault(row["engine"], {})[row["pressure"]] = row

    lines = [
        f"recovery cost vs fault pressure — gen-zipf, n={ROWS}, "
        f"seed base {BASE_SEED}",
        "",
        f"{'engine':10s}{'p':>6s}{'time(s)':>10s}{'overhead(s)':>13s}"
        f"{'slowdown':>10s}{'attempts':>10s}{'killed':>8s}{'spec':>6s}"
        f"{'recov':>7s}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, points in by_engine.items():
        baseline = points[0.0]["total_seconds"]
        for pressure in PRESSURES:
            row = points[pressure]
            slowdown = (
                row["total_seconds"] / baseline if baseline else float("nan")
            )
            row["slowdown"] = round(slowdown, 3)
            lines.append(
                f"{name:10s}{pressure:6.2f}{row['total_seconds']:10.1f}"
                f"{row['recovery_overhead_seconds']:13.1f}{slowdown:10.2f}"
                f"{row['attempts']:10d}{row['killed_tasks']:8d}"
                f"{row['speculative_wins']:6d}{row['recovered']:7d}"
            )
    write_result("recovery_cost", "\n".join(lines))
    RESULT_PATH.write_text(json.dumps(
        {"rows": ROWS, "base_seed": BASE_SEED, "points": rows}, indent=2,
    ) + "\n")
    print(f"[written to {RESULT_PATH}]")

    for name, points in by_engine.items():
        clean = points[0.0]
        assert clean["attempts"] > 0
        assert clean["recovery_overhead_seconds"] == 0.0, name
        assert clean["killed_tasks"] == 0, name
        # Recovery overhead is summed *machine* time across chains —
        # chains recover concurrently, so it may exceed the simulated
        # wall time; the invariant is that pressure produces extra
        # attempts and a strictly positive, finite overhead.
        for pressure in PRESSURES[1:]:
            row = points[pressure]
            if row["failed"]:
                continue
            assert row["attempts"] > clean["attempts"], (name, pressure)
            assert 0.0 < row["recovery_overhead_seconds"], (name, pressure)
