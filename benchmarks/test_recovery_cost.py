"""Figure-6a-style recovery-cost sweep: fault pressure vs running time.

The paper's Figure 6a charts running time against the skewness knob; this
bench charts it against *fault pressure* instead — the per-attempt
crash/straggle probability — holding the workload fixed.  For each engine
and each pressure point it runs the gen-zipf workload under a seeded
:class:`~repro.mapreduce.faults.FaultPlan` (per-run seeds derived via
:func:`repro.analysis.runner.derive_fault_seed`, so points are
statistically independent) and records the fault-tolerance counters plus
the exact recovery overhead ``RunMetrics.recovery_overhead()`` — time
lost to killed attempts, crash detection, backoffs and residual
straggle, counted once per chain on its winning attempt.

A second sweep charts *node* pressure: the per-(node, round) kill
probability on a three-node cluster, run twice per point — once with
round checkpointing enabled (the run resumes on replacement nodes) and
once with it disabled (the first node loss aborts the run).  The same
seeded coins fire in both modes, so each pair isolates exactly what the
checkpoint layer buys.

Results land in ``BENCH_recovery.json`` at the repo root (the CI
perf-smoke job uploads it as an artifact; the crash sweep fills
``points``, the node sweep ``node_points``) and in
``benchmarks/results/recovery_cost.txt`` /
``benchmarks/results/node_recovery_cost.txt`` as tables.

Knobs (environment):

``REPRO_BENCH_RECOVERY_ROWS``   workload size (default 6000)
``REPRO_BENCH_RECOVERY_SEED``   base fault seed (default 1337)
"""

import json
import os
import pathlib

from repro.analysis.runner import derive_fault_seed
from repro.analysis import paper_cluster
from repro.datagen import gen_zipf
from repro.mapreduce.faults import FaultPlan

from conftest import PAPER_ALGORITHMS, write_result

ROWS = int(os.environ.get("REPRO_BENCH_RECOVERY_ROWS", "6000"))
BASE_SEED = int(os.environ.get("REPRO_BENCH_RECOVERY_SEED", "1337"))
#: Fault pressure axis: per-attempt crash AND straggle probability.
PRESSURES = [0.0, 0.05, 0.1, 0.2]
#: Node pressure axis: per-(node, round) kill probability.
NODE_PRESSURES = [0.0, 0.25, 0.5]
#: Failure domains for the node sweep (machines spread round-robin).
NUM_NODES = 3
RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
)


def _merge_result(**updates):
    """Read-modify-write ``BENCH_recovery.json`` so the crash sweep and
    the node sweep can each run alone without clobbering the other's
    section.  A stale artifact from a different workload is discarded."""
    data = {"rows": ROWS, "base_seed": BASE_SEED}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except ValueError:
            existing = {}
        if (
            existing.get("rows") == ROWS
            and existing.get("base_seed") == BASE_SEED
        ):
            data = existing
    data.update(updates)
    RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"[written to {RESULT_PATH}]")


def _run_point(name, factory, relation, pressure):
    fault_plan = None
    if pressure > 0.0:
        fault_plan = FaultPlan(
            seed=derive_fault_seed(BASE_SEED, name, pressure),
            crash_prob=pressure,
            straggle_prob=pressure,
        )
    cluster = paper_cluster(len(relation), fault_plan=fault_plan)
    metrics = factory(cluster).compute(relation).metrics
    return {
        "engine": name,
        "pressure": pressure,
        "total_seconds": round(metrics.total_seconds, 3),
        "attempts": metrics.attempts,
        "killed_tasks": metrics.killed_tasks,
        "speculative_wins": metrics.speculative_wins,
        "recovered": metrics.recovered,
        "recovery_overhead_seconds": round(metrics.recovery_overhead(), 3),
        "failed": metrics.failed,
    }


def test_recovery_cost_sweep():
    relation = gen_zipf(ROWS, seed=9)
    rows = []
    for name, factory in PAPER_ALGORITHMS.items():
        for pressure in PRESSURES:
            rows.append(_run_point(name, factory, relation, pressure))

    by_engine = {}
    for row in rows:
        by_engine.setdefault(row["engine"], {})[row["pressure"]] = row

    lines = [
        f"recovery cost vs fault pressure — gen-zipf, n={ROWS}, "
        f"seed base {BASE_SEED}",
        "",
        f"{'engine':10s}{'p':>6s}{'time(s)':>10s}{'overhead(s)':>13s}"
        f"{'slowdown':>10s}{'attempts':>10s}{'killed':>8s}{'spec':>6s}"
        f"{'recov':>7s}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, points in by_engine.items():
        baseline = points[0.0]["total_seconds"]
        for pressure in PRESSURES:
            row = points[pressure]
            slowdown = (
                row["total_seconds"] / baseline if baseline else float("nan")
            )
            row["slowdown"] = round(slowdown, 3)
            lines.append(
                f"{name:10s}{pressure:6.2f}{row['total_seconds']:10.1f}"
                f"{row['recovery_overhead_seconds']:13.1f}{slowdown:10.2f}"
                f"{row['attempts']:10d}{row['killed_tasks']:8d}"
                f"{row['speculative_wins']:6d}{row['recovered']:7d}"
            )
    write_result("recovery_cost", "\n".join(lines))
    _merge_result(points=rows)

    for name, points in by_engine.items():
        clean = points[0.0]
        assert clean["attempts"] > 0
        assert clean["recovery_overhead_seconds"] == 0.0, name
        assert clean["killed_tasks"] == 0, name
        # Recovery overhead is summed *machine* time across chains —
        # chains recover concurrently, so it may exceed the simulated
        # wall time; the invariant is that pressure produces extra
        # attempts and a strictly positive, finite overhead.
        for pressure in PRESSURES[1:]:
            row = points[pressure]
            if row["failed"]:
                continue
            assert row["attempts"] > clean["attempts"], (name, pressure)
            assert 0.0 < row["recovery_overhead_seconds"], (name, pressure)


def _run_node_point(name, factory, relation, pressure, checkpointed):
    fault_plan = None
    if pressure > 0.0:
        fault_plan = FaultPlan(
            seed=derive_fault_seed(BASE_SEED, "node:" + name, pressure),
            node_crash_prob=pressure,
        )
    cluster = paper_cluster(
        len(relation),
        fault_plan=fault_plan,
        num_nodes=NUM_NODES,
        checkpoint=checkpointed,
    )
    metrics = factory(cluster).compute(relation).metrics
    return {
        "engine": name,
        "node_pressure": pressure,
        "checkpointed": checkpointed,
        "total_seconds": round(metrics.total_seconds, 3),
        "nodes_lost": metrics.nodes_lost,
        "resumed_rounds": metrics.resumed_rounds,
        "recovery_overhead_seconds": round(metrics.recovery_overhead(), 3),
        "completed": not metrics.aborted,
        "failed": metrics.failed,
    }


def test_node_pressure_checkpoint_vs_abort():
    relation = gen_zipf(ROWS, seed=9)
    rows = []
    for name, factory in PAPER_ALGORITHMS.items():
        for pressure in NODE_PRESSURES:
            for checkpointed in (True, False):
                rows.append(_run_node_point(
                    name, factory, relation, pressure, checkpointed,
                ))

    by_key = {
        (row["engine"], row["node_pressure"], row["checkpointed"]): row
        for row in rows
    }

    lines = [
        f"node loss: checkpoint-resume vs abort-restart — gen-zipf, "
        f"n={ROWS}, {NUM_NODES} nodes, seed base {BASE_SEED}",
        "",
        f"{'engine':10s}{'p':>6s}{'mode':>8s}{'time(s)':>10s}"
        f"{'lost':>6s}{'resumed':>9s}{'overhead(s)':>13s}{'done':>6s}",
    ]
    lines.append("-" * len(lines[-1]))
    for name in PAPER_ALGORITHMS:
        for pressure in NODE_PRESSURES:
            for checkpointed in (True, False):
                row = by_key[(name, pressure, checkpointed)]
                mode = "ckpt" if checkpointed else "abort"
                done = "yes" if row["completed"] else "no"
                lines.append(
                    f"{name:10s}{pressure:6.2f}{mode:>8s}"
                    f"{row['total_seconds']:10.1f}{row['nodes_lost']:6d}"
                    f"{row['resumed_rounds']:9d}"
                    f"{row['recovery_overhead_seconds']:13.1f}{done:>6s}"
                )
    write_result("node_recovery_cost", "\n".join(lines))
    _merge_result(node_points=rows)

    any_kill_fired = False
    for name in PAPER_ALGORITHMS:
        for checkpointed in (True, False):
            calm = by_key[(name, 0.0, checkpointed)]
            assert calm["completed"], (name, checkpointed)
            assert calm["nodes_lost"] == 0, (name, checkpointed)
            assert calm["resumed_rounds"] == 0, (name, checkpointed)
        for pressure in NODE_PRESSURES[1:]:
            ckpt = by_key[(name, pressure, True)]
            abort = by_key[(name, pressure, False)]
            # Same seed, same coins: both modes see the same kill schedule
            # up to the first loss.
            if ckpt["nodes_lost"] == 0:
                continue
            any_kill_fired = True
            assert ckpt["completed"], (name, pressure)
            assert ckpt["resumed_rounds"] >= 1, (name, pressure)
            assert abort["nodes_lost"] >= 1, (name, pressure)
            assert not abort["completed"], (name, pressure)
            assert abort["resumed_rounds"] == 0, (name, pressure)
    # The sweep is vacuous unless at least one seeded kill fires.
    assert any_kill_fired
