"""Wall-clock harness: serial vs parallel backends, hot-path fast paths.

Unlike the figure benches (which report *simulated* seconds), this module
measures *host* time: how long the driver actually takes to run the
Fig-6-style workload serially versus under ``--parallelism N``, plus
micro-timings of the ``stable_hash`` / ``estimate_bytes`` fast paths
against the legacy one-liners they replaced.  Results are written to
``BENCH_perf.json`` at the repo root (the CI perf-smoke job uploads it as
an artifact).

Knobs (environment):

``REPRO_BENCH_ROWS``         workload size (default 200000)
``REPRO_BENCH_PARALLELISM``  worker processes for the parallel run
                             (default 4)
``REPRO_BENCH_SWEEP``        comma-separated worker counts for the
                             parallelism sweep (default ``1,2,4,8``;
                             empty string disables the sweep)

The speedup assertion is gated on the host's CPU count — a container
pinned to one core cannot show parallel speedup no matter how correct
the backend is, so there the harness still verifies bit-identical cubes
and records the measured numbers, it just does not demand a ratio.  The
JSON always carries ``cpu_count`` so a reader can interpret the figures.
"""

import json
import os
import pathlib
import time
import zlib

from repro.analysis import paper_cluster
from repro.core import SPCube
from repro.datagen import gen_binomial
from repro.mapreduce import MapReduceJob, pair_bytes, stable_hash
from repro.mapreduce.engine import _route_pairs
from repro.observability import LineageRecorder, Telemetry, Watchdog

from telemetry_overhead import null_guard_floor

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "200000"))
PARALLELISM = int(os.environ.get("REPRO_BENCH_PARALLELISM", "4"))
SWEEP = [
    int(token)
    for token in os.environ.get("REPRO_BENCH_SWEEP", "1,2,4,8").split(",")
    if token.strip()
]
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(cluster, relation):
    engine = SPCube(cluster)
    start = time.perf_counter()
    run = engine.compute(relation)
    elapsed = time.perf_counter() - start
    phases = [
        {
            "job": job.name,
            "executor": job.executor,
            "map_wall_seconds": round(job.map_phase_wall_seconds, 4),
            "reduce_wall_seconds": round(job.reduce_phase_wall_seconds, 4),
        }
        for job in run.metrics.jobs
    ]
    return run, elapsed, phases


def _best_of(fn, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _hot_path_micro():
    """min-of-repeats timings of the engine's hot-path rewrites.

    Two comparisons, each against the seed's exact behaviour:

    * ``stable_hash`` on a shuffle-like key stream (skewed repetition,
      string-heavy) versus the original ``crc32(repr(key))`` one-liner —
      the string memo is the difference;
    * the batched, key-cached routing loop (``_route_pairs``) versus the
      seed's per-pair partition + size computation.
    """
    # The memo targets string keys (dimension values, wordcount-style
    # jobs), which repeat heavily in a skewed shuffle.  The baseline is
    # the seed's stable_hash, verbatim, as a function like the real one.
    def legacy_stable_hash(obj):
        return zlib.crc32(repr(obj).encode())

    string_keys = ["dim-value-%d" % (i % 100) for i in range(4000)]

    def legacy_hash():
        for key in string_keys:
            legacy_stable_hash(key)

    def fast_hash():
        for key in string_keys:
            stable_hash(key)

    fast_hash()  # warm the memo: steady-state is what the engine sees
    hash_legacy = _best_of(legacy_hash)
    hash_fast = _best_of(fast_hash)

    # Routing: a skewed cube-key pair stream through the seed's per-pair
    # loop and through the batched cached loop the engine now runs.
    job = MapReduceJob.from_functions(
        "bench", lambda r: iter(()), lambda k, v: iter(())
    )
    partitioner = job.partitioner
    cube_keys = [
        (i & 0b111, ("v%d" % (i % 50), "w%d" % (i % 7)))
        for i in range(2000)
    ]
    pairs = [(key, 1) for key in string_keys + cube_keys] * 4
    num_reducers = 20

    def legacy_route():
        routed = []
        bytes_out = 0
        for key, value in pairs:
            target = partitioner(key, num_reducers)
            size = pair_bytes(key, value)
            bytes_out += size
            routed.append((target, (key, value), size))
        return routed, bytes_out

    def fast_route():
        return _route_pairs(pairs, job, num_reducers, 0)

    assert fast_route()[1] == legacy_route()[1]  # identical byte totals
    route_legacy = _best_of(legacy_route)
    route_fast = _best_of(fast_route)

    return {
        "hash_keys_per_round": len(string_keys),
        "stable_hash_legacy_seconds": round(hash_legacy, 6),
        "stable_hash_fast_seconds": round(hash_fast, 6),
        "stable_hash_speedup": round(hash_legacy / hash_fast, 2),
        "routed_pairs_per_round": len(pairs),
        "routing_legacy_seconds": round(route_legacy, 6),
        "routing_fast_seconds": round(route_fast, 6),
        "routing_speedup": round(route_legacy / route_fast, 2),
    }


def test_perf_wallclock():
    cpus = _cpu_count()
    relation = gen_binomial(ROWS, 0.4, seed=600)

    serial_run, serial_wall, serial_phases = _timed_run(
        paper_cluster(ROWS), relation
    )
    parallel_run, parallel_wall, parallel_phases = _timed_run(
        paper_cluster(ROWS, parallelism=PARALLELISM), relation
    )

    # Correctness is unconditional: the backends must agree bit-for-bit.
    assert parallel_run.cube == serial_run.cube
    assert not serial_run.metrics.failed
    assert any(
        job.executor == "parallel" for job in parallel_run.metrics.jobs
    )

    # Parallelism sweep (ROADMAP item): one point per worker count, each
    # carrying the host's cpu_count so a single-core container's flat (or
    # inverted) curve is interpretable rather than alarming.  The main
    # parallel run doubles as its own sweep point; a 1-worker pool point
    # isolates pure IPC overhead against the serial executor.
    sweep_points = []
    for workers in SWEEP:
        if workers == PARALLELISM:
            sweep_run, sweep_wall = parallel_run, parallel_wall
        else:
            sweep_run, sweep_wall, _ = _timed_run(
                paper_cluster(ROWS, parallelism=workers), relation
            )
        assert sweep_run.cube == serial_run.cube
        sweep_points.append(
            {
                "workers": workers,
                "cpu_count": cpus,
                "wall_seconds": round(sweep_wall, 3),
                "speedup_vs_serial": round(
                    serial_wall / sweep_wall if sweep_wall > 0 else 0.0, 3
                ),
            }
        )

    # Telemetry overhead twin: the serial run again, with a collector
    # attached.  Same workload, same cluster parameters — the wall ratio
    # against the telemetry-off serial run is the attached cost CI and
    # the regression gate band.  The null floor measures the detached
    # cost (one attribute check) in ns.
    telemetry = Telemetry(run_id="perf-bench")
    telemetered_cluster = paper_cluster(ROWS)
    telemetered_cluster.telemetry = telemetry
    telemetered_run, telemetered_wall, _ = _timed_run(
        telemetered_cluster, relation
    )
    assert telemetered_run.cube == serial_run.cube  # observation-only
    telemetry_report = {
        "telemetry_off_wall_seconds": round(serial_wall, 3),
        "telemetry_on_wall_seconds": round(telemetered_wall, 3),
        "overhead_ratio": round(
            telemetered_wall / serial_wall if serial_wall > 0 else 0.0, 4
        ),
        "samples_collected": len(telemetry.samples),
        "null_floor": null_guard_floor(),
    }

    # Lineage overhead twin: the serial run once more, with the shuffle
    # flight recorder and watchdog attached — the most expensive
    # observability configuration (every shuffled key is classified to
    # its cuboid).  The wall ratio is banded by the regression gate like
    # the telemetry ratio; it runs well above 1.0 by design, so only
    # drift against the committed baseline is a finding.
    lineage_cluster = paper_cluster(ROWS)
    lineage_cluster.lineage = LineageRecorder(run_id="perf-bench")
    lineage_cluster.watchdog = Watchdog()
    lineage_run, lineage_wall, _ = _timed_run(lineage_cluster, relation)
    assert lineage_run.cube == serial_run.cube  # observation-only
    lineage_report = {
        "lineage_off_wall_seconds": round(serial_wall, 3),
        "lineage_on_wall_seconds": round(lineage_wall, 3),
        "overhead_ratio": round(
            lineage_wall / serial_wall if serial_wall > 0 else 0.0, 4
        ),
        "flows_recorded": sum(
            len(job["flows"]) for job in lineage_cluster.lineage.jobs
        ),
        "alerts_emitted": len(lineage_cluster.watchdog.alerts),
    }

    hot_path = _hot_path_micro()
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    report = {
        "workload": {
            "dataset": "gen_binomial",
            "rows": ROWS,
            "skew": 0.4,
            "seed": 600,
        },
        "parallelism": PARALLELISM,
        "cpu_count": cpus,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "speedup": round(speedup, 3),
        "parallelism_sweep": sweep_points,
        "serial_phases": serial_phases,
        "parallel_phases": parallel_phases,
        "cubes_identical": True,
        "output_groups": serial_run.cube.num_groups,
        "hot_path": hot_path,
        "telemetry": telemetry_report,
        "lineage": lineage_report,
    }
    # The serving bench (benchmarks/serving_bench.py) merges its results
    # into the same artifact under "serving"; carry the section across a
    # perf re-run instead of silently dropping it.
    if RESULT_PATH.exists():
        try:
            previous = json.loads(RESULT_PATH.read_text())
        except ValueError:
            previous = {}
        if "serving" in previous:
            report["serving"] = previous["serving"]
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {RESULT_PATH}]")

    # The fast paths must beat the legacy loops they replaced.
    assert hot_path["stable_hash_speedup"] > 1.0
    assert hot_path["routing_speedup"] > 1.0

    # The collector must actually have collected, and the disabled-path
    # guard must stay in single-digit-nanoseconds territory; the wall
    # ratio itself is banded by the regression gate, not asserted here
    # (shared runners jitter more than the telemetry budget).
    assert telemetry_report["samples_collected"] > 0
    assert telemetry_report["null_floor"]["guard_ns_per_check"] < 1000

    # Same shape for the flight recorder: it must actually have recorded
    # flows; its wall ratio is banded by the regression gate.
    assert lineage_report["flows_recorded"] > 0

    # Parallel speedup needs cores to show up on; gate accordingly.
    if cpus >= 4 and PARALLELISM >= 4:
        assert speedup >= 2.0, report
    elif cpus >= 2 and PARALLELISM >= 2:
        assert speedup >= 1.2, report
