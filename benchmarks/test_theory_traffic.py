"""Section 5.2's traffic results as measurable experiments.

* Theorem 5.3 — the adversarial relation forces Theta(2^d/sqrt(d))
  emissions per tuple;
* Proposition 5.5 — skewness-monotonic data stays within O(d) emissions
  per tuple;
* Proposition 5.2 — skew handling itself ships O(d n);
* plus the paper's observation that real-life distributions sit far from
  the worst case.
"""

from repro.core import SPCube, build_exact_sketch
from repro.datagen import (
    adversarial_memory,
    adversarial_relation,
    expected_emissions_per_tuple,
    gen_zipf,
    wikipedia_traffic,
)
from repro.mapreduce import ClusterConfig
from repro.theory import (
    is_skewness_monotonic,
    monotonic_traffic_bound,
    planned_traffic,
    worst_case_traffic,
)

from conftest import paper_cluster, write_result


def test_theorem_53_worst_case(benchmark):
    """Emissions per tuple reach C(d, d/2+1) on the adversarial relation."""
    d, n = 6, 8_000
    relation = adversarial_relation(d, n, seed=1)
    m = adversarial_memory(d, n)
    sketch = build_exact_sketch(relation, num_partitions=8, memory_records=m)

    plan = benchmark.pedantic(
        lambda: planned_traffic(relation, sketch), rounds=1, iterations=1
    )
    predicted = expected_emissions_per_tuple(d)

    lines = [
        "Theorem 5.3 — adversarial relation traffic",
        f"  d = {d}, n = {n}, m = {m}",
        f"  emissions per tuple: {plan.emissions_per_tuple:.2f}",
        f"  predicted C(d, d/2+1): {predicted}",
        f"  worst-case record bound 2^d * n: {worst_case_traffic(d, n)}",
    ]
    write_result("theory_theorem53", "\n".join(lines))

    assert plan.emissions_per_tuple >= 0.9 * predicted
    assert plan.emitted_tuples <= worst_case_traffic(d, n)


def test_prop55_monotonic_traffic(benchmark):
    """Monotonic data: O(d) emissions per tuple (O(d^2 n) bytes).

    gen-binomial is skewness-monotonic: its planted rows are identical on
    every dimension, so all their projections become skewed together.
    """
    from repro.datagen import gen_binomial

    d, n = 4, 20_000
    relation = gen_binomial(n, 0.4, seed=2)
    cluster = paper_cluster(n)
    m = cluster.derive_memory(n)
    assert is_skewness_monotonic(relation, m)

    sketch = build_exact_sketch(relation, cluster.num_machines, m)
    plan = benchmark.pedantic(
        lambda: planned_traffic(relation, sketch), rounds=1, iterations=1
    )

    lines = [
        "Proposition 5.5 — monotonic relation traffic",
        f"  d = {d}, n = {n}, m = {m}",
        f"  emissions per tuple: {plan.emissions_per_tuple:.2f} (bound: d = {d})",
        f"  total emitted: {plan.emitted_tuples} "
        f"(bound: {monotonic_traffic_bound(d, n)})",
    ]
    write_result("theory_prop55", "\n".join(lines))

    assert plan.emitted_tuples <= monotonic_traffic_bound(d, n)


def test_prop56_independent_attributes(benchmark):
    """Independently distributed attributes (gen-zipf) are NOT monotonic —
    Prop 5.6's regime — yet traffic stays within O(d^2) per tuple."""
    from repro.theory import independent_traffic_bound, monotonicity_violations

    d, n = 4, 20_000
    relation = gen_zipf(n, seed=2)
    cluster = paper_cluster(n)
    m = cluster.derive_memory(n)
    violations = monotonicity_violations(relation, m)
    assert violations, "zipf data should break monotonicity"

    sketch = build_exact_sketch(relation, cluster.num_machines, m)
    plan = benchmark.pedantic(
        lambda: planned_traffic(relation, sketch), rounds=1, iterations=1
    )

    lines = [
        "Proposition 5.6 — independent attributes (gen-zipf)",
        f"  d = {d}, n = {n}, m = {m}",
        f"  monotonicity violations: {len(violations)}",
        f"  emissions per tuple: {plan.emissions_per_tuple:.2f} "
        f"(bound: d^2 = {d * d})",
    ]
    write_result("theory_prop56", "\n".join(lines))

    assert plan.emitted_tuples <= independent_traffic_bound(d, n)


def test_prop52_skew_traffic_linear(benchmark):
    """Partial aggregates of skewed groups ship O(d n) records: per mapper
    at most one state per skewed group, k mappers total."""
    n = 20_000
    relation = wikipedia_traffic(n, seed=3)
    cluster = paper_cluster(n)

    run = benchmark.pedantic(
        lambda: SPCube(cluster).compute(relation), rounds=1, iterations=1
    )
    cube_round = run.metrics.jobs[-1]
    skew_reducer_input = cube_round.reduce_tasks[0].records_in
    bound = (
        cluster.num_machines * run.metrics.extras["num_skewed_groups"]
    )

    lines = [
        "Proposition 5.2 — skew-handling traffic",
        f"  n = {n}, skewed groups = "
        f"{int(run.metrics.extras['num_skewed_groups'])}",
        f"  partial-aggregate records shipped: {skew_reducer_input}",
        f"  bound k * |skews| = {bound}",
    ]
    write_result("theory_prop52", "\n".join(lines))

    assert skew_reducer_input <= bound


def test_real_distributions_far_from_worst_case(benchmark):
    """The paper's closing observation: real data transfers modestly."""
    n = 20_000
    relation = wikipedia_traffic(n, seed=4)
    cluster = paper_cluster(n)
    m = cluster.derive_memory(n)
    sketch = build_exact_sketch(relation, cluster.num_machines, m)

    plan = benchmark.pedantic(
        lambda: planned_traffic(relation, sketch), rounds=1, iterations=1
    )
    d = relation.schema.num_dimensions

    lines = [
        "Real-world traffic vs worst case (Wikipedia stand-in)",
        f"  emissions per tuple: {plan.emissions_per_tuple:.2f}",
        f"  naive algorithm: {1 << d} per tuple",
    ]
    write_result("theory_realworld", "\n".join(lines))

    assert plan.emissions_per_tuple < (1 << d) / 2
