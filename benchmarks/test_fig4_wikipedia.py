"""Figure 4 — the Wikipedia Traffic Statistics dataset.

Paper panels (x = tuples, 50M-300M):
  4a  total running time      — SP-Cube ~20% under Hive, ~3x under Pig
  4b  average reduce time     — Pig worst; Hive close to SP-Cube
  4c  map output size         — SP-Cube 5-6x below Pig and Hive

Bench scale: 5k-40k rows of the statistics-matched generator on the
simulated 20-machine cluster (see conftest / EXPERIMENTS.md).
"""

from repro.analysis import chart_figure, format_figure, run_sweep
from repro.core import SPCube
from repro.datagen import wikipedia_traffic

from conftest import PAPER_ALGORITHMS, final_times, paper_cluster, write_result

SIZES = [5_000, 10_000, 20_000, 40_000]


def run_figure4():
    workloads = [
        (float(n), wikipedia_traffic(n, seed=400 + i))
        for i, n in enumerate(SIZES)
    ]
    cluster = paper_cluster(SIZES[-1])
    return run_sweep(
        "Figure 4 — Wikipedia traffic statistics",
        "tuples",
        workloads,
        PAPER_ALGORITHMS,
        cluster,
    )


def test_figure4(benchmark):
    sweep = run_figure4()

    # Time SP-Cube itself at the largest point.
    relation = wikipedia_traffic(SIZES[-1], seed=403)
    cluster = paper_cluster(SIZES[-1])
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(relation), rounds=1, iterations=1
    )

    text = format_figure(
        sweep,
        [
            ("total_seconds", "4a  running time", "simulated sec"),
            ("avg_reduce_seconds", "4b  average reduce time", "simulated sec"),
            ("map_output_mb", "4c  map output size", "MB"),
        ],
    )
    text += "\n\n" + chart_figure(
        sweep, [("total_seconds", "4a  running time (shape)")]
    )
    write_result("figure4_wikipedia", text)

    # --- shape assertions ---------------------------------------------------
    times = final_times(sweep)
    assert times["SP-Cube"] < times["Pig"]
    assert times["SP-Cube"] < times["Hive"]

    traffic = sweep.series("map_output_mb")
    assert traffic["SP-Cube"][-1][1] < traffic["Pig"][-1][1]
    assert traffic["SP-Cube"][-1][1] < traffic["Hive"][-1][1]
    # Paper: 5-6x less traffic at the top size; require at least 2x here.
    assert traffic["Pig"][-1][1] > 2 * traffic["SP-Cube"][-1][1]

    # Every curve grows with data size.
    spcube_times = [y for _x, y in sweep.series("total_seconds")["SP-Cube"]]
    assert spcube_times == sorted(spcube_times)
