"""Figure 8 (appendix) — gen-binomial, fixed p = 0.1, varying size.

Paper panels (x = tuples, 1M-300M, log scale):
  8a  running time     — SP-Cube ~2x under Hive, ~3x under Pig at the top
  8b  average map time — follows the same ordering
  8c  map output size  — SP-Cube lowest, Pig and Hive close together

Bench scale: 2k-40k rows at the paper's fixed skewness p = 0.1.
"""

from repro.analysis import chart_figure, format_figure, run_sweep
from repro.core import SPCube
from repro.datagen import gen_binomial

from conftest import PAPER_ALGORITHMS, final_times, paper_cluster, write_result

SIZES = [2_000, 6_000, 15_000, 40_000]
P = 0.1


def run_figure8():
    workloads = [
        (float(n), gen_binomial(n, P, seed=800 + i))
        for i, n in enumerate(SIZES)
    ]
    cluster = paper_cluster(SIZES[-1])
    return run_sweep(
        "Figure 8 — gen-binomial, varying data size (p = 0.1)",
        "tuples",
        workloads,
        PAPER_ALGORITHMS,
        cluster,
    )


def test_figure8(benchmark):
    sweep = run_figure8()

    relation = gen_binomial(SIZES[-1], P, seed=803)
    cluster = paper_cluster(SIZES[-1])
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(relation), rounds=1, iterations=1
    )

    text = format_figure(
        sweep,
        [
            ("total_seconds", "8a  running time", "simulated sec"),
            ("avg_map_seconds", "8b  average map time", "simulated sec"),
            ("map_output_mb", "8c  map output size", "MB"),
        ],
    )
    text += "\n\n" + chart_figure(
        sweep, [("total_seconds", "8a  running time (shape)")]
    )
    write_result("figure8_binomial_size", text)

    # --- shape assertions ---------------------------------------------------
    times = final_times(sweep)
    assert times["SP-Cube"] < times["Pig"]
    assert times["SP-Cube"] < times["Hive"]

    # All curves grow with n.
    for algo in PAPER_ALGORITHMS:
        curve = [y for _x, y in sweep.series("total_seconds")[algo]]
        assert curve[-1] > curve[0]

    # 8c: SP-Cube ships the least data at every size.
    traffic = sweep.series("map_output_mb")
    for index in range(len(SIZES)):
        assert traffic["SP-Cube"][index][1] <= traffic["Pig"][index][1]
        assert traffic["SP-Cube"][index][1] <= traffic["Hive"][index][1]
