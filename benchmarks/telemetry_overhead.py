"""Telemetry overhead twin: the same workload with and without a collector.

The telemetry layer's performance contract has two halves:

* **attached cost** — a run with a live :class:`Telemetry` collector may
  not be materially slower than the identical run without one.  The twin
  here runs the same relation on two identically-configured clusters,
  telemetry off then on, and reports the wall-clock ratio.  CI's
  ``telemetry-smoke`` job asserts the ratio stays under its budget and
  the regression gate bands it against the committed baseline.
* **detached cost** — with no collector attached, the instrumentation
  points must cost one attribute check and nothing else.  The micro
  floor times the engine-style guard (``telemetry.enabled``) against the
  null object and reports nanoseconds per check, so a refactor that
  accidentally makes the disabled path allocate shows up as a number,
  not a hunch.

The lineage layer (PR 9's flight recorder + watchdog) carries the same
contract and gets the same twin: :func:`measure_lineage_overhead` runs
the workload bare and then with a :class:`LineageRecorder` and
:class:`Watchdog` attached — the most expensive observability
configuration, since every shuffled key is classified to its cuboid.

Importable (``measure_overhead`` / ``measure_lineage_overhead`` /
``null_guard_floor``) so both the perf bench and CI reuse one
measurement.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.analysis import paper_cluster
from repro.core import SPCube
from repro.datagen import gen_binomial
from repro.observability import (
    NULL_TELEMETRY,
    LineageRecorder,
    Telemetry,
    Watchdog,
)


def _timed_compute(cluster, relation) -> float:
    engine = SPCube(cluster)
    start = time.perf_counter()
    engine.compute(relation)
    return time.perf_counter() - start


def measure_overhead(
    rows: int = 20_000, skew: float = 0.4, seed: int = 600,
    repeats: int = 1,
) -> Dict:
    """Wall-clock twin: telemetry off vs on, best-of-``repeats`` each.

    Returns the two times, the on/off ratio, and the sample count the
    enabled collector gathered (so a ratio measured while collecting
    nothing is recognizable as meaningless).
    """
    relation = gen_binomial(rows, skew, seed=seed)
    off_times, on_times, samples = [], [], 0
    for _ in range(repeats):
        off_times.append(_timed_compute(paper_cluster(rows), relation))
        telemetry = Telemetry(run_id="overhead-twin")
        on_cluster = paper_cluster(rows)
        on_cluster.telemetry = telemetry
        on_times.append(_timed_compute(on_cluster, relation))
        samples = len(telemetry.samples)
    off_wall, on_wall = min(off_times), min(on_times)
    return {
        "rows": rows,
        "telemetry_off_wall_seconds": round(off_wall, 4),
        "telemetry_on_wall_seconds": round(on_wall, 4),
        "overhead_ratio": round(on_wall / off_wall if off_wall else 0.0, 4),
        "samples_collected": samples,
    }


def measure_lineage_overhead(
    rows: int = 20_000, skew: float = 0.4, seed: int = 600,
    repeats: int = 1,
) -> Dict:
    """Wall-clock twin: flight recorder + watchdog off vs on.

    Returns the two times, the on/off ratio, and the flow/alert counts
    the enabled recorder gathered (a ratio measured while recording
    nothing is recognizable as meaningless).
    """
    relation = gen_binomial(rows, skew, seed=seed)
    off_times, on_times = [], []
    flows = alerts = 0
    for _ in range(repeats):
        off_times.append(_timed_compute(paper_cluster(rows), relation))
        on_cluster = paper_cluster(rows)
        on_cluster.lineage = LineageRecorder(run_id="overhead-twin")
        on_cluster.watchdog = Watchdog()
        on_times.append(_timed_compute(on_cluster, relation))
        flows = sum(len(job["flows"]) for job in on_cluster.lineage.jobs)
        alerts = len(on_cluster.watchdog.alerts)
    off_wall, on_wall = min(off_times), min(on_times)
    return {
        "rows": rows,
        "lineage_off_wall_seconds": round(off_wall, 4),
        "lineage_on_wall_seconds": round(on_wall, 4),
        "overhead_ratio": round(on_wall / off_wall if off_wall else 0.0, 4),
        "flows_recorded": flows,
        "alerts_emitted": alerts,
    }


def null_guard_floor(iterations: int = 200_000) -> Dict:
    """Nanoseconds per disabled-path check, vs an empty loop baseline.

    The engine's instrumentation points reduce to ``if telemetry.enabled:``
    when no collector is attached; this times exactly that guard on the
    shared null object and subtracts the loop's own cost.
    """
    telemetry = NULL_TELEMETRY
    counted = 0

    start = time.perf_counter()
    for _ in range(iterations):
        if telemetry.enabled:
            counted += 1
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - start

    per_check_ns = max(0.0, (guarded - empty) / iterations * 1e9)
    return {
        "iterations": iterations,
        "guard_ns_per_check": round(per_check_ns, 2),
        "samples_taken": counted,  # always 0: the null never enables
    }


if __name__ == "__main__":
    import json

    report = {
        "twin": measure_overhead(),
        "lineage_twin": measure_lineage_overhead(),
        "null_floor": null_guard_floor(),
    }
    print(json.dumps(report, indent=2))
