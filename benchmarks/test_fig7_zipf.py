"""Figure 7 — gen-zipf, Zipfian attribute distribution, varying size.

Paper panels (x = tuples, 1M-150M, log scale):
  7a  running time        — SP-Cube 100% under Hive, 150% under Pig
  7b  average reduce time — Hive best; SP-Cube and Pig similar
  7c  map output size     — SP-Cube 4x under Pig, 6x under Hive

Bench scale: 2k-40k rows of the paper's generation process (two
Zipf(1000, 1.1) dimensions, two uniform(1000) dimensions).
"""

from repro.analysis import chart_figure, format_figure, run_sweep
from repro.core import SPCube
from repro.datagen import gen_zipf

from conftest import PAPER_ALGORITHMS, final_times, paper_cluster, write_result

SIZES = [2_000, 6_000, 15_000, 40_000]


def run_figure7():
    workloads = [
        (float(n), gen_zipf(n, seed=700 + i)) for i, n in enumerate(SIZES)
    ]
    cluster = paper_cluster(SIZES[-1])
    return run_sweep(
        "Figure 7 — gen-zipf (Zipfian distribution)",
        "tuples",
        workloads,
        PAPER_ALGORITHMS,
        cluster,
    )


def test_figure7(benchmark):
    sweep = run_figure7()

    relation = gen_zipf(SIZES[-1], seed=703)
    cluster = paper_cluster(SIZES[-1])
    benchmark.pedantic(
        lambda: SPCube(cluster).compute(relation), rounds=1, iterations=1
    )

    text = format_figure(
        sweep,
        [
            ("total_seconds", "7a  running time", "simulated sec"),
            ("avg_reduce_seconds", "7b  average reduce time", "simulated sec"),
            ("map_output_mb", "7c  map output size", "MB"),
        ],
    )
    text += "\n\n" + chart_figure(
        sweep, [("total_seconds", "7a  running time (shape)")]
    )
    write_result("figure7_zipf", text)

    # --- shape assertions ---------------------------------------------------
    times = final_times(sweep)
    assert times["SP-Cube"] < times["Pig"]
    assert times["SP-Cube"] < times["Hive"]

    # 7c: SP-Cube's map output is a multiple below both competitors.
    traffic = sweep.series("map_output_mb")
    assert traffic["Pig"][-1][1] > 1.5 * traffic["SP-Cube"][-1][1]
    assert traffic["Hive"][-1][1] > 1.5 * traffic["SP-Cube"][-1][1]

    # Nobody fails on the Zipfian data.
    for algo in PAPER_ALGORITHMS:
        assert all(y == 0 for _x, y in sweep.series("failed")[algo])
