"""Kernel micro-benchmarks: the round-2 hot paths against their oracles.

Three one-process comparisons, each a fast path measured against the
legacy implementation it replaced (both still in the tree):

* **BUC kernel** — ``buc_cube(kernel="array")`` (iterative, sort +
  run-length) versus ``kernel="legacy"`` (recursive dict-of-lists) on a
  moderate binomial workload;
* **lattice-walk memo, hit path** — the round-2 ``_CubeMapper`` on
  duplicate-heavy input (every record after the first three is a memo
  hit) versus the same mapper with its caches defeated per record;
* **BUC singleton/grouping fast paths** — the array kernel again, on a
  high-skew workload whose tree mixes long low-cardinality runs (where
  sort + ``groupby`` shines) with singleton chains (where the
  subset-enumeration path skips partitioning entirely).

Because both sides of every ratio run in the same process on the same
data, the speedups are self-normalizing and transfer across machines —
which is what lets ``--assert-floors`` enforce *conservative* floors in
CI without flaking on slow shared runners.  The floors are deliberately
far below the measured speedups (see EXPERIMENTS.md): they exist to catch
someone accidentally routing the hot path back through the legacy code,
not to benchmark the runner.

Usage::

    python benchmarks/micro_kernels.py [--rows N] [--repeats K]
        [--json PATH] [--profile PATH] [--assert-floors]

``--profile`` additionally runs the smoke workload (SP-Cube end to end)
under cProfile and writes the binary stats file — the CI perf-smoke job
uploads it so a regression can be diagnosed from the artifact alone.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import time
from typing import Callable, Dict, List, Optional

REPO_SRC = None
try:
    from repro.core import SPCube  # noqa: F401  (import probe)
except ImportError:  # pragma: no cover - direct CLI use without PYTHONPATH
    import pathlib

    REPO_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    sys.path.insert(0, REPO_SRC)

from repro.aggregates.functions import get_aggregate
from repro.analysis import paper_cluster
from repro.core import SPCube
from repro.core.sketch import build_exact_sketch
from repro.core.spcube import _CubeMapper, _PlanFunction
from repro.cubing.buc import buc_cube, iceberg_groups
from repro.datagen import gen_binomial
from repro.mapreduce import TaskContext
from repro.relation.relation import Relation
from repro.relation.schema import Schema

#: Conservative floors for --assert-floors; measured values sit well
#: above them (see EXPERIMENTS.md), so tripping one means the fast path
#: is no longer being exercised, not that the runner is slow.  The
#: sparse-cube floor is a *parity* guard: on near-unique data the array
#: kernel's win is modest (~1.07x), so the floor only catches it
#: becoming genuinely slower than the legacy recursion.
FLOORS = {
    "buc_array_speedup": 0.9,
    "lattice_memo_speedup": 1.5,
    "buc_skewed_speedup": 1.1,
}


def _ab_best(
    fast: Callable[[], object], slow: Callable[[], object], repeats: int
) -> List[float]:
    """min-of-repeats for two contenders, warmed and interleaved.

    Timing each side in its own block hands the first block a cold
    allocator and the second a warm one — enough bias to flip a ~1.1x
    comparison.  One untimed warm-up of each plus A/B interleaving keeps
    the draw fair.
    """
    fast()
    slow()
    times: List[List[float]] = [[], []]
    for _ in range(repeats):
        for index, fn in enumerate((fast, slow)):
            start = time.perf_counter()
            fn()
            times[index].append(time.perf_counter() - start)
    return [min(times[0]), min(times[1])]


def _duplicate_heavy_relation(num_rows: int) -> Relation:
    schema = Schema(["a", "b", "c"], measure="m")
    distinct = [("u", "v", "w"), ("u", "z", "w"), ("q", "v", "r")]
    rows = [
        distinct[i % len(distinct)] + (i % 7,) for i in range(num_rows)
    ]
    return Relation(schema, rows, validate=False, name="duplicate-heavy")


def bench_buc_kernels(rows: int, repeats: int) -> Dict[str, float]:
    relation = gen_binomial(rows, 0.4, seed=600)
    aggregate = get_aggregate("count")
    array, legacy = _ab_best(
        lambda: buc_cube(relation, aggregate, kernel="array"),
        lambda: buc_cube(relation, aggregate, kernel="legacy"),
        repeats,
    )
    assert buc_cube(relation, aggregate, kernel="array") == buc_cube(
        relation, aggregate, kernel="legacy"
    )
    return {
        "buc_rows": rows,
        "buc_array_seconds": round(array, 6),
        "buc_legacy_seconds": round(legacy, 6),
        "buc_array_speedup": round(legacy / array, 2),
    }


def bench_lattice_memo(rows: int, repeats: int) -> Dict[str, float]:
    relation = _duplicate_heavy_relation(rows)
    sketch = build_exact_sketch(relation, 4, 32)
    d = relation.schema.num_dimensions
    aggregate = get_aggregate("count")

    def run(defeat_memo: bool) -> List:
        plan = _PlanFunction(sketch, True, True)
        mapper = _CubeMapper(d, aggregate, sketch, plan)
        mapper.setup(TaskContext(0, 4, 32))
        if defeat_memo:
            emitted: List = []
            for record in relation.rows:
                mapper._row_plans.clear()
                plan._memo.clear()
                emitted.extend(mapper.map_chunk([record])[1])
        else:
            emitted = mapper.map_chunk(relation.rows)[1]
        emitted.extend(mapper.close())
        return emitted

    assert run(False) == run(True)  # bit-identical stream either way
    memoized, replayed = _ab_best(
        lambda: run(False), lambda: run(True), repeats
    )
    return {
        "lattice_rows": rows,
        "lattice_memo_seconds": round(memoized, 6),
        "lattice_miss_path_seconds": round(replayed, 6),
        "lattice_memo_speedup": round(replayed / memoized, 2),
    }


def bench_buc_skewed(rows: int, repeats: int) -> Dict[str, float]:
    relation = gen_binomial(rows, 0.9, seed=601)
    aggregate = get_aggregate("count")
    array, legacy = _ab_best(
        lambda: buc_cube(relation, aggregate, kernel="array"),
        lambda: buc_cube(relation, aggregate, kernel="legacy"),
        repeats,
    )
    assert buc_cube(relation, aggregate, kernel="array") == buc_cube(
        relation, aggregate, kernel="legacy"
    )
    # The sketch builder's iceberg wrapper rides the same kernel; pin
    # its identity here too so the micro-bench doubles as a smoke check.
    d = relation.schema.num_dimensions
    assert iceberg_groups(relation.rows, d, 2, kernel="array") == (
        iceberg_groups(relation.rows, d, 2, kernel="legacy")
    )
    return {
        "buc_skewed_rows": rows,
        "buc_skewed_array_seconds": round(array, 6),
        "buc_skewed_legacy_seconds": round(legacy, 6),
        "buc_skewed_speedup": round(legacy / array, 2),
    }


def profile_smoke_workload(path: str, rows: int) -> None:
    """cProfile the end-to-end smoke workload into a binary stats file."""
    relation = gen_binomial(rows, 0.4, seed=600)
    engine = SPCube(paper_cluster(rows))
    profiler = cProfile.Profile()
    profiler.enable()
    engine.compute(relation)
    profiler.disable()
    profiler.dump_stats(path)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="micro-benchmark the round-2 kernels against their "
        "legacy oracles (see module docstring)"
    )
    parser.add_argument("--rows", type=int, default=20_000,
                        help="workload size per micro-bench")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing")
    parser.add_argument("--json", help="write results to this path")
    parser.add_argument(
        "--profile",
        help="also cProfile the end-to-end smoke workload to this path",
    )
    parser.add_argument(
        "--assert-floors", action="store_true",
        help="exit 1 when any kernel speedup is below its floor",
    )
    args = parser.parse_args(argv)

    results: Dict[str, object] = {}
    results.update(bench_buc_kernels(args.rows, args.repeats))
    results.update(bench_lattice_memo(args.rows, args.repeats))
    results.update(bench_buc_skewed(args.rows, args.repeats))
    results["floors"] = FLOORS

    if args.profile:
        profile_smoke_workload(args.profile, args.rows)
        results["profile"] = args.profile

    print(json.dumps(results, indent=2))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")

    if args.assert_floors:
        failures = [
            f"{metric}: {results[metric]}x is below the {floor}x floor"
            for metric, floor in FLOORS.items()
            if results[metric] < floor
        ]
        if failures:
            for failure in failures:
                print(f"FLOOR VIOLATION - {failure}")
            return 1
        print("all kernel speedups above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
