"""Closed-loop serving benchmark: seeded clients against a cube store.

The pipeline benches measure how fast a cube is *built*; this one
measures how fast it is *served*.  It builds an SP-Cube over the
binomial workload, writes it as a :class:`~repro.serving.store.CubeStore`,
starts a :class:`~repro.serving.server.CubeServer`, and drives it with
``--clients`` closed-loop threads replaying a seeded mix of
rollup/slice/top/pivot/drilldown/total queries drawn from a fixed pool
(so the query-result cache sees realistic repetition).  It records

* throughput (answered queries per second of wall time),
* p50/p99 end-to-end latency,
* the cache hit rate and the full ``serving.*`` counter set,
* shed / deadline-exceeded / error counts,
* store size on disk vs the in-memory cube estimate,

into ``BENCH_perf.json`` under the ``serving`` key — merged into the
existing artifact, never overwriting the build-side sections.  The
regression gate bands p99 and throughput with the standard +15%
tolerance and treats any shed or errored request at smoke load as a
hard violation.

Run directly (CI smoke config)::

    python benchmarks/serving_bench.py --rows 20000 --requests 400 \
        --clients 4 --check

``--check`` exits nonzero unless the run saw non-zero cache hits and
zero shed/errored requests — the serving-smoke CI contract.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.aggregates import get_aggregate  # noqa: E402
from repro.analysis import paper_cluster  # noqa: E402
from repro.core import SPCube  # noqa: E402
from repro.datagen import gen_binomial  # noqa: E402
from repro.query import CubeView  # noqa: E402
from repro.serving import (  # noqa: E402
    CubeServer,
    CubeStore,
    StoredCubeView,
    estimate_cube_bytes,
)

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Distinct specs in the query pool; small enough that a few hundred
#: requests revisit each spec several times (exercising the result
#: cache), large enough that the pool spans every op and several
#: cuboids.
POOL_SIZE = 24


def build_query_pool(cube, seed: int) -> list:
    """A seeded, deterministic pool of wire-format query specs.

    Dimension values for slice/drilldown come from the cube itself so
    every spec is answerable; the pool mixes all wire ops.
    """
    rng = random.Random(seed)
    view = CubeView(cube)
    dims = list(cube.schema.dimensions)
    pool = [{"op": "total"}, {"op": "cuboid_sizes"}]
    while len(pool) < POOL_SIZE:
        op = rng.choice(["rollup", "rollup", "slice", "top", "pivot",
                         "drilldown"])
        if op == "rollup":
            chosen = rng.sample(dims, rng.randint(1, min(2, len(dims))))
            pool.append({"op": "rollup", "dimensions": chosen})
        elif op == "slice":
            dim = rng.choice(dims)
            values = sorted(view.rollup(dim))
            pool.append(
                {"op": "slice",
                 "fixed": {dim: rng.choice(values)[0]}}
            )
        elif op == "top":
            dim = rng.choice(dims)
            groups = len(view.rollup(dim))
            pool.append(
                {"op": "top", "dimensions": [dim],
                 "k": rng.randint(1, max(1, min(5, groups)))}
            )
        elif op == "pivot":
            row, column = rng.sample(dims, 2)
            pool.append({"op": "pivot", "row": row, "column": column})
        else:  # drilldown
            fixed, into = rng.sample(dims, 2)
            values = sorted(view.rollup(fixed))
            pool.append(
                {"op": "drilldown",
                 "group": {fixed: rng.choice(values)[0]},
                 "into": into}
            )
    return pool


def _percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _post_query(port: int, spec: dict, timeout: float):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/query",
        data=json.dumps(spec).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            json.loads(response.read())
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code
    except (urllib.error.URLError, OSError):
        return -1


def run_serving_bench(
    rows: int = 20_000,
    requests: int = 400,
    clients: int = 4,
    seed: int = 600,
    workers: int = 4,
    queue_depth: int = 16,
    deadline: float = 10.0,
    skew: float = 0.4,
) -> dict:
    """Build, store, serve, and hammer a cube; returns the report dict."""
    relation = gen_binomial(rows, skew, seed=seed)
    cluster = paper_cluster(rows)
    run = SPCube(cluster, get_aggregate("count")).compute(relation)
    cube = run.cube
    in_memory_bytes = estimate_cube_bytes(cube)
    pool = build_query_pool(cube, seed)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "bench.store")
        store_bytes = CubeStore.write(cube, store_path, aggregate="count")
        view = StoredCubeView.open(store_path)
        server = CubeServer(
            view,
            workers=workers,
            queue_depth=queue_depth,
            deadline=deadline,
        ).start()
        try:
            # Each closed-loop client walks the pool from a seeded
            # offset: one request in flight per client, next one fires
            # when the answer lands.
            per_client = requests // clients
            latencies: list = []
            statuses: list = []
            lock = threading.Lock()

            def client(client_id: int) -> None:
                rng = random.Random(seed * 1000 + client_id)
                own_latencies, own_statuses = [], []
                for _ in range(per_client):
                    spec = pool[rng.randrange(len(pool))]
                    started = time.perf_counter()
                    status = _post_query(server.port, spec, deadline + 5)
                    own_latencies.append(time.perf_counter() - started)
                    own_statuses.append(status)
                with lock:
                    latencies.extend(own_latencies)
                    statuses.extend(own_statuses)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(clients)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
            counters = view.stats()
        finally:
            server.close()
            view.close()

    answered = sum(1 for status in statuses if status == 200)
    hits = counters["serving.cache_hit"]
    misses = counters["serving.cache_miss"]
    lookups = hits + misses
    return {
        "workload": {
            "dataset": "gen_binomial",
            "rows": rows,
            "skew": skew,
            "seed": seed,
            "requests": len(statuses),
            "clients": clients,
            "query_pool": len(pool),
        },
        "server": {
            "workers": workers,
            "queue_depth": queue_depth,
            "deadline_seconds": deadline,
        },
        "throughput_qps": round(len(statuses) / wall if wall else 0.0, 1),
        "p50_latency_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_latency_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "answered": answered,
        "shed": counters["serving.shed"],
        "deadline_exceeded": counters["serving.deadline_exceeded"],
        "errors": len(statuses) - answered,
        "cache_hit_rate": round(hits / lookups if lookups else 0.0, 4),
        "counters": counters,
        "store_bytes": store_bytes,
        "in_memory_bytes": in_memory_bytes,
        "store_ratio": round(
            store_bytes / in_memory_bytes if in_memory_bytes else 0.0, 4
        ),
    }


def update_bench_perf(report: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Merge the serving report into BENCH_perf.json under ``serving``."""
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing["serving"] = report
    path.write_text(json.dumps(existing, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop benchmark of the cube serving layer"
    )
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=600)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=10.0)
    parser.add_argument(
        "--no-record", action="store_true",
        help="print the report without touching BENCH_perf.json",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless cache hits > 0 and shed == errors == 0 "
             "(the serving-smoke CI contract)",
    )
    args = parser.parse_args(argv)

    report = run_serving_bench(
        rows=args.rows,
        requests=args.requests,
        clients=args.clients,
        seed=args.seed,
        workers=args.workers,
        queue_depth=args.queue_depth,
        deadline=args.deadline,
    )
    print(json.dumps(report, indent=2))
    if not args.no_record:
        update_bench_perf(report)
        print(f"[serving section written to {RESULT_PATH}]")

    if args.check:
        problems = []
        if report["counters"]["serving.cache_hit"] <= 0:
            problems.append("no query-result cache hits")
        if report["shed"] > 0:
            problems.append(f"{report['shed']} requests shed at smoke load")
        if report["errors"] > 0:
            problems.append(f"{report['errors']} requests failed")
        if problems:
            for problem in problems:
                print(f"serving-smoke violation: {problem}", file=sys.stderr)
            return 1
        print(
            f"serving-smoke ok: {report['answered']} answered, "
            f"hit rate {report['cache_hit_rate']}, 0 shed",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
