"""Figure 5 — the USAGOV click-log dataset.

Paper panels (x = tuples, 0.1M-30M, log scale):
  5a  total running time — SP-Cube ~30% under Pig, ~3x under Hive
  5b  average map time   — Hive far worst, Pig ~30% over SP-Cube
  5c  SP-Sketch size     — tens of KB, ~6 orders below the input

Bench scale: 1k-30k rows of the 15-dimension generator, cube over the
4 dimensions the paper uses.
"""

from repro.analysis import chart_figure, format_figure, run_sweep
from repro.core import SPCube
from repro.datagen import (
    USAGOV_CUBE_DIMENSIONS,
    project_to_dimensions,
    usagov_clicks,
)
from repro.mapreduce import relation_bytes

from conftest import PAPER_ALGORITHMS, final_times, paper_cluster, write_result

SIZES = [1_000, 3_000, 10_000, 30_000]


def usagov_cube_input(n, seed):
    return project_to_dimensions(
        usagov_clicks(n, seed=seed), USAGOV_CUBE_DIMENSIONS
    )


def run_figure5():
    workloads = [
        (float(n), usagov_cube_input(n, seed=500 + i))
        for i, n in enumerate(SIZES)
    ]
    cluster = paper_cluster(SIZES[-1])
    return run_sweep(
        "Figure 5 — USAGOV click logs (cube on 4 of 15 dimensions)",
        "tuples",
        workloads,
        PAPER_ALGORITHMS,
        cluster,
    )


def test_figure5(benchmark):
    sweep = run_figure5()

    relation = usagov_cube_input(SIZES[-1], seed=503)
    cluster = paper_cluster(SIZES[-1])
    run_holder = {}

    def run_spcube():
        run_holder["run"] = SPCube(cluster).compute(relation)

    benchmark.pedantic(run_spcube, rounds=1, iterations=1)

    text = format_figure(
        sweep,
        [
            ("total_seconds", "5a  running time", "simulated sec"),
            ("avg_map_seconds", "5b  average map time", "simulated sec"),
            ("sketch_kb", "5c  SP-Sketch size", "KB"),
        ],
    )
    text += "\n\n" + chart_figure(
        sweep, [("total_seconds", "5a  running time (shape)")]
    )
    write_result("figure5_usagov", text)

    # --- shape assertions ---------------------------------------------------
    times = final_times(sweep)
    assert times["SP-Cube"] < times["Pig"]
    assert times["SP-Cube"] < times["Hive"]

    # 5b: Hive's map time is the worst at the largest size.
    map_times = sweep.series("avg_map_seconds")
    assert map_times["Hive"][-1][1] > map_times["SP-Cube"][-1][1]

    # 5c: sketch grows (mildly) with n, and stays tiny vs the input.
    sketch = sweep.series("sketch_kb")["SP-Cube"]
    assert sketch[-1][1] >= sketch[0][1]
    _count, input_bytes = relation_bytes(relation.rows)
    sketch_bytes = run_holder["run"].metrics.extras["sketch_bytes"]
    assert sketch_bytes < input_bytes / 20
