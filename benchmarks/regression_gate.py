"""Bench regression gate: diff fresh bench JSON against committed baselines.

The perf bench (``test_perf_wallclock.py``) and the recovery bench
(``test_recovery_cost.py``) each write a JSON artifact (``BENCH_perf.json``
/ ``BENCH_recovery.json``).  CI runs the benches on every push; this gate
compares the fresh artifacts against the committed baselines and fails the
build when a change regresses past the tolerance bands.

What is compared, and why the bands are where they are:

* **Correctness flags — zero tolerance.**  ``cubes_identical`` must stay
  true and a recovery point that completed at the baseline must not start
  failing: these are bit-level invariants, not measurements, so any drift
  is a bug.  The node sweep (``node_points``) gets the same treatment —
  a checkpointed run that survived a node loss must keep surviving, and
  on an identical workload the seeded loss/resume counts must not move.
  Artifacts written before the node sweep existed simply lack the key;
  the gate compares node points only when *both* artifacts carry them,
  so old baselines never trip on new fields.
* **Ratio metrics — wide bands.**  Hot-path speedups (fast path vs legacy
  within one process) and recovery slowdowns (faulted vs healthy run of
  the same engine) are self-normalizing, so they transfer across machines
  — but both numerators and denominators are wall-clock samples on shared
  CI runners, so they still jitter.  Default bands: a hot-path speedup may
  drop to 50% of the committed value before the gate trips
  (``--hot-path-tolerance 0.5``), and a recovery slowdown may exceed the
  committed one by 50% plus an absolute slack of 0.5
  (``--slowdown-tolerance 0.5``).  The telemetry overhead ratio
  (telemetry-on wall over telemetry-off wall, same serial workload) gets
  a tighter band — 15% plus 0.05 slack — because both halves of the twin
  run back-to-back in one process, so runner jitter largely cancels.
  The lineage overhead ratio (flight recorder + watchdog on vs off, same
  twin construction) gets the identical 15% + 0.05 band: the ratio runs
  well above 1.0 by design (every shuffled key is classified to its
  cuboid), so only drift against the committed value is a finding.
  Baselines that predate either twin lack the key and are skipped
  (a fresh-only ratio prints as an informational note).
* **Serving bench — +15% band, same setup only.**  The closed-loop
  serving bench (``serving_bench.py``) records p99 latency, throughput
  and cache hit rate under ``serving``; when both artifacts carry the
  section *and* describe the same workload + server configuration, p99
  may exceed the baseline by 15% plus an absolute 150 ms slack,
  throughput may fall to 85%, and the hit rate may drop by at most
  0.15 absolute.  Failed requests in the fresh bench trip the gate
  unconditionally, and shedding at a load the baseline served cleanly
  is a violation — admission control getting tighter is a regression,
  not jitter.
* **Absolute wall-clock — only on identical workloads.**  Seconds are
  meaningless across different row counts, so serial wall time and output
  group counts are checked only when the fresh artifact describes the
  *same* workload (rows/dataset/skew/seed and parallelism for perf; rows
  and base seed for recovery).  CI runs smaller workloads than the
  committed baselines, so these checks are usually skipped there and bite
  when someone regenerates a baseline locally.

Usage (any pair may be omitted)::

    python benchmarks/regression_gate.py \
        --perf-baseline BENCH_perf.json --perf-fresh fresh/BENCH_perf.json \
        --recovery-baseline BENCH_recovery.json \
        --recovery-fresh fresh/BENCH_recovery.json

Exit status 0 when every comparison is inside its band, 1 otherwise (the
violations are listed on stdout).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: See the module docstring for the reasoning behind each default band.
DEFAULT_WALL_TOLERANCE = 0.35
DEFAULT_HOT_PATH_TOLERANCE = 0.5
DEFAULT_SLOWDOWN_TOLERANCE = 0.5
DEFAULT_SLOWDOWN_SLACK = 0.5
DEFAULT_TELEMETRY_TOLERANCE = 0.15
DEFAULT_TELEMETRY_SLACK = 0.05
DEFAULT_SERVING_TOLERANCE = 0.15
#: Absolute p99 slack in milliseconds: tail latencies at smoke load sit
#: in the low hundreds of ms, where scheduler hiccups on a shared runner
#: move the p99 additively, not proportionally.
DEFAULT_SERVING_SLACK_MS = 150.0


@dataclass(frozen=True)
class Tolerances:
    """Tolerance bands for every gated comparison."""

    #: Fresh serial wall seconds may exceed baseline by this fraction
    #: (same-workload runs only).
    wall: float = DEFAULT_WALL_TOLERANCE
    #: Fresh hot-path speedup may drop to ``(1 - hot_path)`` of baseline.
    hot_path: float = DEFAULT_HOT_PATH_TOLERANCE
    #: Fresh recovery slowdown may exceed baseline by this fraction...
    slowdown: float = DEFAULT_SLOWDOWN_TOLERANCE
    #: ...plus this absolute slack (ratios near 1.0 jitter additively).
    slowdown_slack: float = DEFAULT_SLOWDOWN_SLACK
    #: Fresh telemetry on/off wall ratio may exceed baseline by this
    #: fraction plus ``telemetry_slack`` (same additive-jitter argument
    #: as slowdowns: the ratio hovers near 1.0).
    telemetry: float = DEFAULT_TELEMETRY_TOLERANCE
    telemetry_slack: float = DEFAULT_TELEMETRY_SLACK
    #: Serving bench (same workload + server config only): fresh p99 may
    #: exceed baseline by this fraction plus ``serving_slack_ms``
    #: milliseconds, throughput may fall to ``(1 - serving)`` of
    #: baseline, and the cache hit rate may drop by at most ``serving``
    #: absolute.
    serving: float = DEFAULT_SERVING_TOLERANCE
    serving_slack_ms: float = DEFAULT_SERVING_SLACK_MS


def _same_perf_workload(baseline: Dict, fresh: Dict) -> bool:
    return (
        baseline.get("workload") == fresh.get("workload")
        and baseline.get("parallelism") == fresh.get("parallelism")
    )


def compare_perf(
    baseline: Dict,
    fresh: Dict,
    tolerances: Tolerances = Tolerances(),
    notes: Optional[List[str]] = None,
) -> List[str]:
    """Violations of the perf bands (empty list = gate passes).

    ``notes``, when provided, collects informational lines that are
    printed but never fail the gate — currently the parallel-vs-serial
    ``speedup`` on single-core artifacts, where a process pool cannot
    beat the serial executor no matter how good the IPC path is.
    """
    violations: List[str] = []

    if baseline.get("cubes_identical") and not fresh.get("cubes_identical"):
        violations.append(
            "perf: serial and parallel cubes are no longer identical"
        )

    base_hot = baseline.get("hot_path", {})
    fresh_hot = fresh.get("hot_path", {})
    for metric in ("stable_hash_speedup", "routing_speedup"):
        base_value = base_hot.get(metric)
        fresh_value = fresh_hot.get(metric)
        if base_value is None or fresh_value is None:
            continue
        floor = base_value * (1.0 - tolerances.hot_path)
        if fresh_value < floor:
            violations.append(
                f"perf: hot-path {metric} fell to {fresh_value:.2f}x "
                f"(baseline {base_value:.2f}x, floor {floor:.2f}x)"
            )

    if _same_perf_workload(baseline, fresh):
        base_wall = baseline.get("serial_wall_seconds")
        fresh_wall = fresh.get("serial_wall_seconds")
        if base_wall and fresh_wall:
            ceiling = base_wall * (1.0 + tolerances.wall)
            if fresh_wall > ceiling:
                violations.append(
                    f"perf: serial wall clock {fresh_wall:.1f}s exceeds "
                    f"{ceiling:.1f}s (baseline {base_wall:.1f}s "
                    f"+{tolerances.wall:.0%})"
                )
        if (
            baseline.get("output_groups") is not None
            and fresh.get("output_groups") != baseline.get("output_groups")
        ):
            violations.append(
                f"perf: output groups changed "
                f"{baseline['output_groups']} -> {fresh.get('output_groups')} "
                "on an identical workload"
            )
        base_speedup = baseline.get("speedup")
        fresh_speedup = fresh.get("speedup")
        if base_speedup and fresh_speedup:
            # Parallel-vs-serial speedup only means anything when both
            # artifacts had cores to parallelize across.  A single-core
            # run measures pure pool overhead, so gating on it would let
            # a single-core baseline mask a real executor regression on
            # multi-core runners — and falsely flag multi-core baselines
            # when CI lands on a one-core container.  Artifacts written
            # before cpu_count existed are treated as single-core.
            if (
                baseline.get("cpu_count", 1) > 1
                and fresh.get("cpu_count", 1) > 1
            ):
                floor = base_speedup * (1.0 - tolerances.hot_path)
                if fresh_speedup < floor:
                    violations.append(
                        f"perf: parallel speedup fell to "
                        f"{fresh_speedup:.2f}x (baseline "
                        f"{base_speedup:.2f}x, floor {floor:.2f}x)"
                    )
            elif notes is not None:
                notes.append(
                    f"perf: speedup {fresh_speedup:.2f}x vs baseline "
                    f"{base_speedup:.2f}x is informational "
                    f"(cpu_count {baseline.get('cpu_count', 1)} -> "
                    f"{fresh.get('cpu_count', 1)}; need >1 on both "
                    "to gate)"
                )

    # Telemetry overhead is a self-normalizing ratio (telemetry-on wall
    # over telemetry-off wall of the same serial run), so it transfers
    # across machines like the other ratio metrics.  Artifacts written
    # before the telemetry twin existed lack the key; the band applies
    # only when both artifacts carry it, so old baselines never trip —
    # a fresh-only ratio is reported as an informational note instead.
    for twin in ("telemetry", "lineage"):
        base_ratio = baseline.get(twin, {}).get("overhead_ratio")
        fresh_ratio = fresh.get(twin, {}).get("overhead_ratio")
        if base_ratio is not None and fresh_ratio is not None:
            ceiling = (
                base_ratio * (1.0 + tolerances.telemetry)
                + tolerances.telemetry_slack
            )
            if fresh_ratio > ceiling:
                violations.append(
                    f"perf: {twin} overhead ratio {fresh_ratio:.3f}x "
                    f"exceeds {ceiling:.3f}x (baseline {base_ratio:.3f}x)"
                )
        elif fresh_ratio is not None and notes is not None:
            notes.append(
                f"perf: {twin} overhead ratio {fresh_ratio:.3f}x is "
                f"informational (baseline predates the {twin} twin)"
            )

    violations.extend(
        _compare_serving(baseline, fresh, tolerances, notes)
    )
    return violations


def _compare_serving(
    baseline: Dict,
    fresh: Dict,
    tolerances: Tolerances,
    notes: Optional[List[str]],
) -> List[str]:
    """Serving-bench bands — applied only when both artifacts carry the
    ``serving`` section (older baselines predate the serving layer).

    Failed requests are a correctness signal, not a measurement, so any
    fresh error trips the gate unconditionally.  Shedding, latency,
    throughput and hit rate all depend on the offered load and the
    server's admission limits, so those bands apply only when the two
    runs describe the same workload *and* server configuration.
    """
    violations: List[str] = []
    base = baseline.get("serving")
    new = fresh.get("serving")
    if not base or not new:
        if new and notes is not None:
            notes.append(
                f"perf: serving bench ({new.get('throughput_qps')} qps, "
                f"p99 {new.get('p99_latency_ms')} ms) is informational "
                "(baseline predates the serving layer)"
            )
        return violations

    if new.get("errors", 0) > 0:
        violations.append(
            f"serving: {new['errors']} request(s) failed in the fresh "
            "bench (baseline contract is zero errors)"
        )

    same_setup = (
        base.get("workload") == new.get("workload")
        and base.get("server") == new.get("server")
    )
    if not same_setup:
        if notes is not None:
            notes.append(
                "perf: serving latency/throughput/hit-rate bands skipped "
                "(workload or server config differs from the baseline)"
            )
        return violations

    if base.get("shed", 0) == 0 and new.get("shed", 0) > 0:
        violations.append(
            f"serving: {new['shed']} request(s) shed at a load the "
            "baseline served without shedding"
        )

    base_p99, fresh_p99 = base.get("p99_latency_ms"), new.get("p99_latency_ms")
    if base_p99 is not None and fresh_p99 is not None:
        ceiling = (
            base_p99 * (1.0 + tolerances.serving) + tolerances.serving_slack_ms
        )
        if fresh_p99 > ceiling:
            violations.append(
                f"serving: p99 latency {fresh_p99:.1f} ms exceeds "
                f"{ceiling:.1f} ms (baseline {base_p99:.1f} ms "
                f"+{tolerances.serving:.0%} +{tolerances.serving_slack_ms:g} ms)"
            )

    base_qps, fresh_qps = base.get("throughput_qps"), new.get("throughput_qps")
    if base_qps and fresh_qps:
        floor = base_qps * (1.0 - tolerances.serving)
        if fresh_qps < floor:
            violations.append(
                f"serving: throughput fell to {fresh_qps:.1f} qps "
                f"(baseline {base_qps:.1f} qps, floor {floor:.1f} qps)"
            )

    base_hits = base.get("cache_hit_rate")
    fresh_hits = new.get("cache_hit_rate")
    if base_hits is not None and fresh_hits is not None:
        floor = base_hits - tolerances.serving
        if fresh_hits < floor:
            violations.append(
                f"serving: cache hit rate fell to {fresh_hits:.3f} "
                f"(baseline {base_hits:.3f}, floor {floor:.3f})"
            )
    return violations


def _recovery_points(report: Dict) -> Dict[Tuple[str, float], Dict]:
    return {
        (point["engine"], point["pressure"]): point
        for point in report.get("points", [])
    }


def _node_points(report: Dict) -> Dict[Tuple[str, float, bool], Dict]:
    return {
        (
            point["engine"],
            point["node_pressure"],
            bool(point["checkpointed"]),
        ): point
        for point in report.get("node_points", [])
    }


def _compare_node_points(
    baseline: Dict, fresh: Dict, same_workload: bool
) -> List[str]:
    """Node-pressure checks — skipped entirely when either artifact
    predates the node sweep, so old baselines stay comparable."""
    violations: List[str] = []
    base_points = _node_points(baseline)
    fresh_points = _node_points(fresh)
    if not base_points or not fresh_points:
        return violations

    for engine, pressure, checkpointed in sorted(
        set(base_points) - set(fresh_points)
    ):
        mode = "checkpoint" if checkpointed else "abort"
        violations.append(
            f"recovery: node point ({engine}, node_pressure={pressure:g}, "
            f"{mode}) disappeared from the fresh bench"
        )
    for key in sorted(set(base_points) & set(fresh_points)):
        engine, pressure, checkpointed = key
        base_point = base_points[key]
        fresh_point = fresh_points[key]
        mode = "checkpoint" if checkpointed else "abort"
        if base_point.get("completed") and not fresh_point.get("completed"):
            violations.append(
                f"recovery: ({engine}, node_pressure={pressure:g}, {mode}) "
                "completed at the baseline but now aborts"
            )
            continue
        if not same_workload:
            # Kill schedules are seeded per workload; loss/resume counts
            # only transfer when rows and base seed match.
            continue
        for counter in ("nodes_lost", "resumed_rounds"):
            base_value = base_point.get(counter)
            fresh_value = fresh_point.get(counter)
            if base_value is None or fresh_value is None:
                continue
            if base_value != fresh_value:
                violations.append(
                    f"recovery: ({engine}, node_pressure={pressure:g}, "
                    f"{mode}) {counter} changed {base_value} -> "
                    f"{fresh_value} on an identical workload"
                )
    return violations


def compare_recovery(
    baseline: Dict, fresh: Dict, tolerances: Tolerances = Tolerances()
) -> List[str]:
    """Violations of the recovery bands (empty list = gate passes)."""
    violations: List[str] = []
    base_points = _recovery_points(baseline)
    fresh_points = _recovery_points(fresh)

    missing = sorted(set(base_points) - set(fresh_points))
    for engine, pressure in missing:
        violations.append(
            f"recovery: point ({engine}, pressure={pressure:g}) "
            "disappeared from the fresh bench"
        )

    same_workload = (
        baseline.get("rows") == fresh.get("rows")
        and baseline.get("base_seed") == fresh.get("base_seed")
    )
    for key in sorted(set(base_points) & set(fresh_points)):
        engine, pressure = key
        base_point = base_points[key]
        fresh_point = fresh_points[key]
        if not base_point.get("failed") and fresh_point.get("failed"):
            violations.append(
                f"recovery: ({engine}, pressure={pressure:g}) completed "
                "at the baseline but now fails"
            )
            continue
        if not same_workload or base_point.get("failed"):
            # Slowdown ratios replay a seeded fault schedule; a different
            # row count or seed draws different faults, so only the
            # structural checks above apply.
            continue
        base_slowdown = base_point.get("slowdown")
        fresh_slowdown = fresh_point.get("slowdown")
        if base_slowdown is None or fresh_slowdown is None:
            continue
        ceiling = (
            base_slowdown * (1.0 + tolerances.slowdown)
            + tolerances.slowdown_slack
        )
        if fresh_slowdown > ceiling:
            violations.append(
                f"recovery: ({engine}, pressure={pressure:g}) slowdown "
                f"{fresh_slowdown:.2f}x exceeds {ceiling:.2f}x "
                f"(baseline {base_slowdown:.2f}x)"
            )
    violations.extend(_compare_node_points(baseline, fresh, same_workload))
    return violations


def gate(
    perf_baseline: Optional[Dict] = None,
    perf_fresh: Optional[Dict] = None,
    recovery_baseline: Optional[Dict] = None,
    recovery_fresh: Optional[Dict] = None,
    tolerances: Tolerances = Tolerances(),
    notes: Optional[List[str]] = None,
) -> List[str]:
    """All violations across whichever artifact pairs were provided."""
    violations: List[str] = []
    if perf_baseline is not None and perf_fresh is not None:
        violations.extend(
            compare_perf(perf_baseline, perf_fresh, tolerances, notes=notes)
        )
    if recovery_baseline is not None and recovery_fresh is not None:
        violations.extend(
            compare_recovery(recovery_baseline, recovery_fresh, tolerances)
        )
    return violations


def _load(path: Optional[str]) -> Optional[Dict]:
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh bench JSON regresses past the "
        "committed baselines (see module docstring for the bands)"
    )
    parser.add_argument("--perf-baseline")
    parser.add_argument("--perf-fresh")
    parser.add_argument("--recovery-baseline")
    parser.add_argument("--recovery-fresh")
    parser.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE
    )
    parser.add_argument(
        "--hot-path-tolerance", type=float,
        default=DEFAULT_HOT_PATH_TOLERANCE,
    )
    parser.add_argument(
        "--slowdown-tolerance", type=float,
        default=DEFAULT_SLOWDOWN_TOLERANCE,
    )
    parser.add_argument(
        "--slowdown-slack", type=float, default=DEFAULT_SLOWDOWN_SLACK
    )
    parser.add_argument(
        "--telemetry-tolerance", type=float,
        default=DEFAULT_TELEMETRY_TOLERANCE,
    )
    parser.add_argument(
        "--telemetry-slack", type=float, default=DEFAULT_TELEMETRY_SLACK
    )
    parser.add_argument(
        "--serving-tolerance", type=float,
        default=DEFAULT_SERVING_TOLERANCE,
    )
    parser.add_argument(
        "--serving-slack-ms", type=float,
        default=DEFAULT_SERVING_SLACK_MS,
    )
    args = parser.parse_args(argv)

    pairs = [
        ("perf", args.perf_baseline, args.perf_fresh),
        ("recovery", args.recovery_baseline, args.recovery_fresh),
    ]
    for name, base_path, fresh_path in pairs:
        if (base_path is None) != (fresh_path is None):
            parser.error(
                f"--{name}-baseline and --{name}-fresh must come together"
            )
    if all(base_path is None for _, base_path, _ in pairs):
        parser.error("nothing to compare: pass at least one artifact pair")

    notes: List[str] = []
    violations = gate(
        perf_baseline=_load(args.perf_baseline),
        perf_fresh=_load(args.perf_fresh),
        recovery_baseline=_load(args.recovery_baseline),
        recovery_fresh=_load(args.recovery_fresh),
        tolerances=Tolerances(
            wall=args.wall_tolerance,
            hot_path=args.hot_path_tolerance,
            slowdown=args.slowdown_tolerance,
            slowdown_slack=args.slowdown_slack,
            telemetry=args.telemetry_tolerance,
            telemetry_slack=args.telemetry_slack,
            serving=args.serving_tolerance,
            serving_slack_ms=args.serving_slack_ms,
        ),
        notes=notes,
    )
    for note in notes:
        print(f"  (info) {note}")
    if violations:
        print(f"regression gate: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("regression gate: all comparisons within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
