#!/usr/bin/env python
"""Quickstart: compute a data cube with SP-Cube on a simulated cluster.

Builds a small sales relation, runs SP-Cube, and prints a few cuboids plus
the run's cost profile.  Runs in a couple of seconds.

Usage::

    python examples/quickstart.py
"""

from repro import ClusterConfig, Count, Relation, Schema, SPCube
from repro.relation import format_cuboid, format_group


def main():
    # A relation R(name, city, year, sales) — the paper's running example.
    schema = Schema(["name", "city", "year"], measure="sales")
    rows = [
        ("laptop", "Rome", 2012, 2000),
        ("laptop", "Rome", 2015, 1500),
        ("laptop", "Paris", 2012, 900),
        ("printer", "Rome", 2012, 40),
        ("printer", "Paris", 2010, 55),
        ("keyboard", "Paris", 2010, 300),
        ("keyboard", "Rome", 2009, 120),
        ("keyboard", "Rome", 2009, 80),
        ("television", "Berlin", 2012, 610),
        ("television", "Rome", 2012, 400),
    ]
    relation = Relation(schema, rows, name="sales")

    # A simulated 4-machine MapReduce cluster.
    cluster = ClusterConfig(num_machines=4)

    # Compute the full cube with the count aggregate (the paper's default).
    run = SPCube(cluster, Count()).compute(relation)

    print(f"cube of {relation!r}: {run.cube.num_groups} c-groups\n")
    for mask in (0b001, 0b101, 0):
        print(f"cuboid {format_cuboid(mask, schema)}:")
        for values, count in sorted(run.cube.cuboid(mask).items()):
            print(f"  {format_group(mask, values, schema)} -> {count}")
        print()

    metrics = run.metrics
    print("run profile:")
    print(f"  rounds:            {[job.name for job in metrics.jobs]}")
    print(f"  simulated time:    {metrics.total_seconds:.2f} s")
    print(f"  intermediate data: {metrics.intermediate_bytes} bytes")
    print(f"  SP-Sketch size:    {metrics.extras['sketch_bytes']} bytes")
    print(f"  skewed c-groups:   {int(metrics.extras['num_skewed_groups'])}")


if __name__ == "__main__":
    main()
