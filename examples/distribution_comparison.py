#!/usr/bin/env python
"""Compare all engines across data distributions — Section 6 in miniature.

Runs SP-Cube against Pig's MR-Cube, Hive's plan, the naive algorithm and
the multi-round top-down baseline on four distributions (uniform, Zipf,
gen-binomial at two skew levels), printing a paper-style comparison table
of simulated time, intermediate traffic, and failure status.

Usage::

    python examples/distribution_comparison.py [num_rows]
"""

import sys

from repro import (
    Count,
    HiveCube,
    MRCube,
    NaiveCube,
    PipeSortMR,
    SPCube,
    gen_binomial,
    gen_zipf,
)
from repro.analysis import paper_cluster, run_algorithms


def main():
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    cluster = paper_cluster(num_rows)

    datasets = [
        ("uniform", gen_binomial(num_rows, 0.0, seed=3)),
        ("zipf", gen_zipf(num_rows, seed=3)),
        ("binomial p=.25", gen_binomial(num_rows, 0.25, seed=3)),
        ("binomial p=.60", gen_binomial(num_rows, 0.60, seed=3)),
    ]
    engines = {
        "SP-Cube": lambda: SPCube(cluster, Count()),
        "Pig": lambda: MRCube(cluster, Count()),
        "Hive": lambda: HiveCube(cluster, Count()),
        "Naive": lambda: NaiveCube(cluster, Count()),
        "PipeSort-MR": lambda: PipeSortMR(cluster, Count()),
    }

    header = f"{'dataset':16s}" + "".join(f"{name:>14s}" for name in engines)
    print("simulated running time (seconds); OOM = stuck per the paper\n")
    print(header)
    print("-" * len(header))

    for label, relation in datasets:
        runs = run_algorithms(
            relation,
            {name: make() for name, make in engines.items()},
            verify=True,  # all engines must agree on the cube
        )
        cells = []
        for name in engines:
            metrics = runs[name].metrics
            if metrics.failed:
                cells.append(f"{'OOM':>14s}")
            else:
                cells.append(f"{metrics.total_seconds:14.1f}")
        print(f"{label:16s}" + "".join(cells))

    print("\nintermediate data (MB)\n")
    print(header)
    print("-" * len(header))
    for label, relation in datasets:
        runs = run_algorithms(
            relation, {name: make() for name, make in engines.items()}
        )
        cells = "".join(
            f"{runs[name].metrics.intermediate_bytes / 1e6:14.2f}"
            for name in engines
        )
        print(f"{label:16s}" + cells)

    print("\nAll engines verified to produce identical cubes.")


if __name__ == "__main__":
    main()
