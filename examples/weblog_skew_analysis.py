#!/usr/bin/env python
"""Skew analysis of a web click log — the paper's motivating workload.

Generates a USAGOV-style click log (15 dimensions), builds the 4-dimension
cube the paper evaluates, and uses the library's skew tooling to answer:

* which c-groups are skewed, and at which lattice levels;
* how the SP-Sketch's sampled skew detection compares to ground truth;
* how much map-side partial aggregation saves on this distribution.

Usage::

    python examples/weblog_skew_analysis.py [num_rows]
"""

import sys

from repro import ClusterConfig, Count, SPCube
from repro.analysis import paper_cluster
from repro.datagen import (
    USAGOV_CUBE_DIMENSIONS,
    project_to_dimensions,
    usagov_clicks,
)
from repro.relation import format_group, mask_size
from repro.theory import planned_traffic, skewed_groups_by_cuboid


def main():
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"generating {num_rows} USAGOV-style click records "
          f"(15 dimensions)...")
    log = usagov_clicks(num_rows, seed=11)
    relation = project_to_dimensions(log, USAGOV_CUBE_DIMENSIONS)
    schema = relation.schema
    cluster = paper_cluster(num_rows)
    m = cluster.derive_memory(num_rows)

    # -- ground truth skews --------------------------------------------------
    truth = skewed_groups_by_cuboid(relation, m)
    print(f"\ntrue skewed c-groups (|set(g)| > m = {m}):")
    by_level = {}
    for mask, groups in truth.items():
        if groups:
            by_level.setdefault(mask_size(mask), []).extend(
                (mask, values) for values in groups
            )
    total_skewed = sum(len(groups) for groups in by_level.values())
    for level in sorted(by_level):
        sample = ", ".join(
            format_group(mask, values, schema)
            for mask, values in by_level[level][:3]
        )
        print(f"  level {level}: {len(by_level[level]):4d} groups   "
              f"e.g. {sample}")
    print(f"  total: {total_skewed}")

    # -- sampled sketch vs truth ----------------------------------------------
    run = SPCube(cluster, Count()).compute(relation)
    sketch = run.sketch
    detected = {
        (mask, values) for mask, values, _count in sketch.skewed_groups()
    }
    true_set = {
        (mask, values)
        for mask, groups in truth.items()
        for values in groups
    }
    caught = len(detected & true_set)
    print(f"\nSP-Sketch detection: {caught}/{len(true_set)} true skews "
          f"caught, {len(detected - true_set)} extra (borderline) flagged")
    print(f"sketch size: {sketch.serialized_bytes()} bytes for "
          f"{num_rows} input rows")

    # -- what the skew handling saves ------------------------------------------
    plan = planned_traffic(relation, sketch)
    naive_pairs = num_rows * (1 << schema.num_dimensions)
    print(f"\nnetwork plan: {plan.emitted_tuples} tuple emissions "
          f"({plan.emissions_per_tuple:.2f}/tuple) + "
          f"{plan.skew_absorptions} skew absorptions handled map-side")
    print(f"naive algorithm would ship {naive_pairs} pairs "
          f"({naive_pairs / max(plan.emitted_tuples, 1):.1f}x more)")

    print(f"\ncube computed: {run.cube.num_groups} c-groups, "
          f"simulated {run.metrics.total_seconds:.1f} s on "
          f"{cluster.num_machines} machines")


if __name__ == "__main__":
    main()
