#!/usr/bin/env python
"""The paper's running example, end to end — Figures 1, 2 and 3 in text.

Renders the cube lattice (Figure 1), a tuple's lattice (Figure 2), and the
SP-Sketch with its skews and partition elements (Figure 3) for a generated
retail-sales relation, then compares several aggregate functions over the
same sketch (the sketch is aggregate-independent, Section 4).

Usage::

    python examples/retail_sales.py
"""

import random

from repro import Average, ClusterConfig, Count, Relation, Schema, SPCube, Sum
from repro.relation import (
    bfs_order,
    cube_lattice_edges,
    format_cuboid,
    format_group,
    mask_size,
    tuple_lattice,
)

PRODUCTS = [
    "laptop", "printer", "keyboard", "television", "mouse",
    "toaster", "air-conditioner",
]
CITIES = ["Rome", "Paris", "Berlin", "Madrid", "Vienna"]
YEARS = list(range(2007, 2016))


def build_relation(num_rows=4000, seed=7):
    """Retail sales with a deliberately skewed best-seller."""
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        if rng.random() < 0.3:
            # The 2012 television craze: a skewed c-group in the making.
            name, year = "television", 2012
        else:
            name, year = rng.choice(PRODUCTS), rng.choice(YEARS)
        rows.append((name, rng.choice(CITIES), year, rng.randint(1, 50)))
    schema = Schema(["name", "city", "year"], measure="sales")
    return Relation(schema, rows, name="retail")


def print_cube_lattice(schema):
    print("Figure 1 — the cube lattice:")
    by_level = {}
    for mask in bfs_order(schema.num_dimensions):
        by_level.setdefault(mask_size(mask), []).append(mask)
    for level in sorted(by_level, reverse=True):
        row = "   ".join(
            format_cuboid(mask, schema) for mask in by_level[level]
        )
        print(f"  level {level}: {row}")
    print(f"  ({len(cube_lattice_edges(schema.num_dimensions))} edges)\n")


def print_tuple_lattice(row, schema):
    print(f"Figure 2 — the tuple lattice of {row}:")
    d = schema.num_dimensions
    by_level = {}
    for mask, values in tuple_lattice(row, d):
        by_level.setdefault(mask_size(mask), []).append((mask, values))
    for level in sorted(by_level, reverse=True):
        row_text = "   ".join(
            format_group(mask, values, schema)
            for mask, values in by_level[level]
        )
        print(f"  level {level}: {row_text}")
    print()


def print_sketch(sketch, schema):
    print("Figure 3 — the SP-Sketch:")
    for mask in bfs_order(schema.num_dimensions):
        cuboid = sketch.cuboids[mask]
        if not cuboid.skewed and not cuboid.partition_elements:
            continue
        print(f"  {format_cuboid(mask, schema)}")
        skews = [
            format_group(mask, values, schema)
            for values in sorted(cuboid.skewed)
        ]
        if skews:
            print(f"    skews:        {', '.join(skews[:4])}"
                  + (" ..." if len(skews) > 4 else ""))
        elements = [
            format_group(mask, values, schema)
            for values in cuboid.partition_elements
        ]
        print(f"    partitioning: {', '.join(elements[:4])}"
              + (" ..." if len(elements) > 4 else ""))
    print(f"  sketch size: {sketch.serialized_bytes()} bytes, "
          f"{sketch.num_skewed} skewed groups\n")


def main():
    relation = build_relation()
    schema = relation.schema
    cluster = ClusterConfig(num_machines=4)

    print_cube_lattice(schema)
    print_tuple_lattice(relation[0], schema)

    run = SPCube(cluster, Count()).compute(relation)
    print_sketch(run.sketch, schema)

    # The same data, three aggregates.  The SP-Sketch does not depend on
    # the aggregate, so production systems would build it once.
    print("aggregate comparison on cuboid (name, *, *):")
    for fn in (Count(), Sum(), Average()):
        result = SPCube(cluster, fn).compute(relation)
        television = result.cube.value(0b001, ("television",))
        if isinstance(television, float):
            television = round(television, 2)
        print(f"  {fn.name:8s} television -> {television}")

    print("\ntotal c-groups:", run.cube.num_groups)
    print("skewed groups caught by the sketch:",
          int(run.metrics.extras["num_skewed_groups"]))


if __name__ == "__main__":
    main()
