"""Experiment harness: sweeps, metrics, and paper-style reports."""

from .charts import (
    ascii_chart,
    chart_figure,
    svg_bar_chart,
    svg_line_chart,
    svg_span_timeline,
)
from .htmlreport import build_report, write_report
from .report import (
    available_metrics,
    format_figure,
    format_markdown_table,
    format_panel,
    speedup_summary,
)
from .runner import (
    paper_cluster,
    METRICS,
    AlgorithmFactory,
    PointResult,
    SweepResult,
    VerificationError,
    derive_fault_seed,
    run_algorithms,
    run_sweep,
    subsample_sweep,
)

__all__ = [
    "ascii_chart",
    "chart_figure",
    "svg_bar_chart",
    "svg_line_chart",
    "svg_span_timeline",
    "build_report",
    "write_report",
    "available_metrics",
    "format_figure",
    "format_markdown_table",
    "format_panel",
    "speedup_summary",
    "METRICS",
    "AlgorithmFactory",
    "PointResult",
    "SweepResult",
    "VerificationError",
    "derive_fault_seed",
    "run_algorithms",
    "paper_cluster",
    "run_sweep",
    "subsample_sweep",
]
