"""The unified HTML run report: one self-contained page per run.

``python -m repro report`` stitches the run's observability artifacts —
the structured trace (:mod:`repro.observability.analyze`), the telemetry
timeline (:mod:`repro.observability.timeline`), the doctor audit
(:mod:`repro.observability.diagnostics`), and the BENCH perf/recovery
JSON files — into a single HTML document with inline CSS and inline SVG
charts (:mod:`repro.analysis.charts`).  No JavaScript, no external
assets, no network: the file opens identically from a CI artifact store,
an email attachment, or ``file://``.

Every section is optional.  A missing artifact renders a one-line
"not provided" note instead of being silently absent, so a report built
from partial inputs is visibly partial.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from .charts import PALETTE, svg_bar_chart, svg_line_chart, svg_span_timeline

_CSS = """
body { font-family: sans-serif; margin: 2em auto; max-width: 60em;
       color: #1f2937; line-height: 1.45; }
h1 { border-bottom: 2px solid #2563eb; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; border-bottom: 1px solid #d1d5db; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #d1d5db; padding: 0.25em 0.7em;
         text-align: right; }
th { background: #f3f4f6; }
td.name, th.name { text-align: left; }
.ok { color: #16a34a; font-weight: bold; }
.bad { color: #dc2626; font-weight: bold; }
.muted { color: #6b7280; }
pre { background: #f3f4f6; padding: 0.7em; overflow-x: auto; }
svg { margin: 0.6em 0; display: block; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _missing(what: str) -> str:
    return f'<p class="muted">({what} not provided)</p>'


def _load_json(path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _table(headers: List[str], rows: List[List], name_cols: int = 1) -> str:
    parts = ["<table><tr>"]
    for index, header in enumerate(headers):
        cls = ' class="name"' if index < name_cols else ""
        parts.append(f"<th{cls}>{_esc(header)}</th>")
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for index, cell in enumerate(row):
            cls = ' class="name"' if index < name_cols else ""
            parts.append(f"<td{cls}>{cell}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _status_html(ok: bool, good: str = "ok", bad: str = "FAILED") -> str:
    return (
        f'<span class="ok">{good}</span>'
        if ok
        else f'<span class="bad">{bad}</span>'
    )


# -- trace section ------------------------------------------------------------


def _trace_section(trace_path) -> str:
    if trace_path is None:
        return _missing("trace")
    from ..observability import TraceAnalysis

    analysis = TraceAnalysis.from_file(trace_path)
    analysis.validate()
    summary = analysis.summary_dict()
    parts: List[str] = []

    rows = [
        [
            _esc(run["name"]),
            f"{run['seconds']:.1f}",
            _status_html(run["status"] == "ok", run["status"], run["status"]),
        ]
        for run in summary["runs"]
    ]
    if rows:
        parts.append(_table(["run", "seconds", "status"], rows))

    recovery = summary["recovery"]
    domains = summary["failure_domains"]
    parts.append(
        _table(
            ["attempts", "killed", "spec wins", "recovered",
             "nodes lost", "round resumes", "checkpoints"],
            [[
                recovery["attempts"], recovery["killed"],
                recovery["speculative_wins"], recovery["recovered"],
                domains["node_loss_events"], domains["round_resumes"],
                domains["checkpoints_committed"],
            ]],
            name_cols=0,
        )
    )

    job_rows = [
        [
            _esc(job["name"]),
            f"{job['seconds']:.1f}",
            f"{job['map_output_records']:,}",
            job["attempts"],
            _status_html(job["status"] == "ok", job["status"], job["status"]),
        ]
        for job in summary["jobs"]
    ]
    if job_rows:
        parts.append(
            _table(
                ["job", "seconds", "shuffled pairs", "attempts", "status"],
                job_rows,
            )
        )

    # Job/phase span timeline: each job row, then its phases indented.
    spans = []
    for job_index, job_span in enumerate(analysis.jobs):
        color = PALETTE[job_index % len(PALETTE)]
        spans.append(
            {
                "label": job_span["name"],
                "t0": job_span["t0"],
                "t1": job_span["t1"],
                "color": color,
            }
        )
        for phase_span in analysis.phases:
            if phase_span.get("job") != job_span["name"]:
                continue
            spans.append(
                {
                    "label": f"· {phase_span['phase']}",
                    "t0": phase_span["t0"],
                    "t1": phase_span["t1"],
                    "color": color,
                }
            )
    if spans:
        parts.append(
            svg_span_timeline(spans, "job & phase timeline (simulated time)")
        )

    dominant = summary["dominant_job"]
    loads = summary["reducer_loads"]
    if dominant is not None and loads:
        values = [loads[task] for task in sorted(loads, key=int)]
        mean = sum(values) / len(values)
        parts.append(
            svg_bar_chart(
                [f"r{task}" for task in sorted(loads, key=int)],
                values,
                f"per-reducer delivered records, job {dominant}",
                highlight=mean,
            )
        )

    critical_rows = [
        [
            _esc(entry["phase"]),
            entry["task"],
            entry["attempts"],
            f"{entry['chain_seconds']:.1f}",
            f"{entry['phase_seconds']:.1f}",
            "spec win" if entry["speculative"] else "",
        ]
        for entry in summary["critical_path"]
    ]
    if critical_rows:
        parts.append("<h3>critical path (dominant job)</h3>")
        parts.append(
            _table(
                ["phase", "gating task", "attempts", "chain s",
                 "phase s", "note"],
                critical_rows,
            )
        )
    return "\n".join(parts)


# -- telemetry section --------------------------------------------------------

#: Timeline series charted by default, with their x-grouping label key
#: (None = one curve per label-set, legend from the label values).
_CHARTED_SERIES = (
    ("phase_seconds", "logical seconds per phase"),
    ("shuffle_bytes", "shuffle bytes per job"),
    ("shuffle_records", "shuffled pairs per job"),
    ("checkpoint_bytes", "checkpoint bytes per round"),
    ("executor_queue_depth", "executor queue depth (host)"),
    ("driver_rss_bytes", "driver RSS bytes (host)"),
)


def _telemetry_section(timeline_path) -> str:
    if timeline_path is None:
        return _missing("telemetry timeline")
    from ..observability import TimelineAnalysis

    analysis = TimelineAnalysis.from_file(timeline_path)
    parts: List[str] = []
    meta = analysis.meta or {}
    parts.append(
        f"<p>run <code>{_esc(meta.get('run_id', '?'))}</code>: "
        f"{len(analysis.samples)} samples across "
        f"{len(analysis.series_names())} series "
        f"(cadence {meta.get('cadence', 0)}, "
        f"{meta.get('dropped', 0)} cadence-dropped), "
        f"registry dump {'present' if analysis.has_registry() else 'absent'}."
        "</p>"
    )

    rows = []
    for name in analysis.series_names():
        stats = analysis.series_summary(name)
        rows.append(
            [
                _esc(name),
                stats["samples"],
                stats["label_sets"],
                _esc(",".join(stats["sources"])),
                _esc(f"{stats['min']:g}"),
                _esc(f"{stats['max']:g}"),
                _esc(f"{stats['last']:g}"),
            ]
        )
    parts.append(
        _table(
            ["series", "samples", "label sets", "source", "min", "max",
             "last"],
            rows,
        )
    )

    for name, title in _CHARTED_SERIES:
        if name not in analysis.series_names():
            continue
        curves: Dict[str, List] = {}
        for labels in analysis.label_sets(name):
            legend = (
                ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                or name
            )
            curves[legend] = [
                (sample["t"], sample["value"])
                for sample in analysis.series(name, labels)
            ]
        parts.append(
            svg_line_chart(curves, title, x_label="logical seconds")
        )
    return "\n".join(parts)


# -- lineage section ----------------------------------------------------------


def _lineage_section(lineage_path) -> str:
    if lineage_path is None:
        return _missing("lineage artifact")
    from ..observability import LineageIndex, explain_reducer

    index = LineageIndex.from_file(lineage_path)
    parts: List[str] = [
        f"<p>run <code>{_esc(index.run_id)}</code>: "
        f"{len(index.jobs)} job execution(s), "
        f"{sum(len(f) for f in index.flows.values())} flow edges, "
        f"{len(index.alerts)} watchdog alert(s).</p>"
    ]

    job_rows = []
    for (name, execution), job in sorted(index.jobs.items()):
        flows = index.flows.get((name, execution), [])
        job_rows.append(
            [
                _esc(name),
                execution,
                job["num_reducers"],
                len(flows),
                f"{sum(f['records'] for f in flows):,}",
                f"{sum(f['bytes'] for f in flows):,}",
                _status_html(not job["aborted"], "ok", "aborted"),
            ]
        )
    if job_rows:
        parts.append(
            _table(
                ["job", "execution", "reducers", "flow edges", "records",
                 "bytes", "status"],
                job_rows,
            )
        )

    if index.alerts:
        alert_rows = []
        for alert in index.alerts:
            where = ", ".join(
                f"{key}={alert[key]}"
                for key in ("reducer", "cuboid", "phase", "task")
                if key in alert
            )
            alert_rows.append(
                [
                    _esc(alert["kind"]),
                    _esc(alert["job"]),
                    _esc(where),
                    _esc(alert.get("observed", alert.get("seconds", ""))),
                    _esc(alert.get("ratio", "")),
                    f"{alert['at']:.1f}",
                ]
            )
        parts.append("<h3>watchdog alerts</h3>")
        parts.append(
            _table(
                ["kind", "job", "where", "observed", "ratio", "at (s)"],
                alert_rows,
                name_cols=3,
            )
        )

    # The hottest reducer of the dominant job, pre-explained: the page
    # answers "why is it hot" without a second command.
    try:
        explained = explain_reducer(index)
    except ValueError:
        explained = None
    if explained is not None:
        parts.append(
            f"<h3>hottest reducer: r{explained['reducer']} of "
            f"<code>{_esc(explained['job'])}</code></h3>"
        )
        parts.append(
            f"<p>{explained['records']:,} records "
            f"({100 * explained['share']:.1f}% of the job's shuffle) "
            f"from {len(explained['map_tasks'])} map task(s).</p>"
        )
        cuboid_rows = [
            [f"{int(mask):#x}", f"{count:,}"]
            for mask, count in explained["by_cuboid"].items()
        ]
        if cuboid_rows:
            parts.append(_table(["cuboid", "records"], cuboid_rows))
    return "\n".join(parts)


# -- doctor section -----------------------------------------------------------


def _doctor_section(doctor_path) -> str:
    if doctor_path is None:
        return _missing("doctor report")
    report = _load_json(doctor_path)
    parts: List[str] = [
        "<p>verdict: "
        + _status_html(report.get("healthy", False), "healthy", "PROBLEMS")
        + "</p>"
    ]
    problems = report.get("problems", [])
    if problems:
        parts.append("<ul>")
        for problem in problems:
            parts.append(f'<li class="bad">{_esc(problem)}</li>')
        parts.append("</ul>")
    rows = []
    for dataset in report.get("datasets", []):
        audit = dataset.get("audit", {})
        overall = audit.get("overall", {})
        for engine, stats in sorted(dataset.get("engines", {}).items()):
            rows.append(
                [
                    _esc(dataset.get("name", "?")),
                    _esc(engine),
                    f"{stats.get('total_seconds', 0):.1f}",
                    f"{stats.get('reducer_balance', 0):.2f}",
                    f"{overall.get('f1', 0):.2f}",
                    f"{audit.get('worst_imbalance', 0):.2f}",
                    _status_html(not stats.get("failed", False)),
                ]
            )
    if rows:
        parts.append(
            _table(
                ["dataset", "engine", "sim s", "reducer balance",
                 "sketch F1", "worst imbalance", "status"],
                rows,
                name_cols=2,
            )
        )
    return "\n".join(parts)


# -- bench sections -----------------------------------------------------------


def _perf_section(perf_path) -> str:
    if perf_path is None:
        return _missing("BENCH_perf.json")
    bench = _load_json(perf_path)
    parts: List[str] = []
    workload = bench.get("workload", {})
    parts.append(
        f"<p>workload: <code>{_esc(workload.get('dataset', '?'))}</code>, "
        f"{workload.get('rows', '?'):,} rows — serial "
        f"{bench.get('serial_wall_seconds', 0):.1f}s, parallel "
        f"{bench.get('parallel_wall_seconds', 0):.1f}s "
        f"(speedup {bench.get('speedup', 0):.2f}×), cubes identical: "
        + _status_html(bench.get("cubes_identical", False), "yes", "NO")
        + "</p>"
    )
    sweep = bench.get("parallelism_sweep", [])
    if sweep:
        parts.append(
            svg_line_chart(
                {
                    "speedup vs serial": [
                        (point["workers"], point["speedup_vs_serial"])
                        for point in sweep
                    ]
                },
                "parallelism sweep",
                x_label="workers",
            )
        )
    telemetry = bench.get("telemetry")
    if telemetry:
        ratio = telemetry.get("overhead_ratio", 0.0)
        parts.append(
            f"<p>telemetry overhead: wall ratio {ratio:.3f}× "
            "(telemetry-on / telemetry-off twin)</p>"
        )
    return "\n".join(parts)


def _recovery_section(recovery_path) -> str:
    if recovery_path is None:
        return _missing("BENCH_recovery.json")
    bench = _load_json(recovery_path)
    curves: Dict[str, List] = {}
    for point in bench.get("points", []):
        if point.get("failed"):
            continue
        curves.setdefault(point["engine"], []).append(
            (point["pressure"], point["slowdown"])
        )
    for curve in curves.values():
        curve.sort()
    return svg_line_chart(
        curves,
        f"fault-pressure slowdown ({bench.get('rows', '?')} rows; "
        "failed runs dropped)",
        x_label="fault pressure",
        y_label="slowdown vs clean",
    )


# -- assembly -----------------------------------------------------------------


def build_report(
    trace=None,
    telemetry=None,
    lineage=None,
    doctor=None,
    perf=None,
    recovery=None,
    title: str = "repro run report",
) -> str:
    """Render the unified report; every input path is optional."""
    sections = (
        ("Trace", _trace_section, trace),
        ("Telemetry", _telemetry_section, telemetry),
        ("Lineage & alerts", _lineage_section, lineage),
        ("Doctor audit", _doctor_section, doctor),
        ("Bench: parallel perf", _perf_section, perf),
        ("Bench: recovery cost", _recovery_section, recovery),
    )
    body: List[str] = [f"<h1>{_esc(title)}</h1>"]
    inputs = [
        f"{label.lower()}: <code>{_esc(path)}</code>"
        for label, _fn, path in sections
        if path is not None
    ]
    body.append(
        "<p class=\"muted\">inputs — "
        + (", ".join(inputs) if inputs else "none")
        + "</p>"
    )
    for label, render, path in sections:
        body.append(f"<h2>{_esc(label)}</h2>")
        body.append(render(path))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        f"<meta charset=\"utf-8\"><title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def write_report(path, **kwargs) -> str:
    """Build the report and write it to ``path``; returns the path."""
    document = build_report(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
