"""ASCII and SVG charts for sweep results and run reports.

The paper's figures are line charts; the text tables of
:mod:`repro.analysis.report` carry the numbers, and this module carries the
*shape* — a terminal-rendered plot of one metric's curves, one glyph per
algorithm, so crossovers and failures are visible at a glance in the bench
output files.

The ``svg_*`` helpers render the same kinds of figures as inline SVG for
the self-contained HTML run report (:mod:`repro.analysis.htmlreport`):
no JavaScript, no external assets, every chart a pure function of its
data so report generation stays deterministic.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import SweepResult

#: Plot glyphs assigned to algorithms in sweep order.
GLYPHS = "*o+x#@%&"

#: Line/bar colors assigned to series in insertion order (SVG charts).
PALETTE = (
    "#2563eb",  # blue
    "#dc2626",  # red
    "#16a34a",  # green
    "#9333ea",  # purple
    "#ea580c",  # orange
    "#0891b2",  # cyan
    "#ca8a04",  # yellow
    "#db2777",  # pink
)


def ascii_chart(
    sweep: SweepResult,
    metric: str,
    title: str,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render one metric's curves as an ASCII chart.

    Failed points (e.g. Hive's stuck runs in Figure 6a) are dropped from
    their curve, mirroring how the paper plots them as missing.
    """
    curves = sweep.series(metric)
    failures = sweep.series("failed")
    points: Dict[str, List[Tuple[float, float]]] = {}
    for name, curve in curves.items():
        kept = [
            (x, y)
            for (x, y), (_fx, failed) in zip(curve, failures[name])
            if not failed
        ]
        if kept:
            points[name] = kept

    all_x = [x for curve in points.values() for x, _y in curve]
    all_y = [y for curve in points.values() for _x, y in curve]
    if not all_x:
        return f"{title}\n  (no data)"

    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(min(all_y), 0.0), max(all_y)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, curve) in enumerate(points.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in curve:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = [f"{title}   [{', '.join(legend)}]"]
    top_label = _format_number(y_high)
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else " " * len(top_label)
        lines.append(f"{prefix} |{''.join(row)}|")
    bottom = _format_number(y_low).rjust(len(top_label))
    lines.append(f"{bottom} +{'-' * width}+")
    x_left = _format_number(x_low)
    x_right = _format_number(x_high)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (len(top_label) + 2)
        + x_left
        + " " * max(padding, 1)
        + x_right
    )
    return "\n".join(lines)


def chart_figure(
    sweep: SweepResult,
    panels: Sequence[Tuple[str, str]],
    width: int = 64,
    height: int = 14,
) -> str:
    """Stack ASCII charts for several panels of one figure."""
    blocks = []
    for metric, title in panels:
        blocks.append(ascii_chart(sweep, metric, title, width, height))
        blocks.append("")
    return "\n".join(blocks).rstrip()


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:.3g}"
    return f"{value:.4g}"


# -- inline SVG for the HTML run report --------------------------------------


def _svg_open(width: int, height: int, title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" font-family="sans-serif" font-size="11">',
        f'<title>{html.escape(title)}</title>',
        f'<text x="8" y="14" font-size="13" font-weight="bold">'
        f"{html.escape(title)}</text>",
    ]


def _axis_bounds(values: Sequence[float]) -> Tuple[float, float]:
    low = min(min(values), 0.0)
    high = max(values)
    if high == low:
        high = low + 1.0
    return low, high


def svg_line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str,
    width: int = 640,
    height: int = 220,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """One metric's curves as a self-contained ``<svg>`` fragment.

    ``series`` maps a legend name to ``(x, y)`` points; points are
    plotted in the given order (sort by x upstream if needed).  Empty
    series are dropped; an all-empty input renders a "(no data)" box so
    the report never shows a silently blank panel.
    """
    points = {name: list(curve) for name, curve in series.items() if curve}
    parts = _svg_open(width, height, title)
    left, top, right, bottom = 58, 26, width - 10, height - 30
    if not points:
        parts.append(
            f'<text x="{left}" y="{(top + bottom) // 2}" fill="#666">'
            "(no data)</text></svg>"
        )
        return "\n".join(parts)

    all_x = [x for curve in points.values() for x, _y in curve]
    all_y = [y for curve in points.values() for _x, y in curve]
    x_low, x_high = min(all_x), max(all_x)
    if x_high == x_low:
        x_high = x_low + 1.0
    y_low, y_high = _axis_bounds(all_y)

    def sx(x: float) -> float:
        return left + (x - x_low) / (x_high - x_low) * (right - left)

    def sy(y: float) -> float:
        return bottom - (y - y_low) / (y_high - y_low) * (bottom - top)

    parts.append(
        f'<rect x="{left}" y="{top}" width="{right - left}" '
        f'height="{bottom - top}" fill="#fafafa" stroke="#ccc"/>'
    )
    for index, (name, curve) in enumerate(points.items()):
        color = PALETTE[index % len(PALETTE)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in curve)
        if len(curve) > 1:
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        for x, y in curve:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{left + 6}" y="{top + 14 + 13 * index}" '
            f'fill="{color}">{html.escape(name)}</text>'
        )
    for value, y in ((y_high, top), (y_low, bottom)):
        parts.append(
            f'<text x="{left - 6}" y="{y + 4}" text-anchor="end" '
            f'fill="#444">{_format_number(value)}</text>'
        )
    for value, x, anchor in (
        (x_low, left, "start"), (x_high, right, "end")
    ):
        parts.append(
            f'<text x="{x}" y="{bottom + 14}" text-anchor="{anchor}" '
            f'fill="#444">{_format_number(value)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{(left + right) // 2}" y="{height - 4}" '
            f'text-anchor="middle" fill="#444">{html.escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="12" y="{(top + bottom) // 2}" fill="#444" '
            f'transform="rotate(-90 12 {(top + bottom) // 2})" '
            f'text-anchor="middle">{html.escape(y_label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str,
    width: int = 640,
    height: int = 220,
    color: str = PALETTE[0],
    highlight: Optional[float] = None,
) -> str:
    """A labelled bar chart (e.g. per-reducer delivered records).

    ``highlight``, if given, draws a dashed reference line at that y
    value — used for the mean in the reducer-load histogram so the
    balance argument is visible without reading numbers.
    """
    parts = _svg_open(width, height, title)
    left, top, right, bottom = 58, 26, width - 10, height - 30
    if not values:
        parts.append(
            f'<text x="{left}" y="{(top + bottom) // 2}" fill="#666">'
            "(no data)</text></svg>"
        )
        return "\n".join(parts)
    y_low, y_high = _axis_bounds(list(values))

    def sy(y: float) -> float:
        return bottom - (y - y_low) / (y_high - y_low) * (bottom - top)

    parts.append(
        f'<rect x="{left}" y="{top}" width="{right - left}" '
        f'height="{bottom - top}" fill="#fafafa" stroke="#ccc"/>'
    )
    count = len(values)
    slot = (right - left) / count
    bar = max(1.0, slot * 0.8)
    label_every = max(1, count // 16)
    for index, (label, value) in enumerate(zip(labels, values)):
        x = left + slot * index + (slot - bar) / 2
        y = sy(value)
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar:.1f}" '
            f'height="{max(0.0, bottom - y):.1f}" fill="{color}">'
            f"<title>{html.escape(str(label))}: "
            f"{_format_number(value)}</title></rect>"
        )
        if index % label_every == 0:
            parts.append(
                f'<text x="{x + bar / 2:.1f}" y="{bottom + 14}" '
                f'text-anchor="middle" fill="#444">'
                f"{html.escape(str(label))}</text>"
            )
    if highlight is not None:
        y = sy(highlight)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{right}" y2="{y:.1f}" '
            'stroke="#dc2626" stroke-dasharray="4 3"/>'
        )
        parts.append(
            f'<text x="{right - 4}" y="{y - 4:.1f}" text-anchor="end" '
            f'fill="#dc2626">mean {_format_number(highlight)}</text>'
        )
    for value, y in ((y_high, top), (y_low, bottom)):
        parts.append(
            f'<text x="{left - 6}" y="{y + 4}" text-anchor="end" '
            f'fill="#444">{_format_number(value)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_span_timeline(
    spans: Sequence[Dict],
    title: str,
    width: int = 640,
    row_height: int = 18,
) -> str:
    """Horizontal span bars on a shared time axis (job/phase timeline).

    Each span is ``{"label": str, "t0": float, "t1": float}`` with an
    optional ``"color"``.  Rows render in the given order, so callers
    control grouping (jobs, then their phases indented).
    """
    spans = list(spans)
    left, top = 150, 26
    height = top + row_height * max(1, len(spans)) + 34
    parts = _svg_open(width, height, title)
    right = width - 10
    if not spans:
        parts.append(
            f'<text x="{left}" y="{top + 14}" fill="#666">'
            "(no spans)</text></svg>"
        )
        return "\n".join(parts)
    t0 = min(span["t0"] for span in spans)
    t1 = max(span["t1"] for span in spans)
    extent = max(t1 - t0, 1e-12)

    def sx(t: float) -> float:
        return left + (t - t0) / extent * (right - left)

    bottom = top + row_height * len(spans)
    parts.append(
        f'<rect x="{left}" y="{top}" width="{right - left}" '
        f'height="{bottom - top}" fill="#fafafa" stroke="#ccc"/>'
    )
    for index, span in enumerate(spans):
        y = top + row_height * index + 3
        color = span.get("color", PALETTE[index % len(PALETTE)])
        x0, x1 = sx(span["t0"]), sx(span["t1"])
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" '
            f'width="{max(1.0, x1 - x0):.1f}" height="{row_height - 6}" '
            f'fill="{color}" fill-opacity="0.75">'
            f"<title>{html.escape(str(span['label']))}: "
            f"{span['t0']:.1f}s → {span['t1']:.1f}s</title></rect>"
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + row_height - 9}" '
            f'text-anchor="end" fill="#333">'
            f"{html.escape(str(span['label']))}</text>"
        )
    for value, x, anchor in ((t0, left, "start"), (t1, right, "end")):
        parts.append(
            f'<text x="{x}" y="{bottom + 14}" text-anchor="{anchor}" '
            f'fill="#444">{_format_number(value)}s</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
