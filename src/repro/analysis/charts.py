"""ASCII line charts for sweep results.

The paper's figures are line charts; the text tables of
:mod:`repro.analysis.report` carry the numbers, and this module carries the
*shape* — a terminal-rendered plot of one metric's curves, one glyph per
algorithm, so crossovers and failures are visible at a glance in the bench
output files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .runner import SweepResult

#: Plot glyphs assigned to algorithms in sweep order.
GLYPHS = "*o+x#@%&"


def ascii_chart(
    sweep: SweepResult,
    metric: str,
    title: str,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render one metric's curves as an ASCII chart.

    Failed points (e.g. Hive's stuck runs in Figure 6a) are dropped from
    their curve, mirroring how the paper plots them as missing.
    """
    curves = sweep.series(metric)
    failures = sweep.series("failed")
    points: Dict[str, List[Tuple[float, float]]] = {}
    for name, curve in curves.items():
        kept = [
            (x, y)
            for (x, y), (_fx, failed) in zip(curve, failures[name])
            if not failed
        ]
        if kept:
            points[name] = kept

    all_x = [x for curve in points.values() for x, _y in curve]
    all_y = [y for curve in points.values() for _x, y in curve]
    if not all_x:
        return f"{title}\n  (no data)"

    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(min(all_y), 0.0), max(all_y)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, curve) in enumerate(points.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} {name}")
        for x, y in curve:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = [f"{title}   [{', '.join(legend)}]"]
    top_label = _format_number(y_high)
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else " " * len(top_label)
        lines.append(f"{prefix} |{''.join(row)}|")
    bottom = _format_number(y_low).rjust(len(top_label))
    lines.append(f"{bottom} +{'-' * width}+")
    x_left = _format_number(x_low)
    x_right = _format_number(x_high)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (len(top_label) + 2)
        + x_left
        + " " * max(padding, 1)
        + x_right
    )
    return "\n".join(lines)


def chart_figure(
    sweep: SweepResult,
    panels: Sequence[Tuple[str, str]],
    width: int = 64,
    height: int = 14,
) -> str:
    """Stack ASCII charts for several panels of one figure."""
    blocks = []
    for metric, title in panels:
        blocks.append(ascii_chart(sweep, metric, title, width, height))
        blocks.append("")
    return "\n".join(blocks).rstrip()


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:.3g}"
    return f"{value:.4g}"
