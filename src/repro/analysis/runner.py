"""Experiment harness: run a set of algorithms over a workload sweep.

Every figure in the paper is a sweep — data size, or the skewness knob
``p`` — with one curve per algorithm.  :func:`run_sweep` executes that
pattern: for each x-value it builds fresh algorithm instances (factories
keep per-run state isolated), computes the cube, optionally cross-checks
all cubes for equality, and records each run's :class:`RunMetrics`.

Metric accessors are by name so benches and reports stay declarative; see
:data:`METRICS` for the supported set (they cover every panel of Figures
4-8).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..interface import CubeRun
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.faults import FaultPlan, RetryPolicy
from ..mapreduce.metrics import RunMetrics
from ..relation.relation import Relation

AlgorithmFactory = Callable[[ClusterConfig], object]


#: Named metric accessors over a RunMetrics.  Byte metrics are reported in
#: MB/KB to match the paper's axes.
METRICS: Dict[str, Callable[[RunMetrics], float]] = {
    "total_seconds": lambda m: m.total_seconds,
    "avg_map_seconds": lambda m: m.avg_map_seconds,
    "avg_reduce_seconds": lambda m: m.avg_reduce_seconds,
    "map_output_mb": lambda m: m.intermediate_bytes / 1e6,
    "map_output_records": lambda m: float(m.intermediate_records),
    "sketch_kb": lambda m: m.extras.get("sketch_bytes", 0.0) / 1e3,
    "num_skewed_groups": lambda m: m.extras.get("num_skewed_groups", 0.0),
    "reducer_balance": lambda m: m.reducer_balance,
    "output_groups": lambda m: float(m.output_groups),
    "failed": lambda m: 1.0 if m.failed else 0.0,
    # Fault-tolerance counters (repro.mapreduce.faults): how hard the
    # framework had to work to keep the run alive.
    "attempts": lambda m: float(m.attempts),
    "killed_tasks": lambda m: float(m.killed_tasks),
    "speculative_wins": lambda m: float(m.speculative_wins),
    "recovered": lambda m: float(m.recovered),
    "recovery_overhead_seconds": lambda m: m.recovery_overhead(),
    "aborted": lambda m: 1.0 if m.aborted else 0.0,
    # Failure-domain counters (repro.mapreduce.checkpoint): node losses
    # and the checkpoint-resume recoveries they triggered.
    "nodes_lost": lambda m: float(m.nodes_lost),
    "resumed_rounds": lambda m: float(m.resumed_rounds),
}


def derive_fault_seed(base_seed: int, algorithm: str, x: float) -> int:
    """The fault seed for one (sweep point, algorithm) run.

    ``crc32(repr((base_seed, algorithm, x)))`` — a pure function of the
    sweep's base seed and the run's identity, independent of point order
    or of which other algorithms run.  Deriving per-run seeds keeps the
    fault schedules of a sweep's runs statistically independent: with a
    single shared seed, every point of a curve replays the *same* coin
    flips (task identities repeat across points), so one unlucky crash
    pattern biases the whole curve instead of averaging out.
    """
    return zlib.crc32(repr((base_seed, algorithm, x)).encode("utf-8"))


class VerificationError(AssertionError):
    """Raised when two algorithms disagree on the cube of the same input."""


@dataclass
class PointResult:
    """All algorithm runs at one x-value of a sweep."""

    x: float
    runs: Dict[str, RunMetrics] = field(default_factory=dict)


@dataclass
class SweepResult:
    """One full experiment: an x-axis and one curve per algorithm."""

    name: str
    x_label: str
    algorithms: List[str] = field(default_factory=list)
    points: List[PointResult] = field(default_factory=list)

    def series(self, metric: str) -> Dict[str, List[Tuple[float, float]]]:
        """``{algorithm: [(x, value), ...]}`` for a named metric."""
        accessor = METRICS[metric]
        curves: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in self.algorithms
        }
        for point in self.points:
            for name, run_metrics in point.runs.items():
                curves[name].append((point.x, accessor(run_metrics)))
        return curves


def run_algorithms(
    relation: Relation,
    algorithms: Dict[str, object],
    verify: bool = False,
) -> Dict[str, CubeRun]:
    """Run each algorithm on ``relation``; optionally cross-check cubes."""
    runs: Dict[str, CubeRun] = {}
    for name, algorithm in algorithms.items():
        runs[name] = algorithm.compute(relation)
    if verify:
        # Aborted runs have no output to compare — they are reported as
        # stuck, exactly how Figure 6a shows Hive's missing data points.
        completed = [
            name for name, run in runs.items() if not run.metrics.aborted
        ]
        if len(completed) > 1:
            reference_name = completed[0]
            reference = runs[reference_name].cube
            for other in completed[1:]:
                if runs[other].cube != reference:
                    problems = reference.diff(runs[other].cube, limit=5)
                    raise VerificationError(
                        f"{other} disagrees with {reference_name} on "
                        f"{relation.name}: {problems}"
                    )
    return runs


def run_sweep(
    name: str,
    x_label: str,
    workloads: Iterable[Tuple[float, Relation]],
    factories: Dict[str, AlgorithmFactory],
    cluster: Optional[ClusterConfig] = None,
    verify: bool = False,
    fault_seed: Optional[int] = None,
    crash_prob: float = 0.1,
    straggle_prob: float = 0.1,
    node_crash_prob: float = 0.0,
    tracer=None,
) -> SweepResult:
    """Execute a full sweep: one point per workload, one run per factory.

    Parameters
    ----------
    name, x_label:
        Labels for reporting (e.g. "Figure 6", "skewness p").
    workloads:
        ``(x, relation)`` pairs, typically from a generator sweep.
    factories:
        ``{algorithm name: factory(cluster) -> algorithm}``; a fresh
        instance per point keeps runs independent.
    cluster:
        Shared cluster configuration (default 20 machines, as the paper).
    verify:
        Cross-check that all algorithms agree at every point (use on
        small workloads; it compares full cubes).
    fault_seed, crash_prob, straggle_prob, node_crash_prob:
        When ``fault_seed`` is given, every run executes under a seeded
        :class:`~repro.mapreduce.faults.FaultPlan` with these per-attempt
        (and, for ``node_crash_prob``, per-node-per-job) probabilities —
        the same knobs the CLI exposes — so a sweep can chart recovery
        cost versus fault pressure.  Each run gets its own plan seeded by
        :func:`derive_fault_seed` ``(fault_seed, algorithm, x)``, so
        fault schedules are independent across points and curves rather
        than replaying one pattern sweep-wide.
    tracer:
        A :class:`~repro.observability.Tracer` attached to every run's
        cluster; the sweep's runs lay out consecutively on its simulated
        timeline (callers own ``tracer.close()``).
    """
    cluster = cluster or ClusterConfig()
    if tracer is not None:
        cluster = replace(cluster, tracer=tracer)
    sweep = SweepResult(name=name, x_label=x_label)
    sweep.algorithms = list(factories)

    for x, relation in workloads:
        point = PointResult(x=x)
        instances = {}
        for algo_name, factory in factories.items():
            run_cluster = cluster
            if fault_seed is not None:
                run_cluster = replace(
                    cluster,
                    fault_plan=FaultPlan(
                        seed=derive_fault_seed(fault_seed, algo_name, x),
                        crash_prob=crash_prob,
                        straggle_prob=straggle_prob,
                        node_crash_prob=node_crash_prob,
                    ),
                )
            instances[algo_name] = factory(run_cluster)
        runs = run_algorithms(relation, instances, verify=verify)
        for algo_name, run in runs.items():
            point.runs[algo_name] = run.metrics
        sweep.points.append(point)
    return sweep


def paper_cluster(
    num_rows: int,
    num_machines: int = 20,
    object_overhead: int = 4,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    parallelism: Optional[int] = None,
    num_nodes: Optional[int] = None,
    checkpoint: bool = True,
) -> ClusterConfig:
    """The benchmark cluster: 20 machines, JVM-overhead-calibrated memory.

    The paper's testbed gives each machine memory "in the order of its
    input size" (``m = n/k``), but a JVM holds far fewer *records* than the
    raw byte count suggests — object headers and boxing inflate records by
    roughly 4-10x, which is what made reducers on the authors' 15 GB
    machines choke on multi-million-row groups.  ``object_overhead``
    divides the nominal ``n/k`` record budget accordingly; 4 is
    conservative.  This calibration is what places Hive's observed failure
    at ``p >= 0.4`` on gen-binomial (Figure 6a): the 20 planted groups hold
    ``p * n/20`` rows each, and with ``m = n/(4k) = n/80`` they cross the
    skew/memory threshold exactly when ``p`` passes ~1/4-1/3.
    """
    memory = max(16, num_rows // (object_overhead * num_machines))
    return ClusterConfig(
        num_machines=num_machines,
        memory_records=memory,
        fault_plan=fault_plan,
        retry_policy=retry_policy or RetryPolicy(),
        parallelism=parallelism,
        num_nodes=num_nodes,
        checkpoint_enabled=checkpoint,
    )


def subsample_sweep(
    relation: Relation,
    sizes: Sequence[int],
    seed: int = 0,
) -> List[Tuple[float, Relation]]:
    """Random subsets of growing size — the paper's data-size protocol."""
    import random

    rng = random.Random(seed)
    return [
        (float(size), relation.random_subset(size, rng)) for size in sizes
    ]
