"""Paper-style rendering of sweep results.

Each figure panel in the paper is a set of curves over a shared x-axis;
:func:`format_panel` prints the same content as an aligned text table
(x column + one column per algorithm), and :func:`format_figure` stacks
the three panels of a figure.  Failed runs (OOM-flagged, like Hive at
``p >= 0.4``) render as ``FAIL`` — the paper shows these as missing data
points ("it got stuck").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .runner import METRICS, SweepResult


def format_panel(
    sweep: SweepResult,
    metric: str,
    title: str,
    unit: str = "",
    precision: int = 2,
) -> str:
    """One figure panel as an aligned text table."""
    curves = sweep.series(metric)
    failures = sweep.series("failed")
    x_values = [point.x for point in sweep.points]

    header_cells = [sweep.x_label] + list(curves)
    rows: List[List[str]] = []
    for index, x in enumerate(x_values):
        cells = [_format_x(x)]
        for name in curves:
            failed = failures[name][index][1] > 0 and metric in (
                "total_seconds",
                "avg_map_seconds",
                "avg_reduce_seconds",
            )
            if failed:
                cells.append("FAIL(OOM)")
            else:
                cells.append(f"{curves[name][index][1]:.{precision}f}")
        rows.append(cells)

    widths = [
        max(len(header_cells[i]), *(len(row[i]) for row in rows))
        for i in range(len(header_cells))
    ]
    lines = [f"{title}" + (f"  [{unit}]" if unit else "")]
    lines.append(
        "  ".join(cell.rjust(width) for cell, width in zip(header_cells, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_figure(
    sweep: SweepResult,
    panels: Sequence[Tuple[str, str, str]],
    heading: Optional[str] = None,
) -> str:
    """Stack several panels: each entry is ``(metric, title, unit)``."""
    blocks = [heading or sweep.name]
    blocks.append("=" * len(blocks[0]))
    for metric, title, unit in panels:
        blocks.append("")
        blocks.append(format_panel(sweep, metric, title, unit))
    return "\n".join(blocks)


def speedup_summary(
    sweep: SweepResult, baseline_names: Sequence[str], subject: str
) -> Dict[str, float]:
    """Relative speedups of ``subject`` vs each baseline at the largest x.

    The paper quotes these (e.g. "20% faster than Hive, 300% faster than
    Pig"); the convention here matches: a value of 3.0 means the baseline
    took 3x the subject's time.
    """
    curves = sweep.series("total_seconds")
    summary: Dict[str, float] = {}
    subject_time = curves[subject][-1][1]
    for name in baseline_names:
        baseline_time = curves[name][-1][1]
        summary[name] = (
            baseline_time / subject_time if subject_time else float("inf")
        )
    return summary


def format_markdown_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """A GitHub-flavoured markdown table with aligned columns.

    Used by the ``doctor`` report (and anything else emitting markdown):
    cells are stringified and padded so the raw text is readable too.
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(header[i]))
        for i in range(len(header))
    ]

    def line(row: Sequence[str]) -> str:
        padded = [str(cell).ljust(width) for cell, width in zip(row, widths)]
        return "| " + " | ".join(padded) + " |"

    out = [line(list(header)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def available_metrics() -> List[str]:
    """Names accepted by :func:`format_panel` / ``SweepResult.series``."""
    return sorted(METRICS)


def _format_x(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return f"{x:g}"
