"""File interchange: relations, cubes, and sketches to and from disk.

Relations round-trip through delimiter-separated text (the shape of the
paper's real inputs — Wikipedia pagecount dumps and USAGOV click logs are
both flat text); cubes export in the paper's star notation; sketches
serialize to JSON, which is what a real deployment would publish on the
DFS between SP-Cube's two rounds.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Sequence

from .core.sketch import CuboidSketch, SPSketch
from .cubing.result import CubeResult
from .relation.lattice import format_group
from .relation.relation import Relation
from .relation.schema import Schema


def write_relation(relation: Relation, path: str, delimiter: str = "\t") -> int:
    """Write a relation as delimited text with a header line.

    Returns the number of data rows written.
    """
    with open(path, "w") as handle:
        header = list(relation.schema.dimensions) + [relation.schema.measure]
        handle.write(delimiter.join(header) + "\n")
        for row in relation:
            handle.write(delimiter.join(str(field) for field in row) + "\n")
    return len(relation)


def read_relation(
    path: str,
    delimiter: str = "\t",
    dimension_parsers: Optional[Sequence[Callable[[str], object]]] = None,
    measure_parser: Callable[[str], float] = float,
    name: Optional[str] = None,
) -> Relation:
    """Read a relation written by :func:`write_relation`.

    ``dimension_parsers`` converts each dimension column from text (default:
    keep strings); the measure column parses as a number.  Integral measures
    are narrowed back to ``int`` so count/sum round-trips are exact.
    """
    with open(path) as handle:
        header = handle.readline().rstrip("\n").split(delimiter)
        if len(header) < 2:
            raise ValueError(f"{path}: header needs >= 2 columns")
        schema = Schema(header[:-1], measure=header[-1])
        parsers = dimension_parsers or [str] * schema.num_dimensions
        if len(parsers) != schema.num_dimensions:
            raise ValueError(
                f"{len(parsers)} parsers for {schema.num_dimensions} dimensions"
            )
        rows = []
        for line_number, line in enumerate(handle, start=2):
            fields = line.rstrip("\n").split(delimiter)
            if len(fields) != schema.arity:
                raise ValueError(
                    f"{path}:{line_number}: {len(fields)} fields, "
                    f"expected {schema.arity}"
                )
            measure = measure_parser(fields[-1])
            if isinstance(measure, float) and measure.is_integer():
                measure = int(measure)
            rows.append(
                tuple(
                    parse(field)
                    for parse, field in zip(parsers, fields[:-1])
                )
                + (measure,)
            )
    return Relation(schema, rows, validate=False, name=name or path)


def write_cube(cube: CubeResult, path: str, delimiter: str = "\t") -> int:
    """Export a cube in star notation: one ``group<TAB>value`` line per
    c-group, in deterministic order.  Returns the line count."""
    rows = cube.to_rows()
    with open(path, "w") as handle:
        for mask, values, aggregate_value in rows:
            rendered = format_group(mask, values, cube.schema)
            handle.write(f"{rendered}{delimiter}{aggregate_value}\n")
    return len(rows)


def _parse_cube_value(text: str):
    """Default aggregate parser: numeric with int narrowing, like
    :func:`read_relation`'s measure handling, so count/sum round-trip
    exactly."""
    value = float(text)
    if value.is_integer():
        return int(value)
    return value


def read_cube(
    path: str,
    schema: Schema,
    delimiter: str = "\t",
    dimension_parsers: Optional[Sequence[Callable[[str], object]]] = None,
    value_parser: Callable[[str], object] = _parse_cube_value,
) -> CubeResult:
    """Read a cube written by :func:`write_cube` back into a
    :class:`CubeResult`.

    The star-notation export carries no schema or types, so the caller
    supplies both: ``schema`` names the dimensions (and fixes the value
    count per group), ``dimension_parsers`` converts each non-``*``
    dimension value from text (default: keep strings), and
    ``value_parser`` converts the aggregate column (default: numeric
    with int narrowing).  A dimension value rendered exactly ``*`` is
    indistinguishable from a projected-away one and round-trips as a
    star — none of the repository's workloads produce such values.
    """
    parsers = dimension_parsers or [str] * schema.num_dimensions
    if len(parsers) != schema.num_dimensions:
        raise ValueError(
            f"{len(parsers)} parsers for {schema.num_dimensions} dimensions"
        )
    cube = CubeResult(schema)
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            rendered, sep, value_text = line.partition(delimiter)
            if not sep:
                raise ValueError(
                    f"{path}:{line_number}: no delimiter between group "
                    "and value"
                )
            if not (rendered.startswith("(") and rendered.endswith(")")):
                raise ValueError(
                    f"{path}:{line_number}: group {rendered[:40]!r} is not "
                    "in (v1, v2, ...) star notation"
                )
            parts = rendered[1:-1].split(", ") if len(rendered) > 2 else []
            if len(parts) != schema.num_dimensions:
                raise ValueError(
                    f"{path}:{line_number}: group has {len(parts)} "
                    f"positions, schema has {schema.num_dimensions} "
                    "dimensions"
                )
            mask = 0
            values = []
            for i, part in enumerate(parts):
                if part == "*":
                    continue
                mask |= 1 << i
                values.append(parsers[i](part))
            try:
                value = value_parser(value_text)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: unparsable aggregate value "
                    f"{value_text[:40]!r}"
                ) from None
            cube.add(mask, tuple(values), value)
    return cube


def sketch_to_json(sketch: SPSketch) -> str:
    """Serialize an SP-Sketch to JSON (what round 1 publishes on the DFS).

    Dimension values must be JSON-representable (numbers, strings,
    booleans) — true for every workload in this repository.
    """
    payload = {
        "num_dimensions": sketch.num_dimensions,
        "num_partitions": sketch.num_partitions,
        "cuboids": [
            {
                "mask": mask,
                "skewed": [
                    [list(values), count]
                    for values, count in sorted(cuboid.skewed.items())
                ],
                "partition_elements": [
                    list(values) for values in cuboid.partition_elements
                ],
            }
            for mask, cuboid in sorted(sketch.cuboids.items())
        ],
    }
    return json.dumps(payload)


def sketch_from_json(text: str) -> SPSketch:
    """Rebuild an SP-Sketch serialized by :func:`sketch_to_json`."""
    payload = json.loads(text)
    cuboids = {}
    for entry in payload["cuboids"]:
        cuboids[entry["mask"]] = CuboidSketch(
            skewed={
                tuple(values): count for values, count in entry["skewed"]
            },
            partition_elements=[
                tuple(values) for values in entry["partition_elements"]
            ],
        )
    return SPSketch(
        payload["num_dimensions"], payload["num_partitions"], cuboids
    )


def write_sketch(sketch: SPSketch, path: str) -> int:
    """Write a sketch as JSON; returns the byte count (the paper's 5c/6c
    measurement on the real artifact)."""
    text = sketch_to_json(sketch)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text.encode())


def read_sketch(path: str) -> SPSketch:
    """Read a sketch written by :func:`write_sketch`."""
    with open(path) as handle:
        return sketch_from_json(handle.read())
