"""Query planning over a :class:`~repro.serving.store.CubeStore`.

:class:`StoredCubeView` gives a store the exact :class:`CubeView` API —
rollup/slice/dice/drilldown/top/pivot — by inheriting all query logic
from :class:`CubeView` and swapping the backing ``CubeResult`` for a
:class:`_StoredCube` adapter.  Answers are therefore bit-identical to
the in-memory view by construction: the only thing that changes is
where a cuboid's groups come from.

The adapter adds the **ancestor-cuboid planning rule**.  When the exact
cuboid for a query was not materialized (e.g. the store holds only a
subset of the lattice), the adapter finds every materialized cuboid
whose mask is a superset of the requested one — a *covering ancestor*,
holding strictly finer groups — and rebuilds the requested cuboid from
the **smallest** such ancestor (fewest groups per the footer, ties to
the lower mask) by projecting each ancestor group onto the requested
mask and merging collisions with the stored aggregate's ``merge``.
This is exact precisely for **distributive** aggregates (count, sum,
min, max), whose finalized values are their own mergeable state;
algebraic and holistic aggregates raise :class:`QueryError` rather than
serve a silently wrong number.  Re-aggregating from an iceberg-pruned
ancestor would undercount, so iceberg cubes are stored with every
cuboid materialized (empty segments cost a footer entry, not wrong
answers) and only deliberately partial stores take this path.

On top sits a **keyed query-result cache**: repeated rollups, slices,
pivots, drilldowns, tops and totals are answered from an LRU of final
results without touching the segment layer.  ``dice`` takes callables
and is never cached.  Hits and misses feed the shared
``serving.cache_hit`` / ``serving.cache_miss`` counters next to the
store's segment counters, so one ``/stats`` read shows both tiers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..query.view import CubeView, QueryError
from ..relation.lattice import mask_dimensions
from .store import CubeStore, ServingCounters, StoreError

#: Default number of finished query results kept hot per view.
DEFAULT_RESULT_CACHE = 128


class _StoredCube:
    """Duck-typed ``CubeResult`` face over a :class:`CubeStore`.

    Implements exactly the surface :class:`CubeView` touches —
    ``schema``, ``cuboid``, ``value``, ``num_groups``,
    ``groups_per_cuboid`` — backed by lazy segment reads and the
    ancestor re-aggregation planner.
    """

    def __init__(self, store: CubeStore):
        self.store = store
        self.schema = store.schema
        self.counters = store.counters

    @property
    def num_groups(self) -> int:
        return self.store.total_groups

    def groups_per_cuboid(self) -> Dict[int, int]:
        # Footer counts for materialized cuboids; a partial store's
        # missing cuboids are rebuilt so the lattice stays complete,
        # matching ``CubeResult.groups_per_cuboid``.
        from ..relation.lattice import all_cuboids

        counts = self.store.groups_per_cuboid()
        for mask in all_cuboids(self.schema.num_dimensions):
            if mask not in counts:
                counts[mask] = len(self.cuboid(mask))
        return counts

    def cuboid(self, mask: int) -> Dict[Tuple, object]:
        if self.store.has_cuboid(mask):
            return self.store.cuboid(mask)
        return self._reaggregate(mask)

    def value(self, mask: int, values: Tuple):
        return self.cuboid(mask)[values]

    def _covering_ancestor(self, mask: int) -> int:
        """The smallest materialized cuboid covering ``mask``.

        Smallest by footer group count (no segment IO), ties broken
        toward the lower mask so the plan is deterministic.
        """
        candidates = [
            m for m in self.store.masks if m & mask == mask and m != mask
        ]
        if not candidates:
            raise QueryError(
                f"no materialized cuboid covers mask 0x{mask:x} in "
                f"{self.store.path}"
            )
        return min(
            candidates, key=lambda m: (self.store.group_count(m), m)
        )

    def _reaggregate(self, mask: int) -> Dict[Tuple, object]:
        kind = self.store.aggregate_kind
        if kind != "distributive":
            raise QueryError(
                f"cuboid 0x{mask:x} is not materialized and the stored "
                f"aggregate ({self.store.aggregate_name or 'unknown'}, "
                f"{kind or 'unknown kind'}) cannot be re-aggregated from "
                "an ancestor; only distributive aggregates can"
            )
        from ..aggregates import get_aggregate

        fn = get_aggregate(self.store.aggregate_name)
        ancestor = self._covering_ancestor(mask)
        self.counters.bump("serving.reaggregations")
        ancestor_dims = mask_dimensions(ancestor, self.schema.num_dimensions)
        wanted = mask_dimensions(mask, self.schema.num_dimensions)
        positions = [ancestor_dims.index(i) for i in wanted]
        merged: Dict[Tuple, object] = {}
        for values, value in self.store.cuboid(ancestor).items():
            projected = tuple(values[p] for p in positions)
            if projected in merged:
                merged[projected] = fn.merge(merged[projected], value)
            else:
                merged[projected] = value
        return merged


class StoredCubeView(CubeView):
    """A :class:`CubeView` served from disk, with a query-result cache.

    >>> view = StoredCubeView.open("cube.store")     # doctest: +SKIP
    >>> view.rollup("name", "year")                  # doctest: +SKIP

    Every operation inherited from :class:`CubeView` runs unchanged
    against the :class:`_StoredCube` adapter; cacheable operations are
    wrapped in a keyed LRU.  Cached results are copied on the way out
    so a caller mutating its answer cannot poison later ones.
    """

    def __init__(
        self,
        store: CubeStore,
        result_cache_size: int = DEFAULT_RESULT_CACHE,
    ):
        super().__init__(_StoredCube(store))
        self.store = store
        self.counters = store.counters
        self._results: "OrderedDict[Tuple, object]" = OrderedDict()
        self._result_cache_size = max(1, result_cache_size)
        self._lock = threading.RLock()

    @classmethod
    def open(cls, path: str, **kwargs) -> "StoredCubeView":
        """Open a store file and wrap it; kwargs pass through to both
        :meth:`CubeStore.open` (``segment_cache_size``, ``counters``)
        and this view (``result_cache_size``)."""
        result_cache_size = kwargs.pop(
            "result_cache_size", DEFAULT_RESULT_CACHE
        )
        store = CubeStore.open(path, **kwargs)
        return cls(store, result_cache_size=result_cache_size)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "StoredCubeView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- result cache --------------------------------------------------------

    def _cached(self, key: Tuple, compute):
        with self._lock:
            if key in self._results:
                self._results.move_to_end(key)
                self.counters.bump("serving.cache_hit")
                return self._copy(self._results[key])
            self.counters.bump("serving.cache_miss")
            result = compute()
            self._results[key] = result
            if len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
            return self._copy(result)

    @staticmethod
    def _copy(result):
        if isinstance(result, dict):
            return dict(result)
        if isinstance(result, list):
            return list(result)
        return result

    # -- cached operations ---------------------------------------------------

    def rollup(self, *dimensions: str) -> Dict[Tuple, object]:
        return self._cached(
            ("rollup", tuple(dimensions)),
            lambda: super(StoredCubeView, self).rollup(*dimensions),
        )

    def total(self):
        return self._cached(
            ("total",), lambda: super(StoredCubeView, self).total()
        )

    def slice(self, **fixed) -> Dict[Tuple, object]:
        try:
            key = ("slice", tuple(sorted(fixed.items())))
        except TypeError:
            # Unorderable mixed-type values: answer uncached.
            return super().slice(**fixed)
        return self._cached(
            key, lambda: super(StoredCubeView, self).slice(**fixed)
        )

    def drilldown(
        self, group: Dict[str, object], into: str
    ) -> Dict[object, object]:
        try:
            key = ("drilldown", tuple(sorted(group.items())), into)
        except TypeError:
            return super().drilldown(group, into)
        return self._cached(
            key,
            lambda: super(StoredCubeView, self).drilldown(group, into),
        )

    def top(
        self,
        dimensions,
        k: int = 10,
        key: Optional[object] = None,
    ) -> List[Tuple[Tuple, object]]:
        if key is not None:
            # Custom magnitude extractors are not hashable cache keys.
            return super().top(dimensions, k, key)
        return self._cached(
            ("top", tuple(dimensions), k),
            lambda: super(StoredCubeView, self).top(dimensions, k),
        )

    def pivot(
        self, row_dim: str, column_dim: str
    ) -> Dict[object, Dict[object, object]]:
        result = self._cached(
            ("pivot", row_dim, column_dim),
            lambda: super(StoredCubeView, self).pivot(row_dim, column_dim),
        )
        # Deep-ish copy: the outer dict is already fresh, the inner row
        # dicts still alias the cached ones.
        return {row: dict(columns) for row, columns in result.items()}

    # dice() is inherited uncached: its predicates are callables.

    def stats(self) -> Dict[str, int]:
        """A snapshot of the shared ``serving.*`` counters."""
        return self.counters.to_dict()
