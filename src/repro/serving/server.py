"""The cube query server: bounded admission, deadlines, load shedding.

``python -m repro serve-cube cube.store`` runs an HTTP front end over a
:class:`~repro.serving.view.StoredCubeView`.  The plumbing follows the
``metrics-export --serve`` exporter (bind 127.0.0.1, port 0 picks a free
port, the caller owns shutdown) but the execution model is a serving
one:

* queries run on a fixed :class:`~concurrent.futures.ThreadPoolExecutor`
  of ``workers`` threads;
* admission is bounded by a semaphore of ``workers + queue_depth``
  slots — a request that finds no slot is **shed immediately** with
  HTTP 503 and a typed, retriable JSON error
  (``{"ok": false, "error": "overloaded", "retriable": true}``) instead
  of queueing without bound and stalling every client behind it;
* each admitted query gets a **per-query deadline**: when the worker
  has not answered in time the caller receives HTTP 504
  (``"error": "deadline-exceeded"``, retriable) while the worker's slot
  is reclaimed only when the computation actually finishes — shedding
  decisions therefore see the true backlog, not an optimistic one;
* malformed or unanswerable queries (unknown op, unknown dimension,
  non-materializable cuboid) return HTTP 400 with ``"retriable": false``
  — retrying a query the store cannot answer would only burn slots.

Wire protocol: ``POST /query`` with a JSON body (see
:func:`execute_query` for the op shapes), ``GET /stats`` for the shared
``serving.*`` counters, ``GET /healthz`` for liveness.  Group keys are
tuples in Python and become sorted ``[values-list, aggregate]`` pairs in
JSON, so responses are deterministic byte-for-byte for a deterministic
store.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Dict, List, Optional

from ..query.view import QueryError
from .store import StoreError
from .view import StoredCubeView

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 16
DEFAULT_DEADLINE = 5.0

#: Ops answerable over the wire.  ``dice`` is deliberately absent: its
#: predicates are Python callables and deserializing code is not a
#: feature a query server should have.
WIRE_OPS = (
    "rollup",
    "total",
    "slice",
    "drilldown",
    "top",
    "pivot",
    "cuboid_sizes",
)


def _jsonable_groups(groups: Dict) -> List:
    """``{tuple: value}`` → deterministic ``[[values, value], ...]``."""
    return [
        [list(values) if isinstance(values, tuple) else values, value]
        for values, value in sorted(
            groups.items(), key=lambda item: repr(item[0])
        )
    ]


def execute_query(view: StoredCubeView, spec: Dict) -> object:
    """Run one wire-format query ``spec`` against ``view``.

    Op shapes::

        {"op": "rollup", "dimensions": ["name", "year"]}
        {"op": "total"}
        {"op": "slice", "fixed": {"city": "Rome"}}
        {"op": "drilldown", "group": {"name": "laptop"}, "into": "city"}
        {"op": "top", "dimensions": ["name"], "k": 5}
        {"op": "pivot", "row": "name", "column": "year"}
        {"op": "cuboid_sizes"}

    Returns a JSON-serializable result; raises :class:`QueryError` for
    anything malformed or unanswerable.
    """
    if not isinstance(spec, dict):
        raise QueryError("query must be a JSON object")
    op = spec.get("op")
    if op not in WIRE_OPS:
        raise QueryError(
            f"unknown op {op!r}; supported: {', '.join(WIRE_OPS)}"
        )
    try:
        if op == "rollup":
            dims = spec.get("dimensions", [])
            return _jsonable_groups(view.rollup(*dims))
        if op == "total":
            return view.total()
        if op == "slice":
            fixed = spec.get("fixed")
            if not isinstance(fixed, dict):
                raise QueryError("slice needs a 'fixed' object")
            return _jsonable_groups(view.slice(**fixed))
        if op == "drilldown":
            group = spec.get("group")
            into = spec.get("into")
            if not isinstance(group, dict) or not isinstance(into, str):
                raise QueryError(
                    "drilldown needs a 'group' object and an 'into' name"
                )
            return _jsonable_groups(view.drilldown(group, into))
        if op == "top":
            dims = spec.get("dimensions", [])
            k = spec.get("k", 10)
            if not isinstance(k, int):
                raise QueryError("top's 'k' must be an integer")
            return [
                [list(values), value] for values, value in view.top(dims, k)
            ]
        if op == "pivot":
            row, column = spec.get("row"), spec.get("column")
            if not isinstance(row, str) or not isinstance(column, str):
                raise QueryError("pivot needs 'row' and 'column' names")
            table = view.pivot(row, column)
            return [
                [r, _jsonable_groups(columns)]
                for r, columns in sorted(
                    table.items(), key=lambda item: repr(item[0])
                )
            ]
        # cuboid_sizes
        return [
            [list(names), count]
            for names, count in sorted(view.cuboid_sizes().items())
        ]
    except TypeError as exc:
        # Wrong-typed spec fields (e.g. dimensions: 3) surface here.
        raise QueryError(str(exc)) from None


class CubeServer:
    """A bound, not-yet-serving query server over a stored cube.

    >>> server = CubeServer(view, port=0)            # doctest: +SKIP
    >>> server.port                                  # doctest: +SKIP
    >>> server.serve_forever()                       # blocks; doctest: +SKIP

    Tests drive it with ``start()``/``close()`` around HTTP requests at
    ``http://127.0.0.1:{server.port}``, exactly like the metrics
    exporter's ``build_metrics_server``.
    """

    def __init__(
        self,
        view: StoredCubeView,
        workers: int = DEFAULT_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        deadline: float = DEFAULT_DEADLINE,
        port: int = 0,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if queue_depth < 0:
            raise ValueError("queue_depth cannot be negative")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.view = view
        self.workers = workers
        self.queue_depth = queue_depth
        self.deadline = deadline
        self.counters = view.counters
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cube-query"
        )
        self._slots = threading.Semaphore(workers + queue_depth)
        self._httpd = self._build_httpd(port)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def port(self) -> int:
        return self._httpd.server_port

    # -- request handling ----------------------------------------------------

    def _handle_query(self, spec: Dict) -> Dict:
        """Admission + execution of one query; returns (status, body)."""
        if not self._slots.acquire(blocking=False):
            self.counters.bump("serving.shed")
            return {
                "status": 503,
                "body": {
                    "ok": False,
                    "error": "overloaded",
                    "retriable": True,
                },
            }
        self.counters.bump("serving.requests")
        future = self._pool.submit(execute_query, self.view, spec)
        # The slot is freed when the computation finishes — not when the
        # deadline fires — so admission always reflects real backlog.
        future.add_done_callback(lambda _f: self._slots.release())
        try:
            result = future.result(timeout=self.deadline)
        except FutureTimeout:
            self.counters.bump("serving.deadline_exceeded")
            return {
                "status": 504,
                "body": {
                    "ok": False,
                    "error": "deadline-exceeded",
                    "retriable": True,
                },
            }
        except (QueryError, StoreError) as exc:
            self.counters.bump("serving.query_errors")
            return {
                "status": 400,
                "body": {
                    "ok": False,
                    "error": str(exc),
                    "retriable": False,
                },
            }
        return {"status": 200, "body": {"ok": True, "result": result}}

    def stats(self) -> Dict:
        return {
            "counters": self.counters.to_dict(),
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "deadline": self.deadline,
            "store": {
                "path": self.view.store.path,
                "bytes": self.view.store.store_bytes,
                "cuboids": len(self.view.store.masks),
                "groups": self.view.store.total_groups,
            },
        }

    def _build_httpd(self, port: int):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        server = self

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, status: int, body: Dict) -> None:
                payload = json.dumps(body, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):  # noqa: N802 - http.server API
                if self.path == "/healthz":
                    self._reply(200, {"ok": True})
                elif self.path == "/stats":
                    self._reply(200, server.stats())
                else:
                    self._reply(
                        404,
                        {"ok": False, "error": "not found",
                         "retriable": False},
                    )

            def do_POST(self):  # noqa: N802 - http.server API
                if self.path != "/query":
                    self._reply(
                        404,
                        {"ok": False, "error": "not found",
                         "retriable": False},
                    )
                    return
                length = int(self.headers.get("Content-Length", 0))
                try:
                    spec = json.loads(self.rfile.read(length) or b"{}")
                except ValueError:
                    self._reply(
                        400,
                        {"ok": False, "error": "body is not valid JSON",
                         "retriable": False},
                    )
                    return
                outcome = server._handle_query(spec)
                self._reply(outcome["status"], outcome["body"])

            def log_message(self, *_args):
                pass

        return ThreadingHTTPServer(("127.0.0.1", port), Handler)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "CubeServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        if self._serving:
            # shutdown() waits on serve_forever's exit handshake, so it
            # must only run once the serve loop has actually started.
            self._httpd.shutdown()
        self._httpd.server_close()
        self._pool.shutdown(wait=False)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "CubeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
