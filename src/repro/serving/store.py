"""The on-disk cube store: per-cuboid sorted segments behind a footer index.

``io.write_cube`` flattens a cube into one TSV stream — fine as an export,
useless as a serving artifact: answering ``rollup("name")`` means scanning
every c-group of every cuboid.  :class:`CubeStore` is the read-optimized
counterpart.  A store file is laid out as

* a **header line** — magic, format version, and a JSON blob carrying the
  schema, the aggregate's name/kind, and the iceberg threshold the cube
  was computed with;
* one **segment** per materialized cuboid — the cuboid's groups as
  ``repr(values)<TAB>repr(value)`` lines in ascending c-group order (the
  same ``<_C`` order the engines shuffle in), segments in bottom-up BFS
  order;
* a **footer** — a JSON index mapping each cuboid mask to its segment's
  byte offset, length, group count and CRC-32;
* a fixed-format **footer pointer** as the last line, so a reader finds
  the index with one seek from the end.

:meth:`CubeStore.open` reads only the header and footer; segment bytes
are fetched (and CRC-checked) on first touch, so a point or slice query
pays for exactly the cuboids it reads.  A small LRU keeps hot segments
decoded.  Corruption anywhere — bad magic, truncated footer, a flipped
byte in a segment — fails with a one-line, offset-numbered
:class:`StoreError` instead of silently serving wrong aggregates.

Values round-trip through ``repr``/``ast.literal_eval``: exact for every
finalized aggregate in the registry (ints, floats, strings, ``None``,
tuples) and for every dimension type the generators produce, and —
unlike JSON — it preserves the int/float and tuple/list distinctions the
bit-identity contract needs.
"""

from __future__ import annotations

import ast
import json
import os
import threading
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..cubing.result import CubeResult
from ..relation.lattice import all_cuboids, group_sort_key
from ..relation.schema import Schema

#: First token of a store file; bumped with the format version.
MAGIC = "repro-cube-store"
FORMAT_VERSION = 1

#: Default number of decoded segments kept hot per store.
DEFAULT_SEGMENT_CACHE = 16


class StoreError(ValueError):
    """Raised when a store file is malformed, truncated, or corrupt."""


class ServingCounters:
    """Shared read-path counters (``serving.*``), optionally mirrored
    into a :class:`~repro.observability.telemetry.Telemetry` registry.

    One instance is threaded through a store, its view, and the server
    so a single ``/stats`` read shows the whole pipeline.  All methods
    are cheap enough to call unguarded; thread safety comes from the
    caller's lock (the store and view serialize cache access anyway).
    """

    FIELDS = (
        "serving.cache_hit",        # query-result cache hits (view)
        "serving.cache_miss",       # query-result cache misses (view)
        "serving.segment_hit",      # decoded-segment LRU hits (store)
        "serving.segment_load",     # segments fetched from disk (store)
        "serving.bytes_read",       # raw segment bytes read from disk
        "serving.reaggregations",   # cuboids rebuilt from an ancestor
        "serving.requests",         # queries admitted by the server
        "serving.shed",             # queries refused at admission (503)
        "serving.deadline_exceeded",  # queries cut at the deadline (504)
        "serving.query_errors",     # queries rejected as unanswerable (400)
    )

    def __init__(self, telemetry=None):
        self._counts = {field: 0 for field in self.FIELDS}
        if telemetry is None:
            from ..observability.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry

    def bump(self, field: str, amount: int = 1) -> None:
        self._counts[field] += amount
        if self._telemetry.enabled:
            name = "repro_" + field.replace(".", "_") + "_total"
            self._telemetry.counter(name, f"{field} events").inc(amount)

    def value(self, field: str) -> int:
        return self._counts[field]

    def to_dict(self) -> Dict[str, int]:
        return dict(self._counts)


def _encode(obj) -> str:
    """One-token text encoding of a value; inverse is :func:`_decode`.

    ``repr`` escapes control characters, so the output never contains a
    literal tab or newline and one c-group always fits one line.
    """
    text = repr(obj)
    try:
        decoded = ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise StoreError(
            f"value {text[:60]!r} of type {type(obj).__name__} does not "
            "round-trip through repr/literal_eval and cannot be stored"
        ) from None
    if decoded != obj:
        raise StoreError(
            f"value {text[:60]!r} decodes inexactly and cannot be stored"
        )
    return text


def _decode(text: str):
    return ast.literal_eval(text)


def estimate_cube_bytes(cube: CubeResult) -> int:
    """Approximate resident size of a cube's group mapping in bytes.

    Sums ``sys.getsizeof`` over the dict, each key pair, each values
    tuple and its elements, and each aggregate value.  Shared/interned
    objects are counted once per reference, so this is an upper-ish
    estimate of exclusive footprint — good enough for the doctor's
    store-vs-memory ratio, not an allocator audit.
    """
    import sys

    total = sys.getsizeof(cube._groups)
    for (mask, values), agg in cube.items():
        total += sys.getsizeof((mask, values))
        total += sys.getsizeof(mask)
        total += sys.getsizeof(values)
        total += sum(sys.getsizeof(v) for v in values)
        total += sys.getsizeof(agg)
    return total


class CubeStore:
    """A cube materialized as an offset-indexed, lazily-read store file.

    Build one with :meth:`write`, read one with :meth:`open`::

        CubeStore.write(run.cube, "cube.store", aggregate="count")
        store = CubeStore.open("cube.store")
        store.cuboid(0b101)        # {values: aggregate}, one seek + read

    ``open`` returns a handle that keeps the file open; use it as a
    context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: str,
        handle,
        schema: Schema,
        index: "OrderedDict[int, Dict]",
        aggregate_name: Optional[str],
        aggregate_kind: Optional[str],
        min_group_size: int,
        store_bytes: int,
        segment_cache_size: int = DEFAULT_SEGMENT_CACHE,
        counters: Optional[ServingCounters] = None,
    ):
        self.path = path
        self.schema = schema
        self.aggregate_name = aggregate_name
        self.aggregate_kind = aggregate_kind
        self.min_group_size = min_group_size
        self.store_bytes = store_bytes
        self.counters = counters or ServingCounters()
        self._handle = handle
        self._index = index
        self._cache: "OrderedDict[int, Dict[Tuple, object]]" = OrderedDict()
        self._cache_size = max(1, segment_cache_size)
        self._lock = threading.RLock()

    # -- writing -------------------------------------------------------------

    @classmethod
    def write(
        cls,
        cube: CubeResult,
        path: str,
        aggregate: Optional[object] = None,
        cuboids: Optional[Sequence[int]] = None,
        min_group_size: int = 1,
    ) -> int:
        """Persist ``cube`` at ``path``; returns the bytes written.

        ``aggregate`` (an :class:`AggregateFunction` or registry name)
        is recorded so the read side knows whether missing cuboids may
        be rebuilt from an ancestor.  ``cuboids`` selects the masks to
        materialize (default: the whole lattice — cuboids with no
        groups are written as empty segments so "materialized empty"
        and "not materialized" stay distinguishable).  ``min_group_size``
        records the iceberg threshold the cube was computed with.
        """
        schema = cube.schema
        lattice = all_cuboids(schema.num_dimensions)
        if cuboids is None:
            masks = list(lattice)
        else:
            masks = sorted(set(cuboids))
            bad = [m for m in masks if m not in lattice]
            if bad:
                raise StoreError(
                    f"cuboid mask 0x{bad[0]:x} is outside the "
                    f"{schema.num_dimensions}-dimension lattice"
                )
        aggregate_name = aggregate_kind = None
        if aggregate is not None:
            if isinstance(aggregate, str):
                from ..aggregates import get_aggregate

                aggregate = get_aggregate(aggregate)
            aggregate_name = aggregate.name
            aggregate_kind = aggregate.kind.value

        # Segments come out of one pass over the (already deterministic)
        # row order: to_rows sorts by (level, mask, values), so each
        # cuboid's rows are contiguous and internally <_C-sorted.
        by_mask: Dict[int, List[Tuple[Tuple, object]]] = {m: [] for m in masks}
        for mask, values, value in cube.to_rows():
            if mask in by_mask:
                by_mask[mask].append((values, value))

        header = {
            "dimensions": list(schema.dimensions),
            "measure": schema.measure,
            "aggregate": aggregate_name,
            "aggregate_kind": aggregate_kind,
            "min_group_size": min_group_size,
            "total_groups": cube.num_groups,
        }
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(
                f"{MAGIC} {FORMAT_VERSION} "
                f"{json.dumps(header, sort_keys=True)}\n"
            )
            offset = handle.tell()
            entries = []
            for mask in sorted(masks, key=lambda m: group_sort_key(m, ())):
                lines = [
                    f"{_encode(values)}\t{_encode(value)}\n"
                    for values, value in by_mask[mask]
                ]
                segment = "".join(lines)
                raw = segment.encode("utf-8")
                handle.write(segment)
                entries.append(
                    {
                        "mask": mask,
                        "offset": offset,
                        "length": len(raw),
                        "groups": len(lines),
                        "crc32": zlib.crc32(raw),
                    }
                )
                offset += len(raw)
            footer = json.dumps(
                {"cuboids": entries}, sort_keys=True
            ) + "\n"
            footer_raw = footer.encode("utf-8")
            handle.write(footer)
            handle.write(f"footer {offset} {zlib.crc32(footer_raw)}\n")
            return handle.tell()

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        segment_cache_size: int = DEFAULT_SEGMENT_CACHE,
        counters: Optional[ServingCounters] = None,
    ) -> "CubeStore":
        """Open a store for querying; loads only the header and footer."""
        size = os.path.getsize(path)
        handle = open(path, "rb")
        try:
            return cls._open_handle(
                path, handle, size, segment_cache_size, counters
            )
        except Exception:
            handle.close()
            raise

    @classmethod
    def _open_handle(cls, path, handle, size, segment_cache_size, counters):
        first = handle.readline()
        prefix = f"{MAGIC} {FORMAT_VERSION} ".encode()
        if not first.startswith(f"{MAGIC} ".encode()):
            raise StoreError(f"{path}: not a repro cube store (bad magic)")
        if not first.startswith(prefix):
            raise StoreError(
                f"{path}: unsupported store format version "
                f"{first.split()[1].decode(errors='replace')!r} "
                f"(reader supports {FORMAT_VERSION})"
            )
        try:
            header = json.loads(first[len(prefix):].decode("utf-8"))
        except ValueError:
            raise StoreError(f"{path}: header line is not valid JSON") from None

        # The footer pointer is the short fixed-format last line; 64
        # bytes from the end always covers it.
        tail_start = max(0, size - 64)
        handle.seek(tail_start)
        tail_lines = handle.read().splitlines()
        if not tail_lines or not tail_lines[-1].startswith(b"footer "):
            raise StoreError(
                f"{path}: truncated store — footer pointer line missing"
            )
        parts = tail_lines[-1].split()
        try:
            footer_offset, footer_crc = int(parts[1]), int(parts[2])
        except (IndexError, ValueError):
            raise StoreError(
                f"{path}: malformed footer pointer "
                f"{tail_lines[-1].decode(errors='replace')!r}"
            ) from None
        handle.seek(footer_offset)
        footer_raw = handle.readline()
        if zlib.crc32(footer_raw) != footer_crc:
            raise StoreError(
                f"{path}: footer at offset {footer_offset}: crc mismatch "
                f"(expected {footer_crc}, got {zlib.crc32(footer_raw)})"
            )
        footer = json.loads(footer_raw.decode("utf-8"))

        try:
            schema = Schema(header["dimensions"], measure=header["measure"])
            index: "OrderedDict[int, Dict]" = OrderedDict(
                (entry["mask"], entry) for entry in footer["cuboids"]
            )
            store = cls(
                path,
                handle,
                schema,
                index,
                header.get("aggregate"),
                header.get("aggregate_kind"),
                int(header.get("min_group_size", 1)),
                size,
                segment_cache_size=segment_cache_size,
                counters=counters,
            )
            store.total_groups = int(header.get("total_groups", 0))
            return store
        except (KeyError, TypeError) as exc:
            raise StoreError(f"{path}: incomplete header/footer: {exc}") from None

    # -- reading -------------------------------------------------------------

    @property
    def masks(self) -> Tuple[int, ...]:
        """Materialized cuboid masks, in on-disk (BFS) order."""
        return tuple(self._index)

    def has_cuboid(self, mask: int) -> bool:
        return mask in self._index

    def group_count(self, mask: int) -> int:
        """Group count of a materialized cuboid, from the footer (no IO)."""
        try:
            return self._index[mask]["groups"]
        except KeyError:
            raise StoreError(
                f"{self.path}: cuboid 0x{mask:x} is not materialized"
            ) from None

    def groups_per_cuboid(self) -> Dict[int, int]:
        """``{mask: group count}`` for every materialized cuboid."""
        return {mask: entry["groups"] for mask, entry in self._index.items()}

    def cuboid(self, mask: int) -> Dict[Tuple, object]:
        """One cuboid's ``{values: aggregate}``, loaded (and cached) lazily."""
        with self._lock:
            cached = self._cache.get(mask)
            if cached is not None:
                self._cache.move_to_end(mask)
                self.counters.bump("serving.segment_hit")
                return cached
            entry = self._index.get(mask)
            if entry is None:
                raise StoreError(
                    f"{self.path}: cuboid 0x{mask:x} is not materialized"
                )
            groups = self._load_segment(mask, entry)
            self._cache[mask] = groups
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            return groups

    def _load_segment(self, mask: int, entry: Dict) -> Dict[Tuple, object]:
        offset, length = entry["offset"], entry["length"]
        self.counters.bump("serving.segment_load")
        self.counters.bump("serving.bytes_read", length)
        self._handle.seek(offset)
        raw = self._handle.read(length)
        if len(raw) != length:
            raise StoreError(
                f"{self.path}: segment for cuboid 0x{mask:x} at offset "
                f"{offset}: truncated ({len(raw)} of {length} bytes)"
            )
        if zlib.crc32(raw) != entry["crc32"]:
            raise StoreError(
                f"{self.path}: segment for cuboid 0x{mask:x} at offset "
                f"{offset}: crc mismatch (expected {entry['crc32']}, "
                f"got {zlib.crc32(raw)})"
            )
        groups: Dict[Tuple, object] = {}
        for i, line in enumerate(raw.decode("utf-8").splitlines()):
            try:
                values_text, _, value_text = line.partition("\t")
                groups[_decode(values_text)] = _decode(value_text)
            except (ValueError, SyntaxError):
                raise StoreError(
                    f"{self.path}: segment for cuboid 0x{mask:x} at offset "
                    f"{offset}: unparsable line {i + 1}: {line[:60]!r}"
                ) from None
        if len(groups) != entry["groups"]:
            raise StoreError(
                f"{self.path}: segment for cuboid 0x{mask:x} at offset "
                f"{offset}: {len(groups)} groups, footer promised "
                f"{entry['groups']}"
            )
        return groups

    def to_cube(self) -> CubeResult:
        """Materialize the whole store back into a :class:`CubeResult`."""
        groups: Dict[Tuple[int, Tuple], object] = {}
        for mask in self._index:
            for values, value in self.cuboid(mask).items():
                groups[(mask, values)] = value
        return CubeResult(self.schema, groups)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CubeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CubeStore({self.path!r}, {len(self._index)} cuboids, "
            f"{self.store_bytes} bytes)"
        )
