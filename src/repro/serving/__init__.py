"""The cube serving layer: the read side of the pipeline.

The engines end with a materialized :class:`~repro.cubing.result.CubeResult`;
this package turns that batch artifact into something queryable at
serving time, in three layers:

* :mod:`~repro.serving.store` — :class:`CubeStore`, the on-disk format:
  per-cuboid sorted segments behind a checksummed footer index, written
  once and read lazily so a query touches only the cuboids it needs;
* :mod:`~repro.serving.view` — :class:`StoredCubeView`, the planner:
  the full :class:`~repro.query.view.CubeView` API over a store, with
  ancestor-cuboid re-aggregation for non-materialized cuboids, an LRU
  segment cache and a keyed query-result cache;
* :mod:`~repro.serving.server` — :class:`CubeServer`, the front end:
  a ThreadPool-backed HTTP query server with bounded admission,
  per-query deadlines and typed retriable load-shedding errors
  (``python -m repro serve-cube``).
"""

from .server import CubeServer, execute_query
from .store import CubeStore, ServingCounters, StoreError, estimate_cube_bytes
from .view import StoredCubeView

__all__ = [
    "CubeServer",
    "CubeStore",
    "ServingCounters",
    "StoreError",
    "StoredCubeView",
    "estimate_cube_bytes",
    "execute_query",
]
