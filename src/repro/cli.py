"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``       write one of the paper's workloads as a delimited file
``cube``           compute a cube from a text relation with a chosen engine
``compare``        run several engines on a workload, print the comparison
``sketch``         build and describe the SP-Sketch of a text relation
``analyze-trace``  summarize a trace file written with ``--trace``
``doctor``         audit sketch accuracy & load balance vs ground truth
``metrics-export`` render a telemetry timeline as Prometheus text
``report``         stitch run artifacts into one self-contained HTML page
``explain-reducer`` walk a lineage artifact from a reducer back to
                   cuboids, map tasks and input splits
``explain-group``  walk a lineage artifact from a cuboid forward to the
                   reducers and map tasks that carried it
``serve-cube``     serve a cube store over HTTP with bounded admission,
                   per-query deadlines and load shedding
``query``          answer one OLAP query from a cube store

Examples::

    python -m repro generate binomial --rows 20000 --skew 0.4 -o data.tsv
    python -m repro cube data.tsv --engine spcube --aggregate sum -o cube.tsv
    python -m repro compare zipf --rows 10000
    python -m repro compare binomial --rows 10000 --fault-seed 7 --verify
    python -m repro sketch data.tsv
    python -m repro cube data.tsv --fault-seed 7 --trace run.trace.jsonl
    python -m repro analyze-trace run.trace.jsonl --format json
    python -m repro doctor --rows 4000 --machines 8 --json report.json
    python -m repro cube data.tsv --telemetry run.timeline.jsonl
    python -m repro metrics-export run.timeline.jsonl --check
    python -m repro cube data.tsv --lineage run.lineage.jsonl --watchdog
    python -m repro explain-reducer run.lineage.jsonl
    python -m repro explain-group run.lineage.jsonl --cuboid 0xF
    python -m repro report --trace run.trace.jsonl \
        --telemetry run.timeline.jsonl --lineage run.lineage.jsonl \
        -o report.html
    python -m repro cube data.tsv --store cube.store
    python -m repro query cube.store '{"op": "rollup", "dimensions": ["a1"]}'
    python -m repro serve-cube cube.store --port 8080

The ``cube`` and ``compare`` commands take fault-injection knobs
(``--fault-seed``, ``--crash-prob``, ``--straggle-prob``,
``--max-task-attempts``, plus the failure-domain knobs ``--num-nodes``,
``--node-crash-prob`` and ``--checkpoint/--no-checkpoint``) so task
crashes, stragglers, whole-node losses and the framework's recovery are
reproducible from the command line, plus ``--parallelism N``
(or the ``REPRO_PARALLELISM`` environment variable) to fan map/reduce
tasks out across worker processes — results are bit-identical to serial.
Both also take observability knobs: ``--trace PATH`` writes a structured
JSONL trace of the run (``--trace-level`` picks the detail),
``--telemetry PATH`` writes a metrics timeline (inspect with
``metrics-export`` or fold into ``report``), ``--lineage PATH`` writes
the shuffle flight-recorder artifact (walk with ``explain-reducer`` /
``explain-group``), ``--watchdog`` turns on online skew/misannotation/
straggler alerts, and ``--progress`` prints live per-job/fault lines to
stderr; see :mod:`repro.observability`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import io as repro_io
from .aggregates import get_aggregate
from .analysis import paper_cluster, run_algorithms
from .baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from .mapreduce.faults import FaultPlan, RetryPolicy
from .core import SPCube, build_exact_sketch
from .datagen import (
    USAGOV_CUBE_DIMENSIONS,
    gen_binomial,
    gen_zipf,
    project_to_dimensions,
    usagov_clicks,
    wikipedia_traffic,
)
from .observability import (
    ExplainError,
    JsonlSink,
    LineageIndex,
    LineageRecorder,
    ProgressSink,
    Telemetry,
    TimelineAnalysis,
    TimelineError,
    TraceAnalysis,
    TraceSchemaError,
    Tracer,
    Watchdog,
    check_prometheus_text,
    explain_group,
    explain_reducer,
    format_explain_markdown,
    parse_cuboid,
)
from .relation import format_cuboid, format_group

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "mrcube": MRCube,
    "hive": HiveCube,
    "pipesort": PipeSortMR,
}


def _generate_dataset(name: str, rows: int, skew: float, seed: int):
    if name == "binomial":
        return gen_binomial(rows, skew, seed=seed)
    if name == "zipf":
        return gen_zipf(rows, seed=seed)
    if name == "wikipedia":
        return wikipedia_traffic(rows, seed=seed)
    if name == "usagov":
        return project_to_dimensions(
            usagov_clicks(rows, seed=seed), USAGOV_CUBE_DIMENSIONS
        )
    raise SystemExit(f"unknown dataset {name!r}")


def cmd_generate(args) -> int:
    relation = _generate_dataset(args.dataset, args.rows, args.skew, args.seed)
    count = repro_io.write_relation(relation, args.output)
    print(f"wrote {count} rows of {relation.name} to {args.output}")
    return 0


def _cluster_from_args(args, num_rows: int):
    """Build the run's cluster, honouring the fault-injection knobs."""
    try:
        fault_plan = None
        if args.fault_seed is not None:
            fault_plan = FaultPlan(
                seed=args.fault_seed,
                crash_prob=args.crash_prob,
                straggle_prob=args.straggle_prob,
                node_crash_prob=args.node_crash_prob,
            )
        retry_policy = RetryPolicy(max_attempts=args.max_task_attempts)
        cluster = paper_cluster(
            num_rows,
            num_machines=args.machines,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            parallelism=args.parallelism,
            num_nodes=args.num_nodes,
            checkpoint=args.checkpoint,
        )
        if args.memory_records is not None:
            cluster = cluster.with_memory(args.memory_records)
        return cluster
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _tracer_from_args(args):
    """Build the run's tracer from ``--trace``/``--progress`` (or None)."""
    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    if args.progress:
        sinks.append(ProgressSink())
    if not sinks:
        return None
    try:
        return Tracer(sinks, level=args.trace_level)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _telemetry_from_args(args, run_id: str):
    """Build the run's telemetry collector from ``--telemetry`` (or None)."""
    if not args.telemetry:
        return None
    try:
        return Telemetry(cadence=args.telemetry_cadence, run_id=run_id)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _finish_telemetry(cluster, args) -> None:
    """Write the timeline artifact if telemetry was on."""
    telemetry = getattr(cluster, "telemetry", None)
    if telemetry is None:
        return
    telemetry.write_timeline(args.telemetry)
    print(
        f"telemetry timeline written to {args.telemetry} "
        f"({len(telemetry.samples)} samples)"
    )


def _lineage_from_args(args, run_id: str):
    """Build the run's flight recorder from ``--lineage`` (or None)."""
    if not args.lineage:
        return None
    return LineageRecorder(run_id=run_id)


def _watchdog_from_args(args):
    """Build the run's watchdog from ``--watchdog`` (or None)."""
    if not args.watchdog:
        return None
    try:
        return Watchdog(skew_tolerance=args.watchdog_tolerance)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None


def _finish_lineage(cluster, args) -> None:
    """Write the lineage artifact and summarize alerts, if either was on."""
    lineage = getattr(cluster, "lineage", None)
    if lineage is not None:
        lineage.write(args.lineage)
        print(
            f"lineage written to {args.lineage} "
            f"({len(lineage.jobs)} job(s), {len(lineage.alerts)} alert(s); "
            f"inspect with 'repro explain-reducer {args.lineage}')"
        )
    watchdog = getattr(cluster, "watchdog", None)
    if watchdog is not None:
        counts: Dict[str, int] = {}
        for alert in watchdog.alerts:
            counts[alert["kind"]] = counts.get(alert["kind"], 0) + 1
        if counts:
            summary = ", ".join(
                f"{count} {kind}" for kind, count in sorted(counts.items())
            )
            print(f"watchdog:        {summary}")
        else:
            print("watchdog:        no alerts")


def _print_survival(metrics) -> None:
    """One line on how the framework kept the run alive under faults."""
    print(
        f"fault recovery:  {metrics.attempts} attempts, "
        f"{metrics.killed_tasks} killed, "
        f"{metrics.speculative_wins} speculative wins, "
        f"{metrics.recovered} tasks recovered"
    )
    if metrics.nodes_lost:
        print(
            f"node failures:   {metrics.nodes_lost} node(s) lost, "
            f"{metrics.resumed_rounds} round(s) resumed from checkpoint"
        )


def _failure_reason(metrics) -> str:
    if metrics.aborted:
        return "aborted — a task exhausted its retry budget"
    return "reducers out of memory"


def cmd_cube(args) -> int:
    relation = repro_io.read_relation(args.input)
    cluster = _cluster_from_args(args, len(relation))
    cluster.tracer = _tracer_from_args(args)
    cluster.telemetry = _telemetry_from_args(args, run_id=args.engine)
    cluster.lineage = _lineage_from_args(args, run_id=args.engine)
    cluster.watchdog = _watchdog_from_args(args)
    engine_cls = ENGINES[args.engine]
    engine = engine_cls(cluster, get_aggregate(args.aggregate))
    try:
        run = engine.compute(relation)
    finally:
        if cluster.tracer is not None:
            cluster.tracer.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    _finish_telemetry(cluster, args)
    _finish_lineage(cluster, args)

    if args.output:
        lines = repro_io.write_cube(run.cube, args.output)
        print(f"wrote {lines} c-groups to {args.output}")
    if args.store:
        from .serving import CubeStore

        size = CubeStore.write(
            run.cube, args.store, aggregate=args.aggregate
        )
        print(
            f"wrote cube store to {args.store} ({size} bytes; "
            f"serve with 'repro serve-cube {args.store}')"
        )
    metrics = run.metrics
    print(f"engine:          {metrics.algorithm}")
    print(f"c-groups:        {run.cube.num_groups}")
    print(f"simulated time:  {metrics.total_seconds:.1f} s")
    print(f"map output:      {metrics.intermediate_bytes / 1e6:.2f} MB")
    if args.fault_seed is not None:
        _print_survival(metrics)
    if metrics.failed:
        print(f"status:          FAILED ({_failure_reason(metrics)})")
    return 0


def cmd_compare(args) -> int:
    relation = _generate_dataset(args.dataset, args.rows, args.skew, args.seed)
    cluster = _cluster_from_args(args, len(relation))
    cluster.tracer = _tracer_from_args(args)
    cluster.telemetry = _telemetry_from_args(args, run_id=args.dataset)
    cluster.lineage = _lineage_from_args(args, run_id=args.dataset)
    cluster.watchdog = _watchdog_from_args(args)
    engines = {
        name: ENGINES[name](cluster, get_aggregate(args.aggregate))
        for name in args.engines
    }
    try:
        runs = run_algorithms(relation, engines, verify=args.verify)
    finally:
        if cluster.tracer is not None:
            cluster.tracer.close()
    if args.trace:
        print(f"trace written to {args.trace}\n")
    _finish_telemetry(cluster, args)
    _finish_lineage(cluster, args)

    with_faults = args.fault_seed is not None
    header = f"{'engine':12s}{'time(s)':>10s}{'traffic(MB)':>13s}{'status':>10s}"
    if with_faults:
        header += f"{'attempts':>10s}{'recovered':>11s}"
    print(f"dataset: {relation.name}\n")
    print(header)
    print("-" * len(header))
    for name, run in runs.items():
        metrics = run.metrics
        # "stuck" mirrors Figure 6a's reporting of runs that never finish.
        if metrics.aborted:
            status = "stuck"
        elif metrics.failed:
            status = "OOM"
        else:
            status = "ok"
        line = (
            f"{name:12s}{metrics.total_seconds:10.1f}"
            f"{metrics.intermediate_bytes / 1e6:13.2f}{status:>10s}"
        )
        if with_faults:
            line += f"{metrics.attempts:>10d}{metrics.recovered:>11d}"
        print(line)
    if args.verify:
        print("\nall completed engines produced identical cubes")
    return 0


def cmd_sketch(args) -> int:
    relation = repro_io.read_relation(args.input)
    cluster = paper_cluster(len(relation), num_machines=args.machines)
    m = cluster.derive_memory(len(relation))
    if args.exact:
        sketch = build_exact_sketch(relation, cluster.num_machines, m)
    else:
        run = SPCube(cluster).compute(relation)
        sketch = run.sketch

    schema = relation.schema
    summary = sketch.to_dict()
    print(f"SP-Sketch of {relation.name} "
          f"({'exact' if args.exact else 'sampled'}):")
    print(f"  serialized size: {summary['serialized_bytes']} bytes")
    print(f"  skewed c-groups: {summary['num_skewed']}")
    print(f"  partition elements: {summary['num_partition_elements']} "
          f"across {summary['num_cuboids']} cuboids")
    shown = 0
    for mask, values, count in sketch.skewed_groups():
        if shown >= args.limit:
            print(f"  ... ({sketch.num_skewed - shown} more)")
            break
        print(f"  {format_group(mask, values, schema):40s} "
              f"in {format_cuboid(mask, schema)}  (sample count {count})")
        shown += 1
    if args.output:
        size = repro_io.write_sketch(sketch, args.output)
        print(f"  written to {args.output} ({size} bytes)")
    return 0


def cmd_analyze_trace(args) -> int:
    try:
        analysis = TraceAnalysis.from_file(args.trace_file)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    # A malformed trace means every downstream number is suspect, so the
    # schema check always runs: one line to stderr, nonzero exit, no
    # summary built from records that lie.
    try:
        analysis.validate()
    except TraceSchemaError as error:
        print(f"trace schema violation: {error}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{len(analysis.records)} records, schema ok",
              file=sys.stderr if args.format == "json" else sys.stdout)
    if args.format == "json":
        import json

        # summary_dict() self-validates against SUMMARY_SCHEMA, so a
        # summary that reaches stdout is guaranteed well-formed.
        print(json.dumps(analysis.summary_dict(), indent=2, sort_keys=True))
    else:
        print(analysis.format_summary())
    return 0


def cmd_metrics_export(args) -> int:
    try:
        analysis = TimelineAnalysis.from_file(args.timeline)
        registry = analysis.registry()
    except (OSError, TimelineError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    text = registry.prometheus_text()
    problems = check_prometheus_text(text)
    if problems:
        for problem in problems:
            print(f"exposition problem: {problem}", file=sys.stderr)
        return 1
    if args.check:
        print(
            f"{len(text.splitlines())} exposition lines, format ok",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"exposition written to {args.output}", file=sys.stderr)
    elif args.serve is None:
        print(text, end="")
    if args.serve is not None:
        _serve_metrics(text, args.serve)
    return 0


def build_metrics_server(text: str, port: int):
    """A bound HTTP server exposing ``text`` at ``/metrics``.

    Split out of :func:`_serve_metrics` so tests can bind port 0, issue
    a request against ``server.server_port`` and shut the server down
    without involving a terminal; the caller owns ``server_close()``.
    """
    from http.server import BaseHTTPRequestHandler, HTTPServer

    payload = text.encode("utf-8")

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path not in ("/metrics", "/"):
                self.send_error(404)
                return
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *_args):
            pass

    return HTTPServer(("127.0.0.1", port), Handler)


def _serve_metrics(text: str, port: int) -> None:
    """Serve the exposition at ``/metrics`` until interrupted."""
    server = build_metrics_server(text, port)
    print(
        f"serving /metrics on http://127.0.0.1:{server.server_port} "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def _explain_common(args, result) -> int:
    """Shared output path of the two explain commands."""
    if args.format == "json":
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(format_explain_markdown(result), end="")
    return 0


def cmd_explain_reducer(args) -> int:
    try:
        index = LineageIndex.from_file(args.lineage_file)
        result = explain_reducer(index, job=args.job, reducer=args.reducer)
    except (OSError, ExplainError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    return _explain_common(args, result)


def cmd_explain_group(args) -> int:
    try:
        cuboid = parse_cuboid(args.cuboid)
        index = LineageIndex.from_file(args.lineage_file)
        result = explain_group(index, cuboid, job=args.job)
    except (OSError, ExplainError, ValueError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    return _explain_common(args, result)


def cmd_report(args) -> int:
    from .analysis.htmlreport import write_report

    if not any(
        (args.trace, args.telemetry, args.lineage, args.doctor_json,
         args.perf_json, args.recovery_json)
    ):
        raise SystemExit(
            "repro: error: report needs at least one input artifact "
            "(--trace/--telemetry/--lineage/--doctor-json/--perf-json/"
            "--recovery-json)"
        )
    try:
        write_report(
            args.output,
            trace=args.trace,
            telemetry=args.telemetry,
            lineage=args.lineage,
            doctor=args.doctor_json,
            perf=args.perf_json,
            recovery=args.recovery_json,
            title=args.title,
        )
    except (OSError, ValueError, KeyError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    print(f"report written to {args.output}")
    return 0


def cmd_serve_cube(args) -> int:
    from .serving import CubeServer, StoredCubeView, StoreError

    try:
        view = StoredCubeView.open(
            args.store,
            segment_cache_size=args.segment_cache,
            result_cache_size=args.result_cache,
        )
    except (OSError, StoreError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    try:
        server = CubeServer(
            view,
            workers=args.workers,
            queue_depth=args.queue_depth,
            deadline=args.deadline,
            port=args.port,
        )
    except ValueError as error:
        view.close()
        raise SystemExit(f"repro: error: {error}") from None
    print(
        f"serving {args.store} "
        f"({len(view.store.masks)} cuboids, {view.store.total_groups} "
        f"groups) on http://127.0.0.1:{server.port} — POST /query, "
        f"GET /stats (Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        server.close()
        view.close()
    return 0


def cmd_query(args) -> int:
    import json

    from .query.view import QueryError
    from .serving import StoredCubeView, StoreError, execute_query

    try:
        spec = json.loads(args.spec)
    except ValueError as error:
        raise SystemExit(
            f"repro: error: query spec is not valid JSON: {error}"
        ) from None
    try:
        with StoredCubeView.open(args.store) as view:
            result = execute_query(view, spec)
            if args.stats:
                print(
                    json.dumps(view.stats(), sort_keys=True),
                    file=sys.stderr,
                )
    except (OSError, StoreError, QueryError) as error:
        raise SystemExit(f"repro: error: {error}") from None
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_doctor(args) -> int:
    from .observability import format_doctor_markdown, run_doctor

    try:
        report = run_doctor(
            rows=args.rows,
            machines=args.machines,
            engines=args.engines,
            binomial_skews=args.binomial_skews,
            zipf_exponents=args.zipf_exponents,
            seed=args.seed,
            balance_tolerance=args.balance_tolerance,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}") from None
    markdown = format_doctor_markdown(report)
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_out}", file=sys.stderr)
    if args.markdown_out:
        with open(args.markdown_out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"markdown written to {args.markdown_out}", file=sys.stderr)
    print(markdown, end="")
    if args.strict and not report["healthy"]:
        return 1
    return 0


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    """Observability knobs shared by the cube-computing commands."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured JSONL trace of the run "
             "(inspect with 'repro analyze-trace PATH')",
    )
    group.add_argument(
        "--trace-level", choices=["job", "task", "debug"], default="task",
        help="trace detail: job = run/job/phase spans, task = + per-attempt "
             "spans and fault events, debug = + route/spill detail",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="print live per-job and per-fault progress lines to stderr",
    )
    group.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="collect runtime metrics and write a JSONL timeline "
             "(inspect with 'repro metrics-export PATH' or fold into "
             "'repro report')",
    )
    group.add_argument(
        "--telemetry-cadence", type=float, default=0.0, metavar="SECONDS",
        help="minimum logical seconds between kept samples of one series "
             "(0 keeps everything; downsampling is deterministic)",
    )
    group.add_argument(
        "--lineage", metavar="PATH", default=None,
        help="record per-(map task, reducer, cuboid) shuffle flows and "
             "write the lineage artifact (walk with 'repro "
             "explain-reducer PATH' / 'repro explain-group PATH')",
    )
    group.add_argument(
        "--watchdog", action="store_true",
        help="compare observed reducer loads against the sketch-predicted "
             "n/k + m band while the run executes; alerts surface on "
             "stderr (--progress), in the trace and in the lineage "
             "artifact",
    )
    group.add_argument(
        "--watchdog-tolerance", type=float, default=2.0, metavar="X",
        help="multiple of the n/k + m band a reducer (or one cuboid's "
             "flow into it) may reach before a watchdog alert fires",
    )


def _add_execution_args(parser: argparse.ArgumentParser) -> None:
    """Execution-backend knobs shared by the cube-computing commands."""
    parser.add_argument(
        "--parallelism", type=int, default=None, metavar="N",
        help="worker processes running map/reduce tasks concurrently "
             "(default: REPRO_PARALLELISM env var, else serial); "
             "results are bit-identical to a serial run",
    )
    parser.add_argument(
        "--memory-records", type=int, default=None, metavar="M",
        help="pin the per-machine memory budget m in records instead of "
             "the calibrated n/(4k) default; m is the skew threshold and "
             "the n/k + m load band the doctor and watchdog check against",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Fault-injection knobs shared by the cube-computing commands."""
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="inject seeded task crashes/stragglers and DFS read drops; "
             "the same seed reproduces the same faults",
    )
    group.add_argument(
        "--crash-prob", type=float, default=0.1, metavar="P",
        help="per-attempt crash probability when --fault-seed is given",
    )
    group.add_argument(
        "--straggle-prob", type=float, default=0.1, metavar="P",
        help="per-attempt straggler probability when --fault-seed is given",
    )
    group.add_argument(
        "--max-task-attempts", type=int, default=4, metavar="N",
        help="attempts per task before the job aborts (Hadoop default 4)",
    )
    group.add_argument(
        "--num-nodes", type=int, default=None, metavar="N",
        help="physical failure domains the machines are placed on "
             "(default: one node per machine)",
    )
    group.add_argument(
        "--node-crash-prob", type=float, default=0.0, metavar="P",
        help="per-node per-job probability of losing a whole node (and "
             "its DFS replicas) when --fault-seed is given",
    )
    group.add_argument(
        "--checkpoint", action=argparse.BooleanOptionalAction, default=True,
        help="checkpoint each completed round to the DFS and resume a "
             "node-killed round from the last checkpoint instead of "
             "aborting the run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SP-Cube: skew-resilient MapReduce cube computation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a workload to a file")
    gen.add_argument(
        "dataset", choices=["binomial", "zipf", "wikipedia", "usagov"]
    )
    gen.add_argument("--rows", type=int, default=10_000)
    gen.add_argument("--skew", type=float, default=0.3,
                     help="binomial skew probability p")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(fn=cmd_generate)

    cube = sub.add_parser("cube", help="compute a cube from a file")
    cube.add_argument("input")
    cube.add_argument("--engine", choices=sorted(ENGINES), default="spcube")
    cube.add_argument("--aggregate", default="count")
    cube.add_argument("--machines", type=int, default=20)
    cube.add_argument("-o", "--output")
    cube.add_argument(
        "--store", metavar="PATH", default=None,
        help="also write the cube as a serving store (query with "
             "'repro query PATH ...' or 'repro serve-cube PATH')",
    )
    _add_execution_args(cube)
    _add_fault_args(cube)
    _add_trace_args(cube)
    cube.set_defaults(fn=cmd_cube)

    compare = sub.add_parser("compare", help="run engines side by side")
    compare.add_argument(
        "dataset", choices=["binomial", "zipf", "wikipedia", "usagov"]
    )
    compare.add_argument("--rows", type=int, default=10_000)
    compare.add_argument("--skew", type=float, default=0.3)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--machines", type=int, default=20)
    compare.add_argument("--aggregate", default="count")
    compare.add_argument(
        "--engines",
        nargs="+",
        choices=sorted(ENGINES),
        default=["spcube", "mrcube", "hive"],
    )
    compare.add_argument("--verify", action="store_true",
                         help="cross-check that all cubes agree")
    _add_execution_args(compare)
    _add_fault_args(compare)
    _add_trace_args(compare)
    compare.set_defaults(fn=cmd_compare)

    sketch = sub.add_parser("sketch", help="build and describe an SP-Sketch")
    sketch.add_argument("input")
    sketch.add_argument("--machines", type=int, default=20)
    sketch.add_argument("--exact", action="store_true",
                        help="build the exact (utopian) sketch")
    sketch.add_argument("--limit", type=int, default=10,
                        help="skewed groups to list")
    sketch.add_argument("-o", "--output", help="write the sketch as JSON")
    sketch.set_defaults(fn=cmd_sketch)

    analyze = sub.add_parser(
        "analyze-trace",
        help="summarize a trace file: per-reducer load, attempt chains, "
             "straggler timelines, recovery cost",
    )
    analyze.add_argument("trace_file")
    analyze.add_argument(
        "--validate", action="store_true",
        help="print the record count after the schema check (the check "
             "itself always runs; violations exit 1)",
    )
    analyze.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text = the human-readable report, json = the stable "
             "machine-readable summary (schema_version 1, append-only keys)",
    )
    analyze.set_defaults(fn=cmd_analyze_trace)

    metrics_export = sub.add_parser(
        "metrics-export",
        help="rebuild the Prometheus text exposition from a telemetry "
             "timeline written with --telemetry",
    )
    metrics_export.add_argument("timeline")
    metrics_export.add_argument(
        "--check", action="store_true",
        help="report the line count after the format check (the check "
             "itself always runs; violations exit 1)",
    )
    metrics_export.add_argument(
        "-o", "--output", metavar="PATH",
        help="write the exposition to a file instead of stdout",
    )
    metrics_export.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve the exposition at /metrics on 127.0.0.1:PORT "
             "(0 picks a free port) until interrupted",
    )
    metrics_export.set_defaults(fn=cmd_metrics_export)

    explain_reducer_p = sub.add_parser(
        "explain-reducer",
        help="walk a lineage artifact from one reducer back to the "
             "cuboids, map tasks and input splits that loaded it "
             "(defaults to the hottest reducer of the dominant job)",
    )
    explain_reducer_p.add_argument("lineage_file")
    explain_reducer_p.add_argument(
        "--job", default=None,
        help="job to explain (default: the job shuffling the most records)",
    )
    explain_reducer_p.add_argument(
        "--reducer", type=int, default=None, metavar="R",
        help="reducer partition id (default: the hottest one)",
    )
    explain_reducer_p.add_argument(
        "--format", choices=["markdown", "json"], default="markdown",
    )
    explain_reducer_p.set_defaults(fn=cmd_explain_reducer)

    explain_group_p = sub.add_parser(
        "explain-group",
        help="walk a lineage artifact from one cuboid forward to the "
             "reducers and map tasks that carried its groups",
    )
    explain_group_p.add_argument("lineage_file")
    explain_group_p.add_argument(
        "--cuboid", required=True, metavar="MASK",
        help="cuboid lattice mask (decimal, 0x hex or 0b binary)",
    )
    explain_group_p.add_argument(
        "--job", default=None,
        help="job to explain (default: the job shuffling the most records)",
    )
    explain_group_p.add_argument(
        "--format", choices=["markdown", "json"], default="markdown",
    )
    explain_group_p.set_defaults(fn=cmd_explain_group)

    report = sub.add_parser(
        "report",
        help="stitch a run's artifacts (trace, telemetry timeline, doctor "
             "audit, BENCH files) into one self-contained HTML page",
    )
    report.add_argument("--trace", metavar="PATH",
                        help="JSONL trace written with --trace")
    report.add_argument("--telemetry", metavar="PATH",
                        help="JSONL timeline written with --telemetry")
    report.add_argument("--lineage", metavar="PATH",
                        help="JSONL lineage artifact written with --lineage")
    report.add_argument("--doctor-json", metavar="PATH",
                        help="doctor report written with 'doctor --json'")
    report.add_argument("--perf-json", metavar="PATH",
                        help="BENCH_perf.json from the perf bench")
    report.add_argument("--recovery-json", metavar="PATH",
                        help="BENCH_recovery.json from the recovery bench")
    report.add_argument("--title", default="repro run report")
    report.add_argument("-o", "--output", default="report.html")
    report.set_defaults(fn=cmd_report)

    serve_cube = sub.add_parser(
        "serve-cube",
        help="serve a cube store over HTTP: ThreadPool workers, bounded "
             "admission queue, per-query deadline, retriable load "
             "shedding; POST /query, GET /stats, GET /healthz",
    )
    serve_cube.add_argument("store", help="store file written with --store")
    serve_cube.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="bind 127.0.0.1:PORT (0 picks a free port)",
    )
    serve_cube.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="query worker threads",
    )
    serve_cube.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admitted queries allowed to wait beyond the workers; "
             "requests past workers + N are shed with a retriable 503",
    )
    serve_cube.add_argument(
        "--deadline", type=float, default=5.0, metavar="SECONDS",
        help="per-query deadline; late answers return a retriable 504",
    )
    serve_cube.add_argument(
        "--segment-cache", type=int, default=16, metavar="N",
        help="decoded cuboid segments kept in the LRU cache",
    )
    serve_cube.add_argument(
        "--result-cache", type=int, default=128, metavar="N",
        help="finished query results kept in the LRU cache",
    )
    serve_cube.set_defaults(fn=cmd_serve_cube)

    query = sub.add_parser(
        "query",
        help="answer one OLAP query from a cube store, e.g. "
             "'{\"op\": \"rollup\", \"dimensions\": [\"a1\"]}'",
    )
    query.add_argument("store", help="store file written with --store")
    query.add_argument(
        "spec",
        help="JSON query spec: op = rollup | total | slice | drilldown "
             "| top | pivot | cuboid_sizes",
    )
    query.add_argument(
        "--stats", action="store_true",
        help="print the serving counters to stderr after answering",
    )
    query.set_defaults(fn=cmd_query)

    doctor = sub.add_parser(
        "doctor",
        help="audit sketch quality and load balance against exact ground "
             "truth on synthetic skew sweeps, with per-reducer load "
             "attribution and engine side-by-sides",
    )
    doctor.add_argument("--rows", type=int, default=4_000)
    doctor.add_argument("--machines", type=int, default=8)
    doctor.add_argument(
        "--engines", nargs="+", choices=sorted(ENGINES),
        default=sorted(ENGINES),
        help="engines for the side-by-side table (spcube always runs)",
    )
    doctor.add_argument(
        "--binomial-skews", nargs="*", type=float, default=[0.1, 0.4],
        metavar="P", help="gen-binomial skew probabilities to audit",
    )
    doctor.add_argument(
        "--zipf-exponents", nargs="*", type=float, default=[1.1, 1.6],
        metavar="S", help="gen-zipf exponents to audit",
    )
    doctor.add_argument("--seed", type=int, default=0)
    doctor.add_argument(
        "--balance-tolerance", type=float, default=2.0, metavar="X",
        help="flag a cuboid when its heaviest partition (skewed groups "
             "excluded) exceeds X times the n/k + m per-partition load "
             "that Prop 4.2(2) promises for exact elements",
    )
    doctor.add_argument("--json", dest="json_out", metavar="PATH",
                        help="write the full report as JSON")
    doctor.add_argument("--markdown", dest="markdown_out", metavar="PATH",
                        help="write the markdown report to a file")
    doctor.add_argument("--strict", action="store_true",
                        help="exit 1 when the audit finds problems")
    doctor.set_defaults(fn=cmd_doctor)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
