"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  write one of the paper's workloads as a delimited text file
``cube``      compute a cube from a text relation with a chosen engine
``compare``   run several engines on a workload and print the comparison
``sketch``    build and describe the SP-Sketch of a text relation

Examples::

    python -m repro generate binomial --rows 20000 --skew 0.4 -o data.tsv
    python -m repro cube data.tsv --engine spcube --aggregate sum -o cube.tsv
    python -m repro compare zipf --rows 10000
    python -m repro sketch data.tsv
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import io as repro_io
from .aggregates import get_aggregate
from .analysis import paper_cluster, run_algorithms
from .baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from .core import SPCube, build_exact_sketch
from .datagen import (
    USAGOV_CUBE_DIMENSIONS,
    gen_binomial,
    gen_zipf,
    project_to_dimensions,
    usagov_clicks,
    wikipedia_traffic,
)
from .relation import format_cuboid, format_group

ENGINES = {
    "spcube": SPCube,
    "naive": NaiveCube,
    "mrcube": MRCube,
    "hive": HiveCube,
    "pipesort": PipeSortMR,
}


def _generate_dataset(name: str, rows: int, skew: float, seed: int):
    if name == "binomial":
        return gen_binomial(rows, skew, seed=seed)
    if name == "zipf":
        return gen_zipf(rows, seed=seed)
    if name == "wikipedia":
        return wikipedia_traffic(rows, seed=seed)
    if name == "usagov":
        return project_to_dimensions(
            usagov_clicks(rows, seed=seed), USAGOV_CUBE_DIMENSIONS
        )
    raise SystemExit(f"unknown dataset {name!r}")


def cmd_generate(args) -> int:
    relation = _generate_dataset(args.dataset, args.rows, args.skew, args.seed)
    count = repro_io.write_relation(relation, args.output)
    print(f"wrote {count} rows of {relation.name} to {args.output}")
    return 0


def cmd_cube(args) -> int:
    relation = repro_io.read_relation(args.input)
    cluster = paper_cluster(len(relation), num_machines=args.machines)
    engine_cls = ENGINES[args.engine]
    engine = engine_cls(cluster, get_aggregate(args.aggregate))
    run = engine.compute(relation)

    if args.output:
        lines = repro_io.write_cube(run.cube, args.output)
        print(f"wrote {lines} c-groups to {args.output}")
    metrics = run.metrics
    print(f"engine:          {metrics.algorithm}")
    print(f"c-groups:        {run.cube.num_groups}")
    print(f"simulated time:  {metrics.total_seconds:.1f} s")
    print(f"map output:      {metrics.intermediate_bytes / 1e6:.2f} MB")
    if metrics.failed:
        print("status:          FAILED (reducers out of memory)")
    return 0


def cmd_compare(args) -> int:
    relation = _generate_dataset(args.dataset, args.rows, args.skew, args.seed)
    cluster = paper_cluster(len(relation), num_machines=args.machines)
    engines = {
        name: ENGINES[name](cluster, get_aggregate(args.aggregate))
        for name in args.engines
    }
    runs = run_algorithms(relation, engines, verify=args.verify)

    header = f"{'engine':12s}{'time(s)':>10s}{'traffic(MB)':>13s}{'status':>10s}"
    print(f"dataset: {relation.name}\n")
    print(header)
    print("-" * len(header))
    for name, run in runs.items():
        metrics = run.metrics
        status = "OOM" if metrics.failed else "ok"
        print(
            f"{name:12s}{metrics.total_seconds:10.1f}"
            f"{metrics.intermediate_bytes / 1e6:13.2f}{status:>10s}"
        )
    if args.verify:
        print("\nall engines produced identical cubes")
    return 0


def cmd_sketch(args) -> int:
    relation = repro_io.read_relation(args.input)
    cluster = paper_cluster(len(relation), num_machines=args.machines)
    m = cluster.derive_memory(len(relation))
    if args.exact:
        sketch = build_exact_sketch(relation, cluster.num_machines, m)
    else:
        run = SPCube(cluster).compute(relation)
        sketch = run.sketch

    schema = relation.schema
    print(f"SP-Sketch of {relation.name} "
          f"({'exact' if args.exact else 'sampled'}):")
    print(f"  serialized size: {sketch.serialized_bytes()} bytes")
    print(f"  skewed c-groups: {sketch.num_skewed}")
    shown = 0
    for mask, values, count in sketch.skewed_groups():
        if shown >= args.limit:
            print(f"  ... ({sketch.num_skewed - shown} more)")
            break
        print(f"  {format_group(mask, values, schema):40s} "
              f"in {format_cuboid(mask, schema)}  (sample count {count})")
        shown += 1
    if args.output:
        size = repro_io.write_sketch(sketch, args.output)
        print(f"  written to {args.output} ({size} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SP-Cube: skew-resilient MapReduce cube computation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a workload to a file")
    gen.add_argument(
        "dataset", choices=["binomial", "zipf", "wikipedia", "usagov"]
    )
    gen.add_argument("--rows", type=int, default=10_000)
    gen.add_argument("--skew", type=float, default=0.3,
                     help="binomial skew probability p")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(fn=cmd_generate)

    cube = sub.add_parser("cube", help="compute a cube from a file")
    cube.add_argument("input")
    cube.add_argument("--engine", choices=sorted(ENGINES), default="spcube")
    cube.add_argument("--aggregate", default="count")
    cube.add_argument("--machines", type=int, default=20)
    cube.add_argument("-o", "--output")
    cube.set_defaults(fn=cmd_cube)

    compare = sub.add_parser("compare", help="run engines side by side")
    compare.add_argument(
        "dataset", choices=["binomial", "zipf", "wikipedia", "usagov"]
    )
    compare.add_argument("--rows", type=int, default=10_000)
    compare.add_argument("--skew", type=float, default=0.3)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--machines", type=int, default=20)
    compare.add_argument("--aggregate", default="count")
    compare.add_argument(
        "--engines",
        nargs="+",
        choices=sorted(ENGINES),
        default=["spcube", "mrcube", "hive"],
    )
    compare.add_argument("--verify", action="store_true",
                         help="cross-check that all cubes agree")
    compare.set_defaults(fn=cmd_compare)

    sketch = sub.add_parser("sketch", help="build and describe an SP-Sketch")
    sketch.add_argument("input")
    sketch.add_argument("--machines", type=int, default=20)
    sketch.add_argument("--exact", action="store_true",
                        help="build the exact (utopian) sketch")
    sketch.add_argument("--limit", type=int, default=10,
                        help="skewed groups to list")
    sketch.add_argument("-o", "--output", help="write the sketch as JSON")
    sketch.set_defaults(fn=cmd_sketch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
