"""Shared interface implemented by every cube algorithm in this repository.

All engines — SP-Cube and the baselines — expose::

    algorithm = SomeCube(cluster=ClusterConfig(...), aggregate=Count())
    run = algorithm.compute(relation)
    run.cube      # CubeResult: every c-group with its aggregate value
    run.metrics   # RunMetrics: simulated times, traffic, balance, failures

which is what the experiment harness (:mod:`repro.analysis`) builds the
paper's figures from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from .cubing.result import CubeResult
from .mapreduce.metrics import RunMetrics
from .relation.relation import Relation


@dataclass
class CubeRun:
    """Result of one algorithm execution: the cube plus its cost profile."""

    cube: CubeResult
    metrics: RunMetrics
    #: SP-Cube also returns the sketch it built (None for baselines).
    sketch: Optional[object] = field(default=None)


@runtime_checkable
class CubeAlgorithm(Protocol):
    """Structural type of a cube engine."""

    name: str

    def compute(self, relation: Relation) -> CubeRun:
        """Compute the full cube of ``relation``."""
        ...
