"""The materialized cube: every c-group of every cuboid with its aggregate.

All algorithms in this repository — sequential oracles and distributed
engines alike — return a :class:`CubeResult`, so correctness is always a
straight equality check between two of them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..relation.lattice import (
    CGroup,
    all_cuboids,
    format_group,
    group_sort_key,
    mask_size,
)
from ..relation.schema import Schema


class CubeResult:
    """Mapping from c-group ``(mask, values)`` to its aggregate value.

    Parameters
    ----------
    schema:
        The input relation's schema (used for rendering and cuboid math).
    groups:
        Optional initial ``{(mask, values): aggregate_value}`` mapping.
    """

    def __init__(
        self,
        schema: Schema,
        groups: Optional[Dict[CGroup, object]] = None,
    ):
        self.schema = schema
        self._groups: Dict[CGroup, object] = dict(groups or {})

    # -- construction --------------------------------------------------------

    def add(self, mask: int, values: Tuple, aggregate_value) -> None:
        """Record the aggregate of one c-group.

        Raises if the group was already recorded with a *different* value —
        a distributed algorithm emitting a group twice is always a bug.
        """
        key = (mask, values)
        # setdefault probes the dict once; the fast "new group" path does
        # no second lookup, and re-insertion with an equal value (legal,
        # e.g. merged partial outputs) is also a single probe.
        existing = self._groups.setdefault(key, aggregate_value)
        if existing is not aggregate_value and existing != aggregate_value:
            raise ValueError(
                f"conflicting values for c-group {key}: "
                f"{existing!r} vs {aggregate_value!r}"
            )

    def add_pairs(self, pairs: List[Tuple[CGroup, object]]) -> None:
        """Bulk-insert ``((mask, values), value)`` pairs — the shape engine
        reduce output already has.

        The fast path is a single C-speed ``dict.update``, valid because a
        correct engine emits every c-group exactly once per job.  Key
        repetition is detected by the length delta and re-validated
        through :meth:`add`, reproducing its first-wins/raise semantics
        exactly — the fast path is only taken on an empty result, so the
        rebuild loses no prior state.
        """
        groups = self._groups
        if groups:
            for (mask, values), value in pairs:
                self.add(mask, values, value)
            return
        groups.update(pairs)
        if len(groups) != len(pairs):
            self._groups = {}
            for (mask, values), value in pairs:
                self.add(mask, values, value)

    # -- access ---------------------------------------------------------------

    def value(self, mask: int, values: Tuple):
        """Aggregate value of one c-group; KeyError when absent."""
        return self._groups[(mask, values)]

    def get(self, mask: int, values: Tuple, default=None):
        return self._groups.get((mask, values), default)

    def cuboid(self, mask: int) -> Dict[Tuple, object]:
        """All groups of one cuboid: ``{values: aggregate_value}``."""
        return {
            values: agg
            for (m, values), agg in self._groups.items()
            if m == mask
        }

    def items(self) -> Iterator[Tuple[CGroup, object]]:
        return iter(self._groups.items())

    @property
    def num_groups(self) -> int:
        """Total c-groups across all cuboids (the paper quotes these counts
        per dataset, e.g. ~180M for Wikipedia)."""
        return len(self._groups)

    def groups_per_cuboid(self) -> Dict[int, int]:
        """``{mask: group count}`` — the cube's shape."""
        counts: Dict[int, int] = {
            mask: 0 for mask in all_cuboids(self.schema.num_dimensions)
        }
        for mask, _values in self._groups:
            counts[mask] += 1
        return counts

    def to_rows(self) -> List[Tuple[int, Tuple, object]]:
        """Deterministically ordered ``(mask, values, value)`` rows."""
        return sorted(
            ((mask, values, agg) for (mask, values), agg in self._groups.items()),
            key=lambda row: group_sort_key(row[0], row[1]),
        )

    # -- comparison -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CubeResult):
            return NotImplemented
        return self._groups == other._groups

    # Mutable, with a value-based __eq__: unhashable the canonical way,
    # so hash() raises TypeError at the call site instead of from a
    # hand-rolled method body.
    __hash__ = None

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, key: CGroup) -> bool:
        return key in self._groups

    def diff(self, other: "CubeResult", limit: int = 10) -> List[str]:
        """Human-readable discrepancies against ``other`` (for test output)."""
        problems: List[str] = []
        for key, agg in self._groups.items():
            if key not in other._groups:
                problems.append(f"missing in other: {self._render(key)} = {agg!r}")
            elif other._groups[key] != agg:
                problems.append(
                    f"mismatch at {self._render(key)}: "
                    f"{agg!r} vs {other._groups[key]!r}"
                )
            if len(problems) >= limit:
                return problems
        for key in other._groups:
            if key not in self._groups:
                problems.append(
                    f"extra in other: {self._render(key)} = "
                    f"{other._groups[key]!r}"
                )
                if len(problems) >= limit:
                    break
        return problems

    def _render(self, key: CGroup) -> str:
        mask, values = key
        return format_group(mask, values, self.schema)

    def __repr__(self) -> str:
        levels = max(
            (mask_size(mask) for mask, _ in self._groups), default=0
        )
        return (
            f"CubeResult({len(self._groups)} groups, "
            f"{levels}-level lattice)"
        )
