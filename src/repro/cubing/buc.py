"""BUC — Bottom-Up Computation of sparse and iceberg cubes (Beyer &
Ramakrishnan [15]).

BUC walks the cube lattice bottom-up: it aggregates the current group-by,
then for each remaining dimension partitions the rows by that dimension's
value and recurses into each partition.  Because each recursion only refines
already-formed partitions, every cuboid is produced exactly once and small
partitions prune early — which is also what makes BUC the right tool for

* the SP-Sketch builder (Section 4.2 footnote: *"our implementation employs
  here the classic BUC algorithm"*) — skew detection is exactly an iceberg
  cube with ``min_support = beta``;
* SP-Cube's reducers (Algorithm 3 line 30: *"compute BUC over ancestors"*).

This implementation supports iceberg thresholds, restriction to a subset of
cuboids, and arbitrary aggregate functions via the merge protocol.

Two kernels compute the same cube:

* ``kernel="array"`` (default) — an iterative kernel with three fast
  paths.  One-row segments — the bulk of the tree on sparse data — skip
  partitioning entirely: the whole subtree is the subsets of the
  remaining dimensions, enumerated directly in recursion preorder.
  Multi-row refinements are adaptive: small segments partition via a
  C-level stable sort + ``groupby`` run detection (no per-row bytecode),
  huge ones (> ``_SORT_MAX_SEGMENT``) via the legacy dict build, whose
  O(n) hashing beats the sort's O(n log n) at scale.  Builtin
  ``count``/``sum`` aggregates take counting fast paths (``len`` /
  ``sum(map(...))``) instead of a Python-level fold per row.
* ``kernel="legacy"`` — the original recursive implementation, kept as
  the bit-identity oracle for the property tests.

The kernels are **bit-identical** by construction: a stable sort keeps
rows with equal partition values in their incoming order — exactly the
order the legacy dict's per-key ``append`` produced — so fold order (and
therefore floating-point results) never changes; ``groupby`` merges
``==``-equal adjacent keys, conflating equal-but-distinct keys
(``1``/``True``) the same way the legacy dict did, and reports the
first-seen value just like ``setdefault``; the explicit stack pushes
children in reverse so pops replay the recursion's exact depth-first
preorder, preserving emission (and ``CubeResult`` insertion) order.
Partitions whose values do not admit a total order (mixed types) fall
back to the legacy repr-tie-broken partitioner for that refinement.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..aggregates.functions import AggregateFunction, Count, Sum
from ..relation.relation import Relation
from .result import CubeResult

_KERNELS = ("array", "legacy")

#: Above this size a refinement partitions through the legacy dict build:
#: hashing is O(n) against the sort's O(n log n), and huge segments are
#: where the asymptotics dominate the constants.  Below it the C-level
#: sort + groupby wins — small segments are the bulk of the tree, and
#: there the dict's per-row bytecode is the cost.  Both strategies emit
#: byte-identical runs (see ``_runs_by``), so the switch is pure timing.
_SORT_MAX_SEGMENT = 4096


def buc_cube(
    relation: Relation,
    aggregate: Optional[AggregateFunction] = None,
    min_support: int = 1,
    masks: Optional[Iterable[int]] = None,
    kernel: str = "array",
) -> CubeResult:
    """Compute an (iceberg) cube with BUC.

    Parameters
    ----------
    relation:
        Input relation.
    aggregate:
        Aggregate function (default ``count``).
    min_support:
        Iceberg threshold: only c-groups with at least this many
        contributing rows are output.  ``1`` gives the full cube.
    masks:
        When given, only these cuboids are emitted (pruning still uses the
        full recursion so partition sizes stay correct).
    kernel:
        ``"array"`` (iterative sort-based, default) or ``"legacy"``
        (recursive dict-based).  Both produce bit-identical results.

    Returns
    -------
    CubeResult
    """
    aggregate = aggregate or Count()
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if kernel not in _KERNELS:
        raise ValueError(f"unknown BUC kernel {kernel!r}; known: {_KERNELS}")
    d = relation.schema.num_dimensions
    wanted = None if masks is None else frozenset(masks)

    result = CubeResult(relation.schema)
    rows = list(relation.rows)
    if kernel == "legacy":
        _buc_recurse(
            rows,
            first_dim=0,
            mask=0,
            values=(),
            d=d,
            aggregate=aggregate,
            min_support=min_support,
            wanted=wanted,
            result=result,
        )
        return result

    fold = _segment_folder(aggregate)
    result_add = result.add

    def visit(mask: int, values: Tuple, segment: List[Tuple]) -> None:
        if wanted is None or mask in wanted:
            result_add(mask, values, fold(segment))

    _buc_iterative(rows, d, min_support, visit)
    return result


def iceberg_groups(
    rows: Sequence[Tuple],
    num_dimensions: int,
    min_support: int,
    kernel: str = "array",
) -> Dict[Tuple[int, Tuple], int]:
    """All c-groups with frequency >= ``min_support``, with their counts.

    A thin wrapper over the BUC recursion used by the SP-Sketch builder,
    working directly on row lists (the sketch reducer holds a sample, not a
    :class:`Relation`).
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown BUC kernel {kernel!r}; known: {_KERNELS}")
    found: Dict[Tuple[int, Tuple], int] = {}

    def visit(mask: int, values: Tuple, partition: List[Tuple]) -> None:
        found[(mask, values)] = len(partition)

    if kernel == "legacy":
        _buc_scan(
            list(rows),
            first_dim=0,
            mask=0,
            values=(),
            d=num_dimensions,
            min_support=min_support,
            visit=visit,
        )
    else:
        _buc_iterative(list(rows), num_dimensions, min_support, visit)
    return found


def _segment_folder(aggregate: AggregateFunction):
    """A ``segment -> finalized value`` fold for the array kernel.

    Builtin distributive aggregates get counting-style fast paths that
    reproduce the exact ``create``/``add`` left fold: ``count`` folds
    ``0 + 1 + ...``, which is ``len``; ``sum`` folds ``0 + m1 + ...``,
    which is the builtin ``sum`` (same left fold from the same ``0``
    start, so bool/int coercion and float rounding are identical).
    Exact type checks (not ``isinstance``) keep subclasses on the
    generic protocol path.
    """
    if type(aggregate) is Count:
        return len
    if type(aggregate) is Sum:
        measure = itemgetter(-1)
        return lambda segment: sum(map(measure, segment))

    agg_create = aggregate.create
    agg_add = aggregate.add
    agg_finalize = aggregate.finalize

    def fold(segment: List[Tuple]):
        state = agg_create()
        for row in segment:
            state = agg_add(state, row[-1])
        return agg_finalize(state)

    return fold


def _buc_iterative(
    rows: List[Tuple],
    d: int,
    min_support: int,
    visit,
) -> None:
    """Iterative BUC: explicit stack, sort-based refinement.

    Visits qualifying groups in the exact depth-first preorder of the
    legacy recursion (children are pushed reversed onto the LIFO stack).
    """
    if len(rows) < min_support:
        return
    stack: List[Tuple[List[Tuple], int, int, Tuple]] = [(rows, 0, 0, ())]
    pop = stack.pop
    while stack:
        segment, first_dim, mask, values = pop()
        if len(segment) == 1:
            # Singleton fast path — the bulk of the tree on sparse data.
            # Every refinement of a one-row segment is that row again, so
            # the whole subtree is the subsets of the remaining dims; a
            # local stack replays the recursion's exact preorder without
            # any sorting or partition building.  (A singleton on the
            # stack implies min_support <= 1: pushes are gated on it.)
            row = segment[0]
            sub: List[Tuple[int, int, Tuple]] = [(first_dim, mask, values)]
            sub_pop = sub.pop
            while sub:
                sub_dim, sub_mask, sub_values = sub_pop()
                visit(sub_mask, sub_values, segment)
                sub.extend(
                    (child + 1, sub_mask | 1 << child,
                     sub_values + (row[child],))
                    for child in range(d - 1, sub_dim - 1, -1)
                )
            continue
        visit(mask, values, segment)
        if first_dim >= d:
            continue
        children: List[Tuple[List[Tuple], int, int, Tuple]] = []
        for dim in range(first_dim, d):
            runs = _runs_by(segment, dim)
            child_mask = mask | 1 << dim
            child_dim = dim + 1
            for value, partition in runs:
                if len(partition) >= min_support:
                    children.append(
                        (partition, child_dim, child_mask, values + (value,))
                    )
        stack.extend(reversed(children))


def _runs_by(
    segment: List[Tuple], dim: int
) -> List[Tuple[object, List[Tuple]]]:
    """Partition ``segment`` by dimension ``dim`` via sort + run-length.

    Returns ``(value, partition)`` pairs in sorted value order with rows
    in their incoming relative order (stable sort), matching
    :func:`_partition_by` exactly.  Mixed-type values that refuse to
    sort fall back to the legacy dict partitioner (repr tie-break).
    """
    if len(segment) > _SORT_MAX_SEGMENT:
        return list(_partition_by(segment, dim))
    getter = itemgetter(dim)
    try:
        ordered = sorted(segment, key=getter)
    except TypeError:
        return list(_partition_by(segment, dim))
    # groupby merges consecutive ==-equal keys and reports the run's
    # first key — the same conflation and first-seen choice the legacy
    # dict's setdefault made.  getter and groupby are both C-level, so
    # the whole refinement runs without per-row bytecode.
    return [
        (value, list(run)) for value, run in groupby(ordered, key=getter)
    ]


def _buc_recurse(
    rows: List[Tuple],
    first_dim: int,
    mask: int,
    values: Tuple,
    d: int,
    aggregate: AggregateFunction,
    min_support: int,
    wanted: Optional[frozenset],
    result: CubeResult,
) -> None:
    """Aggregate the current group, then refine by each remaining dimension."""
    if len(rows) < min_support:
        return
    if wanted is None or mask in wanted:
        state = aggregate.create()
        for row in rows:
            state = aggregate.add(state, row[-1])
        result.add(mask, values, aggregate.finalize(state))

    for dim in range(first_dim, d):
        for value, partition in _partition_by(rows, dim):
            _buc_recurse(
                partition,
                first_dim=dim + 1,
                mask=mask | 1 << dim,
                values=values + (value,),
                d=d,
                aggregate=aggregate,
                min_support=min_support,
                wanted=wanted,
                result=result,
            )


def _buc_scan(
    rows: List[Tuple],
    first_dim: int,
    mask: int,
    values: Tuple,
    d: int,
    min_support: int,
    visit,
) -> None:
    """BUC recursion skeleton that only reports qualifying groups."""
    if len(rows) < min_support:
        return
    visit(mask, values, rows)
    for dim in range(first_dim, d):
        for value, partition in _partition_by(rows, dim):
            _buc_scan(
                partition,
                first_dim=dim + 1,
                mask=mask | 1 << dim,
                values=values + (value,),
                d=d,
                min_support=min_support,
                visit=visit,
            )


def _partition_by(rows: List[Tuple], dim: int):
    """Partition rows by the value of dimension ``dim``.

    Yields ``(value, partition)`` in deterministic value order so BUC output
    is stable across runs.
    """
    partitions: Dict[object, List[Tuple]] = {}
    for row in rows:
        partitions.setdefault(row[dim], []).append(row)
    try:
        ordered = sorted(partitions)
    except TypeError:
        ordered = sorted(partitions, key=repr)
    for value in ordered:
        yield value, partitions[value]
