"""BUC — Bottom-Up Computation of sparse and iceberg cubes (Beyer &
Ramakrishnan [15]).

BUC walks the cube lattice bottom-up: it aggregates the current group-by,
then for each remaining dimension partitions the rows by that dimension's
value and recurses into each partition.  Because each recursion only refines
already-formed partitions, every cuboid is produced exactly once and small
partitions prune early — which is also what makes BUC the right tool for

* the SP-Sketch builder (Section 4.2 footnote: *"our implementation employs
  here the classic BUC algorithm"*) — skew detection is exactly an iceberg
  cube with ``min_support = beta``;
* SP-Cube's reducers (Algorithm 3 line 30: *"compute BUC over ancestors"*).

This implementation supports iceberg thresholds, restriction to a subset of
cuboids, and arbitrary aggregate functions via the merge protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..relation.relation import Relation
from .result import CubeResult


def buc_cube(
    relation: Relation,
    aggregate: Optional[AggregateFunction] = None,
    min_support: int = 1,
    masks: Optional[Iterable[int]] = None,
) -> CubeResult:
    """Compute an (iceberg) cube with BUC.

    Parameters
    ----------
    relation:
        Input relation.
    aggregate:
        Aggregate function (default ``count``).
    min_support:
        Iceberg threshold: only c-groups with at least this many
        contributing rows are output.  ``1`` gives the full cube.
    masks:
        When given, only these cuboids are emitted (pruning still uses the
        full recursion so partition sizes stay correct).

    Returns
    -------
    CubeResult
    """
    aggregate = aggregate or Count()
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    d = relation.schema.num_dimensions
    wanted = None if masks is None else frozenset(masks)

    result = CubeResult(relation.schema)
    rows = list(relation.rows)
    _buc_recurse(
        rows,
        first_dim=0,
        mask=0,
        values=(),
        d=d,
        aggregate=aggregate,
        min_support=min_support,
        wanted=wanted,
        result=result,
    )
    return result


def iceberg_groups(
    rows: Sequence[Tuple],
    num_dimensions: int,
    min_support: int,
) -> Dict[Tuple[int, Tuple], int]:
    """All c-groups with frequency >= ``min_support``, with their counts.

    A thin wrapper over the BUC recursion used by the SP-Sketch builder,
    working directly on row lists (the sketch reducer holds a sample, not a
    :class:`Relation`).
    """
    found: Dict[Tuple[int, Tuple], int] = {}

    def visit(mask: int, values: Tuple, partition: List[Tuple]) -> None:
        found[(mask, values)] = len(partition)

    _buc_scan(
        list(rows),
        first_dim=0,
        mask=0,
        values=(),
        d=num_dimensions,
        min_support=min_support,
        visit=visit,
    )
    return found


def _buc_recurse(
    rows: List[Tuple],
    first_dim: int,
    mask: int,
    values: Tuple,
    d: int,
    aggregate: AggregateFunction,
    min_support: int,
    wanted: Optional[frozenset],
    result: CubeResult,
) -> None:
    """Aggregate the current group, then refine by each remaining dimension."""
    if len(rows) < min_support:
        return
    if wanted is None or mask in wanted:
        state = aggregate.create()
        for row in rows:
            state = aggregate.add(state, row[-1])
        result.add(mask, values, aggregate.finalize(state))

    for dim in range(first_dim, d):
        for value, partition in _partition_by(rows, dim):
            _buc_recurse(
                partition,
                first_dim=dim + 1,
                mask=mask | 1 << dim,
                values=values + (value,),
                d=d,
                aggregate=aggregate,
                min_support=min_support,
                wanted=wanted,
                result=result,
            )


def _buc_scan(
    rows: List[Tuple],
    first_dim: int,
    mask: int,
    values: Tuple,
    d: int,
    min_support: int,
    visit,
) -> None:
    """BUC recursion skeleton that only reports qualifying groups."""
    if len(rows) < min_support:
        return
    visit(mask, values, rows)
    for dim in range(first_dim, d):
        for value, partition in _partition_by(rows, dim):
            _buc_scan(
                partition,
                first_dim=dim + 1,
                mask=mask | 1 << dim,
                values=values + (value,),
                d=d,
                min_support=min_support,
                visit=visit,
            )


def _partition_by(rows: List[Tuple], dim: int):
    """Partition rows by the value of dimension ``dim``.

    Yields ``(value, partition)`` in deterministic value order so BUC output
    is stable across runs.
    """
    partitions: Dict[object, List[Tuple]] = {}
    for row in rows:
        partitions.setdefault(row[dim], []).append(row)
    try:
        ordered = sorted(partitions)
    except TypeError:
        ordered = sorted(partitions, key=repr)
    for value in ordered:
        yield value, partitions[value]
