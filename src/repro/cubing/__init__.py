"""Sequential cube algorithms: oracle, BUC, and top-down PipeSort-style."""

from .buc import buc_cube, iceberg_groups
from .naive import sequential_cube
from .pipesort import aggregation_tree, topdown_cube
from .result import CubeResult

__all__ = [
    "buc_cube",
    "iceberg_groups",
    "sequential_cube",
    "aggregation_tree",
    "topdown_cube",
    "CubeResult",
]
