"""Top-down cube computation in the PipeSort tradition (Agarwal et al. [12]).

PipeSort computes coarser cuboids from finer ones: because a cuboid's groups
partition each of its descendants' groups (Observation 2.5 read downward),
the descendant can be derived by merging the ancestor's *aggregate states* —
no second pass over the raw rows.  The classic algorithm picks sort orders
to share prefixes; here we keep the essential top-down structure and choose,
for every cuboid, the materialized parent with the fewest groups (the
cheapest source), which is the standard minimum-cost aggregation-tree
heuristic.

This module serves two purposes:

* another independent sequential implementation for cross-checking BUC and
  the oracle;
* the per-round building block of the multi-round top-down MapReduce
  baseline of Lee et al. [25] (:mod:`repro.baselines.pipesort_mr`), which
  the paper discusses in Section 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..relation.lattice import (
    all_cuboids,
    ancestors,
    full_mask,
    mask_size,
    project,
)
from ..relation.relation import Relation
from .result import CubeResult


def topdown_cube(
    relation: Relation,
    aggregate: Optional[AggregateFunction] = None,
) -> CubeResult:
    """Compute the full cube top-down from the finest cuboid.

    Returns
    -------
    CubeResult
    """
    aggregate = aggregate or Count()
    d = relation.schema.num_dimensions
    top = full_mask(d)

    # Materialize the finest cuboid's states from the raw rows.
    states: Dict[int, Dict[Tuple, object]] = {top: {}}
    top_states = states[top]
    for row in relation:
        key = project(row, top, d)
        state = top_states.get(key)
        if state is None:
            state = aggregate.create()
        top_states[key] = aggregate.add(state, row[-1])

    # Derive every other cuboid from its cheapest materialized parent.
    for mask in _topdown_order(d):
        if mask == top:
            continue
        parent = _cheapest_parent(mask, d, states)
        derived: Dict[Tuple, object] = {}
        positions = _value_positions(parent, mask, d)
        for parent_values, state in states[parent].items():
            child_values = tuple(parent_values[i] for i in positions)
            existing = derived.get(child_values)
            if existing is None:
                derived[child_values] = state
            else:
                derived[child_values] = aggregate.merge(existing, state)
        states[mask] = derived

    result = CubeResult(relation.schema)
    for mask, cuboid_states in states.items():
        for values, state in cuboid_states.items():
            result.add(mask, values, aggregate.finalize(state))
    return result


def aggregation_tree(
    num_dimensions: int,
    group_counts: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """``{child_mask: parent_mask}`` — the plan used by the MR variant [25].

    When ``group_counts`` (estimated cuboid cardinalities) is provided, the
    cheapest parent by estimated group count wins, matching the cost-driven
    path selection of PipeSort; otherwise the numerically smallest parent is
    used, which still yields a valid top-down plan.
    """
    plan: Dict[int, int] = {}
    top = full_mask(num_dimensions)
    for mask in all_cuboids(num_dimensions):
        if mask == top:
            continue
        parents = list(ancestors(mask, num_dimensions))
        if group_counts:
            parents.sort(key=lambda p: (group_counts.get(p, 0), p))
        else:
            parents.sort()
        plan[mask] = parents[0]
    return plan


def _topdown_order(d: int) -> List[int]:
    """Masks from finest to coarsest so parents are materialized first."""
    return sorted(all_cuboids(d), key=lambda m: (-mask_size(m), m))


def _cheapest_parent(
    mask: int, d: int, states: Dict[int, Dict[Tuple, object]]
) -> int:
    """The materialized direct ancestor with the fewest groups."""
    candidates = [p for p in ancestors(mask, d) if p in states]
    if not candidates:
        raise RuntimeError(f"no materialized parent for cuboid {mask:b}")
    return min(candidates, key=lambda p: (len(states[p]), p))


def _value_positions(parent: int, child: int, d: int) -> Tuple[int, ...]:
    """Indices into the parent's value tuple that survive in the child.

    The parent's values are ordered by dimension index; the child keeps the
    subset of dimensions in ``child``, which must be a subset of ``parent``.
    """
    if child & ~parent:
        raise ValueError(
            f"cuboid {child:b} is not a descendant of {parent:b}"
        )
    positions = []
    value_index = 0
    for dim in range(d):
        if parent >> dim & 1:
            if child >> dim & 1:
                positions.append(value_index)
            value_index += 1
    return tuple(positions)
