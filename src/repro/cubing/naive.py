"""Brute-force sequential cube — the correctness oracle.

Enumerates every projection of every row and folds it into a per-group
aggregate state.  Exponential in ``d`` and linear in ``n``, with no cleverness
whatsoever: every distributed algorithm in this repository must reproduce
its output exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..relation.lattice import all_cuboids, project
from ..relation.relation import Relation
from .result import CubeResult


def sequential_cube(
    relation: Relation,
    aggregate: Optional[AggregateFunction] = None,
    masks: Optional[Iterable[int]] = None,
) -> CubeResult:
    """Compute the (optionally cuboid-restricted) cube of ``relation``.

    Parameters
    ----------
    relation:
        Input relation.
    aggregate:
        Aggregate function; defaults to ``count`` as in the paper.
    masks:
        Restrict computation to these cuboids; default is all ``2^d``.

    Returns
    -------
    CubeResult
        Aggregate value for every c-group of every requested cuboid.
    """
    aggregate = aggregate or Count()
    d = relation.schema.num_dimensions
    cuboid_masks = tuple(masks) if masks is not None else all_cuboids(d)

    states: Dict[Tuple[int, Tuple], object] = {}
    for row in relation:
        measure = row[-1]
        for mask in cuboid_masks:
            key = (mask, project(row, mask, d))
            state = states.get(key)
            if state is None:
                state = aggregate.create()
            states[key] = aggregate.add(state, measure)

    result = CubeResult(relation.schema)
    for (mask, values), state in states.items():
        result.add(mask, values, aggregate.finalize(state))
    return result
