"""Support checks mapping aggregate classes to algorithm capabilities.

Paper Section 7: *"SP-Cube supports all distributive and algebraic aggregate
functions, and all partially algebraic functions in which the generated
partitions are not skewed"*; arbitrary holistic functions are future work.

These helpers centralize that policy so every algorithm applies it the same
way, and so tests can assert the refusal behaviour.
"""

from __future__ import annotations

from .functions import AggregateFunction, AggregateKind, UnsupportedAggregateError


def supports_partial_aggregation(fn: AggregateFunction) -> bool:
    """True when map-side partial aggregation genuinely compresses ``fn``.

    Distributive and algebraic functions keep constant-size states, so
    pre-aggregating a skewed c-group on the mappers shrinks it to one state
    per mapper.  Holistic states grow with the data and gain nothing.
    """
    return fn.kind is not AggregateKind.HOLISTIC and fn.compact_state


def check_spcube_support(
    fn: AggregateFunction, allow_holistic: bool = False
) -> None:
    """Raise unless SP-Cube can run ``fn`` efficiently.

    ``allow_holistic=True`` opts into correctness-preserving but
    non-compressing holistic execution (states are full multisets); this is
    useful for testing and small data, and mirrors the paper's note that the
    algorithm stays *correct* — only the skew-compression guarantee is lost.
    """
    if supports_partial_aggregation(fn):
        return
    if allow_holistic:
        return
    raise UnsupportedAggregateError(
        f"aggregate {fn.name!r} is {fn.kind.value}; SP-Cube's map-side "
        "partial aggregation of skewed groups needs a compact mergeable "
        "state (pass allow_holistic=True to run it anyway)"
    )
