"""Aggregate functions with partial-aggregation (merge) semantics.

The paper (Section 7, following Gray et al.) divides aggregate functions into

* **distributive** — partial aggregates merge directly into the full one
  (``count``, ``sum``, ``min``, ``max``);
* **algebraic** — a small fixed-size intermediate state merges into the full
  result (``avg`` via (sum, count), ``variance`` via (n, sum, sum-of-squares));
* **holistic** — no constant-size partial state exists (``top-k most
  frequent``, ``median``, exact ``count-distinct``).

SP-Cube's map-side partial aggregation of skewed c-groups requires a
mergeable state; it therefore supports all distributive and algebraic
functions out of the box.  Holistic functions are still *expressible* here
(their state is the full multiset, merged by concatenation) but carry
``compact_state = False`` so the algorithms can refuse or warn — matching
the paper's discussion that efficient holistic support is future work.

Every function is expressed through the same four-operation protocol::

    state = fn.create()            # identity element
    state = fn.add(state, value)   # fold one measure value in
    state = fn.merge(s1, s2)       # combine two partial states
    result = fn.finalize(state)    # extract the aggregate value

``merge`` must be associative and commutative with ``create()`` as the
identity — the property tests in ``tests/aggregates`` check exactly this,
because the correctness of every distributed algorithm in this repository
rests on it.
"""

from __future__ import annotations

import enum
import heapq
import math
from abc import ABC, abstractmethod
from collections import Counter
from typing import Any, Dict, List, Tuple


class AggregateKind(enum.Enum):
    """Gray et al.'s aggregate taxonomy, as used in paper Section 7."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"


class UnsupportedAggregateError(RuntimeError):
    """Raised when an algorithm cannot honour an aggregate's requirements."""


class AggregateFunction(ABC):
    """Protocol every aggregate implements; see module docstring."""

    #: Short name used in registries and reports.
    name: str = "abstract"
    #: Taxonomy class (Section 7).
    kind: AggregateKind = AggregateKind.DISTRIBUTIVE
    #: True when the partial state has (near-)constant size, making
    #: map-side partial aggregation a genuine compression.
    compact_state: bool = True

    @abstractmethod
    def create(self) -> Any:
        """The identity state (aggregate of the empty multiset)."""

    @abstractmethod
    def add(self, state: Any, value) -> Any:
        """Fold one measure value into ``state``; returns the new state."""

    @abstractmethod
    def merge(self, left: Any, right: Any) -> Any:
        """Combine two partial states; associative and commutative."""

    @abstractmethod
    def finalize(self, state: Any):
        """Extract the final aggregate value from a state."""

    def state_size(self, state: Any) -> int:
        """Approximate size of ``state`` in value-slots, for traffic metrics."""
        return 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Count(AggregateFunction):
    """``COUNT(*)`` — the paper's default aggregate. Distributive."""

    name = "count"
    kind = AggregateKind.DISTRIBUTIVE

    def create(self) -> int:
        return 0

    def add(self, state: int, value) -> int:
        return state + 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int) -> int:
        return state


class Sum(AggregateFunction):
    """``SUM(B)``. Distributive."""

    name = "sum"
    kind = AggregateKind.DISTRIBUTIVE

    def create(self):
        return 0

    def add(self, state, value):
        return state + value

    def merge(self, left, right):
        return left + right

    def finalize(self, state):
        return state


class Min(AggregateFunction):
    """``MIN(B)``. Distributive; identity is +infinity."""

    name = "min"
    kind = AggregateKind.DISTRIBUTIVE

    def create(self) -> float:
        return math.inf

    def add(self, state, value):
        return value if value < state else state

    def merge(self, left, right):
        return left if left < right else right

    def finalize(self, state):
        return None if state == math.inf else state


class Max(AggregateFunction):
    """``MAX(B)``. Distributive; identity is -infinity."""

    name = "max"
    kind = AggregateKind.DISTRIBUTIVE

    def create(self) -> float:
        return -math.inf

    def add(self, state, value):
        return value if value > state else state

    def merge(self, left, right):
        return left if left > right else right

    def finalize(self, state):
        return None if state == -math.inf else state


class Average(AggregateFunction):
    """``AVG(B)``. Algebraic: state is ``(sum, count)`` (paper Section 5.1).

    The reducer combines partial sums and counts and divides — exactly the
    example the paper gives for algebraic handling of skewed groups.
    """

    name = "avg"
    kind = AggregateKind.ALGEBRAIC

    def create(self) -> Tuple[float, int]:
        return (0, 0)

    def add(self, state, value):
        total, count = state
        return (total + value, count + 1)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state):
        total, count = state
        return None if count == 0 else total / count

    def state_size(self, state) -> int:
        return 2


class Variance(AggregateFunction):
    """Population variance. Algebraic: state is ``(n, sum, sum_sq)``."""

    name = "variance"
    kind = AggregateKind.ALGEBRAIC

    def create(self) -> Tuple[int, float, float]:
        return (0, 0.0, 0.0)

    def add(self, state, value):
        n, total, total_sq = state
        return (n + 1, total + value, total_sq + value * value)

    def merge(self, left, right):
        return (
            left[0] + right[0],
            left[1] + right[1],
            left[2] + right[2],
        )

    def finalize(self, state):
        n, total, total_sq = state
        if n == 0:
            return None
        mean = total / n
        return max(total_sq / n - mean * mean, 0.0)

    def state_size(self, state) -> int:
        return 3


class TopKFrequent(AggregateFunction):
    """``top-k most frequent`` measure values — the paper's holistic example.

    The exact answer needs the full value histogram, so the partial state is
    a :class:`collections.Counter`; merging concatenates histograms.  The
    state is *not* compact, which is precisely why holistic functions strain
    map-side partial aggregation (Section 7).
    """

    name = "top_k"
    kind = AggregateKind.HOLISTIC
    compact_state = False

    def __init__(self, k: int = 3):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def create(self) -> Counter:
        return Counter()

    def add(self, state: Counter, value) -> Counter:
        updated = Counter(state)
        updated[value] += 1
        return updated

    def merge(self, left: Counter, right: Counter) -> Counter:
        merged = Counter(left)
        merged.update(right)
        return merged

    def finalize(self, state: Counter) -> Tuple:
        # Deterministic tie-break on the value itself so distributed and
        # sequential runs agree bit-for-bit.
        top = heapq.nsmallest(
            self.k, state.items(), key=lambda item: (-item[1], item[0])
        )
        return tuple(value for value, _count in top)

    def state_size(self, state: Counter) -> int:
        return max(len(state), 1)

    def __repr__(self) -> str:
        return f"TopKFrequent(k={self.k})"


class Median(AggregateFunction):
    """Exact median — holistic; state is the sorted list of values."""

    name = "median"
    kind = AggregateKind.HOLISTIC
    compact_state = False

    def create(self) -> List:
        return []

    def add(self, state: List, value) -> List:
        return state + [value]

    def merge(self, left: List, right: List) -> List:
        return left + right

    def finalize(self, state: List):
        if not state:
            return None
        ordered = sorted(state)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    def state_size(self, state: List) -> int:
        return max(len(state), 1)


class CountDistinct(AggregateFunction):
    """Exact ``COUNT(DISTINCT B)`` — holistic; state is the value set."""

    name = "count_distinct"
    kind = AggregateKind.HOLISTIC
    compact_state = False

    def create(self) -> frozenset:
        return frozenset()

    def add(self, state: frozenset, value) -> frozenset:
        return state | {value}

    def merge(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def finalize(self, state: frozenset) -> int:
        return len(state)

    def state_size(self, state: frozenset) -> int:
        return max(len(state), 1)


class Multi(AggregateFunction):
    """Several aggregates evaluated in one pass over the same cube.

    The state is the tuple of member states and the result the tuple of
    member results, so one SP-Cube run can answer e.g. ``count``, ``sum``
    and ``avg`` simultaneously — the natural companion to the SP-Sketch
    being aggregate-independent (Section 4).

    The combined function is as strong as its weakest member: it is
    holistic (and non-compact) as soon as any member is.
    """

    name = "multi"

    def __init__(self, functions: "Tuple[AggregateFunction, ...]"):
        members = tuple(functions)
        if not members:
            raise ValueError("Multi needs at least one aggregate")
        self.functions = members
        kinds = {fn.kind for fn in members}
        if AggregateKind.HOLISTIC in kinds:
            self.kind = AggregateKind.HOLISTIC
        elif AggregateKind.ALGEBRAIC in kinds:
            self.kind = AggregateKind.ALGEBRAIC
        else:
            self.kind = AggregateKind.DISTRIBUTIVE
        self.compact_state = all(fn.compact_state for fn in members)
        self.name = "multi(" + ",".join(fn.name for fn in members) + ")"

    def create(self) -> Tuple:
        return tuple(fn.create() for fn in self.functions)

    def add(self, state: Tuple, value) -> Tuple:
        return tuple(
            fn.add(s, value) for fn, s in zip(self.functions, state)
        )

    def merge(self, left: Tuple, right: Tuple) -> Tuple:
        return tuple(
            fn.merge(ls, rs)
            for fn, ls, rs in zip(self.functions, left, right)
        )

    def finalize(self, state: Tuple) -> Tuple:
        return tuple(
            fn.finalize(s) for fn, s in zip(self.functions, state)
        )

    def state_size(self, state: Tuple) -> int:
        return sum(
            fn.state_size(s) for fn, s in zip(self.functions, state)
        )

    def __repr__(self) -> str:
        return f"Multi({', '.join(map(repr, self.functions))})"


_REGISTRY: Dict[str, AggregateFunction] = {}


def register(fn: AggregateFunction) -> AggregateFunction:
    """Add ``fn`` to the by-name registry used by the CLI-style harnesses."""
    _REGISTRY[fn.name] = fn
    return fn


def get_aggregate(name: str) -> AggregateFunction:
    """Look up a registered aggregate by name.

    >>> get_aggregate("count").name
    'count'
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown aggregate {name!r}; known: {known}") from None


def registered_aggregates() -> Dict[str, AggregateFunction]:
    """A copy of the registry (name -> instance)."""
    return dict(_REGISTRY)


for _fn in (
    Count(),
    Sum(),
    Min(),
    Max(),
    Average(),
    Variance(),
    TopKFrequent(),
    Median(),
    CountDistinct(),
):
    register(_fn)
