"""Aggregate functions (distributive / algebraic / holistic) and policy."""

from .functions import (
    AggregateFunction,
    AggregateKind,
    Average,
    Count,
    CountDistinct,
    Max,
    Median,
    Min,
    Multi,
    Sum,
    TopKFrequent,
    UnsupportedAggregateError,
    Variance,
    get_aggregate,
    register,
    registered_aggregates,
)
from .classify import check_spcube_support, supports_partial_aggregation

__all__ = [
    "AggregateFunction",
    "AggregateKind",
    "Average",
    "Count",
    "CountDistinct",
    "Max",
    "Median",
    "Min",
    "Multi",
    "Sum",
    "TopKFrequent",
    "UnsupportedAggregateError",
    "Variance",
    "get_aggregate",
    "register",
    "registered_aggregates",
    "check_spcube_support",
    "supports_partial_aggregation",
]
