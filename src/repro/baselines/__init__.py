"""Competitor cube algorithms: naive, Pig's MR-Cube, Hive, PipeSort-MR."""

from .hive import HiveCube
from .mrcube import MRCube
from .naive_mr import NaiveCube
from .pipesort_mr import PipeSortMR

__all__ = ["HiveCube", "MRCube", "NaiveCube", "PipeSortMR"]
