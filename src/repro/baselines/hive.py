"""Hive-style cube — the physical plan of ``GROUP BY ... WITH CUBE``.

Hive compiles a cube query into a single MapReduce job: the map operator
expands every row into all ``2^d`` grouping sets, feeding a **map-side hash
aggregation** (``hive.map.aggr``).  Two documented Hive behaviours drive
the curves the paper reports and are modelled here:

* the aggregation hash table has bounded memory; when full it **flushes**
  its entries downstream and starts over;
* after an initial probe of the input, Hive checks the achieved reduction
  ratio (``hive.map.aggr.hash.min.reduction``, default 0.5) and **turns the
  hash aggregation off entirely** when the grouping keys are too distinct
  to compress.  Cube expansion makes keys extremely distinct on realistic
  data, so the raw ``n * 2^d`` stream usually wins — producing Hive's large
  map times (Fig 5b) and the largest intermediate data (Fig 6b), while the
  per-reducer *average* stays low (Fig 4b) because hash routing spreads the
  many small groups thinly and only skewed keys pile onto single reducers —
  the reducers the paper observed getting stuck for ``p >= 0.4`` (Fig 6a).

**Failure model (Figure 6a's missing Hive points).**  The paper reports
that Hive "got stuck as some reducers got out of memory" on gen-binomial
for ``p >= 0.4``, yet ran to completion on the Wikipedia dataset whose
*coarse* c-groups are far larger than anything in gen-binomial — so the
failure cannot be a function of per-reducer input volume or of coarse
group sizes (streaming ``count`` handles those).  What distinguishes
gen-binomial's high-``p`` regime is *identical full-width rows*: a
p-fraction of tuples whose complete dimension vector repeats ``p*n/20``
times, flooding every aggregation tier of the plan with the same keys
while the uniform tail keeps the map-side hash from compressing them.  We
model the observed failure directly and transparently: a run is marked
stuck when rows belonging to oversized *finest-cuboid* groups (full-width
duplicates larger than the per-group value buffer) exceed a third of the
input.  This is an empirical calibration of an observed behaviour, not a
first-principles mechanism; EXPERIMENTS.md discusses it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.lineage import cuboid_of_mask_key
from ..observability.telemetry import emit_run_telemetry
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import all_cuboids, full_mask, projector
from ..relation.relation import Relation

#: Pairs probed before deciding whether hash aggregation pays off
#: (Hive's ``hive.groupby.mapaggr.checkinterval``, scaled).
HASH_PROBE_PAIRS = 1000
#: Minimum compression (groups/pairs) the probe must achieve, as in Hive's
#: ``hive.map.aggr.hash.min.reduction`` default.
MIN_REDUCTION = 0.5
#: Fraction of physical memory one group's buffered values may occupy;
#: finest-cuboid groups beyond it count toward the stuck criterion.
VALUE_BUFFER_FRACTION = 0.75
#: Input-mass fraction of oversized full-width duplicate rows at which the
#: run is declared stuck (see module docstring).
DUPLICATE_ROW_DOMINANCE = 1.0 / 3.0


class HiveCube:
    """Hive's cube plan: grouping-set expansion + adaptive map aggregation."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
        *,
        map_side_aggregation: bool = True,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()
        self.map_side_aggregation = map_side_aggregation

    @property
    def name(self) -> str:
        return "Hive"

    def compute(self, relation: Relation) -> CubeRun:
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        d = relation.schema.num_dimensions
        aggregate = self.aggregate

        # Hash capacity: the group-by operator gets a share of map memory.
        hash_capacity = max(64, m // 2)
        tracer = self.cluster.tracer or NULL_TRACER
        run_base = tracer.clock

        job = MapReduceJob(
            name="hive-cube",
            mapper_factory=TaskFactory(
                _HiveMapper,
                d,
                aggregate,
                hash_capacity,
                self.map_side_aggregation,
            ),
            reducer_factory=TaskFactory(_HiveReducer, aggregate),
            cuboid_of=cuboid_of_mask_key,
        )
        metrics = RunMetrics(algorithm=self.name)
        runner = RoundRunner(self.cluster, metrics, run_id="hive")
        result = runner.run(job, relation.split(k), m)
        # An aborted job (retry budget exhausted) already failed and has no
        # output; the stuck criterion only applies to completed runs.
        if not result.metrics.aborted:
            result.metrics.forced_failure = self._is_stuck(relation, m)

        metrics.extras["hash_capacity"] = hash_capacity
        cube = CubeResult(relation.schema)
        for (mask, values), value in result.output:
            cube.add(mask, values, value)
        metrics.output_groups = cube.num_groups
        emit_run_span(tracer, metrics, run_base)
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=cube, metrics=metrics)

    def _is_stuck(self, relation: Relation, memory_records: int) -> bool:
        """The calibrated failure criterion — see module docstring.

        Counts the mass of rows whose full dimension vector repeats more
        often than the per-group value buffer allows; when such duplicate
        rows dominate, the run is declared stuck.
        """
        d = relation.schema.num_dimensions
        buffer_limit = VALUE_BUFFER_FRACTION * self.cluster.physical_memory(
            memory_records
        )
        full = full_mask(d)
        sizes = relation.group_sizes(full)
        oversized_mass = sum(
            count for count in sizes.values() if count > buffer_limit
        )
        return oversized_mass > DUPLICATE_ROW_DOMINANCE * len(relation)


class _HiveMapper(Mapper):
    """Grouping-set expansion through an adaptive aggregation hash."""

    def __init__(
        self,
        d: int,
        aggregate: AggregateFunction,
        hash_capacity: int,
        map_side_aggregation: bool,
    ):
        self._d = d
        self._masks = all_cuboids(d)
        self._projectors = [
            (mask, projector(mask, d)) for mask in self._masks
        ]
        self._aggregate = aggregate
        self._capacity = hash_capacity
        self._hash: Dict[Tuple[int, Tuple], object] = {}
        self._hash_enabled = map_side_aggregation
        self._pairs_seen = 0
        self._new_keys = 0  # cumulative distinct keys, across flushes
        self._probing = map_side_aggregation

    def map(self, record):
        d = self._d
        aggregate = self._aggregate
        measure = record[-1]
        self.context.add_cpu(1 << d)

        if not self._hash_enabled:
            for mask, get in self._projectors:
                state = aggregate.add(aggregate.create(), measure)
                yield (mask, get(record)), state
            return

        table = self._hash
        for mask, get in self._projectors:
            key = (mask, get(record))
            state = table.get(key)
            if state is None:
                state = aggregate.create()
                self._new_keys += 1
            table[key] = aggregate.add(state, measure)
            self._pairs_seen += 1

        if self._probing and self._pairs_seen >= HASH_PROBE_PAIRS:
            # Hive's min-reduction check: abandon hashing when it is not
            # compressing, flushing what was collected so far.  The ratio
            # uses the cumulative distinct-key count so interleaved
            # capacity flushes cannot mask a non-compressing key stream.
            self._probing = False
            reduction = self._new_keys / self._pairs_seen
            if reduction > MIN_REDUCTION:
                self._hash_enabled = False
                yield from self._flush()
        elif len(self._hash) >= self._capacity:
            yield from self._flush()

    def close(self):
        yield from self._flush()

    def _flush(self):
        entries = sorted(
            self._hash.items(), key=lambda item: (item[0][0], item[0][1])
        )
        self._hash = {}
        for key, state in entries:
            yield key, state


class _HiveReducer(Reducer):
    """Merge partial states per grouping key; finalize."""

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def reduce(self, key, values: List):
        aggregate = self._aggregate
        merged = aggregate.create()
        for state in values:
            merged = aggregate.merge(merged, state)
        yield key, aggregate.finalize(merged)
