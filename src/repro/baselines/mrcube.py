"""MR-Cube — the algorithm behind Pig's CUBE operator (Nandi et al. [26]).

This is the paper's main competitor ("Pig" in Figures 4-8).  Faithful to
the published algorithm plus the combiner Pig adds on top:

1. **Sampling round.**  A Bernoulli sample flows to one reducer, which
   estimates, *per cuboid*, the largest group size.  A cuboid whose largest
   estimated group exceeds the reducer-friendliness bound (a fraction of
   reducer memory) is marked **unfriendly** — note the decision is at the
   granularity of a whole cuboid, the key weakness Section 1 contrasts
   SP-Cube against.
2. **Materialization round.**  Mappers emit one pair per row per cuboid
   (Pig's ``CubeDimensions`` expansion).  For unfriendly cuboids the key
   carries an extra *value-partition* shard id, splitting each large group
   across ``p_c`` reducers; a combiner partially aggregates every map
   task's buffer.  Reducers finalize friendly groups and emit shard-level
   partial states for unfriendly ones.
3. **Post-aggregation round** (only when unfriendly cuboids exist) merges
   the shard states into final groups.

The skew sensitivity the paper measures comes out naturally: higher skew
means more unfriendly cuboids, larger shard fan-out, a third round with
more data, and combiner-resistant traffic for the uniform tail.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.lineage import cuboid_of_mask_key
from ..observability.telemetry import emit_run_telemetry
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import all_cuboids, project, projector
from ..relation.relation import Relation
from ..core.sampling import sampling_probability

#: Fraction of reducer memory a single group may fill before its cuboid is
#: declared reducer-unfriendly (MR-Cube uses 0.75 of reducer capacity).
FRIENDLINESS_FRACTION = 0.75


class MRCube:
    """MR-Cube / Pig CUBE: cuboid-granularity skew handling."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()

    @property
    def name(self) -> str:
        return "Pig (MR-Cube)"

    def compute(self, relation: Relation) -> CubeRun:
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        d = relation.schema.num_dimensions
        metrics = RunMetrics(algorithm=self.name)
        tracer = self.cluster.tracer or NULL_TRACER
        self._run_base = tracer.clock
        # All rounds run through the checkpoint/recovery layer; a node
        # loss resumes the round instead of aborting the run.
        runner = RoundRunner(self.cluster, metrics, run_id="mrcube")

        # ---- round 1: sample and annotate the lattice ----------------------
        alpha = sampling_probability(n, k, m)
        shard_plan = self._sampling_round(
            relation, alpha, k, m, d, metrics, runner
        )
        if metrics.jobs[-1].aborted:
            return self._aborted_run(relation, metrics)
        metrics.extras["unfriendly_cuboids"] = len(shard_plan)

        # ---- round 2: materialize ------------------------------------------
        final_pairs, shard_pairs = self._materialization_round(
            relation, shard_plan, k, m, d, metrics, runner
        )
        if metrics.jobs[-1].aborted:
            return self._aborted_run(relation, metrics)

        # ---- round 3: post-aggregate value-partitioned cuboids -------------
        if shard_pairs:
            final_pairs.extend(
                self._post_aggregation_round(
                    shard_pairs, k, m, metrics, runner
                )
            )
            if metrics.jobs[-1].aborted:
                return self._aborted_run(relation, metrics)

        cube = CubeResult(relation.schema)
        for (mask, values), value in final_pairs:
            cube.add(mask, values, value)
        metrics.output_groups = cube.num_groups
        emit_run_span(
            self.cluster.tracer or NULL_TRACER, metrics, self._run_base
        )
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=cube, metrics=metrics)

    def _aborted_run(
        self, relation: Relation, metrics: RunMetrics
    ) -> CubeRun:
        """A round exhausted its retry budget: stop, with no output."""
        emit_run_span(
            self.cluster.tracer or NULL_TRACER, metrics, self._run_base
        )
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=CubeResult(relation.schema), metrics=metrics)

    # -- round 1 ----------------------------------------------------------------

    def _sampling_round(
        self,
        relation: Relation,
        alpha: float,
        k: int,
        m: int,
        d: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> Dict[int, int]:
        """Estimate per-cuboid max group size; return ``{mask: shards}``."""
        holder: List[Dict[int, int]] = []
        capacity = FRIENDLINESS_FRACTION * m
        seed = self.cluster.seed + 17  # independent of SP-Cube's stream

        job = MapReduceJob(
            name="mrcube-sample",
            mapper_factory=TaskFactory(_SampleMapper, alpha, seed),
            reducer_factory=TaskFactory(
                _AnnotateReducer, d, alpha, capacity, holder
            ),
            num_reducers=1,
            # The sample is O(m) w.h.p. (Prop 4.4) and is collected under a
            # single key by design; the value-buffer flag does not apply.
            value_buffer_fraction=None,
            # The reducer returns the shard plan through ``holder``; that
            # side channel pins the round to the driver process.
            driver_state=True,
        )
        result = runner.run(job, relation.split(k), m)
        metrics.extras["sample_size"] = result.metrics.map_output_records
        return holder[0] if holder else {}

    # -- round 2 ----------------------------------------------------------------

    def _materialization_round(
        self,
        relation: Relation,
        shard_plan: Dict[int, int],
        k: int,
        m: int,
        d: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> Tuple[List, List]:
        aggregate = self.aggregate

        job = MapReduceJob(
            name="mrcube-materialize",
            mapper_factory=TaskFactory(_ExpandMapper, d, aggregate, shard_plan),
            reducer_factory=TaskFactory(
                _MaterializeReducer, aggregate, shard_plan
            ),
            combiner=_MergeCombiner(aggregate),
            cuboid_of=cuboid_of_mask_key,
        )
        result = runner.run(job, relation.split(k), m)

        final_pairs: List = []
        shard_pairs: List = []
        for key, value in result.output:
            if key[0] == "VP":
                shard_pairs.append((key[1:], value))
            else:
                final_pairs.append((key, value))
        return final_pairs, shard_pairs

    # -- round 3 ----------------------------------------------------------------

    def _post_aggregation_round(
        self,
        shard_pairs: List,
        k: int,
        m: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> List:
        aggregate = self.aggregate
        job = MapReduceJob(
            name="mrcube-postagg",
            mapper_factory=TaskFactory(_IdentityMapper),
            reducer_factory=TaskFactory(_FinalizeReducer, aggregate),
            cuboid_of=cuboid_of_mask_key,
        )
        chunks = _spread(shard_pairs, k)
        result = runner.run(job, chunks, m)
        return list(result.output)


class _SampleMapper(Mapper):
    """Bernoulli sampling, one deterministic stream per machine."""

    def __init__(self, alpha: float, seed: int):
        self._alpha = alpha
        self._seed = seed

    def setup(self, context) -> None:
        super().setup(context)
        self._rng = random.Random(self._seed * 1_000_003 + context.machine)

    def map(self, record):
        if self._rng.random() <= self._alpha:
            yield 0, record


class _AnnotateReducer(Reducer):
    """Scale sample counts to full-data estimates; pick shard factors."""

    def __init__(
        self,
        d: int,
        alpha: float,
        capacity: float,
        holder: List[Dict[int, int]],
    ):
        self._d = d
        self._alpha = alpha
        self._capacity = capacity
        self._holder = holder

    def reduce(self, key, values):
        d = self._d
        sample = values
        self.context.add_cpu(len(sample) * (1 << d))
        plan: Dict[int, int] = {}
        if self._alpha > 0:
            for mask in all_cuboids(d):
                counts: Dict[Tuple, int] = {}
                for row in sample:
                    group = project(row, mask, d)
                    counts[group] = counts.get(group, 0) + 1
                top = max(counts.values(), default=0)
                # Lower confidence bound on the scaled estimate: a raw
                # count/alpha estimate fires on Poisson noise and would
                # value-partition nearly every cuboid; MR-Cube's annotation
                # only reacts to statistically solid evidence of a large
                # group.
                largest = max(0.0, top - 2.0 * math.sqrt(top)) / self._alpha
                if largest > self._capacity:
                    plan[mask] = max(
                        2, math.ceil(largest / self._capacity)
                    )
        self._holder.append(plan)
        return ()


class _ExpandMapper(Mapper):
    """Pig's CubeDimensions: all ``2^d`` grouping combos per row, with
    value-partition shards appended for unfriendly cuboids."""

    def __init__(
        self,
        d: int,
        aggregate: AggregateFunction,
        shard_plan: Dict[int, int],
    ):
        self._d = d
        self._aggregate = aggregate
        self._shard_plan = shard_plan
        self._projectors = [
            (mask, projector(mask, d), shard_plan.get(mask))
            for mask in all_cuboids(d)
        ]
        self._row_index = 0

    def map(self, record):
        d = self._d
        aggregate = self._aggregate
        self.context.add_cpu(1 << d)
        state = aggregate.add(aggregate.create(), record[-1])
        row_index = self._row_index
        self._row_index += 1
        for mask, get, shards in self._projectors:
            values = get(record)
            if shards is None:
                yield (mask, values), state
            else:
                yield (mask, values, row_index % shards), state


class _MaterializeReducer(Reducer):
    """Finalize friendly groups; re-emit shard partials for round 3."""

    def __init__(self, aggregate: AggregateFunction, shard_plan: Dict[int, int]):
        self._aggregate = aggregate
        self._shard_plan = shard_plan

    def reduce(self, key, values):
        aggregate = self._aggregate
        merged = _merge_all(aggregate, values)
        if len(key) == 3:
            mask, group_values, _shard = key
            yield ("VP", mask, group_values), merged
        else:
            mask, group_values = key
            yield (mask, group_values), aggregate.finalize(merged)


class _MergeCombiner:
    """Hadoop combiner merging per-key partial aggregate states; a
    picklable callable so materialization tasks can run in workers."""

    __slots__ = ("_aggregate",)

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def __call__(self, key, values):
        yield key, _merge_all(self._aggregate, values)

    def __getstate__(self):
        return self._aggregate

    def __setstate__(self, state):
        self._aggregate = state


class _IdentityMapper(Mapper):
    """Round 3 map: shard records are already ``(key, state)`` pairs."""

    def map(self, record):
        yield record


class _FinalizeReducer(Reducer):
    """Round 3 reduce: merge shard states per group and finalize."""

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def reduce(self, key, states):
        aggregate = self._aggregate
        yield key, aggregate.finalize(_merge_all(aggregate, states))


def _merge_all(aggregate: AggregateFunction, states) -> object:
    merged = aggregate.create()
    for state in states:
        merged = aggregate.merge(merged, state)
    return merged


def _spread(records: List, num_chunks: int) -> List[List]:
    """Round-robin records into ``num_chunks`` mapper inputs."""
    chunks: List[List] = [[] for _ in range(num_chunks)]
    for index, record in enumerate(records):
        chunks[index % num_chunks].append(record)
    return chunks
