"""The naive MapReduce cube — Algorithm 1 of the paper (Section 3.1).

Each mapper projects every tuple onto all ``2^d`` subsets of its dimensions
and emits one ``(c-group, measure)`` pair per projection; the framework's
hash partitioner routes each c-group to a reducer, which aggregates the
delivered measure list.

The paper uses this algorithm to expose the three problems SP-Cube solves
(Sections 3.2-3.4): skewed groups overflow reducer memory, hash routing
gives no balance guarantee, and ``n * 2^d`` pairs cross the network.  It is
implemented here both as that pedagogical baseline and as a simple,
trustworthy distributed oracle — it handles *any* aggregate, including
holistic ones, since reducers see raw measure values.

``use_combiner=True`` adds a Hadoop combiner that pre-merges each map
task's output per c-group (the ablation bench uses this to quantify how far
combiners alone go — the paper notes Pig adds them to [26] and remains
distribution-sensitive).
"""

from __future__ import annotations

from typing import List, Optional

from ..aggregates.functions import AggregateFunction, Count
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.lineage import cuboid_of_mask_key
from ..observability.telemetry import emit_run_telemetry
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import all_cuboids, projector
from ..relation.relation import Relation


class NaiveCube:
    """Algorithm 1: project-everything, aggregate reduce-side."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
        *,
        use_combiner: bool = False,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()
        self.use_combiner = use_combiner

    @property
    def name(self) -> str:
        return "Naive-MR" + ("+combiner" if self.use_combiner else "")

    def compute(self, relation: Relation) -> CubeRun:
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        d = relation.schema.num_dimensions
        aggregate = self.aggregate

        combiner = _PartialCombiner(aggregate) if self.use_combiner else None
        tracer = self.cluster.tracer or NULL_TRACER
        run_base = tracer.clock

        job = MapReduceJob(
            name="naive-cube",
            mapper_factory=TaskFactory(_NaiveMapper, d),
            reducer_factory=TaskFactory(_NaiveReducer, aggregate),
            combiner=combiner,
            cuboid_of=cuboid_of_mask_key,
        )
        metrics = RunMetrics(algorithm=self.name)
        runner = RoundRunner(self.cluster, metrics, run_id="naive")
        result = runner.run(job, relation.split(k), m)

        cube = CubeResult(relation.schema)
        for (mask, values), value in result.output:
            cube.add(mask, values, value)
        metrics.output_groups = cube.num_groups
        emit_run_span(tracer, metrics, run_base)
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=cube, metrics=metrics)


class _PartialCombiner:
    """Hadoop combiner: fold a map task's raw measures per c-group into a
    single tagged partial state (picklable, unlike the old closure)."""

    __slots__ = ("_aggregate",)

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def __call__(self, key, values):
        aggregate = self._aggregate
        state = aggregate.create()
        for value in values:
            state = aggregate.add(state, value)
        yield key, ("partial", state)

    def __getstate__(self):
        return self._aggregate

    def __setstate__(self, state):
        self._aggregate = state


class _NaiveMapper(Mapper):
    """Lines 1-6: emit every projection with the tuple's measure."""

    def __init__(self, d: int):
        self._d = d
        self._projectors = [
            (mask, projector(mask, d)) for mask in all_cuboids(d)
        ]

    def map(self, record):
        measure = record[-1]
        self.context.add_cpu(1 << self._d)
        for mask, get in self._projectors:
            yield (mask, get(record)), measure


class _NaiveReducer(Reducer):
    """Lines 7-9: fold the delivered values; also merges combiner output."""

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def reduce(self, key, values: List):
        aggregate = self._aggregate
        state = aggregate.create()
        for value in values:
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "partial":
                state = aggregate.merge(state, value[1])
            else:
                state = aggregate.add(state, value)
        yield key, aggregate.finalize(state)
