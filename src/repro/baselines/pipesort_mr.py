"""Top-down multi-round MapReduce cube (Lee et al. [25]).

Section 7 discusses this competitor: it parallelizes PipeSort, deriving
each cuboid from a one-attribute-larger parent along an aggregation tree.
Every lattice *level* becomes one MapReduce round — ``d + 1`` rounds in
total — and each round re-shuffles the previous level's aggregate states.

The paper excludes it from the experiments because the extra rounds (and
their RAM-to-disk transitions) make it strictly slower, and because a
skewed c-group still lands on a single reducer.  We implement it anyway:
it completes the related-work landscape, the round-count cost is a useful
demonstration of why SP-Cube's two-round structure matters, and the
ablation bench uses it as the "many rounds" reference point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..aggregates.functions import AggregateFunction, Count
from ..cubing.pipesort import aggregation_tree
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.lineage import cuboid_of_mask_key
from ..observability.telemetry import emit_run_telemetry
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import full_mask, mask_size, project
from ..relation.relation import Relation


class PipeSortMR:
    """[25]: one round per lattice level, top-down along an aggregation tree."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()

    @property
    def name(self) -> str:
        return "PipeSort-MR"

    def compute(self, relation: Relation) -> CubeRun:
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        d = relation.schema.num_dimensions
        aggregate = self.aggregate
        metrics = RunMetrics(algorithm=self.name)
        tracer = self.cluster.tracer or NULL_TRACER
        self._run_base = tracer.clock
        # d + 1 rounds, each checkpointed: node losses resume the failed
        # level instead of aborting the whole pipeline.
        runner = RoundRunner(self.cluster, metrics, run_id="pipesort")

        # Round 0: the finest cuboid from the raw relation.
        job = MapReduceJob(
            name="pipesort-level-%d" % d,
            mapper_factory=TaskFactory(_BaseMapper, d, aggregate),
            reducer_factory=TaskFactory(_MergeReducer, aggregate),
            cuboid_of=cuboid_of_mask_key,
        )
        result = runner.run(job, relation.split(k), m)
        if result.metrics.aborted:
            return self._aborted_run(relation, metrics)
        level_states: Dict[Tuple[int, Tuple], object] = dict(result.output)
        all_states = dict(level_states)

        # One round per remaining level, deriving children from parents.
        plan = aggregation_tree(d)
        children_of: Dict[int, List[int]] = {}
        for child, parent in plan.items():
            children_of.setdefault(parent, []).append(child)

        for level in range(d - 1, -1, -1):
            parents = [
                (key, state)
                for key, state in level_states.items()
                if mask_size(key[0]) == level + 1
            ]

            job = MapReduceJob(
                name="pipesort-level-%d" % level,
                mapper_factory=TaskFactory(_DeriveMapper, children_of, d),
                reducer_factory=TaskFactory(_MergeReducer, aggregate),
                cuboid_of=cuboid_of_mask_key,
            )
            result = runner.run(job, _spread(parents, k), m)
            if result.metrics.aborted:
                return self._aborted_run(relation, metrics)
            level_states = dict(result.output)
            all_states.update(level_states)

        cube = CubeResult(relation.schema)
        for (mask, values), state in all_states.items():
            cube.add(mask, values, aggregate.finalize(state))
        metrics.output_groups = cube.num_groups
        metrics.extras["rounds"] = sum(
            1 for job_metrics in metrics.jobs if not job_metrics.superseded
        )
        emit_run_span(tracer, metrics, self._run_base)
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=cube, metrics=metrics)

    def _aborted_run(
        self, relation: Relation, metrics: RunMetrics
    ) -> CubeRun:
        """A level round exhausted its retry budget: stop, no output."""
        metrics.extras["rounds"] = sum(
            1 for job_metrics in metrics.jobs if not job_metrics.superseded
        )
        emit_run_span(
            self.cluster.tracer or NULL_TRACER, metrics, self._run_base
        )
        emit_run_telemetry(self.cluster, metrics)
        return CubeRun(cube=CubeResult(relation.schema), metrics=metrics)


class _BaseMapper(Mapper):
    """Round 0 map: project every raw row onto the finest cuboid."""

    def __init__(self, d: int, aggregate: AggregateFunction):
        self._d = d
        self._top = full_mask(d)
        self._aggregate = aggregate

    def map(self, row):
        top = self._top
        yield (top, project(row, top, self._d)), _single(
            self._aggregate, row[-1]
        )


class _DeriveMapper(Mapper):
    """Level round map: derive each child cuboid's groups from a parent."""

    def __init__(self, children_of: Dict[int, List[int]], d: int):
        self._children_of = children_of
        self._d = d

    def map(self, record):
        (parent_mask, parent_values), state = record
        for child_mask in self._children_of.get(parent_mask, ()):
            child_values = _reproject(
                parent_mask, parent_values, child_mask, self._d
            )
            yield (child_mask, child_values), state


class _MergeReducer(Reducer):
    """Merge the delivered aggregate states of one group (no finalize —
    states keep flowing down the levels)."""

    def __init__(self, aggregate: AggregateFunction):
        self._aggregate = aggregate

    def reduce(self, key, states):
        yield key, _merge_all(self._aggregate, states)


def _single(aggregate: AggregateFunction, measure) -> object:
    return aggregate.add(aggregate.create(), measure)


def _merge_all(aggregate: AggregateFunction, states) -> object:
    merged = aggregate.create()
    for state in states:
        merged = aggregate.merge(merged, state)
    return merged


def _reproject(
    parent_mask: int, parent_values: Tuple, child_mask: int, d: int
) -> Tuple:
    """Drop from the parent's value tuple the dimensions absent in the child."""
    values = []
    index = 0
    for dim in range(d):
        if parent_mask >> dim & 1:
            if child_mask >> dim & 1:
                values.append(parent_values[index])
            index += 1
    return tuple(values)


def _spread(records: List, num_chunks: int) -> List[List]:
    chunks: List[List] = [[] for _ in range(num_chunks)]
    for index, record in enumerate(records):
        chunks[index % num_chunks].append(record)
    return chunks
