"""The gen-zipf dataset (paper Section 6.2) and a reusable Zipf sampler.

Paper process: tuples and attributes independent; two attributes drawn from
a Zipf distribution over 1000 elements with exponent 1.1, the other two
uniform over 1000 elements.  The result mixes c-groups of wildly different
cardinalities — some holding ~20% of all tuples next to groups of a few
dozen — which is the distribution Figure 7 sweeps over.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

from ..relation.relation import Relation
from ..relation.schema import Schema


class ZipfSampler:
    """Draw ranks ``1..num_values`` with ``P(r) ~ 1 / r^exponent``.

    Uses inverse-CDF lookup over precomputed cumulative weights, so each
    draw is a binary search — fast enough for millions of rows.
    """

    def __init__(self, num_values: int, exponent: float, rng: random.Random):
        if num_values <= 0:
            raise ValueError("num_values must be positive")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        weights = [1.0 / (rank ** exponent) for rank in range(1, num_values + 1)]
        self._cumulative: List[float] = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = rng

    def sample(self) -> int:
        """One rank in ``1..num_values`` (rank 1 is the most frequent)."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point) + 1

    def probabilities(self) -> List[float]:
        """Per-rank probabilities (useful for analytic expectations)."""
        previous = 0.0
        probs = []
        for cumulative in self._cumulative:
            probs.append((cumulative - previous) / self._total)
            previous = cumulative
        return probs


def gen_zipf(
    num_rows: int,
    num_values: int = 1000,
    exponent: float = 1.1,
    num_zipf_dimensions: int = 2,
    num_uniform_dimensions: int = 2,
    seed: int = 0,
    measure: Optional[int] = 1,
) -> Relation:
    """Generate a gen-zipf relation.

    Defaults replicate the paper: 4 attributes — 2 Zipf(1000, 1.1) and 2
    uniform(1000) — with all draws independent.
    """
    rng = random.Random(seed)
    zipf = ZipfSampler(num_values, exponent, rng)
    total_dims = num_zipf_dimensions + num_uniform_dimensions
    if total_dims <= 0:
        raise ValueError("need at least one dimension")

    rows = []
    for _ in range(num_rows):
        dims = [zipf.sample() for _ in range(num_zipf_dimensions)]
        dims.extend(
            rng.randint(1, num_values) for _ in range(num_uniform_dimensions)
        )
        b = measure if measure is not None else rng.randint(1, 100)
        rows.append(tuple(dims) + (b,))

    names: Sequence[str] = [
        f"z{i + 1}" for i in range(num_zipf_dimensions)
    ] + [f"u{i + 1}" for i in range(num_uniform_dimensions)]
    schema = Schema(list(names), measure="m")
    return Relation(
        schema,
        rows,
        validate=False,
        name=f"gen-zipf(n={num_rows}, s={exponent})",
    )
