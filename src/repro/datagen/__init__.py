"""Workload generators: the paper's synthetic processes and dataset stand-ins."""

from .adversarial import (
    adversarial_memory,
    adversarial_relation,
    expected_emissions_per_tuple,
)
from .binomial import NUM_SKEW_VALUES, gen_binomial
from .weblogs import (
    USAGOV_CUBE_DIMENSIONS,
    project_to_dimensions,
    usagov_clicks,
    wikipedia_traffic,
)
from .zipf import ZipfSampler, gen_zipf

__all__ = [
    "adversarial_memory",
    "adversarial_relation",
    "expected_emissions_per_tuple",
    "NUM_SKEW_VALUES",
    "gen_binomial",
    "USAGOV_CUBE_DIMENSIONS",
    "project_to_dimensions",
    "usagov_clicks",
    "wikipedia_traffic",
    "ZipfSampler",
    "gen_zipf",
]
