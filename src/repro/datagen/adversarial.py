"""Worst-case relations for the traffic lower bound of Theorem 5.3.

Theorem 5.3 exhibits a relation forcing SP-Cube to ship ``Theta(2^d * n)``
intermediate records.  The mechanism: make every c-group at lattice levels
``<= d/2`` skewed while every level-``d/2 + 1`` c-group is not.  Then, for
every tuple, each of the ``C(d, d/2 + 1)`` level-``d/2 + 1`` nodes is an
unmarked non-skewed node (nothing below it could cover it) and gets its own
emission — ``Theta(2^d / sqrt(d))`` emissions per tuple.

**Note on the paper's literal construction.**  The paper builds ``w = m+1``
identical copies of each 0/1 pattern of ``d/2`` ones.  Read literally, each
level-``d/2 + 1`` projection of such a tuple also contains at least the
``w > m`` copies of its own pattern, so those groups are skewed too — in
fact *every* projection is, and SP-Cube absorbs the whole relation map-side
(zero emissions), the opposite of the intended bound.  What the proof's
argument actually needs is the skew boundary to sit exactly at level
``d/2``, and :func:`adversarial_relation` realizes that directly: ``d``
independent uniform *binary* attributes.  Level-``j`` groups then hold
``~ n / 2^j`` tuples, so choosing the memory budget ``m`` strictly between
``n / 2^(d/2+1)`` and ``n / 2^(d/2)`` (see :func:`adversarial_memory`)
puts every level ``<= d/2`` over the skew threshold and every level
``> d/2`` under it — the theorem's configuration.
"""

from __future__ import annotations

import math
import random

from ..relation.relation import Relation
from ..relation.schema import Schema


def adversarial_relation(
    num_dimensions: int,
    num_rows: int,
    seed: int = 0,
    measure: int = 1,
) -> Relation:
    """Theorem 5.3 worst case: ``d`` independent uniform binary attributes.

    Use together with :func:`adversarial_memory` — the bound only holds
    when ``m`` sits in the level-``d/2`` window.
    """
    if num_dimensions < 2 or num_dimensions % 2 != 0:
        raise ValueError("the construction needs an even d >= 2")
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = random.Random(seed)
    rows = [
        tuple(rng.randint(0, 1) for _ in range(num_dimensions)) + (measure,)
        for _ in range(num_rows)
    ]
    schema = Schema(
        [f"a{i + 1}" for i in range(num_dimensions)], measure="m"
    )
    return Relation(
        schema,
        rows,
        validate=False,
        name=f"adversarial(d={num_dimensions}, n={num_rows})",
    )


def adversarial_memory(num_dimensions: int, num_rows: int) -> int:
    """The ``m`` placing the skew boundary at level ``d/2``.

    The geometric mean of the expected level-``d/2`` and level-``d/2 + 1``
    group sizes: ``n / 2^(d/2 + 1/2)``.
    """
    half = num_dimensions // 2
    return max(1, int(num_rows / (2 ** (half + 0.5))))


def expected_emissions_per_tuple(num_dimensions: int) -> int:
    """``C(d, d/2 + 1)`` — the per-tuple emissions the bound predicts."""
    return math.comb(num_dimensions, num_dimensions // 2 + 1)
