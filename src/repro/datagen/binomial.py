"""The gen-binomial dataset (paper Section 6.2).

Generation process, verbatim from the paper: each tuple independently is

* with probability ``p`` — a *skew* tuple: draw ``i`` uniformly from
  ``{1..20}`` and set every attribute to ``i`` (the tuples ``(1,1,...,1)``,
  ``(2,2,...,2)``, ...);
* with probability ``1 - p`` — a *tail* tuple: every attribute an
  independent uniform 32-bit integer.

A fraction ``p`` of the data therefore contributes to skewed groups in
*every* cuboid, while the tail is essentially collision-free — the knob the
paper turns in Figure 6 to isolate skew sensitivity.
"""

from __future__ import annotations

import random
from typing import Optional

from ..relation.relation import Relation
from ..relation.schema import Schema

#: Number of distinct skew tuples, as in the paper.
NUM_SKEW_VALUES = 20
_UINT32_MAX = (1 << 32) - 1


def gen_binomial(
    num_rows: int,
    skew_probability: float,
    num_dimensions: int = 4,
    seed: int = 0,
    measure: Optional[int] = 1,
) -> Relation:
    """Generate a gen-binomial relation.

    Parameters
    ----------
    num_rows:
        ``n``, the number of tuples.
    skew_probability:
        ``p`` in [0, 1] — the fraction of tuples drawn from the 20 skew
        patterns.
    num_dimensions:
        ``d``; the paper reports 4-dimensional runs.
    seed:
        RNG seed for reproducibility.
    measure:
        Constant measure value; ``None`` draws a uniform value in 1..100
        (the paper aggregates with ``count``, so the measure is inert).
    """
    if not 0.0 <= skew_probability <= 1.0:
        raise ValueError(f"skew probability {skew_probability} outside [0, 1]")
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        if rng.random() < skew_probability:
            value = rng.randint(1, NUM_SKEW_VALUES)
            dims = (value,) * num_dimensions
        else:
            dims = tuple(
                rng.randint(0, _UINT32_MAX) for _ in range(num_dimensions)
            )
        b = measure if measure is not None else rng.randint(1, 100)
        rows.append(dims + (b,))

    schema = Schema(
        [f"a{i + 1}" for i in range(num_dimensions)], measure="m"
    )
    return Relation(
        schema,
        rows,
        validate=False,
        name=f"gen-binomial(n={num_rows}, p={skew_probability})",
    )
