"""Synthetic stand-ins for the paper's two real-world datasets.

The originals are not redistributable at reproduction scale, so these
generators are built to match the *published statistics* — the only
properties the algorithms can observe:

**Wikipedia Traffic Statistics** (Section 6.1): 4 dimension attributes;
at 300M rows, ~180M distinct c-groups in the cube and ~50 skewed c-groups
whose cardinality is 5-30% of the row count.  We model dimensions
(project, page, hour, agent): ``project`` is a Zipf over a handful of
language editions (the top edition alone covers ~30% of requests —
yielding skewed groups in every cuboid containing ``project``), ``agent``
has three heavily unbalanced classes, ``hour`` is mildly diurnal, and
``page`` is a heavy-tail with very many distinct values (driving the huge
distinct-group count).

**USAGOV click logs** (Section 6.1): 15 dimension attributes, cube built
over 4 of them; ~30 skewed groups of 6-25% cardinality and ~20M total
c-groups at 30M rows.  We generate all 15 columns (country, timezone,
browser, OS, hour, shortener domain, ...) with the documented dominance of
US traffic and of a few browsers/timezones, and provide the default 4-dim
cube projection used in the experiments.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..relation.relation import Relation
from ..relation.schema import Schema
from .zipf import ZipfSampler


def _weighted_picker(rng: random.Random, pairs: Sequence[Tuple[str, float]]):
    """A closure drawing values with the given (value, weight) profile."""
    values = [value for value, _weight in pairs]
    weights = [weight for _value, weight in pairs]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def pick() -> str:
        return rng.choices(values, cum_weights=cumulative, k=1)[0]

    return pick


def wikipedia_traffic(num_rows: int, seed: int = 0) -> Relation:
    """Wikipedia page-request statistics stand-in (4 dims + count measure)."""
    rng = random.Random(seed)

    pick_project = _weighted_picker(
        rng,
        [
            ("en", 0.30), ("de", 0.12), ("ja", 0.10), ("es", 0.09),
            ("fr", 0.08), ("ru", 0.07), ("it", 0.05), ("pt", 0.05),
            ("zh", 0.04), ("pl", 0.03), ("nl", 0.03), ("commons", 0.04),
        ],
    )
    pick_agent = _weighted_picker(
        rng, [("user", 0.68), ("spider", 0.26), ("bot", 0.06)]
    )
    # Diurnal hour profile: afternoon peak, night trough.
    hour_weights = [
        0.6, 0.5, 0.4, 0.4, 0.5, 0.7, 1.0, 1.3, 1.5, 1.6, 1.7, 1.8,
        1.9, 2.0, 2.0, 1.9, 1.8, 1.8, 1.9, 2.0, 1.9, 1.6, 1.2, 0.8,
    ]
    pick_hour = _weighted_picker(
        rng, [(f"h{h:02d}", w) for h, w in enumerate(hour_weights)]
    )
    # Page popularity: a Zipf head (Main_Page and friends soak up traffic)
    # over a very large universe, so fine cuboids stay extremely sparse.
    page_universe = max(1000, num_rows // 3)
    page_sampler = ZipfSampler(page_universe, 0.9, rng)

    rows = []
    for _ in range(num_rows):
        rows.append(
            (
                pick_project(),
                f"p{page_sampler.sample()}",
                pick_hour(),
                pick_agent(),
                1,
            )
        )
    schema = Schema(["project", "page", "hour", "agent"], measure="requests")
    return Relation(
        schema, rows, validate=False, name=f"wikipedia-traffic({num_rows})"
    )


#: The four USAGOV dimensions the experiments cube over (paper: "we built
#: our cubes over 4 of them with similar settings to the Wikipedia traffic
#: dataset").
USAGOV_CUBE_DIMENSIONS = ("country", "timezone", "browser", "hour")

_USAGOV_COLUMNS: List[str] = [
    "country", "timezone", "browser", "hour",
    "os", "city", "domain", "referrer", "known_user",
    "agency", "hashname", "language", "device", "weekday", "https",
]


def usagov_clicks(num_rows: int, seed: int = 0) -> Relation:
    """USAGOV click-log stand-in: the full 15-dimension relation."""
    rng = random.Random(seed)

    pick_country = _weighted_picker(
        rng,
        [("US", 0.62), ("BR", 0.06), ("GB", 0.05), ("CA", 0.04),
         ("IN", 0.04), ("MX", 0.03), ("DE", 0.03), ("FR", 0.02),
         ("AU", 0.02), ("ES", 0.02), ("IT", 0.02), ("JP", 0.02),
         ("other", 0.03)],
    )
    pick_timezone = _weighted_picker(
        rng,
        [("America/New_York", 0.25), ("America/Chicago", 0.15),
         ("America/Los_Angeles", 0.14), ("America/Denver", 0.05),
         ("Europe/London", 0.05), ("America/Sao_Paulo", 0.05),
         ("Asia/Calcutta", 0.04), ("Europe/Madrid", 0.03),
         ("Australia/Sydney", 0.02), ("other_tz", 0.22)],
    )
    pick_browser = _weighted_picker(
        rng,
        [("Mozilla5", 0.45), ("MSIE9", 0.15), ("MSIE8", 0.12),
         ("Chrome", 0.10), ("Safari", 0.08), ("Opera", 0.03),
         ("mobile", 0.05), ("other_ua", 0.02)],
    )
    hour_weights = [
        0.5, 0.4, 0.3, 0.3, 0.4, 0.6, 1.0, 1.4, 1.8, 2.0, 2.1, 2.1,
        2.0, 2.0, 2.0, 1.9, 1.8, 1.6, 1.4, 1.3, 1.2, 1.0, 0.8, 0.6,
    ]
    pick_hour = _weighted_picker(
        rng, [(f"h{h:02d}", w) for h, w in enumerate(hour_weights)]
    )
    pick_os = _weighted_picker(
        rng, [("Windows", 0.62), ("MacOS", 0.14), ("iOS", 0.10),
              ("Android", 0.09), ("Linux", 0.05)]
    )
    pick_domain = _weighted_picker(
        rng, [("1.usa.gov", 0.72), ("go.usa.gov", 0.20), ("other.gov", 0.08)]
    )
    pick_agency = _weighted_picker(
        rng, [("nasa", 0.22), ("irs", 0.15), ("cdc", 0.13), ("noaa", 0.12),
              ("whitehouse", 0.10), ("dod", 0.08), ("doe", 0.06),
              ("misc", 0.14)]
    )
    city_sampler = ZipfSampler(max(500, num_rows // 50), 1.0, rng)
    referrer_sampler = ZipfSampler(max(200, num_rows // 100), 1.1, rng)
    hash_sampler = ZipfSampler(max(1000, num_rows // 10), 1.05, rng)

    rows = []
    for _ in range(num_rows):
        rows.append(
            (
                pick_country(),
                pick_timezone(),
                pick_browser(),
                pick_hour(),
                pick_os(),
                f"c{city_sampler.sample()}",
                pick_domain(),
                f"r{referrer_sampler.sample()}",
                rng.random() < 0.8,
                pick_agency(),
                f"x{hash_sampler.sample()}",
                "en" if rng.random() < 0.78 else rng.choice(
                    ["es", "pt", "fr", "de", "zh"]
                ),
                rng.choice(["desktop"] * 7 + ["mobile"] * 2 + ["tablet"]),
                f"d{rng.randint(0, 6)}",
                rng.random() < 0.35,
                1,
            )
        )
    schema = Schema(list(_USAGOV_COLUMNS), measure="clicks")
    return Relation(
        schema, rows, validate=False, name=f"usagov-clicks({num_rows})"
    )


def project_to_dimensions(
    relation: Relation, dimensions: Sequence[str]
) -> Relation:
    """A new relation keeping only ``dimensions`` (plus the measure).

    Used to build the 4-attribute cube over the 15-dimension USAGOV data,
    as the paper does.
    """
    indices = [relation.schema.dimension_index(name) for name in dimensions]
    rows = [
        tuple(row[i] for i in indices) + (row[-1],) for row in relation.rows
    ]
    schema = Schema(list(dimensions), measure=relation.schema.measure)
    return Relation(
        schema,
        rows,
        validate=False,
        name=f"{relation.name}|{','.join(dimensions)}",
    )
