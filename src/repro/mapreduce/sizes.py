"""Byte-size estimation for shuffled keys and values.

The simulator charges network and disk costs in *estimated serialized
bytes*.  The estimator below mirrors a compact binary encoding (8-byte
numbers, length-prefixed strings, flat tuple framing) rather than Python's
in-memory object sizes, because what the paper measures — "map output size",
"intermediate data size" — is serialized traffic between mappers and
reducers.

This function runs once per shuffled pair, so the common shapes (scalars
and shallow tuples of scalars) take an iteration-free fast path; only
nested containers recurse.  There is deliberately no global memo here:
key sizes for repeated keys are cached per task by the engine's routing
loop (``_route_pairs``), where the cache key is free, and a type-strict
standalone memo key costs more to build than the sizes it would save
(``(1,)`` and ``(True,)`` are equal yet 12 vs 5 bytes, so equality alone
cannot key a cache).
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

#: Framing overhead charged per composite value (length/type header).
_CONTAINER_OVERHEAD = 4
#: Fixed-width encoding for numbers, as in Hadoop's LongWritable.
_NUMBER_BYTES = 8


def estimate_bytes(obj) -> int:
    """Estimated serialized size of ``obj`` in bytes.

    Supports the object shapes that flow through the engines: numbers,
    strings, ``None`` (a projected-away attribute), tuples/lists, sets and
    Counters (holistic aggregate states).

    >>> estimate_bytes(42)
    8
    >>> estimate_bytes(("laptop", 2012))  # 4 frame + (4 + 6) str + 8 int
    22
    """
    kind = type(obj)
    if kind is int or kind is float:
        return _NUMBER_BYTES
    if kind is str:
        return _CONTAINER_OVERHEAD + len(obj)
    if kind is tuple or kind is list:
        total = _CONTAINER_OVERHEAD
        for item in obj:
            item_kind = type(item)
            if item_kind is int or item_kind is float:
                total += _NUMBER_BYTES
            elif item_kind is str:
                total += _CONTAINER_OVERHEAD + len(item)
            else:
                total += estimate_bytes(item)
        return total
    return _estimate_slow(obj)


def _estimate_slow(obj) -> int:
    """Rarer shapes: bools, bytes, dicts/Counters, sets, None, fallbacks."""
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):  # bool-excluded numeric subclasses
        return _NUMBER_BYTES
    if isinstance(obj, str):
        return _CONTAINER_OVERHEAD + len(obj)
    if isinstance(obj, bytes):
        return _CONTAINER_OVERHEAD + len(obj)
    if isinstance(obj, Counter):
        return _CONTAINER_OVERHEAD + sum(
            estimate_bytes(key) + _NUMBER_BYTES for key in obj
        )
    if isinstance(obj, dict):
        return _CONTAINER_OVERHEAD + sum(
            estimate_bytes(key) + estimate_bytes(value)
            for key, value in obj.items()
        )
    if isinstance(obj, (set, frozenset, tuple, list)):
        return _CONTAINER_OVERHEAD + sum(
            estimate_bytes(item) for item in obj
        )
    # Fallback: charge for the repr, which is at least deterministic.
    return _CONTAINER_OVERHEAD + len(repr(obj))


def pair_bytes(key, value) -> int:
    """Serialized size of one shuffled ``(key, value)`` pair."""
    return estimate_bytes(key) + estimate_bytes(value)


def relation_bytes(rows) -> Tuple[int, int]:
    """(record count, total bytes) for an iterable of rows."""
    count = 0
    total = 0
    for row in rows:
        count += 1
        total += estimate_bytes(row)
    return count, total
