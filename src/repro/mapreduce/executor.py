"""Pluggable task-execution backends for the simulated engine.

The engine's map and reduce tasks are independent by construction — the
same property real MapReduce exploits for scale-out — so a phase's tasks
can run concurrently without touching the simulation's semantics.  This
module provides the two backends:

* :class:`SerialExecutor` — the default: tasks run one after another in
  the driver process, stopping early once a task aborts (exactly the
  engine's historical behaviour).
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fans the phase's
  tasks out across worker processes; tasks whose job closes over
  non-picklable state fall back to a thread pool transparently.

Determinism is preserved by contract, not by luck:

1. every task is a **pure function** of its inputs (chunk, job, fault
   plan, retry policy) — fault coin flips are seeded per
   ``(job, phase, task, attempt)`` identity, never per execution order;
2. the executor returns outcomes **in task-index order**, and the engine
   merges them in that order, so shuffle buckets, metrics counters and
   attempt chains are bit-identical to a serial run;
3. a task chain that exhausts its retry budget produces an *outcome*
   (``task is None``), never an exception; the engine truncates the merge
   at the first aborted index, which reproduces serial early-stopping
   even when a parallel backend has already run the later tasks.

:func:`run_task_chain` is the pure attempt-chain driver shared by both
backends: it accumulates the fault-tolerance counters into the returned
:class:`TaskOutcome` instead of mutating shared job metrics, which is
what makes a task safe to execute in a worker process.
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .costmodel import CostModel
from .faults import FaultPlan, RetryPolicy
from .metrics import TaskMetrics

#: Environment variable consulted when a cluster does not pin parallelism.
PARALLELISM_ENV = "REPRO_PARALLELISM"


@dataclass
class TaskOutcome:
    """Everything one task's attempt chain produced.

    ``task`` is the winning attempt's metrics (``seconds`` covering the
    whole chain) or ``None`` when the retry budget was exhausted; the
    fault-tolerance counters are carried here instead of being written to
    shared :class:`~repro.mapreduce.metrics.JobMetrics`, so a chain can
    run in a worker process and be merged deterministically afterwards.
    """

    task: Optional[TaskMetrics]
    payload: object
    chain_seconds: float = 0.0
    attempts: int = 0
    killed_tasks: int = 0
    speculative_wins: int = 0
    recovered: int = 0
    killed_attempts: List[TaskMetrics] = field(default_factory=list)
    #: Chain-local trace records (attempt spans + fault events) with
    #: times relative to the chain's start; ``None`` unless the chain ran
    #: with ``trace=True``.  The driver offsets them onto the simulated
    #: timeline and emits them in task-index order, which is what makes
    #: trace files bit-identical across serial and parallel backends.
    trace: Optional[List[dict]] = None

    @property
    def exhausted(self) -> bool:
        """True when the chain ran out of attempts (the job must abort)."""
        return self.task is None


def run_task_chain(
    attempt_fn: Callable[[], tuple],
    *,
    job_name: str,
    phase: str,
    machine: int,
    faults: FaultPlan,
    retry: RetryPolicy,
    cost: CostModel,
    trace: bool = False,
    node_kill_at: Optional[float] = None,
) -> TaskOutcome:
    """Drive one logical task through crash-retry and speculation.

    ``attempt_fn`` executes one full attempt from the task's input and
    returns ``(task, payload)`` with ``task.seconds`` set to the attempt's
    nominal (fault-free) runtime.  The winning attempt's ``task.seconds``
    covers the whole chain of failed attempts, detection delays, backoffs
    and the winner; an exhausted budget yields ``task=None`` with the
    dead chain's accumulated seconds.

    ``node_kill_at`` is the phase-relative instant this task's node dies
    (``None`` = the node survives).  An attempt overlapping that instant
    is killed with only its pre-kill work lost; every retry after it is
    placed on the same (now dead) slot and dies immediately, so the
    chain deterministically exhausts — a node loss always surfaces as an
    aborted round for the checkpoint layer to resume, never as a quiet
    retry.  The cause is recorded on the crash event so traces separate
    node deaths from ordinary task crashes.

    With ``trace=True`` the chain also buffers one attempt span per
    execution and one event per injected fault into ``outcome.trace``,
    with chain-relative times — safe to build in a worker process and
    merged deterministically by the driver (see
    :mod:`repro.observability.tracer`).
    """
    outcome = TaskOutcome(task=None, payload=None)
    records: Optional[List[dict]] = [] if trace else None
    if trace:
        outcome.trace = records
    chain_seconds = 0.0
    for attempt in range(retry.max_attempts):
        task, payload = attempt_fn()
        task.attempt = attempt
        outcome.attempts += 1
        nominal = task.seconds

        if faults.crashes(job_name, phase, machine, attempt):
            # The attempt dies and its output is discarded; the chain pays
            # for the lost work, the heartbeat timeout, and the backoff.
            task.killed = True
            backoff = retry.backoff_seconds(attempt + 1)
            if records is not None:
                records.append(
                    _attempt_span(
                        job_name, phase, machine, attempt,
                        chain_seconds, chain_seconds + nominal,
                        "killed", task,
                    )
                )
                records.append({
                    "type": "event", "kind": "crash",
                    "job": job_name, "phase": phase, "task": machine,
                    "attempt": attempt, "at": chain_seconds + nominal,
                    "fields": {
                        "lost_seconds": nominal,
                        "detection_seconds": cost.crash_detection_seconds,
                        "backoff_seconds": backoff,
                    },
                })
            chain_seconds += cost.retry_overhead_seconds(nominal, backoff)
            outcome.killed_tasks += 1
            outcome.killed_attempts.append(task)
            continue

        factor = faults.slowdown_factor(job_name, phase, machine, attempt)
        seconds = nominal * factor

        if node_kill_at is not None and (
            node_kill_at <= chain_seconds
            or node_kill_at < chain_seconds + seconds
        ):
            # The node hosting this slot dies while the attempt runs (or
            # was already dead when the attempt would have been placed).
            # Only the pre-kill work is lost; detection and backoff are
            # still paid before the (doomed) retry.
            lost = min(max(node_kill_at - chain_seconds, 0.0), seconds)
            task.killed = True
            task.seconds = lost
            backoff = retry.backoff_seconds(attempt + 1)
            if records is not None:
                records.append(
                    _attempt_span(
                        job_name, phase, machine, attempt,
                        chain_seconds, chain_seconds + lost,
                        "killed", task,
                    )
                )
                records.append({
                    "type": "event", "kind": "crash",
                    "job": job_name, "phase": phase, "task": machine,
                    "attempt": attempt, "at": chain_seconds + lost,
                    "fields": {
                        "lost_seconds": lost,
                        "detection_seconds": cost.crash_detection_seconds,
                        "backoff_seconds": backoff,
                        "cause": "node-kill",
                    },
                })
            chain_seconds += cost.retry_overhead_seconds(lost, backoff)
            outcome.killed_tasks += 1
            outcome.killed_attempts.append(task)
            continue

        if records is not None and factor > 1.0:
            records.append({
                "type": "event", "kind": "straggle",
                "job": job_name, "phase": phase, "task": machine,
                "attempt": attempt, "at": chain_seconds,
                "fields": {"factor": factor, "nominal_seconds": nominal},
            })
        if (
            retry.speculation_enabled
            and nominal > 0.0
            and seconds >= retry.speculation_threshold * nominal
        ):
            # Speculative execution: a backup copy starts after the
            # framework's detection delay; first finisher wins, the loser
            # is killed, and only the winner's (identical) output is kept.
            backup_seconds = cost.speculation_launch_seconds + nominal
            outcome.attempts += 1
            outcome.killed_tasks += 1
            won = backup_seconds < seconds
            if records is not None:
                records.append({
                    "type": "event", "kind": "speculation",
                    "job": job_name, "phase": phase, "task": machine,
                    "attempt": attempt, "at": chain_seconds,
                    "fields": {
                        "won": won,
                        "backup_seconds": backup_seconds,
                        "slowed_seconds": seconds,
                    },
                })
            if won:
                seconds = backup_seconds
                task.speculative = True
                outcome.speculative_wins += 1

        task.seconds = chain_seconds + seconds
        task.overhead_seconds = chain_seconds + (seconds - nominal)
        if records is not None:
            records.append(
                _attempt_span(
                    job_name, phase, machine, attempt,
                    chain_seconds, chain_seconds + seconds,
                    "speculative" if task.speculative else "ok", task,
                )
            )
        if attempt > 0 or task.speculative:
            outcome.recovered += 1
        outcome.task = task
        outcome.payload = payload
        outcome.chain_seconds = chain_seconds
        return outcome
    outcome.chain_seconds = chain_seconds
    return outcome


def _attempt_span(
    job_name: str,
    phase: str,
    machine: int,
    attempt: int,
    t0: float,
    t1: float,
    status: str,
    task: TaskMetrics,
) -> dict:
    """One attempt's span record (chain-relative times, no seq yet)."""
    from ..observability.tracer import attempt_counters

    return {
        "type": "span", "kind": "attempt", "name": phase,
        "job": job_name, "phase": phase, "task": machine,
        "attempt": attempt, "t0": t0, "t1": t1, "status": status,
        "counters": attempt_counters(task),
    }


class SerialExecutor:
    """Run tasks one after another in the driver process (the default).

    Stops dispatching as soon as a task chain exhausts its retry budget —
    later tasks never run and contribute nothing, exactly as the engine
    always behaved.
    """

    name = "serial"

    def __init__(self):
        #: Shape of the most recent :meth:`run_tasks` call, for telemetry
        #: (see :class:`ParallelExecutor`): the serial backend executes one
        #: task at a time with the rest queued behind it.
        self.last_run_stats: Optional[Dict] = None

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], TaskOutcome]],
        stop_early: Optional[Callable[[TaskOutcome], bool]] = None,
    ) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for task in tasks:
            outcome = task()
            outcomes.append(outcome)
            if stop_early is not None and stop_early(outcome):
                break
        self.last_run_stats = {
            "backend": "serial",
            "tasks": len(tasks),
            "batches": len(tasks),
            "max_in_flight": 1 if tasks else 0,
            "max_queue_depth": max(0, len(tasks) - 1),
        }
        return outcomes


#: Cached worker pools, keyed by (kind, max_workers).  Forking a pool per
#: phase would dominate small jobs; the pools are process-global, reused
#: across runs, and torn down at interpreter exit.
_POOLS: Dict[tuple, _FuturesExecutor] = {}


def _shutdown_pools() -> None:
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(_shutdown_pools)


def _get_pool(kind: str, max_workers: int) -> _FuturesExecutor:
    pool = _POOLS.get((kind, max_workers))
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=max_workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="repro-task",
            )
        _POOLS[(kind, max_workers)] = pool
    return pool


def _discard_pool(kind: str, max_workers: int) -> None:
    pool = _POOLS.pop((kind, max_workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


class _TaskBatch:
    """A contiguous run of tasks executed as one pool submission.

    Batching amortizes the per-submission overhead (one future, one
    pickle round-trip, one result wakeup) over several tasks, and —
    because one ``pickle.dumps`` memoizes shared objects — state
    referenced by every task in the batch (the job description, a
    partitioner, task factories) crosses the process boundary **once per
    batch** instead of once per task.  Combined with
    :class:`~repro.mapreduce.broadcast.Broadcast` for the genuinely
    large shared state, the per-task IPC cost collapses to the task's
    own chunk.

    The batch preserves task order internally and the executor flattens
    batch results in submission order, so outcome order — and therefore
    the engine's merge — is identical to unbatched execution.
    """

    __slots__ = ("tasks",)

    def __init__(self, tasks: Sequence[Callable[[], TaskOutcome]]):
        self.tasks = tasks

    def __call__(self) -> List[TaskOutcome]:
        # Worker-side mirror of the engine's round-level GC pause: task
        # execution allocates cycle-free tuples by the million, and the
        # collector's full scans are pure overhead while a batch runs.
        if gc.isenabled():
            gc.disable()
            try:
                return [task() for task in self.tasks]
            finally:
                gc.enable()
        return [task() for task in self.tasks]


def batch_slices(num_tasks: int, num_batches: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` slices splitting ``num_tasks`` into at
    most ``num_batches`` near-equal batches (earlier batches get the
    remainder, mirroring how input chunks are split)."""
    num_batches = max(1, min(num_batches, num_tasks))
    base, extra = divmod(num_tasks, num_batches)
    slices: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_batches):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


class ParallelExecutor:
    """Fan a phase's tasks out across processes (threads as a fallback).

    A phase's first task is pickle-probed: picklable tasks go to a
    ``ProcessPoolExecutor`` (true parallelism), anything closing over
    lambdas or other non-picklable state runs on a thread pool instead
    (same API, GIL-bound).  Tasks are submitted in contiguous
    :class:`_TaskBatch` groups (``batches_per_worker`` per worker) to
    amortize submit/serialize overhead.  Either way the outcomes come
    back in task-index order, so the engine's merge — and therefore the
    cube, the metrics and the fault chains — is bit-identical to serial.

    A broken pool (a worker segfaulted, or a task's *result* failed to
    pickle) degrades to the thread pool and re-runs the phase; tasks are
    pure, so re-execution is safe.
    """

    name = "parallel"

    #: Batches per worker: 1 would minimize IPC but lose all load
    #: balancing; 2 keeps every worker busy while a straggling batch
    #: finishes, at twice the (already amortized) submission cost.
    batches_per_worker = 2

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        #: Shape of the most recent :meth:`run_tasks` call — backend kind,
        #: task/batch counts, peak in-flight batches and queue depth.
        #: Telemetry samples these as "host"-source diagnostics; they are
        #: backend-dependent by nature and never feed the simulation.
        self.last_run_stats: Optional[Dict] = None

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], TaskOutcome]],
        stop_early: Optional[Callable[[TaskOutcome], bool]] = None,
    ) -> List[TaskOutcome]:
        if len(tasks) <= 1:
            serial = SerialExecutor()
            outcomes = serial.run_tasks(tasks, stop_early)
            self.last_run_stats = serial.last_run_stats
            return outcomes
        if self._picklable(tasks[0]):
            try:
                return self._run_in_pool("process", tasks)
            except (BrokenProcessPool, pickle.PicklingError):
                # The pool died mid-phase (or a worker's result would not
                # serialize): discard it and redo the phase on threads.
                _discard_pool("process", self.max_workers)
        return self._run_in_pool("thread", tasks)

    def _run_in_pool(
        self, kind: str, tasks: Sequence[Callable[[], TaskOutcome]]
    ) -> List[TaskOutcome]:
        pool = _get_pool(kind, self.max_workers)
        futures = [
            pool.submit(_TaskBatch(tasks[start:stop]))
            for start, stop in batch_slices(
                len(tasks), self.max_workers * self.batches_per_worker
            )
        ]
        self.last_run_stats = {
            "backend": kind,
            "tasks": len(tasks),
            "batches": len(futures),
            "max_in_flight": min(self.max_workers, len(futures)),
            "max_queue_depth": max(0, len(futures) - self.max_workers),
        }
        outcomes: List[TaskOutcome] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    @staticmethod
    def _picklable(task) -> bool:
        try:
            pickle.dumps(task)
            return True
        except Exception:
            return False


def resolve_parallelism(value: Optional[int] = None) -> int:
    """Worker count for a run: explicit value, else ``REPRO_PARALLELISM``,
    else 1 (serial)."""
    if value is not None:
        return value
    env = os.environ.get(PARALLELISM_ENV)
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ValueError(
                f"{PARALLELISM_ENV} must be an integer, got {env!r}"
            ) from None
        if parsed < 1:
            raise ValueError(f"{PARALLELISM_ENV} must be >= 1, got {parsed}")
        return parsed
    return 1


def build_executor(parallelism: Optional[int] = None):
    """The executor for a resolved parallelism level (1 = serial)."""
    workers = resolve_parallelism(parallelism)
    if workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
