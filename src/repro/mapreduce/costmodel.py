"""Cost model translating simulator counters into simulated seconds.

The paper reports wall-clock times on a 20-node Hadoop cluster.  We cannot
(and need not) reproduce JVM wall-clock; what determines the paper's curves
is *where the work and the bytes go*: how many records each machine touches,
how many bytes cross the network, and whether a reduce group overflows main
memory.  The simulator counts those quantities exactly, and this model maps
them to seconds with fixed coefficients so that runs are comparable across
algorithms.

Phase times take the **maximum over machines** — a single overloaded reducer
(the skew straggler) delays the whole round, which is precisely the effect
the paper's baselines suffer from.  Every MapReduce round also pays a fixed
startup cost, which is why multi-round algorithms (and the sketch round on
tiny inputs, Section 6.1) show a constant overhead.

Scaling: the paper runs 10^8-10^9 rows; the simulator runs 10^4-10^6.  All
of the paper's definitions are relative to ``m = n/k``, so the *algorithms*
are scale-free, but wall-clock is not — at 10^4 rows the fixed round
startup would swamp every per-record effect.  ``record_scale`` declares how
many real rows one simulated record stands for (default 1000): per-record
and per-byte coefficients are multiplied by it, keeping the startup-versus-
work balance at the paper's operating point.

The base (unscaled) coefficients approximate the paper's m3.xlarge testbed:
~1M records/s of map-side CPU per machine, ~75 MB/s effective per-link
shuffle bandwidth, ~100 MB/s local serialization, and a 6x penalty for
records processed through disk-based (spilled) aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Coefficients for converting counters into simulated seconds."""

    #: Real rows represented by one simulated record (see module docstring).
    record_scale: float = 1000.0
    #: Fixed per-round startup/teardown (job scheduling, JVM spin-up).
    round_startup_seconds: float = 5.0
    #: Seconds per map-side CPU operation (record touch / lattice node).
    map_cpu_op_seconds: float = 1.0e-6
    #: Seconds per emitted map output byte (serialization + local disk).
    map_output_byte_seconds: float = 1.0e-8
    #: Seconds per shuffled byte into one reducer (per-link bandwidth).
    shuffle_byte_seconds: float = 1.33e-8
    #: Seconds per reduce-side CPU operation.
    reduce_cpu_op_seconds: float = 1.0e-6
    #: Extra seconds per record that overflows memory and is processed
    #: through external (disk-based) aggregation.
    spill_record_seconds: float = 6.0e-6
    #: Seconds per byte written to the DFS as final output.
    output_byte_seconds: float = 1.0e-8
    #: Seconds for the JobTracker to notice a dead task (heartbeat
    #: timeout) before scheduling its re-execution.  A framework
    #: constant, like ``round_startup_seconds`` — not scaled.
    crash_detection_seconds: float = 10.0
    #: Seconds between an attempt being flagged as a straggler and its
    #: speculative backup copy starting on another machine.
    speculation_launch_seconds: float = 2.5

    def map_task_seconds(self, cpu_ops: int, output_bytes: int) -> float:
        """Simulated duration of one map task."""
        return self.record_scale * (
            cpu_ops * self.map_cpu_op_seconds
            + output_bytes * self.map_output_byte_seconds
        )

    def shuffle_seconds(self, max_reducer_input_bytes: int) -> float:
        """Shuffle duration — gated by the most loaded reducer's link."""
        return (
            self.record_scale
            * max_reducer_input_bytes
            * self.shuffle_byte_seconds
        )

    def retry_overhead_seconds(
        self, failed_attempt_seconds: float, backoff_seconds: float
    ) -> float:
        """Simulated time a failed attempt adds to its task's chain.

        The attempt's own runtime is lost work, the framework takes the
        heartbeat timeout to notice the death, and the scheduler then
        waits the retry policy's backoff before launching the next
        attempt.
        """
        return (
            failed_attempt_seconds
            + self.crash_detection_seconds
            + backoff_seconds
        )

    def reduce_task_seconds(
        self,
        cpu_ops: int,
        spilled_records: int,
        output_bytes: int,
    ) -> float:
        """Simulated duration of one reduce task."""
        return self.record_scale * (
            cpu_ops * self.reduce_cpu_op_seconds
            + spilled_records * self.spill_record_seconds
            + output_bytes * self.output_byte_seconds
        )
