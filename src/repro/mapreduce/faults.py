"""Fault injection and fault tolerance for the simulated MapReduce engine.

The paper's central experimental claim (Section 6, Figures 6a/7a) is about
*survival*: SP-Cube keeps running where Hive's reducers get stuck.  A real
MapReduce runtime survives individual task failures through three
mechanisms — task re-execution, speculative backup tasks for stragglers,
and DFS replication — and this module models all three so the simulator
can distinguish "a task died and the framework recovered" from "the job is
stuck".

Two pieces:

* :class:`FaultPlan` — a seeded, deterministic description of *what goes
  wrong*: crash a map/reduce task on attempt ``i``, slow a task down by a
  straggle factor, or drop a DFS replica read.  Faults can be pinned
  explicitly (:class:`FaultSpec`, for tests) or drawn from seeded
  per-``(job, phase, task, attempt)`` coin flips, so two runs with the
  same plan inject byte-identical faults regardless of execution order.
* :class:`RetryPolicy` — *how the framework responds*: how many attempts
  a task gets, the exponential backoff between attempts (charged to
  simulated time), and when a straggling attempt earns a speculative
  backup copy.

The engine (:func:`repro.mapreduce.engine.run_job`) consumes both via
:class:`~repro.mapreduce.cluster.ClusterConfig`.  The headline invariant,
enforced by the test suite: any run whose fault plan does not exhaust the
retry budget produces the bit-identical cube output of the fault-free run
— faults may only change the simulated clock, never the data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Fault kinds understood by the engine and the DFS.
CRASH = "crash"
STRAGGLE = "straggle"
READ_DROP = "read-drop"
#: Node-level failure domain: every in-flight attempt on the node dies
#: and the node's DFS replicas are lost (see :class:`NodeFaultSpec`).
NODE_KILL = "node-kill"

_KINDS = (CRASH, STRAGGLE, READ_DROP)


@dataclass(frozen=True)
class FaultSpec:
    """One explicitly pinned fault.

    ``None`` in a targeting field is a wildcard.  ``attempt`` defaults to
    0 (fault the first execution, let the retry succeed); ``attempt=None``
    faults *every* attempt — the standard way to exhaust a retry budget
    in tests.
    """

    kind: str
    job: Optional[str] = None
    phase: Optional[str] = None  # "map" | "reduce"
    task: Optional[int] = None
    attempt: Optional[int] = 0
    #: Straggle factor (>= 1) applied to the attempt's nominal runtime.
    slowdown: float = 4.0
    #: DFS targeting for ``read-drop``; ``replica=None`` drops every
    #: replica, which makes the read fail outright.
    path: Optional[str] = None
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")

    def matches_task(
        self, job: str, phase: str, task: int, attempt: int
    ) -> bool:
        return (
            (self.job is None or self.job == job)
            and (self.phase is None or self.phase == phase)
            and (self.task is None or self.task == task)
            and (self.attempt is None or self.attempt == attempt)
        )

    def matches_read(self, path: str, replica: int) -> bool:
        return (self.path is None or self.path == path) and (
            self.replica is None or self.replica == replica
        )


@dataclass(frozen=True)
class NodeFaultSpec:
    """One pinned node death — a whole failure domain going down.

    ``node`` names the topology node that dies.  Two targeting modes:

    * ``job=None`` (the default): ``at_seconds`` is *run-relative*
      simulated time — the node dies in whichever round's execution
      window contains that instant.  A completed or resumed round
      replaces the node (real clusters re-provision between rounds), so
      a kill never fires twice.
    * ``job="name"``: the kill targets that round specifically and
      ``at_seconds`` is relative to the round's start — the natural way
      to script "kill node 2 during round 2" in a test.

    Every attempt in flight on the node at the kill instant dies
    atomically, later attempts cannot be placed there, and the node's
    DFS replicas are marked dead (see
    :meth:`~repro.mapreduce.dfs.DistributedFileSystem.mark_nodes_dead`).
    """

    node: int
    at_seconds: float = 0.0
    job: Optional[str] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at_seconds < 0:
            raise ValueError("at_seconds must be >= 0")


class FaultPlan:
    """A deterministic schedule of injected faults.

    Explicit :class:`FaultSpec` entries fire exactly where they are
    pinned.  On top of those, seeded probabilities (``crash_prob``,
    ``straggle_prob``, ``read_drop_prob``) draw independent coin flips per
    ``(job, phase, task, attempt)`` / ``(path, replica)`` from a CRC32 of
    the identifying tuple — pure functions of the seed and the identity,
    never of execution order, so a plan injects the same faults no matter
    which engine runs under it or how tasks interleave.

    Node-level failure domains ride the same machinery:
    :class:`NodeFaultSpec` entries pin node deaths explicitly, and
    ``node_crash_prob`` draws one seeded coin per ``(node, job)`` pair —
    a node that loses its coin dies at that round's start.  The engine
    queries :meth:`node_kills_for_job` once per round.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        *,
        seed: int = 0,
        crash_prob: float = 0.0,
        straggle_prob: float = 0.0,
        straggle_slowdown: float = 4.0,
        read_drop_prob: float = 0.0,
        node_specs: Sequence[NodeFaultSpec] = (),
        node_crash_prob: float = 0.0,
    ):
        for name, prob in (
            ("crash_prob", crash_prob),
            ("straggle_prob", straggle_prob),
            ("read_drop_prob", read_drop_prob),
            ("node_crash_prob", node_crash_prob),
        ):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        if straggle_slowdown < 1.0:
            raise ValueError("straggle_slowdown must be >= 1")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.crash_prob = crash_prob
        self.straggle_prob = straggle_prob
        self.straggle_slowdown = straggle_slowdown
        self.read_drop_prob = read_drop_prob
        self.node_specs: Tuple[NodeFaultSpec, ...] = tuple(node_specs)
        self.node_crash_prob = node_crash_prob

    @property
    def is_empty(self) -> bool:
        """True when this plan can never inject anything."""
        return (
            not self.specs
            and not self.node_specs
            and not (
                self.crash_prob
                or self.straggle_prob
                or self.read_drop_prob
                or self.node_crash_prob
            )
        )

    @property
    def has_node_faults(self) -> bool:
        """True when this plan may kill whole nodes."""
        return bool(self.node_specs) or bool(self.node_crash_prob)

    # -- deterministic coin flips -------------------------------------------

    def _roll(self, *identity) -> float:
        """Uniform [0, 1) draw, a pure function of seed + identity."""
        data = repr((self.seed,) + identity).encode()
        return zlib.crc32(data) / 0x1_0000_0000

    # -- queries asked by the engine ----------------------------------------

    def crashes(self, job: str, phase: str, task: int, attempt: int) -> bool:
        """Does attempt ``attempt`` of this task die?"""
        for spec in self.specs:
            if spec.kind == CRASH and spec.matches_task(
                job, phase, task, attempt
            ):
                return True
        if self.crash_prob:
            return (
                self._roll(CRASH, job, phase, task, attempt)
                < self.crash_prob
            )
        return False

    def slowdown_factor(
        self, job: str, phase: str, task: int, attempt: int
    ) -> float:
        """Straggle factor for this attempt; 1.0 means healthy."""
        factor = 1.0
        for spec in self.specs:
            if spec.kind == STRAGGLE and spec.matches_task(
                job, phase, task, attempt
            ):
                factor = max(factor, spec.slowdown)
        if self.straggle_prob and (
            self._roll(STRAGGLE, job, phase, task, attempt)
            < self.straggle_prob
        ):
            factor = max(factor, self.straggle_slowdown)
        return factor

    # -- queries asked by the round runner ----------------------------------

    def node_kills_for_job(
        self,
        job: str,
        job_base: float,
        num_nodes: int,
        replaced: frozenset = frozenset(),
    ):
        """Node kills that fire during ``job``, as ``{node: kill_seconds}``.

        ``job_base`` is the run-relative simulated time at which the job
        starts; returned kill times are *job-relative* (seconds after the
        job's start).  ``replaced`` lists nodes already re-provisioned by
        the round runner after an earlier death — their pinned kills are
        spent and probabilistic coins are skipped, so a rerun of the same
        round does not die to the same node twice.

        Pure function of the plan and its arguments: serial and parallel
        executors, and reruns after a resume, see identical kills.
        """
        kills: dict = {}
        for spec in self.node_specs:
            if spec.node in replaced or not 0 <= spec.node < num_nodes:
                continue
            if spec.job is not None:
                if spec.job != job:
                    continue
                t = max(spec.at_seconds, 0.0)
            else:
                # Run-relative: fires in whichever job's window contains
                # it.  Once the run clock passes at_seconds the kill is
                # spent — t goes negative for every later job.
                t = spec.at_seconds - job_base
                if t < 0:
                    continue
            kills[spec.node] = min(kills.get(spec.node, t), t)
        if self.node_crash_prob:
            for node in range(num_nodes):
                if node in replaced or node in kills:
                    continue
                if self._roll(NODE_KILL, node, job) < self.node_crash_prob:
                    kills[node] = 0.0
        return kills

    # -- queries asked by the DFS -------------------------------------------

    def drops_read(self, path: str, replica: int) -> bool:
        """Does the read of ``replica`` of ``path`` fail?"""
        for spec in self.specs:
            if spec.kind == READ_DROP and spec.matches_read(path, replica):
                return True
        if self.read_drop_prob:
            return (
                self._roll(READ_DROP, path, replica) < self.read_drop_prob
            )
        return False

    def __repr__(self) -> str:
        return (
            f"FaultPlan(specs={len(self.specs)}, seed={self.seed}, "
            f"crash={self.crash_prob}, straggle={self.straggle_prob}, "
            f"read_drop={self.read_drop_prob}, "
            f"node_specs={len(self.node_specs)}, "
            f"node_crash={self.node_crash_prob})"
        )


#: The default plan: a perfectly healthy cluster.
NO_FAULTS = FaultPlan()


@dataclass(frozen=True)
class RetryPolicy:
    """How the framework reacts to task failure — Hadoop's knobs.

    ``max_attempts`` mirrors ``mapreduce.map/reduce.maxattempts`` (default
    4); a task that fails that many times aborts the whole job, which the
    engine reports as ``JobMetrics.aborted`` (never an exception).
    Between attempts the scheduler waits an exponential backoff, charged
    to the failed task's chain of simulated time.  A running attempt whose
    straggle factor reaches ``speculation_threshold`` earns a speculative
    backup copy (Hadoop's speculative execution): the copy starts after
    the framework's detection delay, the first finisher wins, the loser is
    killed, and the winner's output alone is kept — so duplicated
    execution never duplicates data.
    """

    max_attempts: int = 4
    backoff_base_seconds: float = 2.0
    backoff_factor: float = 2.0
    speculation_enabled: bool = True
    #: Straggle factor at which a backup copy is launched.
    speculation_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.speculation_threshold <= 1.0:
            raise ValueError("speculation_threshold must be > 1")

    def backoff_seconds(self, failures: int) -> float:
        """Scheduler wait after the ``failures``-th consecutive failure."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        return self.backoff_base_seconds * self.backoff_factor ** (
            failures - 1
        )
