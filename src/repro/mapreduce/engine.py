"""The simulated MapReduce execution engine.

One :class:`MapReduceJob` describes a round: a mapper, a reducer, and
optionally a combiner and a custom partitioner — the same knobs Hadoop
exposes and the paper's algorithms rely on (custom range partitioner for
SP-Cube, combiners for Pig's MR-Cube).

Execution is deterministic and single-process, but faithful to the
distributed data flow:

* the input arrives pre-split into ``k`` chunks (one per map task);
* each map task runs its own mapper instance (so map-side state such as
  SP-Cube's partial aggregates is per-machine, exactly as on a cluster);
* an optional combiner runs over each map task's buffered output;
* pairs are routed by the partitioner and charged per-reducer;
* each reduce task processes its keys in deterministic sorted order and may
  spill (with a time penalty) or be flagged OOM when its input exceeds the
  machine's physical memory.

The engine returns the reduce output plus a :class:`JobMetrics` with all the
counters the paper's figures are built from.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .cluster import ClusterConfig
from .metrics import JobMetrics, TaskMetrics
from .sizes import estimate_bytes, pair_bytes

Pair = Tuple[object, object]

#: Fraction of a machine's physical memory that one key-group's buffered
#: values may occupy before the group counts as *oversized*.  Hadoop-era
#: engines (Pig bags, Hive's generic UDAF evaluation) materialize each
#: key's value list while aggregating it.
DEFAULT_VALUE_BUFFER_FRACTION = 0.75

#: A reduce task is flagged as failing when more than this fraction of its
#: input records sit in oversized groups: the task then spends most of its
#: heap churning giant value runs (the JVM GC death spiral), blows its task
#: timeout, and is killed/retried.  One oversized run among plenty of
#: normal work amortizes; domination does not.
DEFAULT_OVERSIZED_DOMINANCE = 1.0 / 3.0

#: A job is declared failed ("stuck", as the paper describes Hive for
#: p >= 0.4 in Figure 6a) when at least this fraction of its reduce tasks
#: are flagged (with an absolute floor of 2).  A single struggling reducer
#: is survivable through spilling and speculative retries; widespread
#: overload is not.
DEFAULT_OOM_QUORUM_FRACTION = 0.25


def stable_hash(obj) -> int:
    """Deterministic, process-independent hash (Python's ``hash`` is salted)."""
    return zlib.crc32(repr(obj).encode())


def hash_partitioner(key, num_reducers: int) -> int:
    """Hadoop's default routing: stable hash of the key modulo reducers."""
    return stable_hash(key) % num_reducers


class TaskContext:
    """Per-task handle giving user code access to cluster facts and counters."""

    def __init__(self, machine: int, num_machines: int, memory_records: int):
        self.machine = machine
        self.num_machines = num_machines
        self.memory_records = memory_records
        self._extra_cpu = 0
        self.counters: Dict[str, int] = {}

    def add_cpu(self, ops: int) -> None:
        """Charge additional CPU work (e.g. lattice-node visits) to the task."""
        self._extra_cpu += ops

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a named user counter (exposed for tests and diagnostics)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def extra_cpu(self) -> int:
        return self._extra_cpu


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` and optionally
    :meth:`setup`/:meth:`close`; ``close`` may emit final pairs (SP-Cube
    flushes its skew partial aggregates there)."""

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def map(self, record) -> Iterable[Pair]:
        raise NotImplementedError

    def close(self) -> Iterable[Pair]:
        return ()


class Reducer:
    """Base reducer.  ``reduce`` is called once per key with all its values,
    in deterministic key order; ``close`` may emit trailing pairs."""

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def reduce(self, key, values: List) -> Iterable[Pair]:
        raise NotImplementedError

    def close(self) -> Iterable[Pair]:
        return ()


class FunctionMapper(Mapper):
    """Adapter turning a plain ``record -> iterable[(k, v)]`` function into
    a :class:`Mapper`."""

    def __init__(self, fn: Callable[[object], Iterable[Pair]]):
        self._fn = fn

    def map(self, record) -> Iterable[Pair]:
        return self._fn(record)


class FunctionReducer(Reducer):
    """Adapter turning a plain ``(key, values) -> iterable[(k, v)]``
    function into a :class:`Reducer`."""

    def __init__(self, fn: Callable[[object, List], Iterable[Pair]]):
        self._fn = fn

    def reduce(self, key, values: List) -> Iterable[Pair]:
        return self._fn(key, values)


@dataclass
class MapReduceJob:
    """Description of one MapReduce round.

    ``mapper_factory`` / ``reducer_factory`` are called once per task so
    per-machine state is isolated, mirroring separate JVMs on a cluster.
    ``combiner`` has the Hadoop signature ``(key, values) -> pairs`` and
    runs over each map task's buffered output before the shuffle.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    num_reducers: Optional[int] = None
    partitioner: Callable[[object, int], int] = hash_partitioner
    combiner: Optional[Callable[[object, List], Iterable[Pair]]] = None
    #: Per-group value-buffer limit as a fraction of physical memory;
    #: groups above it are *oversized*.  ``None`` (the default) disables
    #: the failure check: real engines aggregate common functions in a
    #: streaming fashion, so giant groups cost time (spills), not
    #: correctness.  Engines that genuinely buffer per-group value lists
    #: can opt in.
    value_buffer_fraction: Optional[float] = None
    #: A reducer is flagged when oversized groups hold more than this
    #: fraction of its input records.
    oversized_dominance: float = DEFAULT_OVERSIZED_DOMINANCE
    #: Fraction of flagged reduce tasks at which the job counts as failed.
    oom_quorum_fraction: float = DEFAULT_OOM_QUORUM_FRACTION

    @classmethod
    def from_functions(
        cls,
        name: str,
        map_fn: Callable[[object], Iterable[Pair]],
        reduce_fn: Callable[[object, List], Iterable[Pair]],
        **kwargs,
    ) -> "MapReduceJob":
        """Convenience constructor from bare functions."""
        return cls(
            name=name,
            mapper_factory=lambda: FunctionMapper(map_fn),
            reducer_factory=lambda: FunctionReducer(reduce_fn),
            **kwargs,
        )


def _ordered_keys(keys) -> List:
    """Keys in a deterministic order, tolerating non-comparable mixes."""
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


@dataclass
class JobResult:
    """Reduce output plus the round's metrics."""

    output: List[Pair]
    metrics: JobMetrics
    reducer_outputs: List[List[Pair]] = field(default_factory=list)


def run_job(
    job: MapReduceJob,
    input_chunks: Sequence[Sequence],
    cluster: ClusterConfig,
    memory_records: int,
) -> JobResult:
    """Execute one MapReduce round over pre-split input.

    Parameters
    ----------
    job:
        The round description.
    input_chunks:
        One record sequence per map task (``len(input_chunks)`` map tasks).
    cluster:
        Cluster shape and cost model.
    memory_records:
        ``m``, the per-machine memory in records for this run.
    """
    cost = cluster.cost_model
    num_reducers = job.num_reducers or cluster.num_machines
    metrics = JobMetrics(
        name=job.name,
        oom_quorum=max(2, int(job.oom_quorum_fraction * num_reducers)),
    )

    # ---- map phase --------------------------------------------------------
    reducer_buckets: List[List[Pair]] = [[] for _ in range(num_reducers)]
    reducer_bytes = [0] * num_reducers
    # Partitioners must be pure functions of the key (as in Hadoop), so the
    # routing decision and the key's serialized size are cached per key —
    # skewed workloads re-emit the same keys millions of times.
    key_cache: Dict[object, Tuple[int, int]] = {}

    for machine, chunk in enumerate(input_chunks):
        task = TaskMetrics(machine=machine)
        context = TaskContext(machine, cluster.num_machines, memory_records)
        mapper = job.mapper_factory()
        mapper.setup(context)

        buffered: List[Pair] = []
        for record in chunk:
            task.records_in += 1
            for pair in mapper.map(record):
                buffered.append(pair)
        for pair in mapper.close():
            buffered.append(pair)

        if job.combiner is not None:
            buffered = _apply_combiner(job.combiner, buffered, context)

        for key, value in buffered:
            info = key_cache.get(key)
            if info is None:
                target = job.partitioner(key, num_reducers)
                if not 0 <= target < num_reducers:
                    raise ValueError(
                        f"partitioner routed key {key!r} to reducer "
                        f"{target} of {num_reducers}"
                    )
                info = (estimate_bytes(key), target)
                key_cache[key] = info
            key_bytes, target = info
            size = key_bytes + estimate_bytes(value)
            task.records_out += 1
            task.bytes_out += size
            reducer_buckets[target].append((key, value))
            reducer_bytes[target] += size

        task.cpu_ops = task.records_in + task.records_out + context.extra_cpu
        task.seconds = cost.map_task_seconds(task.cpu_ops, task.bytes_out)
        metrics.map_tasks.append(task)
        metrics.map_output_bytes += task.bytes_out
        metrics.map_output_records += task.records_out

    metrics.map_phase_seconds = cost.round_startup_seconds + max(
        (t.seconds for t in metrics.map_tasks), default=0.0
    )

    # ---- shuffle ----------------------------------------------------------
    metrics.shuffle_seconds = cost.shuffle_seconds(
        max(reducer_bytes, default=0)
    )

    # ---- reduce phase -----------------------------------------------------
    physical = cluster.physical_memory(memory_records)
    output: List[Pair] = []
    reducer_outputs: List[List[Pair]] = []

    for machine, bucket in enumerate(reducer_buckets):
        task = TaskMetrics(machine=machine)
        context = TaskContext(machine, cluster.num_machines, memory_records)
        reducer = job.reducer_factory()
        reducer.setup(context)

        grouped: Dict[object, List] = {}
        for key, value in bucket:
            grouped.setdefault(key, []).append(value)
            task.records_in += 1
        task.bytes_in = reducer_bytes[machine]

        task.peak_group_records = max(
            (len(values) for values in grouped.values()), default=0
        )
        task.spilled_records = max(0, task.records_in - physical)
        if job.value_buffer_fraction is not None:
            buffer_limit = job.value_buffer_fraction * physical
            oversized_volume = sum(
                len(values)
                for values in grouped.values()
                if len(values) > buffer_limit
            )
            if (
                oversized_volume
                > job.oversized_dominance * task.records_in
            ):
                metrics.oom_reducers.append(machine)

        reducer_output: List[Pair] = []
        for key in _ordered_keys(grouped):
            for pair in reducer.reduce(key, grouped[key]):
                reducer_output.append(pair)
        for pair in reducer.close():
            reducer_output.append(pair)

        for key, value in reducer_output:
            task.records_out += 1
            task.bytes_out += pair_bytes(key, value)

        task.cpu_ops = (
            task.records_in + task.records_out + context.extra_cpu
        )
        task.seconds = cost.reduce_task_seconds(
            task.cpu_ops, task.spilled_records, task.bytes_out
        )
        metrics.reduce_tasks.append(task)
        output.extend(reducer_output)
        reducer_outputs.append(reducer_output)

    metrics.reduce_phase_seconds = cost.round_startup_seconds + max(
        (t.seconds for t in metrics.reduce_tasks), default=0.0
    )
    metrics.total_seconds = (
        metrics.map_phase_seconds
        + metrics.shuffle_seconds
        + metrics.reduce_phase_seconds
    )
    return JobResult(
        output=output, metrics=metrics, reducer_outputs=reducer_outputs
    )


def _apply_combiner(
    combiner: Callable[[object, List], Iterable[Pair]],
    pairs: List[Pair],
    context: TaskContext,
) -> List[Pair]:
    """Group a map task's buffer by key and fold it through the combiner."""
    grouped: Dict[object, List] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    context.add_cpu(len(pairs))
    combined: List[Pair] = []
    for key in _ordered_keys(grouped):
        combined.extend(combiner(key, grouped[key]))
    return combined
