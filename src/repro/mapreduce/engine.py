"""The simulated MapReduce execution engine.

One :class:`MapReduceJob` describes a round: a mapper, a reducer, and
optionally a combiner and a custom partitioner — the same knobs Hadoop
exposes and the paper's algorithms rely on (custom range partitioner for
SP-Cube, combiners for Pig's MR-Cube).

Execution is deterministic and faithful to the distributed data flow:

* the input arrives pre-split into ``k`` chunks (one per map task);
* each map task runs its own mapper instance (so map-side state such as
  SP-Cube's partial aggregates is per-machine, exactly as on a cluster);
* an optional combiner runs over each map task's buffered output;
* pairs are routed by the partitioner and charged per-reducer;
* each reduce task processes its keys in deterministic sorted order and may
  spill (with a time penalty) or be flagged OOM when its input exceeds the
  machine's physical memory.

The engine returns the reduce output plus a :class:`JobMetrics` with all the
counters the paper's figures are built from.

**Execution backends.**  Each phase's tasks are self-contained
:class:`_MapTask`/:class:`_ReduceTask` objects executed by the cluster's
task executor (see :mod:`repro.mapreduce.executor`): the default
:class:`~repro.mapreduce.executor.SerialExecutor` runs them in-process one
by one, while a :class:`~repro.mapreduce.executor.ParallelExecutor`
(enabled via ``ClusterConfig.parallelism`` or ``REPRO_PARALLELISM``) fans
them out across worker processes.  Outcomes are merged in task-index
order, so cubes, metrics and fault chains are bit-identical across
backends.  Jobs that feed results back to the driver through shared
objects (``MapReduceJob.driver_state``) always run serially.

**Fault tolerance.**  When the cluster carries a
:class:`~repro.mapreduce.faults.FaultPlan`, every task runs as a chain of
attempts governed by the cluster's
:class:`~repro.mapreduce.faults.RetryPolicy`:

* a crashed attempt's output is discarded and the task re-runs from its
  input chunk with a **fresh mapper/reducer instance** (so ``setup``/
  ``close`` state is rebuilt per attempt — map-side partial aggregates
  are flushed exactly once, by the winning attempt);
* a straggling attempt whose slowdown reaches the policy's threshold gets
  a speculative backup copy; the first finisher wins, the loser is killed,
  and only the winner's output is kept;
* failed attempts charge their lost runtime, the framework's crash
  detection delay, and the scheduler's exponential backoff to the task's
  chain, so phase times remain the max over *successful* attempt chains;
* a task that exhausts ``max_attempts`` aborts the job: ``run_job``
  returns normally with empty output and ``JobMetrics.aborted`` set —
  never an exception.

Injected faults may only change the simulated clock and the fault
counters; the data flow (and therefore the cube) is bit-identical to a
fault-free run unless the job aborts.

**Tracing.**  When the cluster carries a
:class:`~repro.observability.Tracer`, ``run_job`` emits structured span
and event records onto the simulated timeline: one attempt span per task
execution, fault events (crash/straggle/speculation), phase spans and a
job span, plus route/spill detail at debug level.  Task chains buffer
their records locally (safe in worker processes) and the driver offsets
and emits them in task-index order, so trace files are bit-identical
across execution backends.  With no tracer attached the engine touches a
single ``enabled`` flag per job — metrics and outputs are identical with
tracing on or off.
"""

from __future__ import annotations

import gc
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..observability.lineage import NULL_LINEAGE
from ..observability.telemetry import NULL_TELEMETRY, SECONDS_BUCKETS
from ..observability.tracer import (
    LEVEL_DEBUG,
    LEVEL_TASK,
    NULL_TRACER,
)
from ..observability.watchdog import NULL_WATCHDOG
from .cluster import ClusterConfig
from .costmodel import CostModel
from .executor import SerialExecutor, TaskOutcome, run_task_chain
from .faults import NO_FAULTS, FaultPlan, RetryPolicy
from .metrics import JobMetrics, TaskMetrics
from .sizes import estimate_bytes, pair_bytes

Pair = Tuple[object, object]

_crc32 = zlib.crc32


class PairFormatError(TypeError):
    """User code emitted something that is not a ``(key, value)`` pair.

    Subclasses :class:`TypeError` so callers that caught the old opaque
    unpack error keep working, but the message names the job, phase, task
    and the offending record.
    """

#: Fraction of a machine's physical memory that one key-group's buffered
#: values may occupy before the group counts as *oversized*.  Hadoop-era
#: engines (Pig bags, Hive's generic UDAF evaluation) materialize each
#: key's value list while aggregating it.
DEFAULT_VALUE_BUFFER_FRACTION = 0.75

#: A reduce task is flagged as failing when more than this fraction of its
#: input records sit in oversized groups: the task then spends most of its
#: heap churning giant value runs (the JVM GC death spiral), blows its task
#: timeout, and is killed/retried.  One oversized run among plenty of
#: normal work amortizes; domination does not.
DEFAULT_OVERSIZED_DOMINANCE = 1.0 / 3.0

#: A job is declared failed ("stuck", as the paper describes Hive for
#: p >= 0.4 in Figure 6a) when at least this fraction of its reduce tasks
#: are flagged (with an absolute floor of 2).  A single struggling reducer
#: is survivable through spilling and speculative retries; widespread
#: overload is not.
DEFAULT_OOM_QUORUM_FRACTION = 0.25


#: Bounded memo for :func:`stable_hash` over *strings only*.  Strings are
#: the one key type where memoization is both safe and profitable: a str
#: can only ever equal another str (no ``1 == 1.0 == True`` cross-type
#: collisions), and a dict hit costs ~6x less than repr+CRC32.  Tuples are
#: deliberately not memoized — building a type-strict memo key costs more
#: than the C-speed ``repr`` it would save (measured; see DESIGN.md §9) —
#: and repeated tuple keys are already deduplicated by the routing cache
#: in :func:`_route_pairs`.
_HASH_MEMO: Dict[str, int] = {}
_HASH_MEMO_LIMIT = 1 << 16


def stable_hash(obj) -> int:
    """Deterministic, process-independent hash (Python's ``hash`` is salted).

    Bit-identical to ``zlib.crc32(repr(obj).encode())`` — the engine's
    historical definition, pinned by regression tests so partition
    assignments never shift — with string keys served from a bounded memo
    (skewed workloads re-hash the same dimension values millions of
    times).
    """
    if type(obj) is str:
        cached = _HASH_MEMO.get(obj)
        if cached is None:
            if len(_HASH_MEMO) >= _HASH_MEMO_LIMIT:
                _HASH_MEMO.clear()
            cached = _crc32(repr(obj).encode())
            _HASH_MEMO[obj] = cached
        return cached
    return _crc32(repr(obj).encode())


def hash_partitioner(key, num_reducers: int) -> int:
    """Hadoop's default routing: stable hash of the key modulo reducers."""
    return stable_hash(key) % num_reducers


class TaskContext:
    """Per-task handle giving user code access to cluster facts and counters."""

    def __init__(self, machine: int, num_machines: int, memory_records: int):
        self.machine = machine
        self.num_machines = num_machines
        self.memory_records = memory_records
        self._extra_cpu = 0
        self.counters: Dict[str, int] = {}

    def add_cpu(self, ops: int) -> None:
        """Charge additional CPU work (e.g. lattice-node visits) to the task."""
        self._extra_cpu += ops

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a named user counter (exposed for tests and diagnostics)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def extra_cpu(self) -> int:
        return self._extra_cpu


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` and optionally
    :meth:`setup`/:meth:`close`; ``close`` may emit final pairs (SP-Cube
    flushes its skew partial aggregates there).

    :meth:`map_chunk` is the whole-chunk entry point the engine actually
    calls; the default simply drives :meth:`map` record by record, so
    existing mappers are unaffected, while hot mappers may override it
    to amortize per-record work (SP-Cube's round-2 mapper memoizes its
    lattice walk there).  An override must produce the byte-identical
    pair stream the per-record loop would.
    """

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def map(self, record) -> Iterable[Pair]:
        raise NotImplementedError

    def map_chunk(self, chunk) -> Tuple[int, List[Pair]]:
        """Map every record of ``chunk``: ``(records_in, buffered pairs)``."""
        buffered: List[Pair] = []
        extend = buffered.extend
        mapper_map = self.map
        records_in = 0
        for record in chunk:
            records_in += 1
            extend(mapper_map(record))
        return records_in, buffered

    def close(self) -> Iterable[Pair]:
        return ()


class Reducer:
    """Base reducer.  ``reduce`` is called once per key with all its values,
    in deterministic key order; ``close`` may emit trailing pairs."""

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def reduce(self, key, values: List) -> Iterable[Pair]:
        raise NotImplementedError

    def close(self) -> Iterable[Pair]:
        return ()


class FunctionMapper(Mapper):
    """Adapter turning a plain ``record -> iterable[(k, v)]`` function into
    a :class:`Mapper`."""

    def __init__(self, fn: Callable[[object], Iterable[Pair]]):
        self._fn = fn

    def map(self, record) -> Iterable[Pair]:
        return self._fn(record)


class FunctionReducer(Reducer):
    """Adapter turning a plain ``(key, values) -> iterable[(k, v)]``
    function into a :class:`Reducer`."""

    def __init__(self, fn: Callable[[object, List], Iterable[Pair]]):
        self._fn = fn

    def reduce(self, key, values: List) -> Iterable[Pair]:
        return self._fn(key, values)


class TaskFactory:
    """Picklable task factory: ``TaskFactory(Cls, *args)() == Cls(*args)``.

    Engines historically built mappers with ``lambda: Cls(...)``, which
    cannot cross a process boundary; a :class:`TaskFactory` can, as long
    as the class is module-level and the arguments pickle.
    """

    __slots__ = ("_cls", "_args", "_kwargs")

    def __init__(self, cls, *args, **kwargs):
        self._cls = cls
        self._args = args
        self._kwargs = kwargs

    def __call__(self):
        return self._cls(*self._args, **self._kwargs)

    def __repr__(self) -> str:
        return f"TaskFactory({self._cls.__name__}, ...)"


@dataclass
class MapReduceJob:
    """Description of one MapReduce round.

    ``mapper_factory`` / ``reducer_factory`` are called once per task so
    per-machine state is isolated, mirroring separate JVMs on a cluster.
    ``combiner`` has the Hadoop signature ``(key, values) -> pairs`` and
    runs over each map task's buffered output before the shuffle.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    num_reducers: Optional[int] = None
    partitioner: Callable[[object, int], int] = hash_partitioner
    combiner: Optional[Callable[[object, List], Iterable[Pair]]] = None
    #: Per-group value-buffer limit as a fraction of physical memory;
    #: groups above it are *oversized*.  ``None`` (the default) disables
    #: the failure check: real engines aggregate common functions in a
    #: streaming fashion, so giant groups cost time (spills), not
    #: correctness.  Engines that genuinely buffer per-group value lists
    #: can opt in.
    value_buffer_fraction: Optional[float] = None
    #: A reducer is flagged when oversized groups hold more than this
    #: fraction of its input records.
    oversized_dominance: float = DEFAULT_OVERSIZED_DOMINANCE
    #: Fraction of flagged reduce tasks at which the job counts as failed.
    oom_quorum_fraction: float = DEFAULT_OOM_QUORUM_FRACTION
    #: True for rounds whose mapper/reducer feeds results back to the
    #: driver through a shared in-memory object (e.g. a sketch holder
    #: list).  Such side channels do not survive a process boundary, so
    #: the engine always runs these rounds on the serial executor.
    driver_state: bool = False
    #: Classifier mapping one *map emission key* to the cuboid (lattice
    #: mask) it belongs to, used by the shuffle flight recorder to break
    #: each flow edge down per cuboid.  Must be a module-level function
    #: (parallel workers pickle the job) and a pure function of the key.
    #: ``None`` for rounds whose keys carry no cuboid (sampling rounds).
    cuboid_of: Optional[Callable[[object], int]] = None

    @classmethod
    def from_functions(
        cls,
        name: str,
        map_fn: Callable[[object], Iterable[Pair]],
        reduce_fn: Callable[[object, List], Iterable[Pair]],
        **kwargs,
    ) -> "MapReduceJob":
        """Convenience constructor from bare functions."""
        return cls(
            name=name,
            mapper_factory=TaskFactory(FunctionMapper, map_fn),
            reducer_factory=TaskFactory(FunctionReducer, reduce_fn),
            **kwargs,
        )


#: Rank table for :func:`_sort_token`: every key type the engines emit
#: maps into a totally-ordered band, so mixed-type reduce buckets sort
#: identically in every process (``repr``-keyed sorting was only stable
#: within one interpreter for types whose repr embeds object addresses).
def _sort_token(key):
    """A totally-ordered, process-independent sort token for a reduce key.

    Bands: None < numbers (compared numerically, bools included) < str <
    bytes < tuples (recursively tokenized) < everything else (by type
    name, then repr).  Only used for buckets whose keys are not mutually
    comparable; homogeneous buckets take the plain ``sorted`` path.
    """
    kind = type(key)
    if kind is tuple:
        return (4, "", tuple(_sort_token(item) for item in key))
    if kind is str:
        return (2, "", key)
    if key is None:
        return (0, "", 0)
    if kind is bytes:
        return (3, "", key)
    if isinstance(key, (int, float)):  # bool included via int
        return (1, "", key)
    if isinstance(key, tuple):
        return (4, "", tuple(_sort_token(item) for item in key))
    if isinstance(key, str):
        return (2, "", key)
    if isinstance(key, bytes):
        return (3, "", key)
    return (5, f"{kind.__module__}.{kind.__qualname__}", repr(key))


def _ordered_keys(keys) -> List:
    """Keys in a deterministic order, tolerating non-comparable mixes."""
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=_sort_token)


@dataclass
class JobResult:
    """Reduce output plus the round's metrics."""

    output: List[Pair]
    metrics: JobMetrics
    reducer_outputs: List[List[Pair]] = field(default_factory=list)
    #: On a reduce-side abort: outputs of the partitions that *did*
    #: complete before the merge hit the dead chain, keyed by partition
    #: index.  The checkpoint layer salvages these so a resume reruns
    #: only the lost partitions.  Empty on success and on map aborts.
    partial_reducer_outputs: Dict[int, List[Pair]] = field(
        default_factory=dict
    )


def _unpack_pair(item, job_name: str, phase: str, machine: int) -> Pair:
    """Unpack an emitted item, raising a named error when it is no pair."""
    try:
        key, value = item
    except (TypeError, ValueError):
        raise PairFormatError(
            f"job {job_name!r}: {phase} task {machine} emitted {item!r}; "
            "mappers, combiners and reducers must yield (key, value) pairs"
        ) from None
    return key, value


def _validated_pairs(
    items: List, job_name: str, phase: str, machine: int
) -> List[Pair]:
    """Repack emitted items as ``(key, value)`` tuples, naming offenders.

    Items that are already 2-tuples — every mapper and reducer in this
    repository — pass through unchanged: the scan is two C-level checks
    per item versus an unpack-and-repack allocation.  Anything else (a
    generator of lists, say) falls back to the repacking comprehension,
    and only when *that* trips does the slow rescan run to attribute the
    error to the first malformed item.
    """
    if type(items) is list:  # the scan must not consume a generator
        for item in items:
            if type(item) is not tuple or len(item) != 2:
                break
        else:
            return items
    try:
        return [(key, value) for key, value in items]
    except (TypeError, ValueError):
        for item in items:
            _unpack_pair(item, job_name, phase, machine)
        raise


def _route_pairs(
    buffered: List,
    job: MapReduceJob,
    num_reducers: int,
    machine: int,
) -> Tuple[List[Tuple[int, List[Pair], int]], int]:
    """Partition a map task's buffer into per-target shards.

    Returns ``([(target, pairs, shard_bytes)], total_bytes)`` with one
    shard per distinct target, in first-seen target order, each shard's
    pairs in emission order — the exact pair stream a per-pair routing
    loop would deliver to that reducer, without a ``(target, pair,
    size)`` wrapper tuple per record.  The shards are what crosses the
    process-pool boundary, so the compact representation cuts both the
    driver's merge loop (one ``extend`` per shard) and the IPC volume
    (~40% fewer tuples than the historical per-pair triples).

    This is the engine's hottest loop — once per shuffled pair — so it
    runs batched with local bindings and a per-key routing cache
    (partitioners must be pure functions of the key, as in Hadoop, and
    skewed workloads re-emit the same keys millions of times).  Error
    attribution is deferred: when anything trips, :func:`_replay_routing`
    reproduces the first failure with full diagnostics.
    """
    # Mutable [target, pairs, bytes] shards, frozen to tuples on return.
    shards: List[List] = []
    by_target: Dict[int, List] = {}
    target_get = by_target.get
    partitioner = job.partitioner
    key_cache: Dict[object, Tuple[int, List]] = {}
    cache_get = key_cache.get
    # Values are sized through an identity cache: a mapper that emits one
    # record object under several keys (SP-Cube's ancestor covering does
    # this 3-5x per record) pays the estimator once.  id() keys are safe
    # here because every value is kept alive by ``buffered`` for the
    # whole loop, and identical objects trivially have identical sizes.
    value_sizes: Dict[int, int] = {}
    value_size_get = value_sizes.get
    bytes_out = 0
    try:
        for key, value in buffered:
            info = cache_get(key)
            if info is None:
                target = partitioner(key, num_reducers)
                if not 0 <= target < num_reducers:
                    raise ValueError(
                        f"partitioner routed key {key!r} to reducer "
                        f"{target} of {num_reducers}"
                    )
                shard = target_get(target)
                if shard is None:
                    shard = [target, [], 0]
                    by_target[target] = shard
                    shards.append(shard)
                info = (estimate_bytes(key), shard)
                key_cache[key] = info
            value_id = id(value)
            value_size = value_size_get(value_id)
            if value_size is None:
                value_size = estimate_bytes(value)
                value_sizes[value_id] = value_size
            size = info[0] + value_size
            bytes_out += size
            shard = info[1]
            shard[1].append((key, value))
            shard[2] += size
    except (TypeError, ValueError) as error:
        _replay_routing(buffered, job, num_reducers, machine, error)
    return [(t, pairs, size) for t, pairs, size in shards], bytes_out


def _replay_routing(
    buffered: List,
    job: MapReduceJob,
    num_reducers: int,
    machine: int,
    error: BaseException,
) -> None:
    """Re-run a failed routing pass step by step to name the offender.

    Mirrors the fast loop's evaluation order exactly, so the first item
    to fail here is the one that tripped the batched loop; a failure the
    replay cannot reproduce (e.g. an unhashable key that only the cache
    probe touched) re-raises the original error.
    """
    for item in buffered:
        key, _value = _unpack_pair(item, job.name, "map", machine)
        target = job.partitioner(key, num_reducers)
        if not 0 <= target < num_reducers:
            raise ValueError(
                f"partitioner routed key {key!r} to reducer "
                f"{target} of {num_reducers}"
            )
    raise error


class _MapTask:
    """One self-contained map task: chunk in, routed pairs out.

    Carries everything an attempt chain needs, so the task can execute in
    the driver or in a worker process with identical results.
    """

    def __init__(
        self,
        job: MapReduceJob,
        machine: int,
        chunk: Sequence,
        num_reducers: int,
        num_machines: int,
        memory_records: int,
        cost: CostModel,
        faults: FaultPlan,
        retry: RetryPolicy,
        trace: bool = False,
        node_kill_at: Optional[float] = None,
    ):
        self.job = job
        self.machine = machine
        self.chunk = chunk
        self.num_reducers = num_reducers
        self.num_machines = num_machines
        self.memory_records = memory_records
        self.cost = cost
        self.faults = faults
        self.retry = retry
        self.trace = trace
        self.node_kill_at = node_kill_at

    def __call__(self) -> TaskOutcome:
        return run_task_chain(
            self._attempt,
            job_name=self.job.name,
            phase="map",
            machine=self.machine,
            faults=self.faults,
            retry=self.retry,
            cost=self.cost,
            trace=self.trace,
            node_kill_at=self.node_kill_at,
        )

    def _attempt(self) -> Tuple[TaskMetrics, List]:
        """One full execution, buffered locally so a crashed attempt
        contributes nothing to the shuffle."""
        job = self.job
        machine = self.machine
        task = TaskMetrics(machine=machine)
        context = TaskContext(
            machine, self.num_machines, self.memory_records
        )
        mapper = job.mapper_factory()
        mapper.setup(context)

        records_in, buffered = mapper.map_chunk(self.chunk)
        buffered.extend(mapper.close())
        task.records_in = records_in

        if job.combiner is not None:
            buffered = _apply_combiner(
                job.combiner, buffered, context, job.name, machine
            )

        routed, bytes_out = _route_pairs(
            buffered, job, self.num_reducers, machine
        )
        task.records_out = sum(len(pairs) for _t, pairs, _b in routed)
        task.bytes_out = bytes_out

        task.cpu_ops = task.records_in + task.records_out + context.extra_cpu
        task.seconds = self.cost.map_task_seconds(
            task.cpu_ops, task.bytes_out
        )
        task.counters = context.counters
        return task, routed


class _ReduceTask:
    """One self-contained reduce task: bucket in, reduce output out."""

    def __init__(
        self,
        job: MapReduceJob,
        machine: int,
        bucket: List[Pair],
        bytes_in: int,
        physical_memory: int,
        num_machines: int,
        memory_records: int,
        cost: CostModel,
        faults: FaultPlan,
        retry: RetryPolicy,
        trace: bool = False,
        node_kill_at: Optional[float] = None,
    ):
        self.job = job
        self.machine = machine
        self.bucket = bucket
        self.bytes_in = bytes_in
        self.physical_memory = physical_memory
        self.num_machines = num_machines
        self.memory_records = memory_records
        self.cost = cost
        self.faults = faults
        self.retry = retry
        self.trace = trace
        self.node_kill_at = node_kill_at

    def __call__(self) -> TaskOutcome:
        return run_task_chain(
            self._attempt,
            job_name=self.job.name,
            phase="reduce",
            machine=self.machine,
            faults=self.faults,
            retry=self.retry,
            cost=self.cost,
            trace=self.trace,
            node_kill_at=self.node_kill_at,
        )

    def _attempt(self) -> Tuple[TaskMetrics, Tuple]:
        job = self.job
        machine = self.machine
        task = TaskMetrics(machine=machine)
        context = TaskContext(
            machine, self.num_machines, self.memory_records
        )
        reducer = job.reducer_factory()
        reducer.setup(context)

        # Bucket pairs were validated and repacked during routing, so the
        # grouping loop can unpack without per-pair checks; avoiding the
        # per-pair ``setdefault`` list allocation matters at volume.
        grouped: Dict[object, List] = {}
        grouped_get = grouped.get
        for key, value in self.bucket:
            values = grouped_get(key)
            if values is None:
                grouped[key] = [value]
            else:
                values.append(value)
        task.records_in = len(self.bucket)
        task.bytes_in = self.bytes_in

        physical = self.physical_memory
        task.peak_group_records = max(
            (len(values) for values in grouped.values()), default=0
        )
        task.spilled_records = max(0, task.records_in - physical)
        oom_flagged = False
        if job.value_buffer_fraction is not None:
            buffer_limit = job.value_buffer_fraction * physical
            oversized_volume = sum(
                len(values)
                for values in grouped.values()
                if len(values) > buffer_limit
            )
            oom_flagged = (
                oversized_volume
                > job.oversized_dominance * task.records_in
            )

        emitted: List = []
        extend = emitted.extend
        reducer_reduce = reducer.reduce
        for key in _ordered_keys(grouped):
            extend(reducer_reduce(key, grouped[key]))
        extend(reducer.close())
        reducer_output = _validated_pairs(
            emitted, job.name, "reduce", machine
        )

        # Inlined pair sizing: the common cube pair is a shallow tuple key
        # and a scalar value, so the estimator's tuple walk runs inline
        # here (same arithmetic as estimate_bytes, see sizes.py) and only
        # unusual shapes fall through to the function.  Cube reducers emit
        # one pair per c-group, which reaches millions on the bench
        # workloads — at that volume the call overhead is the cost.
        sizer = estimate_bytes
        bytes_out = 0
        for key, value in reducer_output:
            kind = type(key)
            if kind is tuple:
                size = 4
                for item in key:
                    kind = type(item)
                    if kind is int or kind is float:
                        size += 8
                    elif kind is str:
                        size += 4 + len(item)
                    elif kind is tuple:
                        size += 4
                        for inner in item:
                            kind = type(inner)
                            if kind is int or kind is float:
                                size += 8
                            elif kind is str:
                                size += 4 + len(inner)
                            else:
                                size += sizer(inner)
                    else:
                        size += sizer(item)
            else:
                size = sizer(key)
            kind = type(value)
            if kind is int or kind is float:
                size += 8
            else:
                size += sizer(value)
            bytes_out += size
        task.records_out = len(reducer_output)
        task.bytes_out = bytes_out

        task.cpu_ops = (
            task.records_in + task.records_out + context.extra_cpu
        )
        task.seconds = self.cost.reduce_task_seconds(
            task.cpu_ops, task.spilled_records, task.bytes_out
        )
        task.counters = context.counters
        return task, (reducer_output, oom_flagged)


def _chain_exhausted(outcome: TaskOutcome) -> bool:
    return outcome.task is None


def _merge_outcome(metrics: JobMetrics, outcome: TaskOutcome) -> None:
    """Fold one task chain's fault counters into the job metrics."""
    metrics.attempts += outcome.attempts
    metrics.killed_tasks += outcome.killed_tasks
    metrics.speculative_wins += outcome.speculative_wins
    metrics.recovered += outcome.recovered
    metrics.killed_attempts.extend(outcome.killed_attempts)


@contextmanager
def paused_gc():
    """Pause cyclic GC for the duration of one round.

    The shuffle allocates millions of small tuples that never form
    reference cycles, but every generation-0 collection they trigger
    eventually escalates to a full scan of the (huge, live) cube state —
    a measurable fraction of round wall time on the bench workloads.
    Pausing the collector defers cycle detection to the round boundary;
    reference counting still reclaims the (acyclic) bulk immediately, so
    peak memory is unchanged.  Results cannot be affected: GC timing is
    invisible to the simulation.  No-op when the caller already disabled
    the collector.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        # While the collector is off, every surviving allocation sits in
        # generation 0, so the first post-enable collection would scan
        # the entire live heap (the full cube!) right at round end.
        # freeze/enable/unfreeze instead promotes everything allocated
        # during the pause straight to the oldest generation — the same
        # place two survived collections would have put it — so the next
        # gen-0 pass only sees genuinely new objects.
        gc.freeze()
        gc.enable()
        gc.unfreeze()


def run_job(*args, **kwargs) -> JobResult:
    """Execute one MapReduce round; see :func:`_run_job` for parameters.

    Runs with cyclic GC paused (:func:`paused_gc`) — purely a wall-clock
    optimization, restored at round end.
    """
    with paused_gc():
        return _run_job(*args, **kwargs)


def _run_job(
    job: MapReduceJob,
    input_chunks: Sequence[Sequence],
    cluster: ClusterConfig,
    memory_records: int,
    executor=None,
    *,
    run_clock: float = 0.0,
    replaced_nodes: frozenset = frozenset(),
    completed_reducers: Optional[Dict[int, List[Pair]]] = None,
) -> JobResult:
    """Execute one MapReduce round over pre-split input.

    Parameters
    ----------
    job:
        The round description.
    input_chunks:
        One record sequence per map task (``len(input_chunks)`` map tasks).
    cluster:
        Cluster shape, cost model, fault plan / retry policy, and
        parallelism (which executor runs the phase's tasks).
    memory_records:
        ``m``, the per-machine memory in records for this run.
    executor:
        Override the cluster's task executor (mostly for tests).
    run_clock:
        Run-relative simulated seconds at which this round starts — how
        run-relative :class:`~repro.mapreduce.faults.NodeFaultSpec` kills
        find the round whose window contains them.  Multi-round engines
        thread this through :class:`~repro.mapreduce.checkpoint.RoundRunner`.
    replaced_nodes:
        Nodes already lost and re-provisioned earlier in the run; their
        pinned/seeded kills are spent (see
        :meth:`FaultPlan.node_kills_for_job`).
    completed_reducers:
        Partition outputs salvaged from a checkpoint or a partially
        completed execution, keyed by partition index.  Those reduce
        tasks are skipped and their outputs merged in place — partial
        re-execution after a node loss.

    Outcomes are merged in task-index order and the merge stops at the
    first exhausted chain, so every backend — serial or parallel —
    produces identical output, metrics and abort behaviour.
    """
    cost = cluster.cost_model
    faults = cluster.fault_plan or NO_FAULTS
    retry = cluster.retry_policy or RetryPolicy()
    num_reducers = job.num_reducers or cluster.num_machines
    metrics = JobMetrics(
        name=job.name,
        oom_quorum=max(2, int(job.oom_quorum_fraction * num_reducers)),
    )
    if executor is None:
        executor = cluster.task_executor()
    if job.driver_state and not isinstance(executor, SerialExecutor):
        # Driver-side side channels (holder lists) cannot cross processes.
        executor = SerialExecutor()
    metrics.executor = executor.name

    tracer = cluster.tracer or NULL_TRACER
    trace_on = tracer.enabled
    trace_tasks = trace_on and tracer.level >= LEVEL_TASK
    trace_debug = trace_on and tracer.level >= LEVEL_DEBUG
    job_base = tracer.clock
    telemetry = cluster.telemetry or NULL_TELEMETRY
    telem_on = telemetry.enabled
    # Telemetry keeps its own logical clock: the tracer's only advances
    # when tracing is on, and sample times must not depend on whether a
    # trace sink happens to be attached.
    telem_base = telemetry.clock
    lineage = cluster.lineage or NULL_LINEAGE
    watchdog = cluster.watchdog or NULL_WATCHDOG
    # One flow record per job feeds both the flight recorder and the
    # watchdog; built from the driver-side merge loops (task-index
    # order), so it is bit-identical across execution backends.
    flow_job: Optional[Dict] = None
    if lineage.enabled or watchdog.enabled:
        flow_job = {
            "job": job.name,
            "num_reducers": num_reducers,
            "map_tasks": len(input_chunks),
            "memory_records": memory_records,
            "completed_reducers": (
                sorted(completed_reducers) if completed_reducers else []
            ),
            "maps": [],
            "flows": [],
            "reduces": [],
        }
        if lineage.enabled:
            lineage.begin_job(flow_job)
    cuboid_cache: Dict[object, Optional[int]] = {}

    # Node kills landing in this round's window, as job-relative times.
    # A pure function of (plan, job name, run clock), so serial and
    # parallel backends — and reruns after a resume — see identical kills.
    topology = cluster.topology()
    node_kills: Dict[int, float] = {}
    if faults.has_node_faults:
        node_kills = faults.node_kills_for_job(
            job.name, run_clock, topology.num_nodes, replaced_nodes
        )

    def _kill_at(machine: int, phase_base: float) -> Optional[float]:
        """Phase-relative kill instant for the node hosting ``machine``."""
        if not node_kills:
            return None
        t = node_kills.get(topology.node_of(machine % cluster.num_machines))
        return None if t is None else t - phase_base

    # ---- map phase --------------------------------------------------------
    map_tasks = [
        _MapTask(
            job, machine, chunk, num_reducers, cluster.num_machines,
            memory_records, cost, faults, retry, trace_tasks,
            node_kill_at=_kill_at(machine, cost.round_startup_seconds),
        )
        for machine, chunk in enumerate(input_chunks)
    ]
    phase_started = time.perf_counter()
    outcomes = executor.run_tasks(map_tasks, stop_early=_chain_exhausted)
    metrics.map_phase_wall_seconds = time.perf_counter() - phase_started

    map_start = job_base + cost.round_startup_seconds
    reducer_buckets: List[List[Pair]] = [[] for _ in range(num_reducers)]
    reducer_bytes = [0] * num_reducers
    dead_chain_seconds = 0.0
    for machine, outcome in enumerate(outcomes):
        _merge_outcome(metrics, outcome)
        if trace_tasks:
            _emit_chain_trace(tracer, outcome, map_start)
        if outcome.task is None:
            metrics.aborted = True
            metrics.abort_reason = (
                f"map task {machine} exhausted "
                f"{retry.max_attempts} attempts"
            )
            dead_chain_seconds = outcome.chain_seconds
            if trace_on:
                tracer.event(
                    "abort", at=map_start + outcome.chain_seconds,
                    job=job.name, phase="map", task=machine,
                    fields={"reason": metrics.abort_reason},
                )
            break
        task = outcome.task
        for target, pairs, shard_bytes in outcome.payload:
            reducer_buckets[target].extend(pairs)
            reducer_bytes[target] += shard_bytes
        if flow_job is not None:
            _record_flows(
                flow_job, machine, outcome.payload, job.cuboid_of,
                cuboid_cache,
            )
            flow_job["maps"].append({
                "task": machine,
                "records_in": task.records_in,
                "records_out": task.records_out,
                "seconds": round(task.seconds, 9),
            })
        if trace_debug:
            _emit_route_event(
                tracer, job.name, machine, outcome.payload,
                map_start + task.seconds,
            )
        metrics.map_tasks.append(task)
        metrics.map_output_bytes += task.bytes_out
        metrics.map_output_records += task.records_out

    metrics.map_phase_seconds = cost.round_startup_seconds + max(
        max((t.seconds for t in metrics.map_tasks), default=0.0),
        dead_chain_seconds,
    )
    if trace_on:
        _emit_phase_span(tracer, job.name, "map", job_base, metrics)

    if metrics.aborted:
        metrics.total_seconds = metrics.map_phase_seconds
        _record_node_losses(
            tracer, trace_on, metrics, node_kills, topology,
            job_base, job.name, telemetry, telem_base,
        )
        if trace_on:
            _finish_job_trace(tracer, job.name, metrics, job_base)
        if flow_job is not None:
            _finish_flow_job(
                flow_job, metrics, lineage, watchdog, tracer, telemetry,
                job_base,
            )
        if telem_on:
            _sample_job_telemetry(
                telemetry, job, metrics, telem_base, executor
            )
            telemetry.advance(metrics.total_seconds)
        return JobResult(output=[], metrics=metrics, reducer_outputs=[])

    # ---- shuffle ----------------------------------------------------------
    metrics.shuffle_seconds = cost.shuffle_seconds(
        max(reducer_bytes, default=0)
    )
    if trace_on:
        tracer.event(
            "shuffle", at=job_base + metrics.map_phase_seconds,
            job=job.name,
            fields={
                "seconds": metrics.shuffle_seconds,
                "max_reducer_bytes": max(reducer_bytes, default=0),
            },
        )

    # ---- reduce phase -----------------------------------------------------
    physical = cluster.physical_memory(memory_records)
    completed = completed_reducers or {}
    reduce_rel = metrics.map_phase_seconds + metrics.shuffle_seconds
    # Partitions already salvaged from a checkpoint are not re-executed;
    # their outputs are merged back in partition order below.
    reduce_machines = [
        machine for machine in range(num_reducers) if machine not in completed
    ]
    reduce_tasks = [
        _ReduceTask(
            job, machine, reducer_buckets[machine], reducer_bytes[machine],
            physical, cluster.num_machines, memory_records, cost, faults,
            retry, trace_tasks,
            node_kill_at=_kill_at(
                machine, reduce_rel + cost.round_startup_seconds
            ),
        )
        for machine in reduce_machines
    ]
    phase_started = time.perf_counter()
    outcomes = executor.run_tasks(reduce_tasks, stop_early=_chain_exhausted)
    metrics.reduce_phase_wall_seconds = time.perf_counter() - phase_started

    reduce_base = job_base + metrics.map_phase_seconds + metrics.shuffle_seconds
    reduce_start = reduce_base + cost.round_startup_seconds
    merged_outputs: Dict[int, List[Pair]] = dict(completed)
    dead_chain_seconds = 0.0
    for machine, outcome in zip(reduce_machines, outcomes):
        _merge_outcome(metrics, outcome)
        if trace_tasks:
            _emit_chain_trace(tracer, outcome, reduce_start)
        if outcome.task is None:
            metrics.aborted = True
            metrics.abort_reason = (
                f"reduce task {machine} exhausted "
                f"{retry.max_attempts} attempts"
            )
            dead_chain_seconds = outcome.chain_seconds
            if trace_on:
                tracer.event(
                    "abort", at=reduce_start + outcome.chain_seconds,
                    job=job.name, phase="reduce", task=machine,
                    fields={"reason": metrics.abort_reason},
                )
            break
        reducer_output, oom_flagged = outcome.payload
        task = outcome.task
        if oom_flagged:
            metrics.oom_reducers.append(machine)
            if trace_on:
                tracer.event(
                    "oom", at=reduce_start + task.seconds,
                    job=job.name, phase="reduce", task=machine,
                    fields={"records_in": task.records_in},
                )
        if trace_debug and task.spilled_records:
            tracer.event(
                "spill", at=reduce_start + task.seconds,
                job=job.name, phase="reduce", task=machine,
                fields={"records": task.spilled_records},
            )
        metrics.reduce_tasks.append(task)
        if flow_job is not None:
            flow_job["reduces"].append({
                "task": machine,
                "records_in": task.records_in,
                "records_out": task.records_out,
                "seconds": round(task.seconds, 9),
            })
        merged_outputs[machine] = reducer_output

    metrics.reduce_phase_seconds = cost.round_startup_seconds + max(
        max((t.seconds for t in metrics.reduce_tasks), default=0.0),
        dead_chain_seconds,
    )
    metrics.total_seconds = (
        metrics.map_phase_seconds
        + metrics.shuffle_seconds
        + metrics.reduce_phase_seconds
    )
    _record_node_losses(
        tracer, trace_on, metrics, node_kills, topology, job_base, job.name,
        telemetry, telem_base,
    )
    if trace_on:
        _emit_phase_span(tracer, job.name, "reduce", reduce_base, metrics)
        _finish_job_trace(tracer, job.name, metrics, job_base)
    if flow_job is not None:
        _finish_flow_job(
            flow_job, metrics, lineage, watchdog, tracer, telemetry,
            job_base,
        )
    if telem_on:
        _sample_job_telemetry(telemetry, job, metrics, telem_base, executor)
        telemetry.advance(metrics.total_seconds)
    if metrics.aborted:
        # Partitions merged before the dead chain (plus checkpointed
        # skips) are salvageable by the round runner.
        return JobResult(
            output=[], metrics=metrics, reducer_outputs=[],
            partial_reducer_outputs=merged_outputs,
        )
    output: List[Pair] = []
    for machine in range(num_reducers):
        output.extend(merged_outputs[machine])
    return JobResult(
        output=output,
        metrics=metrics,
        reducer_outputs=[merged_outputs[m] for m in range(num_reducers)],
    )


def _record_flows(
    flow_job: Dict,
    machine: int,
    payload,
    cuboid_of: Optional[Callable],
    cuboid_cache: Dict,
) -> None:
    """Record one map task's shuffle edges into the job's flow record.

    One flow per ``(map task, reducer)`` pair, in the shard order
    :func:`_route_pairs` produced (first-seen target order) — the same
    deterministic order the merge loop consumes, so lineage artifacts
    are bit-identical across execution backends.  The cuboid breakdown
    is classified through a per-job equality-keyed cache: emission keys
    repeat heavily (and the hot engines intern them), so the common case
    is one dict probe per pair.
    """
    flows = flow_job["flows"]
    cache_get = cuboid_cache.get
    for target, pairs, shard_bytes in payload:
        cuboids: Dict[int, int] = {}
        if cuboid_of is not None:
            for key, _value in pairs:
                mask = cache_get(key)
                if mask is None:
                    mask = cuboid_of(key)
                    cuboid_cache[key] = mask
                cuboids[mask] = cuboids.get(mask, 0) + 1
        flows.append({
            "map_task": machine,
            "reducer": target,
            "records": len(pairs),
            "bytes": shard_bytes,
            "cuboids": cuboids,
        })


def _finish_flow_job(
    flow_job: Dict,
    metrics: JobMetrics,
    lineage,
    watchdog,
    tracer,
    telemetry,
    job_base: float,
) -> None:
    """Close out a job's flow record: collect it, inspect it, surface it.

    The lineage recorder keeps the record and advances its own clock;
    the watchdog inspects the flows and its alerts fan out to the trace
    (typed events → ProgressSink lines), the telemetry alert counter,
    and the lineage artifact's alert stream.
    """
    lin_on = lineage.enabled
    job_end = job_base + metrics.total_seconds
    if lin_on:
        lineage.finish_job(flow_job, metrics)
        lineage.advance(metrics.total_seconds)
        if tracer.enabled:
            flows = flow_job["flows"]
            tracer.event(
                "lineage", at=job_end, job=flow_job["job"],
                fields={
                    "execution": flow_job.get("execution", 0),
                    "flows": len(flows),
                    "records": sum(flow["records"] for flow in flows),
                    "bytes": sum(flow["bytes"] for flow in flows),
                },
            )
    if watchdog.enabled:
        alerts = watchdog.inspect_job(flow_job, metrics)
        watchdog.advance(metrics.total_seconds)
        for alert in alerts:
            if lin_on:
                lineage.alerts.append(alert)
            if tracer.enabled:
                fields = {
                    name: value for name, value in alert.items()
                    if name not in ("type", "kind", "job", "at")
                }
                tracer.event(
                    alert["kind"], at=job_end, job=alert["job"],
                    fields=fields,
                )
            if telemetry.enabled:
                telemetry.counter(
                    "repro_watchdog_alerts_total",
                    "Watchdog alerts emitted, by kind",
                ).inc(labels={"kind": alert["kind"]})


def _record_node_losses(
    tracer,
    trace_on: bool,
    metrics: JobMetrics,
    node_kills: Dict[int, float],
    topology,
    job_base: float,
    job_name: str,
    telemetry=NULL_TELEMETRY,
    telem_base: float = 0.0,
) -> None:
    """Fold the kills that actually fired into the round's metrics.

    A kill fires when its instant lands strictly inside the round's
    window ``[0, total_seconds)``; a later instant belongs to a later
    round (the run clock will eventually contain it).  Fired nodes land
    in ``metrics.dead_nodes`` — the signal the checkpoint layer keys its
    resume decision on — and each emits one ``node_lost`` trace event.
    """
    if not node_kills:
        return
    fired = sorted(
        node
        for node, at in node_kills.items()
        if at < metrics.total_seconds
    )
    metrics.dead_nodes = fired
    if trace_on:
        for node in fired:
            tracer.event(
                "node_lost", at=job_base + node_kills[node], job=job_name,
                fields={
                    "node": node,
                    "machines": list(topology.machines_on(node)),
                },
            )
    if telemetry.enabled and fired:
        lost = telemetry.counter(
            "repro_nodes_lost_total", "Failure domains lost to node kills"
        )
        up = telemetry.gauge(
            "repro_node_up", "Node liveness (1 = serving, 0 = dead)"
        )
        for node in fired:
            lost.inc()
            up.set(0, labels={"node": node})
            telemetry.sample(
                "node_up", 0, labels={"node": node},
                at=telem_base + node_kills[node],
            )


def _emit_chain_trace(tracer, outcome: TaskOutcome, phase_start: float) -> None:
    """Shift a chain's buffered records onto the timeline and emit them.

    Chains buffer records with chain-relative times (they may have run in
    a worker process); the driver calls this in task-index order, so the
    trace stream is bit-identical across execution backends.
    """
    for record in outcome.trace or ():
        if record["type"] == "span":
            record["t0"] += phase_start
            record["t1"] += phase_start
        else:
            record["at"] += phase_start
        tracer.emit(record)


def _emit_route_event(
    tracer, job_name: str, machine: int, payload, at: float
) -> None:
    """Debug-level shuffle routing summary for one map task.

    Shards arrive in first-seen target order — the same insertion order
    the historical per-pair counting loop produced, so traces are
    byte-identical to the unsharded engine's.
    """
    targets: Dict[str, int] = {}
    for target, pairs, _shard_bytes in payload:
        targets[str(target)] = len(pairs)
    tracer.event(
        "route", at=at, job=job_name, phase="map", task=machine,
        fields={"targets": targets},
    )


def _emit_phase_span(
    tracer, job_name: str, phase: str, base: float, metrics: JobMetrics
) -> None:
    tasks = metrics.map_tasks if phase == "map" else metrics.reduce_tasks
    seconds = (
        metrics.map_phase_seconds
        if phase == "map"
        else metrics.reduce_phase_seconds
    )
    tracer.span(
        "phase", name=phase, job=job_name, phase=phase,
        t0=base, t1=base + seconds,
        status="aborted" if metrics.aborted else "ok",
        counters={
            "tasks": len(tasks),
            "records_out": sum(t.records_out for t in tasks),
            "bytes_out": sum(t.bytes_out for t in tasks),
        },
    )


def _finish_job_trace(
    tracer, job_name: str, metrics: JobMetrics, job_base: float
) -> None:
    """Emit the round's job span and advance the simulated clock."""
    if metrics.aborted:
        status = "aborted"
    elif metrics.failed:
        status = "failed"
    else:
        status = "ok"
    tracer.span(
        "job", name=job_name, job=job_name,
        t0=job_base, t1=job_base + metrics.total_seconds, status=status,
        counters={
            "map_output_records": metrics.map_output_records,
            "map_output_bytes": metrics.map_output_bytes,
            "attempts": metrics.attempts,
            "killed_tasks": metrics.killed_tasks,
            "speculative_wins": metrics.speculative_wins,
            "recovered": metrics.recovered,
            "oom_reducers": len(metrics.oom_reducers),
        },
    )
    tracer.advance(metrics.total_seconds)


def _sample_job_telemetry(
    telemetry, job: MapReduceJob, metrics: JobMetrics, telem_base: float,
    executor,
) -> None:
    """Record one finished round's metric series and registry updates.

    Called once per job with ``telemetry.enabled`` already checked by the
    caller.  Every ``"sim"``-source sample here is a pure function of the
    job metrics and the logical clock, so serial and parallel backends
    record bit-identical points; backend- and wall-clock-dependent
    quantities (executor shape, phase wall seconds, driver RSS) are
    tagged ``"host"`` and excluded from identity comparisons.
    """
    from ..observability.telemetry import driver_rss_bytes

    name = job.name
    labels = {"job": name}
    t_map = telem_base + metrics.map_phase_seconds
    t_shuffle = t_map + metrics.shuffle_seconds
    t_end = telem_base + metrics.total_seconds

    telemetry.counter(
        "repro_jobs_total", "MapReduce rounds executed"
    ).inc(labels=labels)
    telemetry.counter(
        "repro_shuffle_bytes_total", "Bytes shuffled from map to reduce"
    ).inc(metrics.map_output_bytes, labels=labels)
    telemetry.counter(
        "repro_shuffle_records_total", "Pairs shuffled from map to reduce"
    ).inc(metrics.map_output_records, labels=labels)
    telemetry.counter(
        "repro_task_attempts_total", "Task attempts including retries"
    ).inc(metrics.attempts, labels=labels)
    if metrics.killed_tasks:
        telemetry.counter(
            "repro_tasks_killed_total", "Attempts killed by injected faults"
        ).inc(metrics.killed_tasks, labels=labels)

    phase_hist = telemetry.histogram(
        "repro_phase_seconds", "Simulated seconds per phase",
        buckets=SECONDS_BUCKETS,
    )
    for phase, seconds in (
        ("map", metrics.map_phase_seconds),
        ("shuffle", metrics.shuffle_seconds),
        ("reduce", metrics.reduce_phase_seconds),
    ):
        phase_hist.observe(seconds, labels={"phase": phase})
    reduce_hist = telemetry.histogram(
        "repro_reduce_task_records", "Input records per reduce task"
    )
    for task in metrics.reduce_tasks:
        reduce_hist.observe(task.records_in, labels=labels)

    telemetry.sample("shuffle_bytes", metrics.map_output_bytes,
                     labels=labels, at=t_map)
    telemetry.sample("shuffle_records", metrics.map_output_records,
                     labels=labels, at=t_map)
    telemetry.sample("phase_seconds", metrics.map_phase_seconds,
                     labels={"job": name, "phase": "map"}, at=t_map)
    telemetry.sample("phase_seconds", metrics.shuffle_seconds,
                     labels={"job": name, "phase": "shuffle"}, at=t_shuffle)
    telemetry.sample("phase_seconds", metrics.reduce_phase_seconds,
                     labels={"job": name, "phase": "reduce"}, at=t_end)
    for task in metrics.reduce_tasks:
        telemetry.sample(
            "reducer_records", task.records_in,
            labels={"job": name, "task": task.machine}, at=t_end,
        )

    # Host-side diagnostics: real memory, real time, backend shape.
    wall = metrics.map_phase_wall_seconds + metrics.reduce_phase_wall_seconds
    telemetry.sample("job_wall_seconds", wall, labels=labels,
                     at=t_end, source="host")
    stats = getattr(executor, "last_run_stats", None)
    if stats:
        telemetry.gauge(
            "repro_executor_queue_depth",
            "Batches waiting behind busy workers in the last phase",
        ).set(stats["max_queue_depth"], labels={"backend": stats["backend"]})
        telemetry.gauge(
            "repro_executor_inflight_batches",
            "Batches concurrently in flight in the last phase",
        ).set(stats["max_in_flight"], labels={"backend": stats["backend"]})
        telemetry.sample("executor_queue_depth", stats["max_queue_depth"],
                         labels=labels, at=t_end, source="host")
        telemetry.sample("executor_inflight_batches", stats["max_in_flight"],
                         labels=labels, at=t_end, source="host")
    rss = driver_rss_bytes()
    if rss is not None:
        telemetry.gauge(
            "repro_driver_rss_bytes", "Peak driver resident-set size"
        ).set(rss)
        telemetry.sample("driver_rss_bytes", rss, at=t_end, source="host")


def _apply_combiner(
    combiner: Callable[[object, List], Iterable[Pair]],
    pairs: List[Pair],
    context: TaskContext,
    job_name: str,
    machine: int,
) -> List[Pair]:
    """Group a map task's buffer by key and fold it through the combiner."""
    grouped: Dict[object, List] = {}
    grouped_get = grouped.get
    try:
        for key, value in pairs:
            values = grouped_get(key)
            if values is None:
                grouped[key] = [value]
            else:
                values.append(value)
    except (TypeError, ValueError):
        for item in pairs:
            _unpack_pair(item, job_name, "map", machine)
        raise
    context.add_cpu(len(pairs))
    emitted: List = []
    extend = emitted.extend
    for key in _ordered_keys(grouped):
        extend(combiner(key, grouped[key]))
    return _validated_pairs(emitted, job_name, "combiner", machine)
