"""The simulated MapReduce execution engine.

One :class:`MapReduceJob` describes a round: a mapper, a reducer, and
optionally a combiner and a custom partitioner — the same knobs Hadoop
exposes and the paper's algorithms rely on (custom range partitioner for
SP-Cube, combiners for Pig's MR-Cube).

Execution is deterministic and single-process, but faithful to the
distributed data flow:

* the input arrives pre-split into ``k`` chunks (one per map task);
* each map task runs its own mapper instance (so map-side state such as
  SP-Cube's partial aggregates is per-machine, exactly as on a cluster);
* an optional combiner runs over each map task's buffered output;
* pairs are routed by the partitioner and charged per-reducer;
* each reduce task processes its keys in deterministic sorted order and may
  spill (with a time penalty) or be flagged OOM when its input exceeds the
  machine's physical memory.

The engine returns the reduce output plus a :class:`JobMetrics` with all the
counters the paper's figures are built from.

**Fault tolerance.**  When the cluster carries a
:class:`~repro.mapreduce.faults.FaultPlan`, every task runs as a chain of
attempts governed by the cluster's
:class:`~repro.mapreduce.faults.RetryPolicy`:

* a crashed attempt's output is discarded and the task re-runs from its
  input chunk with a **fresh mapper/reducer instance** (so ``setup``/
  ``close`` state is rebuilt per attempt — map-side partial aggregates
  are flushed exactly once, by the winning attempt);
* a straggling attempt whose slowdown reaches the policy's threshold gets
  a speculative backup copy; the first finisher wins, the loser is killed,
  and only the winner's output is kept;
* failed attempts charge their lost runtime, the framework's crash
  detection delay, and the scheduler's exponential backoff to the task's
  chain, so phase times remain the max over *successful* attempt chains;
* a task that exhausts ``max_attempts`` aborts the job: ``run_job``
  returns normally with empty output and ``JobMetrics.aborted`` set —
  never an exception.

Injected faults may only change the simulated clock and the fault
counters; the data flow (and therefore the cube) is bit-identical to a
fault-free run unless the job aborts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .cluster import ClusterConfig
from .costmodel import CostModel
from .faults import NO_FAULTS, FaultPlan, RetryPolicy
from .metrics import JobMetrics, TaskMetrics
from .sizes import estimate_bytes, pair_bytes

Pair = Tuple[object, object]


class PairFormatError(TypeError):
    """User code emitted something that is not a ``(key, value)`` pair.

    Subclasses :class:`TypeError` so callers that caught the old opaque
    unpack error keep working, but the message names the job, phase, task
    and the offending record.
    """

#: Fraction of a machine's physical memory that one key-group's buffered
#: values may occupy before the group counts as *oversized*.  Hadoop-era
#: engines (Pig bags, Hive's generic UDAF evaluation) materialize each
#: key's value list while aggregating it.
DEFAULT_VALUE_BUFFER_FRACTION = 0.75

#: A reduce task is flagged as failing when more than this fraction of its
#: input records sit in oversized groups: the task then spends most of its
#: heap churning giant value runs (the JVM GC death spiral), blows its task
#: timeout, and is killed/retried.  One oversized run among plenty of
#: normal work amortizes; domination does not.
DEFAULT_OVERSIZED_DOMINANCE = 1.0 / 3.0

#: A job is declared failed ("stuck", as the paper describes Hive for
#: p >= 0.4 in Figure 6a) when at least this fraction of its reduce tasks
#: are flagged (with an absolute floor of 2).  A single struggling reducer
#: is survivable through spilling and speculative retries; widespread
#: overload is not.
DEFAULT_OOM_QUORUM_FRACTION = 0.25


def stable_hash(obj) -> int:
    """Deterministic, process-independent hash (Python's ``hash`` is salted)."""
    return zlib.crc32(repr(obj).encode())


def hash_partitioner(key, num_reducers: int) -> int:
    """Hadoop's default routing: stable hash of the key modulo reducers."""
    return stable_hash(key) % num_reducers


class TaskContext:
    """Per-task handle giving user code access to cluster facts and counters."""

    def __init__(self, machine: int, num_machines: int, memory_records: int):
        self.machine = machine
        self.num_machines = num_machines
        self.memory_records = memory_records
        self._extra_cpu = 0
        self.counters: Dict[str, int] = {}

    def add_cpu(self, ops: int) -> None:
        """Charge additional CPU work (e.g. lattice-node visits) to the task."""
        self._extra_cpu += ops

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a named user counter (exposed for tests and diagnostics)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @property
    def extra_cpu(self) -> int:
        return self._extra_cpu


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` and optionally
    :meth:`setup`/:meth:`close`; ``close`` may emit final pairs (SP-Cube
    flushes its skew partial aggregates there)."""

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def map(self, record) -> Iterable[Pair]:
        raise NotImplementedError

    def close(self) -> Iterable[Pair]:
        return ()


class Reducer:
    """Base reducer.  ``reduce`` is called once per key with all its values,
    in deterministic key order; ``close`` may emit trailing pairs."""

    def setup(self, context: TaskContext) -> None:
        self.context = context

    def reduce(self, key, values: List) -> Iterable[Pair]:
        raise NotImplementedError

    def close(self) -> Iterable[Pair]:
        return ()


class FunctionMapper(Mapper):
    """Adapter turning a plain ``record -> iterable[(k, v)]`` function into
    a :class:`Mapper`."""

    def __init__(self, fn: Callable[[object], Iterable[Pair]]):
        self._fn = fn

    def map(self, record) -> Iterable[Pair]:
        return self._fn(record)


class FunctionReducer(Reducer):
    """Adapter turning a plain ``(key, values) -> iterable[(k, v)]``
    function into a :class:`Reducer`."""

    def __init__(self, fn: Callable[[object, List], Iterable[Pair]]):
        self._fn = fn

    def reduce(self, key, values: List) -> Iterable[Pair]:
        return self._fn(key, values)


@dataclass
class MapReduceJob:
    """Description of one MapReduce round.

    ``mapper_factory`` / ``reducer_factory`` are called once per task so
    per-machine state is isolated, mirroring separate JVMs on a cluster.
    ``combiner`` has the Hadoop signature ``(key, values) -> pairs`` and
    runs over each map task's buffered output before the shuffle.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    num_reducers: Optional[int] = None
    partitioner: Callable[[object, int], int] = hash_partitioner
    combiner: Optional[Callable[[object, List], Iterable[Pair]]] = None
    #: Per-group value-buffer limit as a fraction of physical memory;
    #: groups above it are *oversized*.  ``None`` (the default) disables
    #: the failure check: real engines aggregate common functions in a
    #: streaming fashion, so giant groups cost time (spills), not
    #: correctness.  Engines that genuinely buffer per-group value lists
    #: can opt in.
    value_buffer_fraction: Optional[float] = None
    #: A reducer is flagged when oversized groups hold more than this
    #: fraction of its input records.
    oversized_dominance: float = DEFAULT_OVERSIZED_DOMINANCE
    #: Fraction of flagged reduce tasks at which the job counts as failed.
    oom_quorum_fraction: float = DEFAULT_OOM_QUORUM_FRACTION

    @classmethod
    def from_functions(
        cls,
        name: str,
        map_fn: Callable[[object], Iterable[Pair]],
        reduce_fn: Callable[[object, List], Iterable[Pair]],
        **kwargs,
    ) -> "MapReduceJob":
        """Convenience constructor from bare functions."""
        return cls(
            name=name,
            mapper_factory=lambda: FunctionMapper(map_fn),
            reducer_factory=lambda: FunctionReducer(reduce_fn),
            **kwargs,
        )


def _ordered_keys(keys) -> List:
    """Keys in a deterministic order, tolerating non-comparable mixes."""
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


@dataclass
class JobResult:
    """Reduce output plus the round's metrics."""

    output: List[Pair]
    metrics: JobMetrics
    reducer_outputs: List[List[Pair]] = field(default_factory=list)


def _unpack_pair(item, job_name: str, phase: str, machine: int) -> Pair:
    """Unpack an emitted item, raising a named error when it is no pair."""
    try:
        key, value = item
    except (TypeError, ValueError):
        raise PairFormatError(
            f"job {job_name!r}: {phase} task {machine} emitted {item!r}; "
            "mappers, combiners and reducers must yield (key, value) pairs"
        ) from None
    return key, value


def _run_attempts(
    attempt_fn: Callable[[], Tuple[TaskMetrics, object]],
    *,
    job_name: str,
    phase: str,
    machine: int,
    faults: FaultPlan,
    retry: RetryPolicy,
    cost: CostModel,
    metrics: JobMetrics,
):
    """Drive one logical task through crash-retry and speculation.

    ``attempt_fn`` executes one full attempt from the task's input and
    returns ``(task, payload)`` with ``task.seconds`` set to the attempt's
    nominal (fault-free) runtime.  Returns ``(task, payload)`` for the
    winning attempt — ``task.seconds`` then covers the whole chain of
    failed attempts, detection delays, backoffs and the winner — or
    ``(None, chain_seconds)`` when the retry budget is exhausted.
    """
    chain_seconds = 0.0
    for attempt in range(retry.max_attempts):
        task, payload = attempt_fn()
        task.attempt = attempt
        metrics.attempts += 1
        nominal = task.seconds

        if faults.crashes(job_name, phase, machine, attempt):
            # The attempt dies and its output is discarded; the chain pays
            # for the lost work, the heartbeat timeout, and the backoff.
            task.killed = True
            chain_seconds += cost.retry_overhead_seconds(
                nominal, retry.backoff_seconds(attempt + 1)
            )
            metrics.killed_tasks += 1
            metrics.killed_attempts.append(task)
            continue

        seconds = nominal * faults.slowdown_factor(
            job_name, phase, machine, attempt
        )
        if (
            retry.speculation_enabled
            and nominal > 0.0
            and seconds >= retry.speculation_threshold * nominal
        ):
            # Speculative execution: a backup copy starts after the
            # framework's detection delay; first finisher wins, the loser
            # is killed, and only the winner's (identical) output is kept.
            backup_seconds = cost.speculation_launch_seconds + nominal
            metrics.attempts += 1
            metrics.killed_tasks += 1
            if backup_seconds < seconds:
                seconds = backup_seconds
                task.speculative = True
                metrics.speculative_wins += 1

        task.seconds = chain_seconds + seconds
        if attempt > 0 or task.speculative:
            metrics.recovered += 1
        return task, payload
    return None, chain_seconds


def run_job(
    job: MapReduceJob,
    input_chunks: Sequence[Sequence],
    cluster: ClusterConfig,
    memory_records: int,
) -> JobResult:
    """Execute one MapReduce round over pre-split input.

    Parameters
    ----------
    job:
        The round description.
    input_chunks:
        One record sequence per map task (``len(input_chunks)`` map tasks).
    cluster:
        Cluster shape, cost model, and fault plan / retry policy.
    memory_records:
        ``m``, the per-machine memory in records for this run.
    """
    cost = cluster.cost_model
    faults = cluster.fault_plan or NO_FAULTS
    retry = cluster.retry_policy or RetryPolicy()
    num_reducers = job.num_reducers or cluster.num_machines
    metrics = JobMetrics(
        name=job.name,
        oom_quorum=max(2, int(job.oom_quorum_fraction * num_reducers)),
    )

    # ---- map phase --------------------------------------------------------
    reducer_buckets: List[List[Pair]] = [[] for _ in range(num_reducers)]
    reducer_bytes = [0] * num_reducers
    # Partitioners must be pure functions of the key (as in Hadoop), so the
    # routing decision and the key's serialized size are cached per key —
    # skewed workloads re-emit the same keys millions of times.  The cache
    # survives crashed attempts: routing is attempt-independent.
    key_cache: Dict[object, Tuple[int, int]] = {}
    dead_chain_seconds = 0.0

    def map_attempt(machine: int, chunk) -> Tuple[TaskMetrics, List]:
        """One full execution of a map task, buffered locally so a crashed
        attempt contributes nothing to the shuffle."""
        task = TaskMetrics(machine=machine)
        context = TaskContext(machine, cluster.num_machines, memory_records)
        mapper = job.mapper_factory()
        mapper.setup(context)

        buffered: List[Pair] = []
        for record in chunk:
            task.records_in += 1
            for pair in mapper.map(record):
                buffered.append(pair)
        for pair in mapper.close():
            buffered.append(pair)

        if job.combiner is not None:
            buffered = _apply_combiner(
                job.combiner, buffered, context, job.name, machine
            )

        routed: List[Tuple[int, Pair, int]] = []
        for item in buffered:
            key, value = _unpack_pair(item, job.name, "map", machine)
            info = key_cache.get(key)
            if info is None:
                target = job.partitioner(key, num_reducers)
                if not 0 <= target < num_reducers:
                    raise ValueError(
                        f"partitioner routed key {key!r} to reducer "
                        f"{target} of {num_reducers}"
                    )
                info = (estimate_bytes(key), target)
                key_cache[key] = info
            key_bytes, target = info
            size = key_bytes + estimate_bytes(value)
            task.records_out += 1
            task.bytes_out += size
            routed.append((target, (key, value), size))

        task.cpu_ops = task.records_in + task.records_out + context.extra_cpu
        task.seconds = cost.map_task_seconds(task.cpu_ops, task.bytes_out)
        return task, routed

    for machine, chunk in enumerate(input_chunks):
        task, payload = _run_attempts(
            lambda m=machine, c=chunk: map_attempt(m, c),
            job_name=job.name,
            phase="map",
            machine=machine,
            faults=faults,
            retry=retry,
            cost=cost,
            metrics=metrics,
        )
        if task is None:
            metrics.aborted = True
            metrics.abort_reason = (
                f"map task {machine} exhausted "
                f"{retry.max_attempts} attempts"
            )
            dead_chain_seconds = payload
            break
        for target, pair, size in payload:
            reducer_buckets[target].append(pair)
            reducer_bytes[target] += size
        metrics.map_tasks.append(task)
        metrics.map_output_bytes += task.bytes_out
        metrics.map_output_records += task.records_out

    metrics.map_phase_seconds = cost.round_startup_seconds + max(
        max((t.seconds for t in metrics.map_tasks), default=0.0),
        dead_chain_seconds,
    )

    if metrics.aborted:
        metrics.total_seconds = metrics.map_phase_seconds
        return JobResult(output=[], metrics=metrics, reducer_outputs=[])

    # ---- shuffle ----------------------------------------------------------
    metrics.shuffle_seconds = cost.shuffle_seconds(
        max(reducer_bytes, default=0)
    )

    # ---- reduce phase -----------------------------------------------------
    physical = cluster.physical_memory(memory_records)
    output: List[Pair] = []
    reducer_outputs: List[List[Pair]] = []
    dead_chain_seconds = 0.0

    def reduce_attempt(machine: int, bucket) -> Tuple[TaskMetrics, Tuple]:
        task = TaskMetrics(machine=machine)
        context = TaskContext(machine, cluster.num_machines, memory_records)
        reducer = job.reducer_factory()
        reducer.setup(context)

        grouped: Dict[object, List] = {}
        for key, value in bucket:
            grouped.setdefault(key, []).append(value)
            task.records_in += 1
        task.bytes_in = reducer_bytes[machine]

        task.peak_group_records = max(
            (len(values) for values in grouped.values()), default=0
        )
        task.spilled_records = max(0, task.records_in - physical)
        oom_flagged = False
        if job.value_buffer_fraction is not None:
            buffer_limit = job.value_buffer_fraction * physical
            oversized_volume = sum(
                len(values)
                for values in grouped.values()
                if len(values) > buffer_limit
            )
            oom_flagged = (
                oversized_volume
                > job.oversized_dominance * task.records_in
            )

        reducer_output: List[Pair] = []
        for key in _ordered_keys(grouped):
            for item in reducer.reduce(key, grouped[key]):
                reducer_output.append(
                    _unpack_pair(item, job.name, "reduce", machine)
                )
        for item in reducer.close():
            reducer_output.append(
                _unpack_pair(item, job.name, "reduce", machine)
            )

        for key, value in reducer_output:
            task.records_out += 1
            task.bytes_out += pair_bytes(key, value)

        task.cpu_ops = (
            task.records_in + task.records_out + context.extra_cpu
        )
        task.seconds = cost.reduce_task_seconds(
            task.cpu_ops, task.spilled_records, task.bytes_out
        )
        return task, (reducer_output, oom_flagged)

    for machine, bucket in enumerate(reducer_buckets):
        task, payload = _run_attempts(
            lambda m=machine, b=bucket: reduce_attempt(m, b),
            job_name=job.name,
            phase="reduce",
            machine=machine,
            faults=faults,
            retry=retry,
            cost=cost,
            metrics=metrics,
        )
        if task is None:
            metrics.aborted = True
            metrics.abort_reason = (
                f"reduce task {machine} exhausted "
                f"{retry.max_attempts} attempts"
            )
            dead_chain_seconds = payload
            break
        reducer_output, oom_flagged = payload
        if oom_flagged:
            metrics.oom_reducers.append(machine)
        metrics.reduce_tasks.append(task)
        output.extend(reducer_output)
        reducer_outputs.append(reducer_output)

    metrics.reduce_phase_seconds = cost.round_startup_seconds + max(
        max((t.seconds for t in metrics.reduce_tasks), default=0.0),
        dead_chain_seconds,
    )
    metrics.total_seconds = (
        metrics.map_phase_seconds
        + metrics.shuffle_seconds
        + metrics.reduce_phase_seconds
    )
    if metrics.aborted:
        return JobResult(output=[], metrics=metrics, reducer_outputs=[])
    return JobResult(
        output=output, metrics=metrics, reducer_outputs=reducer_outputs
    )


def _apply_combiner(
    combiner: Callable[[object, List], Iterable[Pair]],
    pairs: List[Pair],
    context: TaskContext,
    job_name: str,
    machine: int,
) -> List[Pair]:
    """Group a map task's buffer by key and fold it through the combiner."""
    grouped: Dict[object, List] = {}
    for item in pairs:
        key, value = _unpack_pair(item, job_name, "map", machine)
        grouped.setdefault(key, []).append(value)
    context.add_cpu(len(pairs))
    combined: List[Pair] = []
    for key in _ordered_keys(grouped):
        for item in combiner(key, grouped[key]):
            combined.append(
                _unpack_pair(item, job_name, "combiner", machine)
            )
    return combined
