"""Pickle-once broadcast of large read-only task state.

The parallel executor ships every task across the process boundary by
pickling it, and SP-Cube's round-2 tasks all close over the same large
objects — the SP-Sketch appears in the mapper factory, the plan function
*and* the partitioner, so a naive submit re-serializes it once per task
per reference.  ``BENCH_perf.json`` showed the process pool *losing* to
serial for exactly this reason.

A :class:`Broadcast` is a tiny picklable handle around one value:

* **Publishing** happens lazily on the first pickle: the wrapped value is
  serialized once into a spill file under the system temp directory and
  the handle thereafter pickles as ``(token, path)`` — a few dozen bytes
  regardless of the value's size.
* **Resolving** happens lazily on first access in the receiving process:
  the file is read and unpickled once per process and cached under the
  token, so a worker that executes hundreds of task batches deserializes
  the sketch exactly once (the moral equivalent of Spark's
  ``sc.broadcast`` or a Hadoop DistributedCache file).

Why a spill file instead of a pool initializer: the executor's worker
pools are process-global and cached across runs (see ``_POOLS`` in
:mod:`repro.mapreduce.executor`), so per-run state cannot be injected at
pool construction time without forfeiting pool reuse.  The file is the
rendezvous point that works for any pool, any run, and any number of
concurrent broadcasts.

Determinism: a broadcast is pure plumbing.  The resolved value is the
same object graph the driver pickled, the handle never appears in task
*output*, and resolution order cannot influence results — tasks are pure
functions of their inputs.  The driver's own cache is pre-seeded at
construction time, so serial runs (and the thread-pool fallback, which
never pickles) hand out the original object with zero copies.
"""

from __future__ import annotations

import atexit
import os
import pickle
import tempfile
import threading
from typing import Dict, Tuple

#: Values resolved in this process, keyed by broadcast token.  Workers
#: fill this on first access; the publishing process pre-seeds it so the
#: driver never round-trips its own broadcast through the file.
_CACHE: Dict[str, object] = {}
_CACHE_LOCK = threading.Lock()

#: Spill files published by this process, unlinked at interpreter exit.
_PUBLISHED: Dict[str, str] = {}
_SEQUENCE = 0

#: Per-process broadcast accounting: handles published (spill files
#: written), cache hits (resolutions served from ``_CACHE``, including the
#: driver's pre-seeded own values), and spill loads (file deserialized).
#: Worker processes keep their own copies; the driver's numbers are what
#: telemetry samples, as "host"-source diagnostics.
_STATS = {"publishes": 0, "cache_hits": 0, "spill_loads": 0}


def broadcast_stats() -> Dict[str, int]:
    """A snapshot of this process's broadcast cache accounting."""
    return dict(_STATS)


def reset_broadcast_stats() -> None:
    """Zero the accounting (tests and per-run attribution)."""
    for key in _STATS:
        _STATS[key] = 0


def _next_token() -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"repro-bcast-{os.getpid()}-{_SEQUENCE}"


def _cleanup_published() -> None:
    for path in _PUBLISHED.values():
        try:
            os.unlink(path)
        except OSError:
            pass
    _PUBLISHED.clear()


atexit.register(_cleanup_published)


class Broadcast:
    """A picklable, pickle-once handle for a large read-only value.

    >>> handle = Broadcast({"shared": "state"})
    >>> handle.value
    {'shared': 'state'}

    Pass the handle (not the value) into task state; call ``.value``
    wherever the real object is needed.  :func:`unwrap` accepts either a
    handle or a plain value, so call sites can stay agnostic.
    """

    __slots__ = ("_value", "_token", "_path")

    _UNRESOLVED = object()

    def __init__(self, value):
        self._value = value
        self._token = _next_token()
        self._path: str = ""
        with _CACHE_LOCK:
            _CACHE[self._token] = value

    @property
    def value(self):
        """The wrapped value, resolving (once per process) if needed."""
        if self._value is Broadcast._UNRESOLVED:
            self._value = self._resolve()
        return self._value

    def _resolve(self):
        with _CACHE_LOCK:
            if self._token in _CACHE:
                _STATS["cache_hits"] += 1
                return _CACHE[self._token]
        with open(self._path, "rb") as spill:
            value = pickle.load(spill)
        _STATS["spill_loads"] += 1
        with _CACHE_LOCK:
            # Another thread may have raced us; keep the first resolution
            # so every task in this process sees one shared object.
            value = _CACHE.setdefault(self._token, value)
        return value

    def _publish(self) -> None:
        """Serialize the value into the spill file (first pickle only)."""
        if self._path:
            return
        handle, path = tempfile.mkstemp(
            prefix=self._token + "-", suffix=".pkl"
        )
        try:
            with os.fdopen(handle, "wb") as spill:
                pickle.dump(
                    self._value, spill, protocol=pickle.HIGHEST_PROTOCOL
                )
        except BaseException:
            os.unlink(path)
            raise
        self._path = path
        _PUBLISHED[self._token] = path
        _STATS["publishes"] += 1

    def __getstate__(self) -> Tuple[str, str]:
        if self._value is not Broadcast._UNRESOLVED:
            self._publish()
        return (self._token, self._path)

    def __setstate__(self, state: Tuple[str, str]) -> None:
        self._token, self._path = state
        # Resolution is deferred to first .value access: pickling a task
        # batch must stay cheap even when the value is never touched.
        self._value = Broadcast._UNRESOLVED

    def __repr__(self) -> str:
        resolved = self._value is not Broadcast._UNRESOLVED
        return f"Broadcast(token={self._token!r}, resolved={resolved})"


def unwrap(ref):
    """The value behind ``ref`` — a :class:`Broadcast` or a plain object."""
    if isinstance(ref, Broadcast):
        return ref.value
    return ref
