"""Round-level checkpointing and partial re-execution after node loss.

Multi-round cube algorithms (MR-Cube's sample/materialize/post-aggregate
pipeline, PipeSort-MR's level-by-level rounds, SP-Cube's sketch + cube
rounds) historically aborted the *whole run* whenever one round died.
That is the abort-restart recovery model; HaCube's argument — and real
frameworks' behaviour — is that round boundaries are natural checkpoints:
a completed round's reduce output persisted to the DFS lets the driver
resume from the last good round and re-execute only the work the failure
actually destroyed.

Two pieces:

* :class:`CheckpointManager` — the persistence format.  Each completed
  round ``i`` of a run is stored under ``ckpt/<run_id>/round-<i>/`` as one
  ``part-<r>`` file per reduce partition plus a ``MANIFEST`` written
  *last* — a reader that finds no manifest (crash mid-write) must treat
  the checkpoint as absent, and :meth:`CheckpointManager.load_round`
  enforces exactly that.  Deletion is manifest-*first* for the same
  reason: a half-deleted checkpoint is invisible, never half-loaded.
* :class:`RoundRunner` — the recovery protocol.  Engines run every round
  through it.  On success the round is checkpointed (``checkpoint_write``
  trace event) and the run-relative clock advances.  When a round aborts
  *because a failure domain died* (``JobMetrics.dead_nodes`` non-empty —
  a plain retry-exhaustion abort still aborts the run, preserving the
  engine's historical contract), the runner: marks the dead nodes' DFS
  replicas lost, salvages the partitions that completed before the death
  as checkpoint parts, records the failed execution as *superseded* (its
  entire simulated time is recovery cost), replaces the dead nodes, and
  re-executes the round with only the lost partitions
  (``completed_reducers``) — emitting a ``round_resume`` trace event.

Determinism: the rerun reuses the same per-task fault coins (attempt
identities are unchanged), which is safe because absent the node kill
those chains completed; the kill itself is spent — pinned kills by the
``replaced`` set, run-relative kills by the advanced run clock.  Serial
and parallel backends therefore resume identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..observability.telemetry import NULL_TELEMETRY
from ..observability.tracer import NULL_TRACER
from .cluster import ClusterConfig
from .dfs import DistributedFileSystem, ReplicaExhausted
from .engine import JobResult, MapReduceJob, Pair, run_job
from .metrics import RunMetrics

#: Root of every checkpoint path.
CHECKPOINT_ROOT = "ckpt"

#: A resumable round is retried at most this many times before its abort
#: is allowed to stand — a backstop against plans that kill a node in
#: every window of a round (fresh nodes keep dying).
DEFAULT_MAX_ROUND_ATTEMPTS = 3


class CheckpointManager:
    """Persist completed rounds to the DFS under a crash-safe manifest."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        run_id: str = "run",
        enabled: bool = True,
    ):
        self.dfs = dfs
        self.run_id = run_id
        self.enabled = enabled

    # -- paths ---------------------------------------------------------------

    def round_prefix(self, index: int) -> str:
        return f"{CHECKPOINT_ROOT}/{self.run_id}/round-{index}/"

    def part_path(self, index: int, part: int) -> str:
        return f"{self.round_prefix(index)}part-{part}"

    def manifest_path(self, index: int) -> str:
        return f"{self.round_prefix(index)}MANIFEST"

    # -- writing -------------------------------------------------------------

    def save_part(self, index: int, part: int, pairs: Sequence[Pair]) -> None:
        """Persist one partition's reduce output (salvage after a loss)."""
        if not self.enabled:
            return
        self.dfs.write(self.part_path(index, part), list(pairs))

    def save_round(
        self,
        index: int,
        job_name: str,
        reducer_outputs: Sequence[Sequence[Pair]],
        clock: float = 0.0,
        trace_watermark: int = 0,
    ) -> None:
        """Checkpoint a completed round: parts first, manifest last.

        The manifest is the commit record — until it lands, a reader sees
        no checkpoint at all, so a crash mid-write can never surface a
        half-round.
        """
        if not self.enabled:
            return
        for part, pairs in enumerate(reducer_outputs):
            self.dfs.write(self.part_path(index, part), list(pairs))
        self.dfs.write(
            self.manifest_path(index),
            [{
                "round": index,
                "job": job_name,
                "num_parts": len(reducer_outputs),
                "clock": clock,
                "trace_watermark": trace_watermark,
            }],
        )

    # -- reading -------------------------------------------------------------

    def load_round(self, index: int) -> Optional[Dict]:
        """The checkpointed round, or ``None`` when absent or unusable.

        ``None`` covers every partial-write and partial-loss shape: no
        manifest (crash before commit), a part named by the manifest but
        missing or unreadable (node losses exhausted its replicas), or a
        malformed manifest record.  A resume must *never* trust a
        checkpoint the manifest does not fully vouch for.
        """
        manifest_path = self.manifest_path(index)
        if not self.dfs.exists(manifest_path):
            return None
        try:
            records = self.dfs.read(manifest_path)
            manifest = records[0]
            num_parts = manifest["num_parts"]
            outputs: Dict[int, List[Pair]] = {}
            for part in range(num_parts):
                path = self.part_path(index, part)
                if not self.dfs.exists(path):
                    return None
                outputs[part] = [tuple(pair) for pair in self.dfs.read(path)]
        except (ReplicaExhausted, KeyError, IndexError, TypeError):
            return None
        return {"manifest": manifest, "outputs": outputs}

    def discard_round(self, index: int) -> None:
        """Retire a checkpoint atomically: manifest first, then parts."""
        self.dfs.delete(self.manifest_path(index))
        self.dfs.delete_prefix(self.round_prefix(index))

    def completed_rounds(self) -> List[int]:
        """Indices of rounds with a committed (manifest-backed) checkpoint."""
        prefix = f"{CHECKPOINT_ROOT}/{self.run_id}/round-"
        rounds = []
        for path in self.dfs.list_files(prefix):
            if path.endswith("/MANIFEST"):
                rounds.append(int(path[len(prefix):].split("/", 1)[0]))
        return sorted(rounds)


class RoundRunner:
    """Run an engine's rounds with checkpoint/resume recovery.

    One instance per algorithm execution.  The runner owns the
    run-relative simulated clock (so run-relative node kills land in the
    right round's window), the set of replaced nodes, and the appending
    of each execution's :class:`JobMetrics` — engines must *not* append
    job metrics themselves when running through it.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        metrics: RunMetrics,
        dfs: Optional[DistributedFileSystem] = None,
        run_id: str = "run",
        max_round_attempts: int = DEFAULT_MAX_ROUND_ATTEMPTS,
    ):
        if max_round_attempts < 1:
            raise ValueError("max_round_attempts must be >= 1")
        self.cluster = cluster
        self.metrics = metrics
        if dfs is None:
            dfs = DistributedFileSystem(
                fault_plan=cluster.fault_plan, topology=cluster.topology()
            )
        self.dfs = dfs
        self.checkpoint = CheckpointManager(
            dfs, run_id=run_id, enabled=cluster.checkpoint_enabled
        )
        self.max_round_attempts = max_round_attempts
        #: Run-relative simulated seconds elapsed (includes failed
        #: executions — their time really passed).
        self.clock = 0.0
        #: Nodes lost and re-provisioned so far in this run.
        self.replaced: set = set()
        #: Index the next round will be checkpointed under.
        self.round_index = 0

    def run(
        self,
        job: MapReduceJob,
        input_chunks: Sequence[Sequence],
        memory_records: int,
    ) -> JobResult:
        """Execute one round, resuming over node losses when possible.

        Returns the round's final :class:`JobResult` — successful unless
        the abort was non-resumable (no node died, checkpointing is
        disabled, or the retry backstop ran out), in which case the
        aborted result is returned and the engine aborts the run exactly
        as it always did.
        """
        index = self.round_index
        self.round_index += 1
        tracer = self.cluster.tracer or NULL_TRACER
        telemetry = self.cluster.telemetry or NULL_TELEMETRY
        completed: Dict[int, List[Pair]] = {}
        for round_attempt in range(self.max_round_attempts):
            result = run_job(
                job,
                input_chunks,
                self.cluster,
                memory_records,
                run_clock=self.clock,
                replaced_nodes=frozenset(self.replaced),
                completed_reducers=completed or None,
            )
            jm = result.metrics
            if jm.dead_nodes:
                # The failure domain's DFS replicas die with it,
                # regardless of whether the round itself survived.
                self.dfs.mark_nodes_dead(jm.dead_nodes)
            if not jm.aborted:
                self.metrics.jobs.append(jm)
                self.clock += jm.total_seconds
                self.checkpoint.save_round(
                    index,
                    job.name,
                    result.reducer_outputs,
                    clock=self.clock,
                    trace_watermark=getattr(tracer, "_seq", 0),
                )
                if self.checkpoint.enabled and tracer.enabled:
                    tracer.event(
                        "checkpoint_write", at=tracer.clock, job=job.name,
                        fields={
                            "round": index,
                            "num_parts": len(result.reducer_outputs),
                            "run_clock": self.clock,
                        },
                    )
                if self.checkpoint.enabled and telemetry.enabled:
                    # The reduce outputs being checkpointed are exactly
                    # what the reduce tasks emitted, so their already-
                    # accounted bytes_out is the checkpoint volume — no
                    # re-estimation pass over the (possibly huge) cube.
                    ckpt_bytes = sum(t.bytes_out for t in jm.reduce_tasks)
                    telemetry.counter(
                        "repro_checkpoint_writes_total",
                        "Rounds checkpointed to the DFS",
                    ).inc()
                    telemetry.counter(
                        "repro_checkpoint_bytes_total",
                        "Reduce-output bytes persisted as checkpoints",
                    ).inc(ckpt_bytes)
                    telemetry.sample(
                        "checkpoint_bytes", ckpt_bytes,
                        labels={"round": index}, at=telemetry.clock,
                    )
                return result
            resumable = (
                bool(jm.dead_nodes)
                and self.checkpoint.enabled
                and round_attempt + 1 < self.max_round_attempts
            )
            if not resumable:
                self.metrics.jobs.append(jm)
                self.clock += jm.total_seconds
                return result
            # A failure domain took the round down: record the failed
            # execution (its whole duration is recovery cost), salvage
            # what completed, replace the dead nodes, and rerun only the
            # lost partitions.
            jm.superseded = True
            self.metrics.jobs.append(jm)
            self.clock += jm.total_seconds
            for part in sorted(result.partial_reducer_outputs):
                pairs = result.partial_reducer_outputs[part]
                completed[part] = pairs
                self.checkpoint.save_part(index, part, pairs)
            self.replaced.update(jm.dead_nodes)
            if telemetry.enabled:
                telemetry.counter(
                    "repro_round_resumes_total",
                    "Rounds resumed from a checkpoint after node loss",
                ).inc()
                up = telemetry.gauge(
                    "repro_node_up", "Node liveness (1 = serving, 0 = dead)"
                )
                for node in sorted(jm.dead_nodes):
                    # The dead domain is re-provisioned for the rerun.
                    up.set(1, labels={"node": node})
                    telemetry.sample(
                        "node_up", 1, labels={"node": node},
                        at=telemetry.clock,
                    )
            if tracer.enabled:
                tracer.event(
                    "round_resume", at=tracer.clock, job=job.name,
                    fields={
                        "round": index,
                        "salvaged_partitions": sorted(completed),
                        "replaced_nodes": sorted(jm.dead_nodes),
                    },
                )
        raise AssertionError("unreachable: loop always returns")
