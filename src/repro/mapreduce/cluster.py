"""Simulated cluster configuration (paper Section 2.3).

The paper's model: ``k`` machines, the ``n`` input tuples equally loaded,
``m = n / k``, and each machine's main memory is ``O(m)``.  A c-group is
*skewed* when ``|set(g)| > m`` (Definition 2.7).

:class:`ClusterConfig` pins these parameters for a run.  ``memory_records``
may be left unset, in which case it is derived as ``ceil(n / k)`` when a job
starts — exactly the paper's convention — and fixed for the rest of the run.
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .costmodel import CostModel
from .executor import build_executor, resolve_parallelism
from .faults import FaultPlan, RetryPolicy

#: Task-to-node placement policies understood by :class:`NodeTopology`.
PLACEMENT_POLICIES = ("round-robin", "block")


@dataclass(frozen=True)
class NodeTopology:
    """How the ``k`` logical machines map onto physical failure domains.

    The paper's model schedules one map and one reduce task per *machine*;
    real clusters pack several such slots onto each physical *node*, and a
    node death takes every co-located task (and the node's DFS replicas)
    down together.  The topology is a pure function of its parameters —
    placement must be bit-identical between serial and parallel executors,
    so nothing here may depend on execution order.

    ``round-robin`` stripes machine ``i`` onto node ``i % num_nodes``
    (Hadoop-style slot spreading); ``block`` packs contiguous machine
    ranges per node, so one node death wipes a contiguous partition range.
    """

    num_nodes: int
    num_machines: int
    placement: str = "round-robin"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.num_nodes > self.num_machines:
            raise ValueError("num_nodes must be <= num_machines")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )

    def node_of(self, machine: int) -> int:
        """The node that machine (task slot) ``machine`` lives on."""
        if not 0 <= machine < self.num_machines:
            raise ValueError(f"machine {machine} out of range")
        if self.placement == "round-robin":
            return machine % self.num_nodes
        block = math.ceil(self.num_machines / self.num_nodes)
        return machine // block

    def machines_on(self, node: int) -> Tuple[int, ...]:
        """All machine slots placed on ``node``."""
        return tuple(
            m for m in range(self.num_machines) if self.node_of(m) == node
        )

    def replica_node(self, path: str, replica: int) -> int:
        """The node holding replica ``replica`` of a DFS path.

        Replicas of one path land on distinct nodes (modulo wrap-around
        when ``replication > num_nodes``), spread by a content hash of
        the path so the replica ring is stable across runs.
        """
        base = zlib.crc32(repr(path).encode())
        return (base + replica) % self.num_nodes


@dataclass
class ClusterConfig:
    """Static description of the simulated MapReduce cluster.

    Parameters
    ----------
    num_machines:
        ``k`` — machines available; each runs one map task and one reduce
        task per round (paper Section 2.3).  The paper's testbed used 20.
    memory_records:
        ``m`` — per-machine main-memory capacity, in records.  ``None``
        derives ``ceil(n / k)`` from the input size at job start.
    memory_slack:
        Multiplier on ``m`` for the *physical* memory bound used by spill
        accounting ("memory is O(m)"); the skew threshold itself always
        uses ``m`` exactly.
    cost_model:
        Coefficients that translate simulator counters into simulated
        seconds; see :class:`~repro.mapreduce.costmodel.CostModel`.
    seed:
        Seed for any randomized behaviour tied to the cluster (sampling).
    fault_plan:
        Seeded fault injections for runs on this cluster (``None`` means
        a healthy cluster); see :class:`~repro.mapreduce.faults.FaultPlan`.
    retry_policy:
        How the framework recovers from injected task failures; see
        :class:`~repro.mapreduce.faults.RetryPolicy`.
    parallelism:
        Worker processes running a phase's map/reduce tasks concurrently.
        ``None`` defers to the ``REPRO_PARALLELISM`` environment variable
        (default 1 = serial).  Parallel runs are bit-identical to serial
        ones; see :mod:`repro.mapreduce.executor`.
    tracer:
        A :class:`~repro.observability.Tracer` receiving span/event
        records from every job run on this cluster (``None`` = the
        zero-overhead null tracer); see :mod:`repro.observability`.
    telemetry:
        A :class:`~repro.observability.Telemetry` collector sampling
        metric series (shuffle bytes, reducer load, node liveness, …)
        from every job run on this cluster (``None`` = the zero-overhead
        null telemetry); see :mod:`repro.observability.telemetry`.
    lineage:
        A :class:`~repro.observability.LineageRecorder` capturing one
        shuffle flow edge per (map task, reducer) pair of every job —
        the flight recorder the ``explain-group`` / ``explain-reducer``
        queries walk (``None`` = the zero-overhead null recorder); see
        :mod:`repro.observability.lineage`.
    watchdog:
        A :class:`~repro.observability.Watchdog` comparing each round's
        observed shuffle flows against the sketch-predicted ``n/k + m``
        band and emitting skew / misannotation / straggler alerts
        (``None`` = the zero-overhead null watchdog); see
        :mod:`repro.observability.watchdog`.
    num_nodes:
        Physical failure domains the ``k`` machine slots are packed onto.
        ``None`` gives every machine its own node — the pre-topology
        behaviour, where a node death is just one task slot dying.
    placement:
        Task-to-node placement policy (``"round-robin"`` or ``"block"``);
        see :class:`NodeTopology`.
    checkpoint_enabled:
        Whether multi-round engines persist each completed round to the
        DFS and resume from the last checkpoint after a node loss,
        instead of aborting the whole run; see
        :class:`~repro.mapreduce.checkpoint.RoundRunner`.
    """

    num_machines: int = 20
    memory_records: Optional[int] = None
    memory_slack: float = 2.0
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 0x5BC
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    parallelism: Optional[int] = None
    tracer: Optional[object] = None
    telemetry: Optional[object] = None
    lineage: Optional[object] = None
    watchdog: Optional[object] = None
    num_nodes: Optional[int] = None
    placement: str = "round-robin"
    checkpoint_enabled: bool = True

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.memory_records is not None and self.memory_records <= 0:
            raise ValueError("memory_records must be positive when given")
        if self.memory_slack < 1.0:
            raise ValueError("memory_slack must be >= 1")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1 when given")
        # Validate topology parameters eagerly, at configuration time.
        self.topology()

    def topology(self) -> NodeTopology:
        """The node topology machines are placed on (one node per machine
        when ``num_nodes`` is unset)."""
        return NodeTopology(
            num_nodes=(
                self.num_machines if self.num_nodes is None else self.num_nodes
            ),
            num_machines=self.num_machines,
            placement=self.placement,
        )

    def effective_parallelism(self) -> int:
        """The resolved worker count (explicit value, env var, or 1)."""
        return resolve_parallelism(self.parallelism)

    def task_executor(self):
        """The executor backend jobs on this cluster run their tasks on."""
        return build_executor(self.parallelism)

    def derive_memory(self, num_input_records: int) -> int:
        """``m`` for an input of the given size (paper: ``m = n / k``)."""
        if self.memory_records is not None:
            return self.memory_records
        return max(1, math.ceil(num_input_records / self.num_machines))

    def physical_memory(self, memory_records: int) -> int:
        """Records a machine can actually hold before spilling."""
        return max(1, int(memory_records * self.memory_slack))

    def with_memory(self, memory_records: int) -> "ClusterConfig":
        """A copy of this config with ``m`` pinned explicitly."""
        return dataclasses.replace(self, memory_records=memory_records)
