"""Simulated cluster configuration (paper Section 2.3).

The paper's model: ``k`` machines, the ``n`` input tuples equally loaded,
``m = n / k``, and each machine's main memory is ``O(m)``.  A c-group is
*skewed* when ``|set(g)| > m`` (Definition 2.7).

:class:`ClusterConfig` pins these parameters for a run.  ``memory_records``
may be left unset, in which case it is derived as ``ceil(n / k)`` when a job
starts — exactly the paper's convention — and fixed for the rest of the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .costmodel import CostModel
from .executor import build_executor, resolve_parallelism
from .faults import FaultPlan, RetryPolicy


@dataclass
class ClusterConfig:
    """Static description of the simulated MapReduce cluster.

    Parameters
    ----------
    num_machines:
        ``k`` — machines available; each runs one map task and one reduce
        task per round (paper Section 2.3).  The paper's testbed used 20.
    memory_records:
        ``m`` — per-machine main-memory capacity, in records.  ``None``
        derives ``ceil(n / k)`` from the input size at job start.
    memory_slack:
        Multiplier on ``m`` for the *physical* memory bound used by spill
        accounting ("memory is O(m)"); the skew threshold itself always
        uses ``m`` exactly.
    cost_model:
        Coefficients that translate simulator counters into simulated
        seconds; see :class:`~repro.mapreduce.costmodel.CostModel`.
    seed:
        Seed for any randomized behaviour tied to the cluster (sampling).
    fault_plan:
        Seeded fault injections for runs on this cluster (``None`` means
        a healthy cluster); see :class:`~repro.mapreduce.faults.FaultPlan`.
    retry_policy:
        How the framework recovers from injected task failures; see
        :class:`~repro.mapreduce.faults.RetryPolicy`.
    parallelism:
        Worker processes running a phase's map/reduce tasks concurrently.
        ``None`` defers to the ``REPRO_PARALLELISM`` environment variable
        (default 1 = serial).  Parallel runs are bit-identical to serial
        ones; see :mod:`repro.mapreduce.executor`.
    tracer:
        A :class:`~repro.observability.Tracer` receiving span/event
        records from every job run on this cluster (``None`` = the
        zero-overhead null tracer); see :mod:`repro.observability`.
    """

    num_machines: int = 20
    memory_records: Optional[int] = None
    memory_slack: float = 2.0
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 0x5BC
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    parallelism: Optional[int] = None
    tracer: Optional[object] = None

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.memory_records is not None and self.memory_records <= 0:
            raise ValueError("memory_records must be positive when given")
        if self.memory_slack < 1.0:
            raise ValueError("memory_slack must be >= 1")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1 when given")

    def effective_parallelism(self) -> int:
        """The resolved worker count (explicit value, env var, or 1)."""
        return resolve_parallelism(self.parallelism)

    def task_executor(self):
        """The executor backend jobs on this cluster run their tasks on."""
        return build_executor(self.parallelism)

    def derive_memory(self, num_input_records: int) -> int:
        """``m`` for an input of the given size (paper: ``m = n / k``)."""
        if self.memory_records is not None:
            return self.memory_records
        return max(1, math.ceil(num_input_records / self.num_machines))

    def physical_memory(self, memory_records: int) -> int:
        """Records a machine can actually hold before spilling."""
        return max(1, int(memory_records * self.memory_slack))

    def with_memory(self, memory_records: int) -> "ClusterConfig":
        """A copy of this config with ``m`` pinned explicitly."""
        return ClusterConfig(
            num_machines=self.num_machines,
            memory_records=memory_records,
            memory_slack=self.memory_slack,
            cost_model=self.cost_model,
            seed=self.seed,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
            parallelism=self.parallelism,
            tracer=self.tracer,
        )
