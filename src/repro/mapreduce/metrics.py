"""Metrics collected by the simulator — the paper's measurement surface.

Section 6 reports, per experiment: total running time, *average* map and
reduce task times, and intermediate (map output / network) data size.  A
:class:`JobMetrics` captures one MapReduce round; a :class:`RunMetrics`
aggregates the rounds of one algorithm execution plus algorithm-specific
extras (e.g. the SP-Sketch serialized size).
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional


class MetricsInvariantError(AssertionError):
    """A metrics object violates the engine's accounting contract."""


class UnknownMetricsFieldWarning(UserWarning):
    """A serialized metrics record carried fields this version ignores."""


def _known_fields(cls, data: Dict) -> Dict:
    """``data`` restricted to ``cls``'s dataclass fields (forward compat).

    Artifacts written by a *newer* version may carry fields this version
    does not know; crashing on them would make every BENCH/trace archive
    unreadable the moment a field lands.  Unknown keys are dropped with a
    :class:`UnknownMetricsFieldWarning` naming them, so the skew is
    visible but never fatal.
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        warnings.warn(
            f"{cls.__name__}.from_dict: ignoring unknown fields {unknown} "
            "(artifact written by a newer version?)",
            UnknownMetricsFieldWarning,
            stacklevel=3,
        )
        return {k: v for k, v in data.items() if k in known}
    return data


@dataclass
class TaskMetrics:
    """Counters for a single map or reduce task (one machine, one phase)."""

    machine: int = 0
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cpu_ops: int = 0
    spilled_records: int = 0
    peak_group_records: int = 0
    seconds: float = 0.0
    #: Attempt index this record describes (0 = first execution).  For a
    #: task's winning attempt, ``seconds`` covers the whole chain: every
    #: crashed attempt, detection and backoff, then the winner's runtime.
    attempt: int = 0
    #: True when this attempt was killed (crash injection, or the losing
    #: copy of a speculative pair).
    killed: bool = False
    #: True when the task was completed by a speculative backup copy.
    speculative: bool = False
    #: Simulated seconds this chain spent *beyond* the winning attempt's
    #: nominal fault-free runtime: lost attempts, crash detection,
    #: scheduler backoff, and residual straggle after speculation.  Only
    #: the winning attempt carries it (killed attempts keep 0.0), so
    #: summing over ``map_tasks``/``reduce_tasks`` counts every chain's
    #: recovery cost exactly once.
    overhead_seconds: float = 0.0
    #: User counters bumped through ``TaskContext.incr`` during the
    #: attempt (e.g. SP-Cube's skewed-group hits).
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Plain-JSON form, for archiving and cross-PR diffing."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TaskMetrics":
        return cls(**_known_fields(cls, data))


@dataclass
class JobMetrics:
    """Counters and derived times for one MapReduce round."""

    name: str
    map_tasks: List[TaskMetrics] = field(default_factory=list)
    reduce_tasks: List[TaskMetrics] = field(default_factory=list)
    #: Serialized bytes of all map-output pairs after combining — the
    #: paper's "map output size" / "intermediate data size".
    map_output_bytes: int = 0
    map_output_records: int = 0
    #: Simulated phase durations (max over machines + round startup).
    map_phase_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_phase_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Reducers whose per-group value buffer overflowed (models Hive's
    #: "stuck" reducers in Figure 6).
    oom_reducers: List[int] = field(default_factory=list)
    #: Flagged-reducer count at which the job counts as failed; a single
    #: hot reducer survives through spills and task retries.
    oom_quorum: int = 2
    #: Set by an algorithm's own failure model (see HiveCube) when the job
    #: is stuck regardless of per-reducer flags.
    forced_failure: bool = False
    #: Fault-tolerance counters (see ``repro.mapreduce.faults``): total
    #: task attempts launched (first executions, retries, and speculative
    #: backups), attempts killed (crashes plus losing speculative copies),
    #: tasks won by a speculative backup, and tasks that succeeded only
    #: after at least one failure or via a backup copy.
    attempts: int = 0
    killed_tasks: int = 0
    speculative_wins: int = 0
    recovered: int = 0
    #: Per-attempt records of every killed attempt (the winning attempt of
    #: each task lives in ``map_tasks``/``reduce_tasks``).
    killed_attempts: List[TaskMetrics] = field(default_factory=list)
    #: True when some task exhausted its retry budget and the framework
    #: aborted the job — the run produced no output.
    aborted: bool = False
    abort_reason: Optional[str] = None
    #: Which execution backend ran the round's tasks ("serial"/"parallel")
    #: and the *real* wall-clock seconds the driver spent per phase —
    #: measured host time, not simulated time.  These are diagnostics for
    #: the perf harness and are excluded from determinism comparisons
    #: (everything else in this dataclass is bit-identical across
    #: backends).
    executor: str = "serial"
    map_phase_wall_seconds: float = 0.0
    reduce_phase_wall_seconds: float = 0.0
    #: Topology nodes that died during this round's window (sorted).  A
    #: non-empty list on an aborted round is the checkpoint layer's
    #: signal that the abort is *resumable* — caused by a failure domain
    #: going down, not by a task exhausting its own retry budget.
    dead_nodes: List[int] = field(default_factory=list)
    #: True when this round's execution failed to a node loss and was
    #: re-executed from a checkpoint: the record is kept for accounting
    #: (its time is pure recovery cost) but superseded by a later
    #: execution of the same round — run-level failure/abort status and
    #: per-round aggregates skip it.
    superseded: bool = False

    @property
    def avg_map_seconds(self) -> float:
        """Average map task time — Figure 5b / 8b's measure."""
        if not self.map_tasks:
            return 0.0
        return sum(t.seconds for t in self.map_tasks) / len(self.map_tasks)

    @property
    def avg_reduce_seconds(self) -> float:
        """Average reduce task time — Figure 4b / 7b's measure."""
        if not self.reduce_tasks:
            return 0.0
        return sum(t.seconds for t in self.reduce_tasks) / len(
            self.reduce_tasks
        )

    @property
    def max_reducer_input_records(self) -> int:
        return max((t.records_in for t in self.reduce_tasks), default=0)

    @property
    def reducer_input_records(self) -> List[int]:
        return [t.records_in for t in self.reduce_tasks]

    @property
    def reducer_output_bytes(self) -> List[int]:
        return [t.bytes_out for t in self.reduce_tasks]

    @property
    def failed(self) -> bool:
        return (
            self.aborted
            or self.forced_failure
            or len(self.oom_reducers) >= self.oom_quorum
        )

    @property
    def recovery_overhead_seconds(self) -> float:
        """Simulated seconds this round spent on fault recovery.

        Summed over winning attempts only — killed attempts' lost time is
        charged to their chain's winner (see
        ``TaskMetrics.overhead_seconds``), so nothing is double-counted.
        An aborted round's dead chain has no winner; its cost shows in
        the phase time but not here.  A *superseded* execution (failed to
        a node loss, re-executed from a checkpoint) is recovery cost in
        its entirety: every simulated second it spent had to be spent
        again.
        """
        if self.superseded:
            return self.total_seconds
        return sum(
            t.overhead_seconds for t in self.map_tasks
        ) + sum(t.overhead_seconds for t in self.reduce_tasks)

    def check_invariants(self) -> None:
        """Enforce the engine's accounting contract; raise on violation.

        The headline invariant: wall-clock and byte totals include every
        killed attempt **exactly once** — via its chain winner's
        ``seconds``/``overhead_seconds``, never via the task lists that
        the byte totals and per-task averages are computed from.
        """
        problems: List[str] = []
        winners = self.map_tasks + self.reduce_tasks
        if any(t.killed for t in winners):
            problems.append("a killed attempt leaked into the task lists")
        if not all(t.killed for t in self.killed_attempts):
            problems.append("killed_attempts holds a non-killed record")
        if any(t.overhead_seconds for t in self.killed_attempts):
            problems.append(
                "a killed attempt carries overhead_seconds (its cost "
                "belongs to the chain winner)"
            )
        # Every attempt either won (one entry in the task lists) or was
        # killed; speculative losing copies count in killed_tasks only.
        if self.attempts != len(winners) + self.killed_tasks:
            problems.append(
                f"attempts={self.attempts} != "
                f"{len(winners)} winners + {self.killed_tasks} killed"
            )
        if self.killed_tasks < len(self.killed_attempts):
            problems.append(
                "killed_tasks is below the recorded killed attempts"
            )
        if self.speculative_wins != sum(1 for t in winners if t.speculative):
            problems.append("speculative_wins disagrees with task flags")
        if self.map_output_bytes != sum(t.bytes_out for t in self.map_tasks):
            problems.append(
                "map_output_bytes does not equal the winning map "
                "attempts' bytes (killed attempts must not contribute)"
            )
        if self.map_output_records != sum(
            t.records_out for t in self.map_tasks
        ):
            problems.append(
                "map_output_records does not equal the winning map "
                "attempts' records"
            )
        if self.superseded and not self.aborted:
            problems.append(
                "superseded implies aborted: only a failed execution "
                "can be replaced by a rerun"
            )
        if not self.aborted and self.total_seconds and abs(
            self.total_seconds
            - (
                self.map_phase_seconds
                + self.shuffle_seconds
                + self.reduce_phase_seconds
            )
        ) > 1e-9:
            problems.append("total_seconds is not the sum of its phases")
        if problems:
            raise MetricsInvariantError(
                f"job {self.name!r}: " + "; ".join(problems)
            )

    def to_dict(self) -> Dict:
        """Plain-JSON form (nested task records included)."""
        data = asdict(self)
        data["map_tasks"] = [t.to_dict() for t in self.map_tasks]
        data["reduce_tasks"] = [t.to_dict() for t in self.reduce_tasks]
        data["killed_attempts"] = [
            t.to_dict() for t in self.killed_attempts
        ]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobMetrics":
        data = dict(data)
        for task_field in ("map_tasks", "reduce_tasks", "killed_attempts"):
            data[task_field] = [
                TaskMetrics.from_dict(t) for t in data.get(task_field, [])
            ]
        return cls(**_known_fields(cls, data))


@dataclass
class RunMetrics:
    """Aggregated metrics for one full algorithm execution.

    ``extras`` carries algorithm-specific measurements, keyed by name —
    e.g. ``{"sketch_bytes": 123456, "sample_size": 789}`` for SP-Cube.
    """

    algorithm: str
    jobs: List[JobMetrics] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)
    output_groups: int = 0
    #: Set when the run died outside any job (e.g. a DFS broadcast read
    #: exhausted every replica); counts as a failure.
    fatal_error: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated running time (Figures 4a/5a/6a/7a/8a)."""
        return sum(job.total_seconds for job in self.jobs)

    @property
    def intermediate_bytes(self) -> int:
        """Total map-output traffic across rounds (Figures 4c/6b/7c/8c)."""
        return sum(job.map_output_bytes for job in self.jobs)

    @property
    def intermediate_records(self) -> int:
        return sum(job.map_output_records for job in self.jobs)

    @property
    def avg_map_seconds(self) -> float:
        """Average map time of the (last) cube round."""
        cube_round = self._cube_round()
        return cube_round.avg_map_seconds if cube_round else 0.0

    @property
    def avg_reduce_seconds(self) -> float:
        """Average reduce time of the (last) cube round."""
        cube_round = self._cube_round()
        return cube_round.avg_reduce_seconds if cube_round else 0.0

    @property
    def failed(self) -> bool:
        """True when the run got stuck: OOM-flagged reducers (Hive at
        p>=0.4), an aborted round (retry budget exhausted), or a fatal
        out-of-job error.  Superseded executions — rounds that failed to
        a node loss but were re-executed from a checkpoint — do not fail
        the run: recovery worked."""
        return self.fatal_error is not None or any(
            job.failed for job in self.jobs if not job.superseded
        )

    @property
    def aborted(self) -> bool:
        """True when a round aborted or the run died outside any job —
        unlike an OOM flag, an aborted run has no trustworthy output.
        Superseded (checkpoint-recovered) executions are excluded."""
        return self.fatal_error is not None or any(
            job.aborted for job in self.jobs if not job.superseded
        )

    @property
    def nodes_lost(self) -> int:
        """Topology nodes lost across the run (each round reports the
        nodes that died in its window; a node dies at most once)."""
        return sum(len(job.dead_nodes) for job in self.jobs)

    @property
    def resumed_rounds(self) -> int:
        """Round executions that failed to a node loss and were replaced
        by a checkpoint resume."""
        return sum(1 for job in self.jobs if job.superseded)

    @property
    def attempts(self) -> int:
        """Total task attempts across rounds (retries and backups incl.)."""
        return sum(job.attempts for job in self.jobs)

    @property
    def killed_tasks(self) -> int:
        """Attempts killed across rounds (crashes + losing backups)."""
        return sum(job.killed_tasks for job in self.jobs)

    @property
    def speculative_wins(self) -> int:
        """Tasks completed by a speculative backup copy, across rounds."""
        return sum(job.speculative_wins for job in self.jobs)

    @property
    def recovered(self) -> int:
        """Tasks that failed at least once but ultimately succeeded."""
        return sum(job.recovered for job in self.jobs)

    def recovery_overhead(self) -> float:
        """Simulated seconds the run spent on fault recovery, across
        rounds — lost attempts, detection delays, backoffs, and residual
        straggle after speculation.  Each chain's cost is counted exactly
        once, on its winning attempt (see
        ``JobMetrics.recovery_overhead_seconds``)."""
        return sum(job.recovery_overhead_seconds for job in self.jobs)

    def check_invariants(self) -> None:
        """Run every round's accounting checks (see ``JobMetrics``)."""
        for job in self.jobs:
            job.check_invariants()

    def to_dict(self) -> Dict:
        """Plain-JSON form, for archiving and cross-PR diffing."""
        return {
            "algorithm": self.algorithm,
            "jobs": [job.to_dict() for job in self.jobs],
            "extras": dict(self.extras),
            "output_groups": self.output_groups,
            "fatal_error": self.fatal_error,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunMetrics":
        data = _known_fields(cls, dict(data))
        return cls(
            algorithm=data["algorithm"],
            jobs=[JobMetrics.from_dict(j) for j in data.get("jobs", [])],
            extras=dict(data.get("extras", {})),
            output_groups=data.get("output_groups", 0),
            fatal_error=data.get("fatal_error"),
        )

    @property
    def reducer_balance(self) -> float:
        """max/mean reducer input of the cube round (1.0 = perfectly even).

        Section 6.2 closes by noting SP-Cube's reducer outputs were of
        similar sizes; this ratio quantifies that.
        """
        cube_round = self._cube_round()
        if cube_round is None:
            return 0.0
        loads = [r for r in cube_round.reducer_input_records if r > 0]
        if not loads:
            return 0.0
        return max(loads) / (sum(loads) / len(loads))

    def _cube_round(self) -> Optional[JobMetrics]:
        """The round that did the cube's work: the one shuffling the most.

        Multi-round algorithms surround the materialization round with
        cheap sampling/post-aggregation rounds; per-task averages quoted
        for the run (as the paper does) refer to the dominant round.
        Superseded executions are skipped — their successful rerun
        carries the round's real numbers.
        """
        live = [job for job in self.jobs if not job.superseded]
        if not live:
            return None
        return max(live, key=lambda job: job.map_output_records)
