"""Metrics collected by the simulator — the paper's measurement surface.

Section 6 reports, per experiment: total running time, *average* map and
reduce task times, and intermediate (map output / network) data size.  A
:class:`JobMetrics` captures one MapReduce round; a :class:`RunMetrics`
aggregates the rounds of one algorithm execution plus algorithm-specific
extras (e.g. the SP-Sketch serialized size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TaskMetrics:
    """Counters for a single map or reduce task (one machine, one phase)."""

    machine: int = 0
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    cpu_ops: int = 0
    spilled_records: int = 0
    peak_group_records: int = 0
    seconds: float = 0.0
    #: Attempt index this record describes (0 = first execution).  For a
    #: task's winning attempt, ``seconds`` covers the whole chain: every
    #: crashed attempt, detection and backoff, then the winner's runtime.
    attempt: int = 0
    #: True when this attempt was killed (crash injection, or the losing
    #: copy of a speculative pair).
    killed: bool = False
    #: True when the task was completed by a speculative backup copy.
    speculative: bool = False


@dataclass
class JobMetrics:
    """Counters and derived times for one MapReduce round."""

    name: str
    map_tasks: List[TaskMetrics] = field(default_factory=list)
    reduce_tasks: List[TaskMetrics] = field(default_factory=list)
    #: Serialized bytes of all map-output pairs after combining — the
    #: paper's "map output size" / "intermediate data size".
    map_output_bytes: int = 0
    map_output_records: int = 0
    #: Simulated phase durations (max over machines + round startup).
    map_phase_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_phase_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Reducers whose per-group value buffer overflowed (models Hive's
    #: "stuck" reducers in Figure 6).
    oom_reducers: List[int] = field(default_factory=list)
    #: Flagged-reducer count at which the job counts as failed; a single
    #: hot reducer survives through spills and task retries.
    oom_quorum: int = 2
    #: Set by an algorithm's own failure model (see HiveCube) when the job
    #: is stuck regardless of per-reducer flags.
    forced_failure: bool = False
    #: Fault-tolerance counters (see ``repro.mapreduce.faults``): total
    #: task attempts launched (first executions, retries, and speculative
    #: backups), attempts killed (crashes plus losing speculative copies),
    #: tasks won by a speculative backup, and tasks that succeeded only
    #: after at least one failure or via a backup copy.
    attempts: int = 0
    killed_tasks: int = 0
    speculative_wins: int = 0
    recovered: int = 0
    #: Per-attempt records of every killed attempt (the winning attempt of
    #: each task lives in ``map_tasks``/``reduce_tasks``).
    killed_attempts: List[TaskMetrics] = field(default_factory=list)
    #: True when some task exhausted its retry budget and the framework
    #: aborted the job — the run produced no output.
    aborted: bool = False
    abort_reason: Optional[str] = None
    #: Which execution backend ran the round's tasks ("serial"/"parallel")
    #: and the *real* wall-clock seconds the driver spent per phase —
    #: measured host time, not simulated time.  These are diagnostics for
    #: the perf harness and are excluded from determinism comparisons
    #: (everything else in this dataclass is bit-identical across
    #: backends).
    executor: str = "serial"
    map_phase_wall_seconds: float = 0.0
    reduce_phase_wall_seconds: float = 0.0

    @property
    def avg_map_seconds(self) -> float:
        """Average map task time — Figure 5b / 8b's measure."""
        if not self.map_tasks:
            return 0.0
        return sum(t.seconds for t in self.map_tasks) / len(self.map_tasks)

    @property
    def avg_reduce_seconds(self) -> float:
        """Average reduce task time — Figure 4b / 7b's measure."""
        if not self.reduce_tasks:
            return 0.0
        return sum(t.seconds for t in self.reduce_tasks) / len(
            self.reduce_tasks
        )

    @property
    def max_reducer_input_records(self) -> int:
        return max((t.records_in for t in self.reduce_tasks), default=0)

    @property
    def reducer_input_records(self) -> List[int]:
        return [t.records_in for t in self.reduce_tasks]

    @property
    def reducer_output_bytes(self) -> List[int]:
        return [t.bytes_out for t in self.reduce_tasks]

    @property
    def failed(self) -> bool:
        return (
            self.aborted
            or self.forced_failure
            or len(self.oom_reducers) >= self.oom_quorum
        )


@dataclass
class RunMetrics:
    """Aggregated metrics for one full algorithm execution.

    ``extras`` carries algorithm-specific measurements, keyed by name —
    e.g. ``{"sketch_bytes": 123456, "sample_size": 789}`` for SP-Cube.
    """

    algorithm: str
    jobs: List[JobMetrics] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)
    output_groups: int = 0
    #: Set when the run died outside any job (e.g. a DFS broadcast read
    #: exhausted every replica); counts as a failure.
    fatal_error: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated running time (Figures 4a/5a/6a/7a/8a)."""
        return sum(job.total_seconds for job in self.jobs)

    @property
    def intermediate_bytes(self) -> int:
        """Total map-output traffic across rounds (Figures 4c/6b/7c/8c)."""
        return sum(job.map_output_bytes for job in self.jobs)

    @property
    def intermediate_records(self) -> int:
        return sum(job.map_output_records for job in self.jobs)

    @property
    def avg_map_seconds(self) -> float:
        """Average map time of the (last) cube round."""
        cube_round = self._cube_round()
        return cube_round.avg_map_seconds if cube_round else 0.0

    @property
    def avg_reduce_seconds(self) -> float:
        """Average reduce time of the (last) cube round."""
        cube_round = self._cube_round()
        return cube_round.avg_reduce_seconds if cube_round else 0.0

    @property
    def failed(self) -> bool:
        """True when the run got stuck: OOM-flagged reducers (Hive at
        p>=0.4), an aborted round (retry budget exhausted), or a fatal
        out-of-job error."""
        return self.fatal_error is not None or any(
            job.failed for job in self.jobs
        )

    @property
    def aborted(self) -> bool:
        """True when a round aborted or the run died outside any job —
        unlike an OOM flag, an aborted run has no trustworthy output."""
        return self.fatal_error is not None or any(
            job.aborted for job in self.jobs
        )

    @property
    def attempts(self) -> int:
        """Total task attempts across rounds (retries and backups incl.)."""
        return sum(job.attempts for job in self.jobs)

    @property
    def killed_tasks(self) -> int:
        """Attempts killed across rounds (crashes + losing backups)."""
        return sum(job.killed_tasks for job in self.jobs)

    @property
    def speculative_wins(self) -> int:
        """Tasks completed by a speculative backup copy, across rounds."""
        return sum(job.speculative_wins for job in self.jobs)

    @property
    def recovered(self) -> int:
        """Tasks that failed at least once but ultimately succeeded."""
        return sum(job.recovered for job in self.jobs)

    @property
    def reducer_balance(self) -> float:
        """max/mean reducer input of the cube round (1.0 = perfectly even).

        Section 6.2 closes by noting SP-Cube's reducer outputs were of
        similar sizes; this ratio quantifies that.
        """
        cube_round = self._cube_round()
        if cube_round is None:
            return 0.0
        loads = [r for r in cube_round.reducer_input_records if r > 0]
        if not loads:
            return 0.0
        return max(loads) / (sum(loads) / len(loads))

    def _cube_round(self) -> Optional[JobMetrics]:
        """The round that did the cube's work: the one shuffling the most.

        Multi-round algorithms surround the materialization round with
        cheap sampling/post-aggregation rounds; per-task averages quoted
        for the run (as the paper does) refer to the dominant round.
        """
        if not self.jobs:
            return None
        return max(self.jobs, key=lambda job: job.map_output_records)
