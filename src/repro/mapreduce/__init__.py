"""Simulated MapReduce substrate: cluster, engine, metrics, cost model, DFS."""

from .cluster import ClusterConfig
from .costmodel import CostModel
from .dfs import DistributedFileSystem, FileNotFound
from .engine import (
    DEFAULT_OOM_QUORUM_FRACTION,
    DEFAULT_OVERSIZED_DOMINANCE,
    DEFAULT_VALUE_BUFFER_FRACTION,
    FunctionMapper,
    FunctionReducer,
    JobResult,
    Mapper,
    MapReduceJob,
    Reducer,
    TaskContext,
    hash_partitioner,
    run_job,
    stable_hash,
)
from .metrics import JobMetrics, RunMetrics, TaskMetrics
from .sizes import estimate_bytes, pair_bytes, relation_bytes

__all__ = [
    "ClusterConfig",
    "CostModel",
    "DistributedFileSystem",
    "FileNotFound",
    "DEFAULT_OOM_QUORUM_FRACTION",
    "DEFAULT_OVERSIZED_DOMINANCE",
    "DEFAULT_VALUE_BUFFER_FRACTION",
    "FunctionMapper",
    "FunctionReducer",
    "JobResult",
    "Mapper",
    "MapReduceJob",
    "Reducer",
    "TaskContext",
    "hash_partitioner",
    "run_job",
    "stable_hash",
    "JobMetrics",
    "RunMetrics",
    "TaskMetrics",
    "estimate_bytes",
    "pair_bytes",
    "relation_bytes",
]
