"""Simulated MapReduce substrate: cluster, engine, metrics, cost model, DFS."""

from .broadcast import Broadcast, unwrap
from .checkpoint import (
    CHECKPOINT_ROOT,
    CheckpointManager,
    RoundRunner,
)
from .cluster import ClusterConfig, NodeTopology
from .costmodel import CostModel
from .dfs import (
    DEFAULT_REPLICATION,
    DistributedFileSystem,
    FileNotFound,
    ReplicaExhausted,
)
from .engine import (
    DEFAULT_OOM_QUORUM_FRACTION,
    DEFAULT_OVERSIZED_DOMINANCE,
    DEFAULT_VALUE_BUFFER_FRACTION,
    FunctionMapper,
    FunctionReducer,
    JobResult,
    Mapper,
    MapReduceJob,
    PairFormatError,
    Reducer,
    TaskContext,
    TaskFactory,
    hash_partitioner,
    paused_gc,
    run_job,
    stable_hash,
)
from .executor import (
    PARALLELISM_ENV,
    ParallelExecutor,
    SerialExecutor,
    TaskOutcome,
    build_executor,
    resolve_parallelism,
    run_task_chain,
)
from .faults import (
    NO_FAULTS,
    NODE_KILL,
    FaultPlan,
    FaultSpec,
    NodeFaultSpec,
    RetryPolicy,
)
from .metrics import (
    JobMetrics,
    MetricsInvariantError,
    RunMetrics,
    TaskMetrics,
)
from .sizes import estimate_bytes, pair_bytes, relation_bytes

__all__ = [
    "Broadcast",
    "unwrap",
    "CHECKPOINT_ROOT",
    "CheckpointManager",
    "RoundRunner",
    "ClusterConfig",
    "NodeTopology",
    "CostModel",
    "DEFAULT_REPLICATION",
    "DistributedFileSystem",
    "FileNotFound",
    "ReplicaExhausted",
    "FaultPlan",
    "FaultSpec",
    "NodeFaultSpec",
    "RetryPolicy",
    "NO_FAULTS",
    "NODE_KILL",
    "PairFormatError",
    "DEFAULT_OOM_QUORUM_FRACTION",
    "DEFAULT_OVERSIZED_DOMINANCE",
    "DEFAULT_VALUE_BUFFER_FRACTION",
    "FunctionMapper",
    "FunctionReducer",
    "JobResult",
    "Mapper",
    "MapReduceJob",
    "Reducer",
    "TaskContext",
    "TaskFactory",
    "hash_partitioner",
    "paused_gc",
    "run_job",
    "stable_hash",
    "PARALLELISM_ENV",
    "ParallelExecutor",
    "SerialExecutor",
    "TaskOutcome",
    "build_executor",
    "resolve_parallelism",
    "run_task_chain",
    "JobMetrics",
    "MetricsInvariantError",
    "RunMetrics",
    "TaskMetrics",
    "estimate_bytes",
    "pair_bytes",
    "relation_bytes",
]
