"""A minimal in-memory stand-in for the cluster's distributed file system.

Paper Section 2.3 assumes all machines share a DFS from which the relation
is read and to which the cube (and the SP-Sketch, between rounds) is
written.  This module provides exactly that contract: named files holding
record lists, with byte accounting so broadcast artifacts like the sketch
can be measured the way the paper measures them (Figure 5c, 6c).

Like HDFS, every file is stored with ``replication`` copies.  When a
:class:`~repro.mapreduce.faults.FaultPlan` is attached, a read may find a
replica dead (a ``read-drop`` fault) and transparently retries against the
next replica — the recovery every real DFS client performs.  Only when
*every* replica fails does the read raise :class:`ReplicaExhausted`.
``read`` always returns a fresh copy of the file's records, so callers can
never mutate DFS state through an aliased return value.

With a :class:`~repro.mapreduce.cluster.NodeTopology` attached the DFS is
*placement-aware*: each path's replicas are pinned to nodes at write time
(a stable ring walk from a content hash of the path, like HDFS block
placement).  A node death (:meth:`mark_nodes_dead`) kills the replicas it
hosted; paths that keep at least one live copy are re-replicated onto
surviving nodes — HDFS's re-replication pipeline — and only a path whose
*every* replica died becomes unreadable (:class:`ReplicaExhausted`).  This
is the replication assumption the paper leans on: losing a node costs
time, not data, unless replication is actually exhausted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .faults import FaultPlan
from .sizes import estimate_bytes

#: HDFS's default replication factor.
DEFAULT_REPLICATION = 3


class FileNotFound(KeyError):
    """Raised when reading a path that was never written."""


class ReplicaExhausted(IOError):
    """Raised when every replica of a path failed to serve a read."""


class DistributedFileSystem:
    """Named record files shared by all simulated machines."""

    def __init__(
        self,
        replication: int = DEFAULT_REPLICATION,
        fault_plan: Optional[FaultPlan] = None,
        topology=None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self._files: Dict[str, List] = {}
        self.replication = replication
        self.fault_plan = fault_plan
        #: Node placement of each path's replicas (replica index -> node).
        #: Only tracked when a topology is attached.
        self._placement: Dict[str, List[int]] = {}
        self.topology = topology
        #: Nodes whose replicas are gone (see :meth:`mark_nodes_dead`).
        self.dead_nodes: Set[int] = set()
        #: Paths that lost every replica to node deaths.
        self._lost: Set[str] = set()
        #: Dropped replica reads that were recovered by the next replica.
        self.read_retries = 0
        #: Reads that exhausted every replica.
        self.failed_reads = 0
        #: Replicas re-created on surviving nodes after a node death.
        self.re_replications = 0
        #: Write/append calls and records they stored (telemetry).
        self.writes = 0
        self.records_written = 0

    # -- placement -----------------------------------------------------------

    def _place(self, path: str) -> None:
        """Pin ``path``'s replicas to nodes (stable ring from a path hash)."""
        if self.topology is None:
            return
        nodes = []
        live = [
            n
            for n in range(self.topology.num_nodes)
            if n not in self.dead_nodes
        ]
        for replica in range(self.replication):
            node = self.topology.replica_node(path, replica)
            if node in self.dead_nodes and live:
                # Walk the ring to the next live node, deterministically.
                node = live[node % len(live)]
            nodes.append(node)
        self._placement[path] = nodes

    def mark_nodes_dead(self, nodes: Iterable[int]) -> None:
        """A batch of nodes died: kill their replicas, then re-replicate.

        Mirrors HDFS block recovery.  All deaths in the batch land first
        (simultaneous failure — a path replicated only across the dying
        nodes is lost for good), then every path that kept at least one
        live replica gets its dead replicas re-created on surviving
        nodes, counted in ``re_replications``.  Without a topology this
        is a no-op: there are no failure domains to lose.
        """
        if self.topology is None:
            return
        batch = set(nodes) - self.dead_nodes
        if not batch:
            return
        self.dead_nodes |= batch
        live = [
            n
            for n in range(self.topology.num_nodes)
            if n not in self.dead_nodes
        ]
        for path in sorted(self._placement):
            placement = self._placement[path]
            dead_slots = [
                i for i, node in enumerate(placement) if node in self.dead_nodes
            ]
            if not dead_slots:
                continue
            if len(dead_slots) == len(placement) or not live:
                self._lost.add(path)
                continue
            # Re-replicate each dead slot onto a live node, walking the
            # ring from the replica's original position.
            for slot in dead_slots:
                original = self.topology.replica_node(path, slot)
                placement[slot] = live[original % len(live)]
                self.re_replications += 1

    # -- file operations -----------------------------------------------------

    def write(self, path: str, records: Iterable) -> int:
        """Store ``records`` under ``path``; returns the record count."""
        materialized = list(records)
        self._files[path] = materialized
        self._lost.discard(path)
        self._place(path)
        self.writes += 1
        self.records_written += len(materialized)
        return len(materialized)

    def append(self, path: str, records: Iterable) -> int:
        """Append to ``path`` (creating it), as reducers writing a cuboid."""
        materialized = list(records)
        if path not in self._files:
            self._files[path] = []
            self._lost.discard(path)
            self._place(path)
        self._files[path].extend(materialized)
        self.writes += 1
        self.records_written += len(materialized)
        return len(materialized)

    def read(self, path: str, preferred_node: Optional[int] = None) -> List:
        """A copy of the records of ``path``.

        ``preferred_node`` asks for node-local replica choice: replicas on
        that node are tried first (rack-locality), then the rest in ring
        order — the read result is identical either way, only the retry
        accounting moves.

        Raises :class:`FileNotFound` if the path was never written and
        :class:`ReplicaExhausted` when every replica is dead — either the
        fault plan drops all ``replication`` read attempts, or node
        deaths wiped every copy before re-replication could save one.
        """
        try:
            records = self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

        if path in self._lost:
            self.failed_reads += 1
            raise ReplicaExhausted(
                f"{path}: all replicas lost to node failures"
            )

        plan = self.fault_plan
        if plan is not None and not plan.is_empty:
            for skipped, replica in enumerate(
                self._replica_order(path, preferred_node)
            ):
                if not plan.drops_read(path, replica):
                    # ``skipped`` dead copies were tried to get here.
                    self.read_retries += skipped
                    break
            else:
                self.failed_reads += 1
                raise ReplicaExhausted(
                    f"{path}: all {self.replication} replicas failed"
                )
        return list(records)

    def _replica_order(
        self, path: str, preferred_node: Optional[int]
    ) -> List[int]:
        """Replica indices in the order a read tries them."""
        order = list(range(self.replication))
        if preferred_node is None or self.topology is None:
            return order
        placement = self._placement.get(path)
        if placement is None:
            return order
        return sorted(
            order,
            key=lambda r: (
                0 if r < len(placement) and placement[r] == preferred_node else 1,
                r,
            ),
        )

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path`` and its placement record atomically."""
        self._files.pop(path, None)
        self._placement.pop(path, None)
        self._lost.discard(path)

    def delete_prefix(self, prefix: str) -> int:
        """Remove every path starting with ``prefix``; returns the count.

        Used by the checkpoint layer to retire a round's manifest and
        parts as one operation.
        """
        doomed = [path for path in self._files if path.startswith(prefix)]
        for path in doomed:
            self.delete(path)
        return len(doomed)

    def list_files(self, prefix: Optional[str] = None) -> List[str]:
        """Sorted paths, optionally restricted to a prefix."""
        if prefix is None:
            return sorted(self._files)
        return sorted(p for p in self._files if p.startswith(prefix))

    def size_bytes(self, path: str) -> int:
        """Estimated serialized size of ``path`` — how sketch size is
        reported in Figures 5c and 6c."""
        return sum(estimate_bytes(record) for record in self.read(path))

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)
