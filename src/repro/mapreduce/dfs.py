"""A minimal in-memory stand-in for the cluster's distributed file system.

Paper Section 2.3 assumes all machines share a DFS from which the relation
is read and to which the cube (and the SP-Sketch, between rounds) is
written.  This module provides exactly that contract: named files holding
record lists, with byte accounting so broadcast artifacts like the sketch
can be measured the way the paper measures them (Figure 5c, 6c).

Like HDFS, every file is stored with ``replication`` copies.  When a
:class:`~repro.mapreduce.faults.FaultPlan` is attached, a read may find a
replica dead (a ``read-drop`` fault) and transparently retries against the
next replica — the recovery every real DFS client performs.  Only when
*every* replica fails does the read raise :class:`ReplicaExhausted`.
``read`` always returns a fresh copy of the file's records, so callers can
never mutate DFS state through an aliased return value.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .faults import FaultPlan
from .sizes import estimate_bytes

#: HDFS's default replication factor.
DEFAULT_REPLICATION = 3


class FileNotFound(KeyError):
    """Raised when reading a path that was never written."""


class ReplicaExhausted(IOError):
    """Raised when every replica of a path failed to serve a read."""


class DistributedFileSystem:
    """Named record files shared by all simulated machines."""

    def __init__(
        self,
        replication: int = DEFAULT_REPLICATION,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self._files: Dict[str, List] = {}
        self.replication = replication
        self.fault_plan = fault_plan
        #: Dropped replica reads that were recovered by the next replica.
        self.read_retries = 0
        #: Reads that exhausted every replica.
        self.failed_reads = 0

    def write(self, path: str, records: Iterable) -> int:
        """Store ``records`` under ``path``; returns the record count."""
        materialized = list(records)
        self._files[path] = materialized
        return len(materialized)

    def append(self, path: str, records: Iterable) -> int:
        """Append to ``path`` (creating it), as reducers writing a cuboid."""
        materialized = list(records)
        self._files.setdefault(path, []).extend(materialized)
        return len(materialized)

    def read(self, path: str) -> List:
        """A copy of the records of ``path``.

        Raises :class:`FileNotFound` if the path was never written and
        :class:`ReplicaExhausted` when the fault plan kills the read on
        all ``replication`` replicas.
        """
        try:
            records = self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

        plan = self.fault_plan
        if plan is not None and not plan.is_empty:
            for replica in range(self.replication):
                if not plan.drops_read(path, replica):
                    # ``replica`` dead copies were skipped to get here.
                    self.read_retries += replica
                    break
            else:
                self.failed_reads += 1
                raise ReplicaExhausted(
                    f"{path}: all {self.replication} replicas failed"
                )
        return list(records)

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def size_bytes(self, path: str) -> int:
        """Estimated serialized size of ``path`` — how sketch size is
        reported in Figures 5c and 6c."""
        return sum(estimate_bytes(record) for record in self.read(path))

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)
