"""A minimal in-memory stand-in for the cluster's distributed file system.

Paper Section 2.3 assumes all machines share a DFS from which the relation
is read and to which the cube (and the SP-Sketch, between rounds) is
written.  This module provides exactly that contract: named files holding
record lists, with byte accounting so broadcast artifacts like the sketch
can be measured the way the paper measures them (Figure 5c, 6c).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .sizes import estimate_bytes


class FileNotFound(KeyError):
    """Raised when reading a path that was never written."""


class DistributedFileSystem:
    """Named record files shared by all simulated machines."""

    def __init__(self) -> None:
        self._files: Dict[str, List] = {}

    def write(self, path: str, records: Iterable) -> int:
        """Store ``records`` under ``path``; returns the record count."""
        materialized = list(records)
        self._files[path] = materialized
        return len(materialized)

    def append(self, path: str, records: Iterable) -> int:
        """Append to ``path`` (creating it), as reducers writing a cuboid."""
        materialized = list(records)
        self._files.setdefault(path, []).extend(materialized)
        return len(materialized)

    def read(self, path: str) -> List:
        """The records of ``path``; raises :class:`FileNotFound` if absent."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def size_bytes(self, path: str) -> int:
        """Estimated serialized size of ``path`` — how sketch size is
        reported in Figures 5c and 6c."""
        return sum(estimate_bytes(record) for record in self.read(path))

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)
