"""Relation schemas for cube computation.

A relation in this library follows the paper's model (Section 2.1): it has
``d`` *dimension* attributes ``A1..Ad`` and one numeric *measure* attribute
``B``.  Rows are plain Python tuples ``(a1, ..., ad, b)``; the schema object
carries the attribute names and provides index arithmetic so the rest of the
library can treat rows positionally.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class SchemaError(ValueError):
    """Raised when a schema or a row does not satisfy the cube data model."""


class Schema:
    """Names and positions of the dimension and measure attributes.

    Parameters
    ----------
    dimensions:
        Ordered dimension attribute names (``A1..Ad`` in the paper).
    measure:
        Name of the numeric measure attribute ``B``.

    Examples
    --------
    >>> schema = Schema(["name", "city", "year"], "sales")
    >>> schema.num_dimensions
    3
    >>> schema.arity
    4
    """

    __slots__ = ("dimensions", "measure")

    def __init__(self, dimensions: Sequence[str], measure: str = "measure"):
        dims = tuple(dimensions)
        if not dims:
            raise SchemaError("a cube schema needs at least one dimension")
        if len(set(dims)) != len(dims):
            raise SchemaError(f"duplicate dimension names: {dims}")
        if measure in dims:
            raise SchemaError(
                f"measure attribute {measure!r} collides with a dimension"
            )
        self.dimensions: Tuple[str, ...] = dims
        self.measure: str = measure

    @property
    def num_dimensions(self) -> int:
        """``d``, the number of dimension attributes."""
        return len(self.dimensions)

    @property
    def arity(self) -> int:
        """Total number of attributes, ``d + 1``."""
        return len(self.dimensions) + 1

    def dimension_index(self, name: str) -> int:
        """Position of dimension ``name`` within a row."""
        try:
            return self.dimensions.index(name)
        except ValueError:
            raise SchemaError(f"unknown dimension {name!r}") from None

    def validate_row(self, row: Sequence) -> None:
        """Raise :class:`SchemaError` unless ``row`` fits this schema."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row {row!r} has {len(row)} fields, expected {self.arity}"
            )
        measure = row[-1]
        if isinstance(measure, bool) or not isinstance(measure, (int, float)):
            raise SchemaError(
                f"measure value {measure!r} is not numeric in row {row!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.dimensions == other.dimensions and self.measure == other.measure
        )

    def __hash__(self) -> int:
        return hash((self.dimensions, self.measure))

    def __repr__(self) -> str:
        dims = ", ".join(self.dimensions)
        return f"Schema([{dims}], measure={self.measure!r})"
