"""In-memory relation container used as input to all cube algorithms.

A :class:`Relation` is a schema plus a list of rows.  Rows are plain tuples
``(a1, ..., ad, b)`` — dimension values followed by the numeric measure.
The container is deliberately simple: the distributed algorithms read it
through the simulated DFS (see :mod:`repro.mapreduce.dfs`), and the
sequential algorithms iterate it directly.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from . import lattice
from .schema import Schema, SchemaError

Row = Tuple


class Relation:
    """A named relation ``R(A1..Ad, B)``.

    Parameters
    ----------
    schema:
        The relation's :class:`~repro.relation.schema.Schema`.
    rows:
        Iterable of row tuples; materialized into a list.
    validate:
        When true (default), every row is checked against the schema.  Large
        generated datasets can skip validation for speed.
    name:
        Optional display name used in reports.
    """

    __slots__ = ("schema", "rows", "name")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] = (),
        validate: bool = True,
        name: str = "R",
    ):
        self.schema = schema
        self.rows: List[Row] = [tuple(row) for row in rows]
        self.name = name
        if validate:
            for row in self.rows:
                schema.validate_row(row)

    # -- basic container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {len(self.rows)} rows, "
            f"{self.schema.num_dimensions} dims)"
        )

    # -- cube-oriented helpers ----------------------------------------------

    @property
    def num_dimensions(self) -> int:
        return self.schema.num_dimensions

    def measures(self) -> Iterator[float]:
        """Iterate over the measure column."""
        return (row[-1] for row in self.rows)

    def project_group(self, row: Row, mask: int) -> lattice.GroupValues:
        """The c-group of ``row`` in cuboid ``mask``."""
        return lattice.project(row, mask, self.schema.num_dimensions)

    def sorted_by_cuboid(self, mask: int) -> List[Row]:
        """Rows ordered by the paper's ``<_C`` for cuboid ``mask``.

        Ties (rows equal on the cuboid attributes) keep an arbitrary but
        deterministic order, as allowed by Section 4.1.
        """
        d = self.schema.num_dimensions
        return sorted(self.rows, key=lambda row: lattice.project(row, mask, d))

    def group_sizes(self, mask: int) -> dict:
        """``|set(g)|`` for every c-group ``g`` of cuboid ``mask``."""
        d = self.schema.num_dimensions
        sizes: dict = {}
        for row in self.rows:
            group = lattice.project(row, mask, d)
            sizes[group] = sizes.get(group, 0) + 1
        return sizes

    def sample(
        self,
        probability: float,
        rng: Optional[random.Random] = None,
    ) -> List[Row]:
        """Bernoulli sample: each row kept independently with ``probability``.

        This is the map-phase of Algorithm 2.  A caller-supplied ``rng``
        makes sampling reproducible.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        rng = rng or random.Random()
        return [row for row in self.rows if rng.random() <= probability]

    def random_subset(
        self, size: int, rng: Optional[random.Random] = None
    ) -> "Relation":
        """Uniform random subset of ``size`` rows (used for data-size sweeps).

        The paper evaluates each dataset on random subsamples of varying
        sizes; this reproduces that protocol.
        """
        if size > len(self.rows):
            raise ValueError(
                f"cannot sample {size} rows from a relation of {len(self.rows)}"
            )
        rng = rng or random.Random()
        picked = rng.sample(self.rows, size)
        return Relation(
            self.schema,
            picked,
            validate=False,
            name=f"{self.name}[{size}]",
        )

    def split(self, num_parts: int) -> List[List[Row]]:
        """Split rows into ``num_parts`` nearly-equal chunks (mapper inputs).

        Mirrors the paper's assumption that the ``n`` input tuples are
        equally loaded onto the ``k`` machines.
        """
        if num_parts <= 0:
            raise ValueError("num_parts must be positive")
        chunks: List[List[Row]] = [[] for _ in range(num_parts)]
        base, extra = divmod(len(self.rows), num_parts)
        start = 0
        for i in range(num_parts):
            end = start + base + (1 if i < extra else 0)
            chunks[i] = self.rows[start:end]
            start = end
        return chunks

    @classmethod
    def from_columns(
        cls,
        schema: Schema,
        columns: Sequence[Sequence],
        name: str = "R",
    ) -> "Relation":
        """Build a relation from parallel columns (dims then measure)."""
        if len(columns) != schema.arity:
            raise SchemaError(
                f"{len(columns)} columns for schema of arity {schema.arity}"
            )
        rows = list(zip(*columns))
        return cls(schema, rows, name=name)

    def map_rows(self, fn: Callable[[Row], Row], name: Optional[str] = None):
        """A new relation with ``fn`` applied to every row."""
        return Relation(
            self.schema,
            [fn(row) for row in self.rows],
            validate=True,
            name=name or self.name,
        )
