"""Relational substrate: schemas, relations, and the cube/tuple lattices."""

from .schema import Schema, SchemaError
from .relation import Relation, Row
from . import lattice
from .lattice import (
    STAR,
    all_cuboids,
    ancestors,
    bfs_order,
    cube_lattice_edges,
    descendants,
    format_cuboid,
    format_group,
    full_mask,
    group_sort_key,
    mask_dimensions,
    mask_size,
    project,
    strict_subsets,
    strict_supersets,
    tuple_lattice,
)

__all__ = [
    "Schema",
    "SchemaError",
    "Relation",
    "Row",
    "lattice",
    "STAR",
    "all_cuboids",
    "ancestors",
    "bfs_order",
    "cube_lattice_edges",
    "descendants",
    "format_cuboid",
    "format_group",
    "full_mask",
    "group_sort_key",
    "mask_dimensions",
    "mask_size",
    "project",
    "strict_subsets",
    "strict_supersets",
    "tuple_lattice",
]
