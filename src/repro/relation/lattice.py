"""Cube and tuple lattices (paper Section 2.2).

Cuboids are represented as *bitmasks* over the ``d`` dimension attributes:
bit ``i`` set means dimension ``Ai`` participates in the group-by.  The full
cuboid is ``(1 << d) - 1`` and the apex cuboid ``(*, *, ..., *)`` is ``0``.

A *c-group* (cube group) is a pair ``(mask, values)`` where ``values`` is the
tuple of the row's dimension values at the positions set in ``mask``, in
dimension order.  Lexicographic comparison of two groups of the same cuboid
is plain tuple comparison of their ``values`` — exactly the paper's ``<_C``
order.

Both lattices of the paper are views over this mask algebra:

* the **cube lattice** (Figure 1) has one node per mask; cuboid ``C'`` is a
  *descendant* of ``C`` iff ``C'``'s mask is ``C``'s with one bit cleared;
* the **tuple lattice** of a row ``t`` (Figure 2) has one node per mask,
  holding the projection of ``t`` onto that mask.  Nodes correspond exactly
  to the c-groups ``t`` contributes to.

The BFS bottom-up order used by SP-Cube's mapper and reducer (Algorithm 3)
starts at the apex ``(*, ..., *)`` and visits masks level by level (by
popcount), ties broken by ascending mask value so the order is deterministic
and identical on every machine.
"""

from __future__ import annotations

import operator
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

from .schema import Schema

Mask = int
GroupValues = Tuple
CGroup = Tuple[Mask, GroupValues]

#: Marker used when rendering projected-away attributes, as in the paper.
STAR = "*"


def full_mask(num_dimensions: int) -> Mask:
    """Mask of the finest cuboid (all ``d`` dimensions present)."""
    return (1 << num_dimensions) - 1


def mask_size(mask: Mask) -> int:
    """Number of dimensions present in ``mask`` (lattice level)."""
    return bin(mask).count("1")


def mask_dimensions(mask: Mask, num_dimensions: int) -> Tuple[int, ...]:
    """Indices of the dimensions present in ``mask``, ascending."""
    return tuple(i for i in range(num_dimensions) if mask >> i & 1)


@lru_cache(maxsize=None)
def all_cuboids(num_dimensions: int) -> Tuple[Mask, ...]:
    """All ``2^d`` cuboid masks, in ascending mask order."""
    return tuple(range(1 << num_dimensions))


@lru_cache(maxsize=None)
def bfs_order(num_dimensions: int) -> Tuple[Mask, ...]:
    """Masks in bottom-up BFS order: by level (popcount), then mask value.

    This is the traversal order of Algorithm 3's mapper; the apex cuboid
    comes first and the full cuboid last.
    """
    return tuple(
        sorted(all_cuboids(num_dimensions), key=lambda m: (mask_size(m), m))
    )


def descendants(mask: Mask, num_dimensions: int) -> Iterator[Mask]:
    """Direct descendants: masks with exactly one of ``mask``'s bits cleared.

    Per Definition 2.3, a descendant drops one group-by attribute.  The apex
    cuboid (mask 0) has no descendants.
    """
    for i in range(num_dimensions):
        if mask >> i & 1:
            yield mask & ~(1 << i)


def ancestors(mask: Mask, num_dimensions: int) -> Iterator[Mask]:
    """Direct ancestors: masks with exactly one extra bit set."""
    for i in range(num_dimensions):
        if not mask >> i & 1:
            yield mask | 1 << i


@lru_cache(maxsize=None)
def strict_supersets(mask: Mask, num_dimensions: int) -> Tuple[Mask, ...]:
    """All masks strictly containing ``mask`` (transitive ancestors)."""
    return tuple(
        m
        for m in all_cuboids(num_dimensions)
        if m != mask and m & mask == mask
    )


@lru_cache(maxsize=None)
def strict_subsets(mask: Mask) -> Tuple[Mask, ...]:
    """All masks strictly contained in ``mask`` (transitive descendants).

    Enumerated with the standard subset-walk ``(s - 1) & mask`` so the cost
    is linear in the number of subsets.
    """
    if mask == 0:
        return ()
    subsets = []
    s = (mask - 1) & mask
    while True:
        subsets.append(s)
        if s == 0:
            break
        s = (s - 1) & mask
    return tuple(subsets)


@lru_cache(maxsize=None)
def projector(mask: Mask, num_dimensions: int):
    """A compiled projection function ``row -> GroupValues`` for ``mask``.

    Built on :func:`operator.itemgetter` so the per-row cost is a single C
    call; this is the innermost operation of every cube algorithm.
    """
    dims = mask_dimensions(mask, num_dimensions)
    if not dims:
        empty = ()
        return lambda row: empty
    if len(dims) == 1:
        index = dims[0]
        return lambda row: (row[index],)
    getter = operator.itemgetter(*dims)
    return getter


def project(row: Sequence, mask: Mask, num_dimensions: int) -> GroupValues:
    """Project a row's dimension values onto ``mask``.

    Returns the tuple of values at the set positions, in dimension order —
    the canonical representation of the c-group ``row`` contributes to in
    cuboid ``mask``.  The measure attribute is never part of a projection.
    """
    return projector(mask, num_dimensions)(row)


def tuple_lattice(row: Sequence, num_dimensions: int) -> List[CGroup]:
    """All c-groups the row contributes to, in bottom-up BFS order.

    This materializes the paper's ``lattice(t)`` (Definition 2.4): one
    ``(mask, values)`` node per cuboid.
    """
    return [
        (mask, project(row, mask, num_dimensions))
        for mask in bfs_order(num_dimensions)
    ]


def group_sort_key(mask: Mask, values: GroupValues) -> Tuple:
    """Total order over c-groups: by cuboid level, mask, then values."""
    return (mask_size(mask), mask, values)


def format_group(mask: Mask, values: GroupValues, schema: Schema) -> str:
    """Render a c-group in the paper's star notation, e.g. ``(laptop, *, 2012)``.

    >>> schema = Schema(["name", "city", "year"], "sales")
    >>> format_group(0b101, ("laptop", 2012), schema)
    '(laptop, *, 2012)'
    """
    parts = []
    value_iter = iter(values)
    for i in range(schema.num_dimensions):
        parts.append(str(next(value_iter)) if mask >> i & 1 else STAR)
    return "(" + ", ".join(parts) + ")"


def format_cuboid(mask: Mask, schema: Schema) -> str:
    """Render a cuboid in star notation, e.g. ``(name, *, year)``."""
    parts = [
        schema.dimensions[i] if mask >> i & 1 else STAR
        for i in range(schema.num_dimensions)
    ]
    return "(" + ", ".join(parts) + ")"


def cube_lattice_edges(num_dimensions: int) -> List[Tuple[Mask, Mask]]:
    """Edges ``(ancestor, descendant)`` of the cube lattice (Figure 1)."""
    edges = []
    for mask in all_cuboids(num_dimensions):
        for child in descendants(mask, num_dimensions):
            edges.append((mask, child))
    return edges
